"""Legacy setuptools shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works on offline hosts without the ``wheel`` package
(pip's legacy editable path requires a setup.py).
"""

from setuptools import setup

setup()
