"""Telemetry tests: registry algebra, spans, exposition, logging, the
status schema, the byte-identity gate, and fleet-wide reconciliation."""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os

import pytest

from repro import obs
from repro.config import CampaignConfig, campaign_to_json
from repro.fleet import ChaosPlan, ResultStore, run_chaos_campaign
from repro.fleet.store import campaign_key
from repro.fleet.supervisor import STATUS_SCHEMA
from repro.harness.session import CampaignSession
from repro.obs import metrics as m
from repro.obs.logsetup import LOG_FORMAT, log_context, resolve_level
from repro.obs.spans import _NULL, span

# identity literals every PR re-pins: telemetry must never move these
PINNED_DEFAULT_KEY = "c677e61cba706"
PINNED_DEFAULT_JSON_SHA = (
    "80e102f98a65f80dbe3491e91d1ac9f0ad8cca292e8153f57852f99c113d3c27")


def ordered_key(result):
    """Order-sensitive full-fidelity identity of a campaign result."""
    return [v.identity() for v in result.verdicts]


@pytest.fixture
def obs_on():
    """Telemetry enabled with a clean registry; fully undone afterwards."""
    obs.reset()
    obs.enable(True)
    yield
    obs.enable(False)
    obs.reset()
    obs.set_trace_file(None)
    os.environ.pop("REPRO_OBS", None)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counters_add_and_normalize_label_order(self):
        r = m.MetricsRegistry()
        r.inc("hits", 2.0, vendor="gcc", phase="cold")
        r.inc("hits", 3.0, phase="cold", vendor="gcc")  # same series
        snap = r.snapshot()
        assert snap["counters"] == {"hits|phase=cold|vendor=gcc": 5.0}

    def test_gauges_keep_last_set_value(self):
        r = m.MetricsRegistry()
        r.set_gauge("depth", 7.0)
        r.set_gauge("depth", 3.0)
        assert r.snapshot()["gauges"]["depth"] == 3.0

    def test_histogram_buckets_sum_and_overflow(self):
        r = m.MetricsRegistry()
        bounds = (1.0, 2.0, 4.0)
        for v in (0.5, 1.5, 3.0, 100.0):  # one per bucket + overflow
            r.observe("lat", v, bounds)
        h = r.snapshot()["hists"]["lat"]
        assert h["bounds"] == [1.0, 2.0, 4.0]
        assert h["counts"] == [1, 1, 1, 1]
        assert h["count"] == 4
        assert h["sum"] == pytest.approx(105.0)

    def test_labels_reject_reserved_characters(self):
        r = m.MetricsRegistry()
        with pytest.raises(ValueError, match="may not contain"):
            r.inc("x", stage="a|b")
        with pytest.raises(ValueError, match="may not contain"):
            r.inc("x", stage="a=b")

    def test_snapshot_is_json_roundtrippable(self):
        r = m.MetricsRegistry()
        r.inc("c", 1.0, k="v")
        r.set_gauge("g", 2.5)
        r.observe("h", 0.01)
        snap = r.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["v"] == m.SNAPSHOT_VERSION

    def test_absorb_rejects_mismatched_bucket_bounds(self):
        r = m.MetricsRegistry()
        r.observe("h", 0.5, (1.0, 2.0))
        bad = {"hists": {"h": {"bounds": [1.0, 3.0], "counts": [1, 0, 0],
                               "sum": 0.5, "count": 1}}}
        with pytest.raises(ValueError, match="bucket bounds differ"):
            r.absorb(bad)

    def test_module_helpers_are_noops_while_disabled(self):
        assert not m.enabled()
        m.reset()
        m.inc("repro_tests_total")
        m.set_gauge("g", 1.0)
        m.observe("h", 0.1)
        snap = m.registry_snapshot()
        assert not snap["counters"] and not snap["gauges"]
        assert not snap["hists"]


class TestMergeAlgebra:
    def _snaps(self):
        a = m.MetricsRegistry()
        a.inc("c", 1.0, k="x")
        a.observe("h", 0.5, (1.0, 2.0))
        a.set_gauge("g", 5.0)
        b = m.MetricsRegistry()
        b.inc("c", 2.0, k="x")
        b.inc("c", 7.0, k="y")
        b.observe("h", 1.5, (1.0, 2.0))
        b.set_gauge("g", 3.0)
        c = m.MetricsRegistry()
        c.observe("h", 9.0, (1.0, 2.0))
        return a.snapshot(), b.snapshot(), c.snapshot()

    def test_merge_is_associative_and_commutative(self):
        a, b, c = self._snaps()
        flat = m.merge_snapshots([a, b, c])
        assert m.merge_snapshots([c, a, b]) == flat
        assert m.merge_snapshots(
            [m.merge_snapshots([a, b]), c]) == flat
        assert m.merge_snapshots(
            [a, m.merge_snapshots([b, c])]) == flat
        assert flat["counters"] == {"c|k=x": 3.0, "c|k=y": 7.0}
        assert flat["gauges"] == {"g": 5.0}  # max, not last
        assert flat["hists"]["h"]["count"] == 3

    def test_none_and_empty_snapshots_are_skipped(self):
        a, _, _ = self._snaps()
        assert m.merge_snapshots([None, a, {}]) == m.merge_snapshots([a])


class TestExposition:
    def test_render_parse_roundtrip(self):
        r = m.MetricsRegistry()
        r.inc("repro_tests_total", 4.0)
        r.inc("repro_lower_total", 2.0, phase="kernel", result="cold")
        r.set_gauge("repro_queue_depth", 3.0)
        r.observe("repro_stage_seconds", 0.003, (0.001, 0.01), stage="plan")
        r.observe("repro_stage_seconds", 0.5, (0.001, 0.01), stage="plan")
        text = m.render_exposition(r.snapshot())
        assert "# TYPE repro_tests_total counter" in text
        assert "# TYPE repro_stage_seconds histogram" in text
        parsed = m.parse_exposition(text)
        assert parsed["repro_tests_total"] == 4.0
        assert parsed['repro_lower_total{phase="kernel",result="cold"}'] == 2.0
        assert parsed['repro_queue_depth'] == 3.0
        # cumulative buckets: le=0.01 holds one, +Inf holds both
        assert parsed['repro_stage_seconds_bucket{le="0.01",stage="plan"}'] \
            == 1.0
        assert parsed['repro_stage_seconds_bucket{le="+Inf",stage="plan"}'] \
            == 2.0
        assert parsed['repro_stage_seconds_count{stage="plan"}'] == 2.0

    def test_parse_rejects_malformed_sample_line(self):
        with pytest.raises(ValueError, match="malformed"):
            m.parse_exposition("lonelytoken\n")

    def test_empty_snapshot_renders_empty(self):
        assert m.render_exposition(m.MetricsRegistry().snapshot()) == ""


class TestHistQuantile:
    def _hist(self, values, bounds=(1.0, 2.0, 4.0, 8.0)):
        r = m.MetricsRegistry()
        for v in values:
            r.observe("h", v, bounds)
        return r.snapshot()["hists"]["h"]

    def test_median_interpolates_inside_bucket(self):
        h = self._hist([0.5] * 2 + [1.5] * 2)
        assert 0.0 < m.hist_quantile(h, 0.5) <= 1.0
        assert 1.0 < m.hist_quantile(h, 0.95) <= 2.0

    def test_overflow_clamps_to_top_bound(self):
        h = self._hist([100.0, 200.0])
        assert m.hist_quantile(h, 0.99) == 8.0

    def test_empty_histogram_is_zero(self):
        h = {"bounds": [1.0], "counts": [0, 0], "sum": 0.0, "count": 0}
        assert m.hist_quantile(h, 0.5) == 0.0

    def test_quantile_domain_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            m.hist_quantile(self._hist([1.0]), 1.5)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_disabled_span_is_the_shared_null(self):
        assert span("anything") is _NULL
        assert span("other", k="v") is _NULL

    def test_enabled_span_observes_stage_histogram(self, obs_on):
        with span("unittest_stage", flavor="x"):
            pass
        snap = m.registry_snapshot()
        assert m.span_seconds_count(snap, "unittest_stage") == 1
        assert m.total_counter(snap, "repro_stage_errors_total") == 0

    def test_span_counts_errors_and_reraises(self, obs_on):
        with pytest.raises(RuntimeError, match="boom"):
            with span("unittest_stage"):
                raise RuntimeError("boom")
        snap = m.registry_snapshot()
        assert m.counter_value(snap, "repro_stage_errors_total",
                               stage="unittest_stage") == 1.0

    def test_trace_file_records_one_line_per_span(self, obs_on, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.set_trace_file(str(trace))
        with span("traced", tag="t1"):
            pass
        with pytest.raises(ValueError):
            with span("traced_err"):
                raise ValueError("x")
        obs.set_trace_file(None)
        assert "REPRO_OBS_TRACE" not in os.environ
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert [r["span"] for r in records] == ["traced", "traced_err"]
        assert records[0]["ok"] is True
        assert records[0]["labels"] == {"tag": "t1"}
        assert records[1]["ok"] is False


# ----------------------------------------------------------------------
# logging (satellite: one logging setup for CLI and fleet)
# ----------------------------------------------------------------------

class TestLogging:
    def test_resolve_level(self):
        assert resolve_level(None) == logging.WARNING
        assert resolve_level(None, verbose=1) == logging.INFO
        assert resolve_level(None, verbose=2) == logging.DEBUG
        assert resolve_level("ERROR") == logging.ERROR
        assert resolve_level("info", verbose=2) == logging.INFO  # flag wins
        assert resolve_level(logging.DEBUG) == logging.DEBUG
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("loud")

    def test_setup_is_idempotent_and_formats_context(self):
        stream = io.StringIO()
        logger = obs.logging_setup("info", stream=stream)
        obs.logging_setup("info", stream=stream)  # again: no stacking
        tagged = [h for h in logger.handlers
                  if getattr(h, "_repro_obs_handler", False)]
        assert len(tagged) == 1
        ctx = log_context  # tokens restored by fresh defaults below
        ctx(campaign="cDEAD", worker="w7")
        logging.getLogger("repro.test_obs").info("hello %s", "there")
        line = stream.getvalue().strip()
        assert "[cDEAD/w7] hello there" in line
        assert "INFO" in line
        ctx(campaign="-", worker="-")
        assert "%(campaign)s/%(worker)s" in LOG_FORMAT


# ----------------------------------------------------------------------
# the hard gate: telemetry is strictly out-of-band
# ----------------------------------------------------------------------

class TestByteIdentity:
    def test_pinned_identities_unmoved_by_telemetry(self, obs_on):
        cfg = CampaignConfig()
        assert campaign_key(cfg) == PINNED_DEFAULT_KEY
        digest = hashlib.sha256(campaign_to_json(cfg).encode()).hexdigest()
        assert digest == PINNED_DEFAULT_JSON_SHA

    def test_campaign_result_identical_with_telemetry_on(self, fleet_cfg):
        baseline = CampaignSession(fleet_cfg, engine="serial").run()
        obs.reset()
        obs.enable(True)
        try:
            instrumented = CampaignSession(fleet_cfg, engine="serial").run()
            snap = m.registry_snapshot()
        finally:
            obs.enable(False)
            obs.reset()
            os.environ.pop("REPRO_OBS", None)
        assert ordered_key(instrumented) == ordered_key(baseline)
        assert instrumented.race_filtered == baseline.race_filtered
        # and the run actually recorded itself while changing nothing
        assert m.total_counter(snap, "repro_units_total") == \
            fleet_cfg.n_programs
        assert m.total_counter(snap, "repro_tests_total") == \
            len(instrumented.verdicts)


# ----------------------------------------------------------------------
# status schema (satellite: versioned supervisor status JSON)
# ----------------------------------------------------------------------

class TestStatusSchema:
    def test_schema_constant_is_two(self):
        assert STATUS_SCHEMA == 2

    def test_status_file_roundtrips_with_schema_and_telemetry(
            self, fleet_cfg, tmp_path, capsys):
        from repro.cli import main

        obs.reset()
        obs.enable(True)
        try:
            status_path = tmp_path / "status.json"
            run_chaos_campaign(fleet_cfg, ChaosPlan(),
                               tmp_path / "s.db", workers=2,
                               timeout=180, status_path=status_path)
            doc = json.loads(status_path.read_text())
        finally:
            obs.enable(False)
            obs.reset()
            os.environ.pop("REPRO_OBS", None)
        assert doc["schema"] == STATUS_SCHEMA
        assert doc["state"] == "finished"
        assert "telemetry" in doc
        assert doc["telemetry"]["units_ok"] == fleet_cfg.n_programs

        # the CLI renders a current-schema file without complaint...
        assert main(["fleet", "status",
                     "--status-file", str(status_path)]) == 0
        out, err = capsys.readouterr()
        assert "lowering" in out and "stage" in out
        assert "newer than this tool" not in err
        # ...and tolerates (while reporting) a newer schema
        doc["schema"] = STATUS_SCHEMA + 41
        doc["from_the_future"] = {"unknown": True}
        status_path.write_text(json.dumps(doc))
        assert main(["fleet", "status",
                     "--status-file", str(status_path)]) == 0
        out, err = capsys.readouterr()
        assert f"status schema v{STATUS_SCHEMA + 41} is newer" in err
        assert "finished" in out


# ----------------------------------------------------------------------
# the acceptance capstone: fleet-wide aggregation reconciles exactly
# ----------------------------------------------------------------------

class TestFleetReconciliation:
    def test_multiworker_fleet_counts_reconcile_with_result(self, fleet_cfg):
        """Real worker processes report snapshots over the queue; the
        merged registry must account for every unit and test exactly."""
        obs.reset()
        obs.enable(True)
        try:
            result = CampaignSession(fleet_cfg, engine="fleet",
                                     jobs=2).run()
            snap = m.registry_snapshot()
        finally:
            obs.enable(False)
            obs.reset()
            os.environ.pop("REPRO_OBS", None)
        assert m.total_counter(snap, "repro_units_total") == \
            fleet_cfg.n_programs
        assert m.total_counter(snap, "repro_tests_total") == \
            len(result.verdicts)
        assert m.total_counter(snap, "repro_queue_completions_total") == \
            fleet_cfg.n_programs
        assert m.total_counter(snap, "repro_queue_leases_total") >= \
            fleet_cfg.n_programs

    def test_chaos_run_telemetry_reconciles_with_store(self, fleet_cfg,
                                                       tmp_path):
        """Under a seeded chaos plan (every mutator duplicated, one store
        refusal) the persisted fleet-wide snapshot must reconcile with
        the result store row for row — duplicates absorbed, the refused
        write retried, nothing double-counted."""
        plan = ChaosPlan(seed=7, duplicate_rate=1.0, store_fail_calls=(0,))
        obs.reset()
        obs.enable(True)
        try:
            result, report = run_chaos_campaign(
                fleet_cfg, plan, tmp_path / "chaos.db", workers=2,
                timeout=180)
        finally:
            obs.enable(False)
            obs.reset()
            os.environ.pop("REPRO_OBS", None)
        assert report["store_faults"] == {"fail": 1}
        with ResultStore(tmp_path / "chaos.db") as store:
            cid = campaign_key(fleet_cfg)
            snap = store.telemetry(cid)
            assert snap is not None
            completed = store.completed_indices(cid)
            # queue completions are first-write-wins: every duplicated
            # delivery collapsed to exactly one completion per unit
            assert m.total_counter(
                snap, "repro_queue_completions_total") == len(completed)
            assert m.total_counter(snap, "repro_units_total") == \
                len(completed) == fleet_cfg.n_programs
            assert m.total_counter(snap, "repro_tests_total") == \
                store.verdict_count(cid) == len(result.verdicts)
            # the duplicates and the refused write were observed, not lost
            assert m.total_counter(
                snap, "repro_queue_duplicate_completions_total") >= 1
            assert m.total_counter(
                snap, "repro_store_write_failures_total") == 1
            assert m.total_counter(
                snap, "repro_store_writes_total") == len(completed)
            assert m.counter_value(
                snap, "repro_store_writes_total", result="fresh") == \
                len(completed)
