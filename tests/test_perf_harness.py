"""Tests for the throughput benchmark's regression-gate logic.

The benchmark itself (``benchmarks/bench_throughput.py``) is exercised
end-to-end by CI's benchmark smoke job on a quick grid; these tests pin
the *gate semantics* — host normalization, the 20% threshold, and grid
mismatches — without paying for a campaign.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import bench_throughput as bt  # noqa: E402


def _profile(tests_per_s: float, calibration_s: float,
             n_programs: int = 10) -> dict:
    return {
        "grid": {"n_programs": n_programs, "inputs_per_program": 3,
                 "compilers": ["gcc", "clang", "intel"],
                 "total_runs": n_programs * 9, "seed": bt.SEED},
        "calibration_s": calibration_s,
        "stages": {},
        "end_to_end": {
            "wall_s": 1.0,
            "tests_per_s": tests_per_s,
            "normalized": round(tests_per_s * calibration_s, 4),
        },
        "native_values": True,
    }


class TestRegressionGate:
    def test_equal_throughput_passes(self):
        ok, msg = bt.check_regression(_profile(10.0, 0.1),
                                      _profile(10.0, 0.1))
        assert ok, msg

    def test_small_dip_within_threshold_passes(self):
        ok, _ = bt.check_regression(_profile(8.5, 0.1), _profile(10.0, 0.1))
        assert ok  # -15% < 20% threshold

    def test_large_regression_fails(self):
        ok, msg = bt.check_regression(_profile(7.0, 0.1),
                                      _profile(10.0, 0.1))
        assert not ok
        assert "floor" in msg

    def test_slower_host_is_normalized_away(self):
        # half the absolute throughput on a host whose calibration spin
        # takes twice as long: not a regression
        ok, _ = bt.check_regression(_profile(5.0, 0.2), _profile(10.0, 0.1))
        assert ok

    def test_hot_path_regression_on_slow_host_still_fails(self):
        # 2x-slower host AND a real 40% hot-path regression on top
        ok, _ = bt.check_regression(_profile(3.0, 0.2), _profile(10.0, 0.1))
        assert not ok

    def test_grid_mismatch_rejected(self):
        ok, msg = bt.check_regression(_profile(10.0, 0.1),
                                      _profile(10.0, 0.1, n_programs=50))
        assert not ok
        assert "grid mismatch" in msg

    def test_threshold_is_twenty_percent(self):
        base = _profile(10.0, 0.1)
        assert bt.check_regression(_profile(8.01, 0.1), base)[0]
        assert not bt.check_regression(_profile(7.99, 0.1), base)[0]

    def test_bad_baseline_rejected(self):
        bad = _profile(10.0, 0.1)
        bad["end_to_end"]["normalized"] = 0.0
        ok, msg = bt.check_regression(_profile(10.0, 0.1), bad)
        assert not ok


class TestCalibration:
    def test_calibration_is_positive_and_repeatable_order(self):
        a, b = bt.calibrate(), bt.calibrate()
        assert a > 0 and b > 0
        # same host moments apart: within a loose factor (catches units
        # bugs, not scheduler noise)
        assert 0.2 < a / b < 5.0


class TestCheckedInBaseline:
    """The repo-root BENCH_throughput.json must stay loadable and sane —
    it is the gate's reference point."""

    def test_baseline_document_shape(self):
        doc = json.loads((BENCH_DIR.parent / "BENCH_throughput.json")
                         .read_text())
        assert doc["bench"] == "throughput"
        for profile in ("full", "quick"):
            entry = doc[profile]
            assert entry["end_to_end"]["tests_per_s"] > 0
            assert entry["end_to_end"]["normalized"] > 0
            assert entry["calibration_s"] > 0
            stages = entry["stages"]
            for key in ("generate_s", "lower_cold_s", "lower_warm_s",
                        "execute_s", "verdict_s"):
                assert key in stages
            # the warm lowering pass must be cheaper than the cold one
            # (that is the KernelCache earning its keep)
            assert stages["lower_warm_s"] <= stages["lower_cold_s"]

    def test_full_profile_holds_the_issue_target(self):
        """ISSUE 3 acceptance: >= 3x the PR-1 serial baseline of 3.29
        tests/s on the reference grid, recorded in the checked-in file."""
        doc = json.loads((BENCH_DIR.parent / "BENCH_throughput.json")
                         .read_text())
        assert doc["full"]["grid"]["n_programs"] == 50
        assert doc["full"]["end_to_end"]["tests_per_s"] >= 3 * 3.29
