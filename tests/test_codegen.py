"""Tests for the C++ emitter: precedence, literals, pragmas, main()."""

import re

import pytest

from repro.codegen.cpp import CppEmitter, fp_literal
from repro.codegen.emit_main import emit_translation_unit, source_fingerprint
from repro.codegen.writer import SourceWriter
from repro.core.nodes import (
    ArrayRef,
    BinOp,
    FPNumeral,
    IntNumeral,
    ModIdx,
    Paren,
    Program,
    ThreadIdx,
    UnaryOp,
    VarRef,
    Block,
    Assignment,
)
from repro.core.types import (
    AssignOpKind,
    BinOpKind,
    FPType,
    Variable,
    VarKind,
)


def _emitter(fp=FPType.DOUBLE) -> CppEmitter:
    comp = Variable("comp", fp, VarKind.COMP)
    program = Program(name="t", seed=0, fp_type=fp, comp=comp, params=[comp],
                      body=Block([Assignment(VarRef(comp),
                                             AssignOpKind.ASSIGN,
                                             FPNumeral(0.0))]))
    return CppEmitter(program)


def _v(name="x", fp=FPType.DOUBLE):
    return Variable(name, fp, VarKind.PARAM)


class TestExpressionPrecedence:
    def test_mul_of_sum_is_parenthesized(self):
        e = BinOp(BinOpKind.MUL,
                  BinOp(BinOpKind.ADD, VarRef(_v("a")), VarRef(_v("b"))),
                  VarRef(_v("c")))
        assert _emitter().expr(e) == "(a + b) * c"

    def test_right_sub_keeps_grouping(self):
        # a - (b - c) must not print as a - b - c
        e = BinOp(BinOpKind.SUB, VarRef(_v("a")),
                  BinOp(BinOpKind.SUB, VarRef(_v("b")), VarRef(_v("c"))))
        assert _emitter().expr(e) == "a - (b - c)"

    def test_right_div_keeps_grouping(self):
        e = BinOp(BinOpKind.DIV, VarRef(_v("a")),
                  BinOp(BinOpKind.DIV, VarRef(_v("b")), VarRef(_v("c"))))
        assert _emitter().expr(e) == "a / (b / c)"

    def test_left_assoc_chain_needs_no_parens(self):
        e = BinOp(BinOpKind.ADD,
                  BinOp(BinOpKind.ADD, VarRef(_v("a")), VarRef(_v("b"))),
                  VarRef(_v("c")))
        assert _emitter().expr(e) == "a + b + c"

    def test_unary_rhs_parenthesized(self):
        e = BinOp(BinOpKind.SUB, VarRef(_v("a")),
                  UnaryOp("-", VarRef(_v("b"))))
        assert _emitter().expr(e) == "a - (-b)"

    def test_int_identifiers_are_cast(self):
        lv = Variable("i_1", None, VarKind.LOOP)
        assert _emitter().expr(VarRef(lv)) == "(double)i_1"
        assert _emitter(FPType.FLOAT).expr(VarRef(lv)) == "(float)i_1"

    def test_thread_index(self):
        arr = Variable("a", FPType.DOUBLE, VarKind.PARAM, is_array=True,
                       array_size=8)
        assert _emitter().expr(ArrayRef(arr, ThreadIdx())) == \
            "a[omp_get_thread_num()]"

    def test_mod_index(self):
        arr = Variable("a", FPType.DOUBLE, VarKind.PARAM, is_array=True,
                       array_size=1000)
        lv = Variable("i_1", None, VarKind.LOOP)
        assert _emitter().expr(ArrayRef(arr, ModIdx(VarRef(lv), 1000))) == \
            "a[i_1 % 1000]"


class TestLiterals:
    def test_double_literal_plain(self):
        assert fp_literal(1.5, FPType.DOUBLE) == "1.5"

    def test_float_literal_suffixed(self):
        assert fp_literal(1.5, FPType.FLOAT) == "1.5f"

    def test_integral_value_gets_decimal_point(self):
        assert fp_literal(3.0, FPType.DOUBLE) == "3.0"

    def test_exponent_form_preserved(self):
        lit = fp_literal(1.23e-10, FPType.DOUBLE)
        assert "e" in lit and float(lit) == 1.23e-10

    def test_nan_and_inf_rejected(self):
        with pytest.raises(ValueError):
            fp_literal(float("nan"), FPType.DOUBLE)
        with pytest.raises(ValueError):
            fp_literal(float("inf"), FPType.DOUBLE)


class TestTranslationUnit:
    def test_balanced_braces(self, program_stream):
        for p in program_stream:
            src = emit_translation_unit(p)
            assert src.count("{") == src.count("}")

    def test_headers_present(self, program_stream):
        src = emit_translation_unit(program_stream[0])
        for h in ("<cstdio>", "<cmath>", "<chrono>", "<omp.h>"):
            assert h in src

    def test_kernel_prints_comp_and_time(self, program_stream):
        src = emit_translation_unit(program_stream[0])
        assert 'printf("comp=%.17g\\n", (double)comp);' in src
        assert "time_us" in src
        assert "microseconds" in src

    def test_main_parses_every_param(self, program_stream):
        for p in program_stream:
            src = emit_translation_unit(p)
            assert f"argc != {len(p.params) + 1}" in src
            for param in p.params:
                if param.is_array:
                    assert f"malloc(sizeof" in src
                    assert f"free({param.name});" in src

    def test_pragmas_match_grammar_shape(self, program_stream):
        # every parallel directive is either the plain region head or the
        # combined parallel-for head, always with default(shared)
        pat = re.compile(
            r"#pragma omp parallel (?:for )?default\(shared\)")
        for p in program_stream:
            src = emit_translation_unit(p)
            n_parallel = src.count("#pragma omp parallel")
            assert len(pat.findall(src)) == n_parallel

    def test_num_threads_clause_emitted(self, program_stream):
        for p in program_stream:
            src = emit_translation_unit(p)
            if "#pragma omp parallel" in src:
                assert f"num_threads({p.num_threads})" in src

    def test_fingerprint_stable_and_content_sensitive(self, program_stream):
        a, b = program_stream[0], program_stream[1]
        assert source_fingerprint(a) == source_fingerprint(a)
        assert source_fingerprint(a) != source_fingerprint(b)


class TestSourceWriter:
    def test_unbalanced_close_raises(self):
        w = SourceWriter()
        with pytest.raises(ValueError):
            w.close()

    def test_unbalanced_text_raises(self):
        w = SourceWriter()
        w.open("if (x)")
        with pytest.raises(ValueError):
            w.text()

    def test_indentation(self):
        w = SourceWriter()
        w.open("int main()")
        w.line("return 0;")
        w.close()
        assert w.text() == "int main() {\n  return 0;\n}\n"
