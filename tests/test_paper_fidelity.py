"""Paper-fidelity regressions: the emitted artifacts match the paper's
listings and configuration, line for line where the paper shows source.
"""

import re

from repro.codegen import emit_translation_unit
from repro.config import CampaignConfig, GeneratorConfig
from repro.core.generator import ProgramGenerator
from repro.core.grammar import GRAMMAR
from repro.vendors import CLANG, GCC, INTEL


class TestListing2Fidelity:
    def test_openmp_head_production_text(self):
        head = GRAMMAR["openmp-head"].alternatives[0]
        assert "#pragma omp parallel default(shared) private(" in head
        assert "firstprivate(" in head
        assert 'reduction(" <reduction-op> ": comp)' in head

    def test_fp_types_match(self):
        assert GRAMMAR["fp-type"].alternatives == ('"float"', '"double"')

    def test_operators_match_listing2_caption(self):
        assert set(GRAMMAR["assign-op"].alternatives) == \
            {'"="', '"+="', '"-="', '"*="', '"/="'}
        assert set(GRAMMAR["op"].alternatives) == {'"+"', '"-"', '"*"', '"/"'}
        assert set(GRAMMAR["bool-op"].alternatives) == \
            {'"<"', '">"', '"=="', '"!="', '">="', '"<="'}
        # the paper's {+, *} plus the directive-diversity expansion's
        # OpenMP 3.1 min/max operators
        assert {'"+"', '"*"'} <= set(GRAMMAR["reduction-op"].alternatives)
        assert set(GRAMMAR["reduction-op"].alternatives) == \
            {'"+"', '"*"', '"min"', '"max"'}


class TestListing1Shape:
    """Listing 1 shows the signature shapes the generator must produce."""

    def _sources(self, n=25):
        gen = ProgramGenerator(GeneratorConfig(), seed=20240915)
        return [emit_translation_unit(gen.generate(i)) for i in range(n)]

    def test_kernel_signature_shape(self):
        src = self._sources(1)[0]
        assert re.search(r"void compute\((float|double)", src)

    def test_pragma_shapes_match_listing1(self):
        srcs = self._sources()
        joined = "\n".join(srcs)
        # "#pragma omp parallel default(shared) private(...) firstprivate(...)
        #  ... num_threads(32)" — Listing 1 line 7 / Section V-A
        assert re.search(
            r"#pragma omp parallel default\(shared\) private\([^)]*\) "
            r"firstprivate\([^)]*\).*num_threads\(32\)", joined)
        assert "#pragma omp for" in joined
        assert "#pragma omp critical" in joined

    def test_thread_id_write_shape(self):
        # "var_16[omp_get_thread_num()] = ..." — Fig. 4 line 7
        joined = "\n".join(self._sources())
        assert re.search(r"var_\d+\[omp_get_thread_num\(\)\]\s*[-+*/]?=",
                         joined)

    def test_mod_index_shape(self):
        # "comp[i % 1000] += ..." style bounded indexing — Listing 1 line 5
        joined = "\n".join(self._sources())
        assert re.search(r"var_\d+\[i_\d+ % 1000\]", joined)

    def test_reduction_clause_shape(self):
        joined = "\n".join(self._sources(40))
        assert re.search(r"reduction\([+*] : comp\)", joined)


class TestSectionVAConfig:
    def test_campaign_defaults_are_the_paper_grid(self):
        cfg = CampaignConfig()
        assert cfg.n_programs == 200
        assert cfg.inputs_per_program == 3
        assert cfg.total_runs == 1800
        assert cfg.outliers.alpha == 0.2 and cfg.outliers.beta == 1.5
        assert cfg.outliers.min_time_us == 1000.0
        assert cfg.generator.num_threads == 32
        assert cfg.opt_level == "-O3"

    def test_vendor_versions_table(self):
        # Section V-A: versions released within months of each other
        assert INTEL.compiler_binary == "icpx"
        assert CLANG.compiler_binary == "clang++"
        assert GCC.compiler_binary == "g++"

    def test_machine_matches_cluster_node(self):
        from repro.config import MachineConfig

        m = MachineConfig()
        assert m.cores == 36 and m.ghz == 2.1


class TestFeatureFrequencyReport:
    def test_render(self):
        from repro.core.features import extract_features
        from repro.harness.report import render_feature_frequencies

        gen = ProgramGenerator(GeneratorConfig(max_total_iterations=3000,
                                               loop_trip_max=40,
                                               num_threads=8), seed=3)
        feats = {f"p{i}": extract_features(gen.generate(i)) for i in range(6)}
        text = render_feature_frequencies(feats)
        assert "parallel regions" in text
        assert "6 generated programs" in text
