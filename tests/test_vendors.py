"""Tests for vendor models, toolchain, and Binary artifacts."""

import pytest

from repro.errors import CompilationError
from repro.vendors import (
    CLANG,
    GCC,
    INTEL,
    VENDORS,
    compile_all,
    compile_binary,
    get_vendor,
)


class TestVendorCatalog:
    def test_three_paper_implementations(self):
        assert set(VENDORS) == {"gcc", "clang", "intel"}

    def test_versions_match_paper_table(self):
        assert GCC.version == "13.1" and GCC.release == "04/2023"
        assert CLANG.version == "16.0.0" and CLANG.release == "03/2023"
        assert INTEL.version == "2023.2.0" and INTEL.release == "02/2023"

    def test_get_vendor_unknown_raises(self):
        with pytest.raises(CompilationError):
            get_vendor("msvc")

    def test_kmp_lineage_locks_are_close(self):
        # Intel and Clang must usually be mutually "comparable" (Eq. 1)
        # on lock-dominated tests: their contention costs sit within 20%
        ic = INTEL.runtime.lock_base_cycles \
            + 31 * INTEL.runtime.lock_contention_cycles
        cc = CLANG.runtime.lock_base_cycles \
            + 31 * CLANG.runtime.lock_contention_cycles
        assert abs(ic - cc) / min(ic, cc) <= 0.2

    def test_gcc_lock_is_much_cheaper(self):
        gc = GCC.runtime.lock_base_cycles \
            + 31 * GCC.runtime.lock_contention_cycles
        ic = INTEL.runtime.lock_base_cycles \
            + 31 * INTEL.runtime.lock_contention_cycles
        assert ic / gc >= 1.5  # enough to cross the beta threshold

    def test_clang_thrash_dwarfs_team_reuse(self):
        assert CLANG.runtime.spawn_thrash_cycles \
            >= 5 * GCC.runtime.spawn_warm_cycles

    def test_only_gcc_contracts_aggressively(self):
        assert GCC.traits.fma_mode == "aggressive"
        assert CLANG.traits.fma_mode == "basic"
        assert INTEL.traits.fma_mode == "basic"

    def test_only_intel_flushes_subnormals(self):
        assert INTEL.traits.flush_subnormals
        assert not GCC.traits.flush_subnormals
        assert not CLANG.traits.flush_subnormals

    def test_clang_has_no_injected_faults(self):
        f = CLANG.faults
        assert f.crash_rate == f.hang_rate == f.slow_rate == f.fast_rate == 0.0


class TestFaultDeterminism:
    def test_decisions_are_stable(self):
        fp = "deadbeef" * 8
        assert GCC.decides_crash(fp) == GCC.decides_crash(fp)
        assert INTEL.decides_hang(fp) == INTEL.decides_hang(fp)

    def test_decisions_differ_across_channels(self):
        # crash and slow channels are independent hash draws
        fps = [f"fp{i}" for i in range(2000)]
        crash = {f for f in fps if GCC.decides_crash(f)}
        slow = {f for f in fps if GCC.decides_slow(f)}
        assert crash != slow

    def test_rates_are_approximately_respected(self):
        fps = [f"program-{i}" for i in range(20000)]
        crash_rate = sum(GCC.decides_crash(f) for f in fps) / len(fps)
        assert GCC.faults.crash_rate * 0.5 < crash_rate \
            < GCC.faults.crash_rate * 1.6


class TestCompileBinary:
    def test_binaries_share_source_and_fingerprint(self, program_stream):
        p = program_stream[0]
        bins = compile_all(p, ("gcc", "clang", "intel"))
        assert len({b.cpp_source for b in bins}) == 1
        assert len({b.fingerprint for b in bins}) == 1

    def test_lowered_python_differs_across_vendors(self, program_stream):
        p = program_stream[0]
        gcc_src = compile_binary(p, "gcc").kernel.source
        intel_src = compile_binary(p, "intel").kernel.source
        assert gcc_src != intel_src  # cost constants and FTZ wrappers differ

    def test_bad_opt_level_rejected(self, program_stream):
        with pytest.raises(CompilationError):
            compile_binary(program_stream[0], "gcc", "-O9")

    def test_binary_name_and_entry(self, program_stream):
        b = compile_binary(program_stream[0], "clang")
        assert b.name.endswith(".clang")
        assert callable(b.entry)

    def test_opt_level_changes_cost_not_semantics(self, program_stream,
                                                  input_gen, machine):
        from repro.driver import run_binary

        p = program_stream[2]
        inp = input_gen.generate(p, 0)
        # clang has no fma at any level, so values agree while time shifts
        fast = run_binary(compile_binary(p, "clang", "-O3"), inp, machine)
        slow = run_binary(compile_binary(p, "clang", "-O0"), inp, machine)
        import math

        assert (fast.comp == slow.comp
                or (math.isnan(fast.comp) and math.isnan(slow.comp)))
        assert slow.time_us > fast.time_us * 2

    def test_fingerprint_is_source_hash(self, program_stream):
        import hashlib

        b = compile_binary(program_stream[0], "gcc")
        assert b.fingerprint == hashlib.sha256(
            b.cpp_source.encode()).hexdigest()
