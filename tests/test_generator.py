"""Unit tests for the top-level program generator."""

from repro.config import GeneratorConfig
from repro.core.features import extract_features
from repro.core.generator import ProgramGenerator
from repro.core.nodes import (
    Assignment,
    OmpParallel,
    Program,
    VarRef,
    walk,
)
from repro.core.types import Sharing, VarKind


class TestSignature:
    def test_comp_is_first_param(self, program_stream):
        for p in program_stream:
            assert p.params[0] is p.comp
            assert p.comp.kind is VarKind.COMP

    def test_param_counts_within_config(self, fast_gen_cfg, program_stream):
        cfg = fast_gen_cfg
        for p in program_stream:
            n_scalar = len(p.fp_scalar_params) - 0  # comp filtered below
            scalars = [v for v in p.fp_scalar_params if v.kind is VarKind.PARAM]
            assert cfg.min_fp_scalar_params <= len(scalars) \
                <= cfg.max_fp_scalar_params
            assert cfg.min_array_params <= len(p.array_params) \
                <= cfg.max_array_params
            assert cfg.min_int_params <= len(p.int_params) <= cfg.max_int_params

    def test_array_sizes_match_config(self, fast_gen_cfg, program_stream):
        for p in program_stream:
            for a in p.array_params:
                assert a.array_size == fast_gen_cfg.array_size

    def test_unique_param_names(self, program_stream):
        for p in program_stream:
            names = [v.name for v in p.params]
            assert len(names) == len(set(names))


class TestStreamProperties:
    def test_stream_yields_distinct_programs(self, fast_gen_cfg):
        gen = ProgramGenerator(fast_gen_cfg, seed=5)
        programs = list(gen.stream(5))
        names = {p.name for p in programs}
        assert len(names) == 5

    def test_index_addressable(self, fast_gen_cfg):
        gen = ProgramGenerator(fast_gen_cfg, seed=5)
        from repro.codegen.emit_main import emit_translation_unit

        direct = emit_translation_unit(gen.generate(3))
        streamed = emit_translation_unit(list(gen.stream(4))[3])
        assert direct == streamed

    def test_most_programs_have_openmp(self, paper_gen_cfg):
        gen = ProgramGenerator(paper_gen_cfg, seed=31)
        with_region = 0
        for i in range(20):
            p = gen.generate(i)
            if any(isinstance(n, OmpParallel) for n in walk(p)):
                with_region += 1
        assert with_region >= 16  # OpenMP tests are the point of the fuzzer

    def test_closing_accumulation_writes_comp(self, program_stream):
        for p in program_stream:
            last = p.body.stmts[-1]
            assert isinstance(last, Assignment)
            assert isinstance(last.target, VarRef)
            assert last.target.var is p.comp


class TestDataSharing:
    def test_comp_never_in_private_clauses(self, program_stream):
        for p in program_stream:
            for n in walk(p):
                if isinstance(n, OmpParallel):
                    listed = n.clauses.private + n.clauses.firstprivate
                    assert all(v.kind is not VarKind.COMP for v in listed)

    def test_reduction_regions_marked(self, paper_gen_cfg):
        gen = ProgramGenerator(paper_gen_cfg, seed=99)
        seen_reduction = False
        for i in range(25):
            p = gen.generate(i)
            for n in walk(p):
                if isinstance(n, OmpParallel) and n.clauses.reduction:
                    seen_reduction = True
        assert seen_reduction

    def test_feature_extraction_consistent(self, program_stream):
        for p in program_stream:
            f = extract_features(p)
            n_regions = sum(isinstance(n, OmpParallel) for n in walk(p))
            assert f.n_parallel_regions == n_regions
