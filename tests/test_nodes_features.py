"""Tests for AST utilities (walk, referenced_variables) and feature
extraction."""

from repro.core.features import extract_features
from repro.core.nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Block,
    BoolExpr,
    DeclAssign,
    ForLoop,
    FPNumeral,
    IfBlock,
    IntNumeral,
    OmpCritical,
    OmpParallel,
    Program,
    ThreadIdx,
    VarRef,
    iter_statements,
    referenced_variables,
    walk,
)
from repro.core.types import (
    AssignOpKind,
    BinOpKind,
    BoolOpKind,
    FPType,
    OmpClauses,
    ReductionOp,
    Variable,
    VarKind,
)


def _v(name, kind=VarKind.PARAM, array=False):
    return Variable(name, FPType.DOUBLE, kind, is_array=array,
                    array_size=16 if array else 0)


class TestWalk:
    def test_depth_first_left_to_right(self):
        a, b, c = (_v(n) for n in "abc")
        e = BinOp(BinOpKind.ADD,
                  BinOp(BinOpKind.MUL, VarRef(a), VarRef(b)), VarRef(c))
        names = [n.var.name for n in walk(e) if isinstance(n, VarRef)]
        assert names == ["a", "b", "c"]

    def test_walk_program_yields_body_contents(self, program_stream):
        p = program_stream[0]
        nodes = list(walk(p))
        assert nodes[0] is p.body

    def test_iter_statements_counts(self):
        x = _v("x")
        s1 = Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(1.0))
        s2 = IfBlock(BoolExpr(VarRef(x), BoolOpKind.LT, FPNumeral(0.0)),
                     Block([Assignment(VarRef(x), AssignOpKind.ASSIGN,
                                       FPNumeral(2.0))]))
        stmts = list(iter_statements(Block([s1, s2])))
        # s1, s2, and the assignment inside s2
        assert len(stmts) == 3

    def test_referenced_variables_first_use_order(self):
        a, b = _v("a"), _v("b")
        arr = _v("arr", array=True)
        block = Block([
            Assignment(VarRef(b), AssignOpKind.ASSIGN, VarRef(a)),
            Assignment(ArrayRef(arr, IntNumeral(0)), AssignOpKind.ASSIGN,
                       VarRef(b)),
        ])
        names = [v.name for v in referenced_variables(block)]
        assert names == ["b", "a", "arr"]

    def test_referenced_variables_dedupes_by_identity(self):
        a = _v("a")
        block = Block([
            Assignment(VarRef(a), AssignOpKind.ASSIGN, VarRef(a))])
        assert len(referenced_variables(block)) == 1


class TestFeatureExtraction:
    def _program_with_region(self, *, reduction=None, serial_loop_above=False,
                             critical=False, trip=10, threads=4):
        comp = _v("comp", VarKind.COMP)
        x = _v("x")
        lv = Variable("i_1", None, VarKind.LOOP)
        inner = [Assignment(VarRef(x), AssignOpKind.ADD_ASSIGN,
                            FPNumeral(1.0))]
        if critical:
            inner.append(OmpCritical(Block([Assignment(
                VarRef(comp), AssignOpKind.ADD_ASSIGN, FPNumeral(1.0))])))
        loop = ForLoop(lv, IntNumeral(trip), Block(inner), omp_for=True)
        clauses = OmpClauses(num_threads=threads, reduction=reduction,
                             private=[x])
        region = OmpParallel(clauses, Block([
            Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0)), loop]))
        if serial_loop_above:
            outer_lv = Variable("i_0", None, VarKind.LOOP)
            body = Block([ForLoop(outer_lv, IntNumeral(7), Block([region]))])
        else:
            body = Block([region])
        return Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                       params=[comp, x], body=body, num_threads=threads)

    def test_region_counts(self):
        f = extract_features(self._program_with_region())
        assert f.n_parallel_regions == 1
        assert f.n_omp_for == 1
        assert f.parallel_in_serial_loop == 0
        assert f.est_region_entries == 1

    def test_parallel_in_serial_loop_detected(self):
        f = extract_features(self._program_with_region(serial_loop_above=True))
        assert f.parallel_in_serial_loop == 1
        assert f.est_region_entries == 7

    def test_reduction_counted(self):
        f = extract_features(self._program_with_region(
            reduction=ReductionOp.SUM))
        assert f.n_reductions == 1

    def test_critical_in_omp_for_acquisitions(self):
        f = extract_features(self._program_with_region(critical=True,
                                                       trip=10))
        assert f.critical_in_omp_for == 1
        # omp-for splits iterations: total acquisitions = trip count
        assert f.est_critical_acquires == 10

    def test_critical_in_serial_region_loop_multiplies_by_threads(self):
        comp = _v("comp", VarKind.COMP)
        x = _v("x")
        lv = Variable("i_1", None, VarKind.LOOP)
        crit = OmpCritical(Block([Assignment(VarRef(comp),
                                             AssignOpKind.ADD_ASSIGN,
                                             FPNumeral(1.0))]))
        loop = ForLoop(lv, IntNumeral(10), Block([crit]), omp_for=False)
        region = OmpParallel(OmpClauses(num_threads=4, private=[x]), Block([
            Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0)), loop]))
        p = Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                    params=[comp, x], body=Block([region]), num_threads=4)
        f = extract_features(p)
        # every thread executes all 10 serial iterations
        assert f.est_critical_acquires == 40

    def test_fingerprint_stable_and_distinct(self):
        a = extract_features(self._program_with_region())
        b = extract_features(self._program_with_region(critical=True))
        assert a.fingerprint() == a.fingerprint()
        assert a.fingerprint() != b.fingerprint()

    def test_tid_write_detection(self):
        comp = _v("comp", VarKind.COMP)
        arr = _v("arr", array=True)
        x = _v("x")
        lv = Variable("i_1", None, VarKind.LOOP)
        w = Assignment(ArrayRef(arr, ThreadIdx()), AssignOpKind.ASSIGN,
                       FPNumeral(1.0))
        loop = ForLoop(lv, IntNumeral(4), Block([w]), omp_for=True)
        region = OmpParallel(OmpClauses(num_threads=4, private=[x]), Block([
            Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0)), loop]))
        p = Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                    params=[comp, arr, x], body=Block([region]), num_threads=4)
        assert extract_features(p).writes_tid_arrays

    def test_as_dict_round(self):
        f = extract_features(self._program_with_region())
        d = f.as_dict()
        assert d["n_parallel_regions"] == 1
        assert "est_total_iters" in d
