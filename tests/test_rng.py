"""Tests for the seeded randomness utilities."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rng import Rng, hash_fraction, stable_hash


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = Rng(42), Rng(42)
        assert [a.randint(0, 100) for _ in range(20)] == \
               [b.randint(0, 100) for _ in range(20)]

    def test_different_seeds_differ(self):
        a, b = Rng(1), Rng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != \
               [b.randint(0, 10**9) for _ in range(5)]

    def test_child_streams_independent_of_draw_order(self):
        r1 = Rng(9)
        r1.randint(0, 5)  # perturb the parent
        c1 = r1.child("inputs")
        c2 = Rng(9).child("inputs")
        assert [c1.random() for _ in range(5)] == [c2.random() for _ in range(5)]

    def test_child_tags_distinct(self):
        r = Rng(3)
        assert r.child("a").seed != r.child("b").seed

    def test_randint_bounds(self):
        r = Rng(0)
        vals = [r.randint(3, 7) for _ in range(200)]
        assert min(vals) >= 3 and max(vals) <= 7
        assert set(vals) == {3, 4, 5, 6, 7}

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            Rng(0).randint(5, 4)

    def test_log_randint_bounds_and_bias(self):
        r = Rng(5)
        vals = [r.log_randint(2, 400) for _ in range(2000)]
        assert min(vals) >= 2 and max(vals) <= 400
        # log-uniform: median far below the arithmetic midpoint
        vals.sort()
        assert vals[len(vals) // 2] < 100

    def test_log_randint_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Rng(0).log_randint(0, 5)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            Rng(0).choice([])

    def test_weighted_choice_respects_zero_weight(self):
        r = Rng(1)
        picks = {r.weighted_choice([("a", 1.0), ("b", 0.0)])
                 for _ in range(100)}
        assert picks == {"a"}

    def test_weighted_choice_negative_weight_raises(self):
        with pytest.raises(ValueError):
            Rng(0).weighted_choice([("a", -1.0)])

    def test_weighted_choice_all_zero_raises(self):
        with pytest.raises(ValueError):
            Rng(0).weighted_choice([("a", 0.0)])

    def test_coin_probability(self):
        r = Rng(11)
        heads = sum(r.coin(0.25) for _ in range(4000))
        assert 800 <= heads <= 1200  # ~1000 expected

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_any_seed_works(self, seed):
        r = Rng(seed)
        assert 0.0 <= r.random() < 1.0


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_sensitive_to_each_part(self):
        base = stable_hash("x", "y")
        assert stable_hash("x", "z") != base
        assert stable_hash("z", "y") != base

    def test_part_boundaries_matter(self):
        # "ab"+"c" must hash differently from "a"+"bc"
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_hash_fraction_in_unit_interval(self):
        for i in range(100):
            f = hash_fraction("t", i)
            assert 0.0 <= f < 1.0

    def test_hash_fraction_spreads(self):
        fs = [hash_fraction("spread", i) for i in range(500)]
        assert 0.4 < sum(fs) / len(fs) < 0.6


class TestRngModes:
    """Compat/fast stream derivation (see the repro.rng module docstring).

    Golden values below are **pinned**: compat goldens certify the SHA-256
    derivation still draws the seed reproduction's exact streams; fast
    goldens certify the SplitMix64 derivation is stable across releases.
    """

    # -- compat: the seed reproduction's streams, byte for byte --------
    def test_compat_is_default(self):
        from repro.rng import get_rng_mode
        assert Rng(1).mode == "compat"
        assert get_rng_mode() == "compat"

    def test_compat_child_seed_golden(self):
        assert Rng(20240915).child("program:0").seed == 3440985259716438606

    def test_compat_draw_golden(self):
        r = Rng(42)
        assert [r.randint(0, 10**6) for _ in range(3)] == \
            [670487, 116739, 26225]

    def test_compat_stable_hash_golden(self):
        assert stable_hash("fault", "gcc", "crash", "abc") == \
            17089797366378928928

    # -- fast: a different but equally deterministic space -------------
    def test_fast_child_seed_golden(self):
        r = Rng(20240915, mode="fast")
        assert r.child("program:0").seed == 5153825784578095020

    def test_fast_stable_hash_golden(self):
        assert stable_hash("fault", "gcc", "crash", "abc",
                           mode="fast") == 11051245383135618569
        assert hash_fraction("x", 7, mode="fast") == \
            pytest.approx(0.4136357609230524, abs=0)

    def test_fast_children_inherit_mode_and_diverge_from_compat(self):
        fast_child = Rng(9, mode="fast").child("inputs")
        assert fast_child.mode == "fast"
        assert fast_child.seed != Rng(9).child("inputs").seed

    def test_fast_child_tags_distinct_and_reproducible(self):
        a = Rng(3, mode="fast")
        assert a.child("a").seed != a.child("b").seed
        assert a.child("a").seed == Rng(3, mode="fast").child("a").seed

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="unknown rng mode"):
            Rng(0, mode="quantum")
        with pytest.raises(ValueError, match="unknown rng mode"):
            stable_hash("x", mode="quantum")

    def test_global_mode_switch(self):
        from repro.rng import get_rng_mode, set_rng_mode
        assert get_rng_mode() == "compat"
        try:
            set_rng_mode("fast")
            assert Rng(5).mode == "fast"
        finally:
            set_rng_mode("compat")
        assert Rng(5).mode == "compat"
        with pytest.raises(ValueError):
            set_rng_mode("quantum")


class TestRngModeStreams:
    """The generator-level guarantees of the two modes."""

    #: first four gcc-binary fingerprints of the paper-mix compat stream,
    #: pinned against the seed reproduction (byte-identical programs)
    PAPER_COMPAT_FPS = ["c9b22ab2ce9593eb", "c409d9f38df53e6d",
                        "34c2d1ecdfff5c76", "ef6556d6e9136017"]
    #: same positions under the fast derivation — a different, pinned space
    PAPER_FAST_FPS = ["f4088fec5a87bd52", "bb2baa67cc3ff8d0",
                      "be88a60687acd9ad", "a7bc772f5ba4fda6"]

    @staticmethod
    def _fingerprints(rng_mode: str) -> list[str]:
        import dataclasses

        from repro.config import CampaignConfig
        from repro.core.generator import ProgramGenerator
        from repro.vendors.toolchain import compile_binary

        cfg = CampaignConfig(n_programs=4, directive_mix="paper",
                             seed=20240915)
        gen_cfg = dataclasses.replace(cfg.generator, rng_mode=rng_mode)
        gen = ProgramGenerator(gen_cfg, seed=cfg.seed)
        return [compile_binary(gen.generate(i), "gcc").fingerprint[:16]
                for i in range(4)]

    def test_paper_mix_compat_stream_is_byte_identical_to_seed(self):
        assert self._fingerprints("compat") == self.PAPER_COMPAT_FPS

    def test_paper_mix_fast_stream_pinned(self):
        fps = self._fingerprints("fast")
        assert fps == self.PAPER_FAST_FPS
        assert fps != self.PAPER_COMPAT_FPS

    def test_fast_mode_deterministic_across_process_restart(self):
        import subprocess
        import sys

        code = (
            "import dataclasses\n"
            "from repro.config import CampaignConfig\n"
            "from repro.core.generator import ProgramGenerator\n"
            "from repro.vendors.toolchain import compile_binary\n"
            "cfg = CampaignConfig(n_programs=4, directive_mix='paper',"
            " seed=20240915)\n"
            "gen_cfg = dataclasses.replace(cfg.generator, rng_mode='fast')\n"
            "gen = ProgramGenerator(gen_cfg, seed=cfg.seed)\n"
            "print(' '.join(compile_binary(gen.generate(i), 'gcc')"
            ".fingerprint[:16] for i in range(4)))\n"
        )
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, check=True)
        assert out.stdout.split() == self.PAPER_FAST_FPS

    def test_fault_decisions_ignore_rng_mode(self):
        from repro.rng import set_rng_mode
        from repro.vendors.gcc import GCC

        fp = "deadbeef" * 8
        compat_roll = GCC._roll(fp, "crash")
        try:
            set_rng_mode("fast")
            assert GCC._roll(fp, "crash") == compat_roll
        finally:
            set_rng_mode("compat")
