"""Tests for the seeded randomness utilities."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rng import Rng, hash_fraction, stable_hash


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = Rng(42), Rng(42)
        assert [a.randint(0, 100) for _ in range(20)] == \
               [b.randint(0, 100) for _ in range(20)]

    def test_different_seeds_differ(self):
        a, b = Rng(1), Rng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != \
               [b.randint(0, 10**9) for _ in range(5)]

    def test_child_streams_independent_of_draw_order(self):
        r1 = Rng(9)
        r1.randint(0, 5)  # perturb the parent
        c1 = r1.child("inputs")
        c2 = Rng(9).child("inputs")
        assert [c1.random() for _ in range(5)] == [c2.random() for _ in range(5)]

    def test_child_tags_distinct(self):
        r = Rng(3)
        assert r.child("a").seed != r.child("b").seed

    def test_randint_bounds(self):
        r = Rng(0)
        vals = [r.randint(3, 7) for _ in range(200)]
        assert min(vals) >= 3 and max(vals) <= 7
        assert set(vals) == {3, 4, 5, 6, 7}

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            Rng(0).randint(5, 4)

    def test_log_randint_bounds_and_bias(self):
        r = Rng(5)
        vals = [r.log_randint(2, 400) for _ in range(2000)]
        assert min(vals) >= 2 and max(vals) <= 400
        # log-uniform: median far below the arithmetic midpoint
        vals.sort()
        assert vals[len(vals) // 2] < 100

    def test_log_randint_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Rng(0).log_randint(0, 5)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            Rng(0).choice([])

    def test_weighted_choice_respects_zero_weight(self):
        r = Rng(1)
        picks = {r.weighted_choice([("a", 1.0), ("b", 0.0)])
                 for _ in range(100)}
        assert picks == {"a"}

    def test_weighted_choice_negative_weight_raises(self):
        with pytest.raises(ValueError):
            Rng(0).weighted_choice([("a", -1.0)])

    def test_weighted_choice_all_zero_raises(self):
        with pytest.raises(ValueError):
            Rng(0).weighted_choice([("a", 0.0)])

    def test_coin_probability(self):
        r = Rng(11)
        heads = sum(r.coin(0.25) for _ in range(4000))
        assert 800 <= heads <= 1200  # ~1000 expected

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_any_seed_works(self, seed):
        r = Rng(seed)
        assert 0.0 <= r.random() < 1.0


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_sensitive_to_each_part(self):
        base = stable_hash("x", "y")
        assert stable_hash("x", "z") != base
        assert stable_hash("z", "y") != base

    def test_part_boundaries_matter(self):
        # "ab"+"c" must hash differently from "a"+"bc"
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_hash_fraction_in_unit_interval(self):
        for i in range(100):
            f = hash_fraction("t", i)
            assert 0.0 <= f < 1.0

    def test_hash_fraction_spreads(self):
        fs = [hash_fraction("spread", i) for i in range(500)]
        assert 0.4 < sum(fs) / len(fs) < 0.6
