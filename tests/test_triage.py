"""Triage layer tests: bucketing, bundles, session.triage, engines, CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.buckets import (
    BugBucket,
    bug_signature,
    build_buckets,
    directive_vector,
)
from repro.analysis.outliers import OutlierKind
from repro.backends import (
    FaultInjectedBackend,
    InjectedFault,
    register_fault_backend,
)
from repro.config import CampaignConfig, GeneratorConfig
from repro.core.features import ProgramFeatures
from repro.errors import ConfigError
from repro.harness.session import CampaignSession

#: the injected vendor bug every end-to-end test here revolves around
register_fault_backend("intel", InjectedFault(kind="crash",
                                              trigger="n_atomic"),
                       name="triage-buggy", replace=True)


@pytest.fixture(scope="module")
def triage_cfg() -> CampaignConfig:
    gen = GeneratorConfig(max_total_iterations=1500, loop_trip_max=30,
                          num_threads=8)
    return CampaignConfig(n_programs=10, inputs_per_program=1, seed=4242,
                          generator=gen, directive_mix="sync",
                          compilers=("gcc", "clang", "triage-buggy"))


@pytest.fixture(scope="module")
def triaged_session(triage_cfg):
    session = CampaignSession(triage_cfg)
    session.run()
    report = session.triage()
    return session, report


# ----------------------------------------------------------------------
# fault-injected backends
# ----------------------------------------------------------------------

class TestFaultBackend:
    def test_trigger_validation(self):
        with pytest.raises(ConfigError):
            InjectedFault(kind="crash", trigger="not_a_feature")
        with pytest.raises(ConfigError):
            InjectedFault(kind="meltdown", trigger="n_atomic")
        with pytest.raises(ConfigError):
            InjectedFault(kind="slow", trigger="n_atomic", factor=0.0)

    def test_untriggered_program_runs_clean(self, program_stream, input_gen):
        from repro.backends.registry import get_backend

        backend = get_backend("triage-buggy")
        for program in program_stream:
            from repro.core.features import extract_features

            if extract_features(program).n_atomic:
                continue
            exe = backend.compile(program)
            rec = backend.execute(exe, input_gen.generate(program, 0))
            assert rec.ok
            assert rec.vendor == "triage-buggy"
            return
        pytest.skip("stream has no atomic-free program")

    def test_slow_fault_scales_time(self, program_stream, input_gen):
        from repro.backends.registry import get_backend, unregister_backend

        backend = register_fault_backend(
            "intel", InjectedFault(kind="slow", trigger="n_parallel_regions",
                                   factor=3.0),
            name="triage-slow", replace=True)
        try:
            program = program_stream[0]
            inner = get_backend("intel")
            tin = input_gen.generate(program, 0)
            base = inner.execute(inner.compile(program), tin)
            rec = backend.execute(backend.compile(program), tin)
            from repro.core.features import extract_features

            if extract_features(program).n_parallel_regions and base.ok:
                assert rec.time_us == pytest.approx(base.time_us * 3.0)
        finally:
            unregister_backend("triage-slow")


# ----------------------------------------------------------------------
# signatures and buckets
# ----------------------------------------------------------------------

class TestBuckets:
    def test_directive_vector_presence_only(self):
        f = ProgramFeatures(n_atomic=3, n_parallel_regions=1)
        assert directive_vector(f) == ("parallel", "atomic")
        assert directive_vector(ProgramFeatures()) == ()

    def test_bug_signature_format(self):
        f = ProgramFeatures(n_atomic=1, n_parallel_regions=2, n_omp_for=1)
        sig = bug_signature(OutlierKind.CRASH, "gcc", f)
        assert sig == "crash|gcc|parallel+for+atomic"
        assert bug_signature(OutlierKind.HANG, "x", ProgramFeatures()) \
            == "hang|x|serial"

    def test_build_buckets_groups_and_orders(self):
        entries = [("a|x|p", 1), ("b|y|q", 2), ("a|x|p", 3), ("a|x|p", 4)]
        buckets = build_buckets(entries)
        assert [b.signature for b in buckets] == ["a|x|p", "b|y|q"]
        assert buckets[0].members == [1, 3, 4]
        assert len(buckets[0]) == 3

    def test_exemplar_is_smallest(self):
        entries = [("s|v|c", "big"), ("s|v|c", "sm"), ("s|v|c", "mid")]
        [bucket] = build_buckets(entries, size_of=len)
        assert bucket.exemplar == "sm"

    def test_bucket_signature_parts(self):
        b = BugBucket(signature="crash|gcc|parallel+atomic", members=[1])
        assert b.kind == "crash"
        assert b.vendor == "gcc"
        assert b.vector == "parallel+atomic"


# ----------------------------------------------------------------------
# session triage end-to-end
# ----------------------------------------------------------------------

class TestSessionTriage:
    def test_campaign_produced_injected_outliers(self, triaged_session):
        session, report = triaged_session
        coords = session.outlier_coordinates()
        assert any(vendor == "triage-buggy" and kind == "crash"
                   for _pi, _ii, vendor, kind in coords)
        assert report.n_outliers == len(coords)

    def test_injected_fault_forms_one_bucket(self, triaged_session):
        _session, report = triaged_session
        crash_buckets = [b for b in report.buckets
                         if b.vendor == "triage-buggy" and b.kind == "crash"]
        assert len(crash_buckets) == 1
        bucket = crash_buckets[0]
        ex = bucket.exemplar
        assert ex.result.confirmed
        assert ex.result.reduced_statements < ex.result.original_statements

    def test_report_is_deterministic_and_ordered(self, triaged_session):
        session, report = triaged_session
        keys = [t.sort_key() for t in report.triaged]
        assert keys == sorted(keys)
        again = session.triage()
        assert [t.sort_key() for t in again.triaged] == keys
        assert [b.signature for b in again.buckets] == \
            [b.signature for b in report.buckets]

    def test_unconfirmed_outliers_are_not_bucketed(self, triaged_session):
        # a reduction that could not re-confirm its outlier has no
        # working reproducer: it must be reported but never bucketed
        import dataclasses

        from repro.reduce.triage import assemble_report

        _session, report = triaged_session
        real = report.buckets[0].exemplar
        ghost = dataclasses.replace(
            real, program_index=real.program_index + 1000,
            result=dataclasses.replace(real.result, confirmed=False))
        mixed = assemble_report(list(report.triaged) + [ghost])
        assert mixed.n_outliers == report.n_outliers + 1
        assert mixed.n_confirmed == report.n_confirmed
        assert all(ghost is not m for b in mixed.buckets
                   for m in b.members)
        assert mixed.unconfirmed() == [ghost]
        assert "unconfirmed (not bucketed)" in mixed.render()

    def test_render_mentions_buckets(self, triaged_session):
        _session, report = triaged_session
        text = report.render()
        assert "bug bucket" in text
        assert "exemplar:" in text

    def test_triage_progress_fires(self, triage_cfg):
        session = CampaignSession(triage_cfg)
        session.run()
        calls = []
        session.triage(progress=lambda done, total: calls.append((done,
                                                                  total)))
        n = len(session.outlier_coordinates())
        assert calls == [(i, n) for i in range(1, n + 1)]

    def test_thread_engine_triage_agrees_with_serial(self, triage_cfg,
                                                     triaged_session):
        _session, serial_report = triaged_session
        session = CampaignSession(triage_cfg, engine="thread", jobs=2)
        session.run()
        report = session.triage()
        assert [t.sort_key() for t in report.triaged] == \
            [t.sort_key() for t in serial_report.triaged]
        assert [(b.signature, len(b)) for b in report.buckets] == \
            [(b.signature, len(b)) for b in serial_report.buckets]


# ----------------------------------------------------------------------
# engine map_unordered
# ----------------------------------------------------------------------

class TestMapUnordered:
    @pytest.mark.parametrize("engine_name,jobs", [("serial", None),
                                                  ("thread", 2),
                                                  ("process", 2)])
    def test_engines_agree(self, engine_name, jobs):
        from repro.driver.engine import create_engine

        items = [(i,) for i in range(9)]
        engine = create_engine(engine_name, jobs)
        results = sorted(engine.map_unordered(len, items, chunk_size=2))
        assert results == [1] * 9

    def test_progress_counts_every_item(self):
        from repro.driver.engine import create_engine

        calls = []
        engine = create_engine("thread", 2)
        out = list(engine.map_unordered(
            len, ["ab", "c", "def"],
            progress=lambda d, t: calls.append((d, t))))
        assert sorted(out) == [1, 2, 3]
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_empty_and_bad_chunk(self):
        from repro.driver.engine import create_engine

        engine = create_engine("thread", 2)
        assert list(engine.map_unordered(len, [])) == []
        with pytest.raises(ConfigError):
            list(engine.map_unordered(len, ["a"], chunk_size=0))


# ----------------------------------------------------------------------
# bundles
# ----------------------------------------------------------------------

class TestBundles:
    def test_write_bundle_contents(self, triaged_session, tmp_path):
        from repro.reduce.bundle import write_bundle

        session, report = triaged_session
        ex = report.buckets[0].exemplar
        out = write_bundle(tmp_path / "b", ex, session.config)
        names = {p.name for p in out.iterdir()}
        assert names == {"reduced.cpp", "original.cpp", "input.json",
                         "verdict.json", "config.json", "repro.sh",
                         "provenance.json"}
        provenance = json.loads((out / "provenance.json").read_text())
        assert provenance["program_source"] == session.config.program_source
        assert provenance["spec"]["index"] == ex.program_index
        verdict = json.loads((out / "verdict.json").read_text())
        assert verdict["expected"]["vendor"] == ex.vendor
        assert verdict["expected"]["kind"] == ex.kind.value
        assert verdict["signature"] == ex.signature
        assert verdict["reduced_statements"] <= \
            verdict["original_statements"]
        assert "records" in verdict["actual"]
        inp = json.loads((out / "input.json").read_text())
        assert len(inp["argv"]) == len(ex.result.reduced_program.params)
        script = (out / "repro.sh").read_text()
        assert "g++ -O3 -fopenmp reduced.cpp" in script
        assert "repro-omp reduce --config config.json" in script
        # the campaign used a runtime-registered backend: the script
        # must warn that re-deriving needs it registered first
        assert "runtime-registered backend(s) triage-buggy" in script
        assert "#pragma omp" in (out / "reduced.cpp").read_text()

    def test_write_triage_artifacts_layout(self, triaged_session, tmp_path):
        from repro.reduce.bundle import write_triage_artifacts

        session, report = triaged_session
        out = write_triage_artifacts(report, session.config, tmp_path / "t")
        summary = json.loads((out / "summary.json").read_text())
        assert summary["n_outliers"] == report.n_outliers
        assert len(summary["buckets"]) == len(report.buckets)
        for row in summary["buckets"]:
            bucket_dir = out / row["directory"]
            assert (bucket_dir / "reduced.cpp").exists()
            assert (bucket_dir / "repro.sh").exists()
            assert row["n_tests"] == len(row["members"])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def _write_config(self, cfg, tmp_path):
        from repro.config import save_campaign

        path = tmp_path / "cfg.json"
        save_campaign(cfg, path)
        return str(path)

    def test_campaign_save_outliers_and_triage(self, triage_cfg, tmp_path,
                                               capsys):
        from repro.cli import main

        cfg_path = self._write_config(triage_cfg, tmp_path)
        rc = main(["campaign", "--config", cfg_path, "--quiet",
                   "--save-outliers", str(tmp_path / "outliers"),
                   "--triage", str(tmp_path / "triage")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "outlier test(s) saved to" in out
        assert "triage artifacts written to" in out
        dirs = list((tmp_path / "outliers").iterdir())
        assert dirs
        for d in dirs:
            assert (d / "source.cpp").exists()
            assert (d / "input.json").exists()
            assert (d / "verdict.json").exists()
        assert (tmp_path / "triage" / "summary.json").exists()

    def test_reduce_from_checkpoint(self, triage_cfg, tmp_path, capsys):
        from repro.cli import main

        cfg_path = self._write_config(triage_cfg, tmp_path)
        ckpt = tmp_path / "c.jsonl"
        assert main(["campaign", "--config", cfg_path, "--quiet",
                     "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        rc = main(["reduce", "--checkpoint", str(ckpt), "--quiet",
                   "--out", str(tmp_path / "red")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bug bucket" in out
        assert (tmp_path / "red" / "summary.json").exists()

    def test_reduce_inline_single_test(self, triage_cfg, tmp_path, capsys):
        from repro.cli import main

        session = CampaignSession(triage_cfg)
        session.run()
        pi, ii, vendor, _kind = next(
            c for c in session.outlier_coordinates()
            if c[2] == "triage-buggy")
        cfg_path = self._write_config(triage_cfg, tmp_path)
        rc = main(["reduce", "--config", cfg_path, "--index", str(pi),
                   "--input", str(ii), "--vendor", vendor, "--quiet"])
        assert rc == 0
        assert "bug bucket" in capsys.readouterr().out

    def test_reduce_inline_honors_config_engine(self, triage_cfg, tmp_path,
                                                monkeypatch):
        import dataclasses

        import repro.driver.engine as eng
        from repro.cli import main

        cfg = dataclasses.replace(triage_cfg, engine="thread", jobs=2)
        cfg_path = self._write_config(cfg, tmp_path)
        seen = {}
        real = eng.create_engine

        def spy(name, jobs=None):
            seen["args"] = (name, jobs)
            return real(name, jobs)

        monkeypatch.setattr(eng, "create_engine", spy)
        assert main(["reduce", "--config", cfg_path, "--index", "8",
                     "--quiet"]) == 0
        # no CLI engine flags: the config file's engine/jobs must win
        assert seen["args"] == ("thread", 2)

    def test_reduce_without_target_errors(self, capsys):
        from repro.cli import main

        assert main(["reduce"]) == 2
        assert "needs --checkpoint" in capsys.readouterr().err

    def test_reduce_no_matching_outliers(self, triage_cfg, tmp_path,
                                         capsys):
        from repro.cli import main

        cfg_path = self._write_config(triage_cfg, tmp_path)
        ckpt = tmp_path / "c2.jsonl"
        assert main(["campaign", "--config", cfg_path, "--quiet",
                     "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        rc = main(["reduce", "--checkpoint", str(ckpt), "--quiet",
                   "--vendor", "no-such-backend"])
        assert rc == 1
        assert "no matching outliers" in capsys.readouterr().out

    def test_reduce_kind_filter(self, triage_cfg, tmp_path, capsys):
        from repro.cli import main

        cfg_path = self._write_config(triage_cfg, tmp_path)
        ckpt = tmp_path / "c3.jsonl"
        assert main(["campaign", "--config", cfg_path, "--quiet",
                     "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        rc = main(["reduce", "--checkpoint", str(ckpt), "--quiet",
                   "--kind", "crash"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "crash" in out
