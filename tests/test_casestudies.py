"""Tests for the three reproduced case studies (Sections V-C/D/E)."""

import pytest

from repro.analysis.perfstats import (
    TABLE2_DIRECTIONS,
    TABLE3_DIRECTIONS,
    check_directions,
)
from repro.analysis.profiles import symbol_fraction
from repro.analysis.threadstate import thread_groups
from repro.config import CampaignConfig
from repro.driver.records import RunStatus
from repro.harness.casestudies import (
    case_study_1,
    case_study_2,
    case_study_3,
)
from repro.vendors import CLANG, GCC, INTEL


@pytest.fixture(scope="module")
def cfg():
    return CampaignConfig(seed=20240915)


@pytest.fixture(scope="module")
def case1(cfg):
    return case_study_1(cfg)


@pytest.fixture(scope="module")
def case2(cfg):
    return case_study_2(cfg)


@pytest.fixture(scope="module")
def case3(cfg):
    return case_study_3(cfg)


class TestCase1GccFast:
    def test_gcc_is_fast_outlier(self, case1):
        gcc = case1.record_for("gcc")
        intel = case1.record_for("intel")
        clang = case1.record_for("clang")
        assert gcc.time_us < intel.time_us / 1.5
        # the witnesses are mutually comparable (Eq. 1)
        assert abs(intel.time_us - clang.time_us) \
            / min(intel.time_us, clang.time_us) <= 0.2

    def test_counter_directions_match_table2(self, case1):
        # comparison is oriented (intel left, gcc right); Table II asks
        # about intel/gcc ratios, so flip
        cmp = case1.comparison
        flipped = type(cmp)(cmp.program_name, cmp.input_index,
                            "gcc", "intel", cmp.right, cmp.left)
        result = check_directions(flipped, TABLE2_DIRECTIONS)
        # the load-bearing counters all move the paper's way
        for key in ("context_switches", "cpu_migrations", "instructions"):
            assert result[key], (key, flipped.rows())

    def test_profiles_show_wait_symbols(self, case1):
        intel = case1.record_for("intel")
        gcc = case1.record_for("gcc")
        # Fig. 6: Intel waits in __kmp_wait_template, GCC in do_wait
        assert symbol_fraction(intel.profile,
                               INTEL.symbols.wait_primary) > 0.05
        assert symbol_fraction(gcc.profile, "do_wait") >= 0.0
        assert ("libgomp.so.1.0.0", "do_wait") in gcc.profile.samples

    def test_test_is_critical_heavy(self, case1):
        assert case1.features.critical_in_omp_for > 0


class TestCase2ClangSlow:
    def test_clang_much_slower(self, case2):
        clang = case2.record_for("clang")
        intel = case2.record_for("intel")
        assert clang.time_us > intel.time_us * 1.5

    def test_pattern_is_region_in_serial_loop(self, case2):
        assert case2.features.parallel_in_serial_loop > 0
        assert case2.features.est_region_entries >= 40

    def test_counter_directions_match_table3(self, case2):
        result = check_directions(case2.comparison, TABLE3_DIRECTIONS)
        for key in ("context_switches", "page_faults", "instructions",
                    "cycles"):
            assert result[key], (key, case2.comparison.rows())

    def test_clang_page_fault_explosion(self, case2):
        # Table III: 70,990 vs 684 — two orders of magnitude
        assert case2.comparison.ratio("page_faults") > 10

    def test_profile_shows_allocator_churn(self, case2):
        clang = case2.record_for("clang")
        # Fig. 7: calloc/malloc frames carry a large share under clang
        assert symbol_fraction(clang.profile,
                               CLANG.symbols.alloc) > 0.05


class TestCase3IntelHang:
    def test_intel_hangs_others_finish(self, case3):
        intel = case3.record_for("intel")
        assert intel.status is RunStatus.HANG
        for vendor in ("gcc", "clang"):
            assert case3.record_for(vendor).status is RunStatus.OK

    def test_all_threads_stuck(self, case3):
        intel = case3.record_for("intel")
        groups = thread_groups(intel)
        assert sum(g.size for g in groups) == case3.program.num_threads
        assert len(groups) == 3  # Fig. 9: three states

    def test_states_match_fig9(self, case3):
        intel = case3.record_for("intel")
        states = set(intel.thread_states)
        assert "__kmp_eq_4" in states
        assert INTEL.symbols.yield_ in states

    def test_pattern_is_contended_critical(self, case3):
        assert case3.features.critical_in_omp_for > 0
        assert case3.features.est_critical_acquires >= 2000
