"""Tests for the execution driver: records, classification, build_args."""

import dataclasses
import math

import pytest

from repro.config import MachineConfig
from repro.core.inputs import FPCategory, TestInput
from repro.driver import (
    RunRecord,
    RunStatus,
    build_args,
    run_binary,
    run_differential,
    values_equal,
)
from repro.errors import ExecutionError
from repro.vendors import compile_all, compile_binary


class TestValuesEqual:
    def test_exact_equality(self):
        assert values_equal(1.5, 1.5)
        assert not values_equal(1.5, 1.5000001)

    def test_nans_are_equal(self):
        assert values_equal(math.nan, math.nan)
        assert values_equal(math.nan, -math.nan)

    def test_signed_zero_distinguished(self):
        assert not values_equal(0.0, -0.0)  # %.17g prints them differently

    def test_none_handling(self):
        assert values_equal(None, None)
        assert not values_equal(None, 1.0)

    def test_infinities(self):
        assert values_equal(math.inf, math.inf)
        assert not values_equal(math.inf, -math.inf)


class TestBuildArgs:
    def test_arrays_materialized_with_fill(self, program_stream, input_gen):
        p = program_stream[0]
        binary = compile_binary(p, "gcc")
        inp = input_gen.generate(p, 0)
        args = build_args(binary, inp)
        for arr in p.array_params:
            data = args[arr.name]
            assert len(data) == arr.array_size
            assert all(x == float(inp.values[arr.name]) for x in data)

    def test_missing_param_raises(self, program_stream):
        p = program_stream[0]
        binary = compile_binary(p, "gcc")
        empty = TestInput(program_name=p.name, index=0)
        with pytest.raises(ExecutionError, match="lacks a value"):
            build_args(binary, empty)

    def test_int_params_cast(self, program_stream, input_gen):
        p = program_stream[0]
        args = build_args(compile_binary(p, "gcc"), input_gen.generate(p, 0))
        for v in p.int_params:
            assert isinstance(args[v.name], int)


class TestClassification:
    def test_ok_record_shape(self, program_stream, input_gen, machine):
        p = program_stream[0]
        rec = run_binary(compile_binary(p, "clang"), input_gen.generate(p, 0),
                         machine)
        assert rec.status is RunStatus.OK
        assert rec.ok
        assert rec.label() == "P_clang^OK"
        assert rec.time_us > 0
        assert rec.counters.cycles > 0
        assert rec.counters.instructions > 0

    def test_crash_classification(self, program_stream, input_gen, machine):
        p = program_stream[0]
        binary = dataclasses.replace(compile_binary(p, "gcc"),
                                     crash_armed=True)
        inp = input_gen.generate(p, 0)
        # force the extreme-input condition
        inp.categories = {k: FPCategory.ALMOST_INF for k in inp.categories} \
            or {"var_1": FPCategory.ALMOST_INF, "var_2": FPCategory.SUBNORMAL}
        rec = run_binary(binary, inp, machine)
        assert rec.status is RunStatus.CRASH
        assert rec.comp is None
        assert "SIGSEGV" in rec.detail

    def test_armed_crash_needs_extreme_input(self, program_stream, input_gen,
                                             machine):
        p = program_stream[0]
        binary = dataclasses.replace(compile_binary(p, "gcc"),
                                     crash_armed=True)
        inp = input_gen.generate(p, 0)
        inp.categories = {k: FPCategory.NORMAL for k in inp.categories}
        rec = run_binary(binary, inp, machine)
        assert rec.status is RunStatus.OK

    def test_hang_classification(self, paper_gen_cfg, machine):
        # find a critical-heavy program and force the livelock
        from repro.core.generator import ProgramGenerator
        from repro.core.features import extract_features
        from repro.core.inputs import InputGenerator

        gen = ProgramGenerator(paper_gen_cfg, seed=20240915)
        ig = InputGenerator(paper_gen_cfg, seed=20240916)
        program = None
        for i in range(120):
            p = gen.generate(i)
            if extract_features(p).est_critical_acquires >= 5000:
                program = p
                break
        assert program is not None
        binary = dataclasses.replace(compile_binary(program, "intel"),
                                     hang_armed=True)
        rec = run_binary(binary, ig.generate(program, 0), machine)
        assert rec.status is RunStatus.HANG
        assert rec.time_us == machine.timeout_us
        assert rec.thread_states is not None
        assert sum(len(v) for v in rec.thread_states.values()) == \
            program.num_threads

    def test_timeout_becomes_hang(self, program_stream, input_gen):
        tiny = MachineConfig(timeout_us=1.0)  # everything times out
        p = program_stream[0]
        rec = run_binary(compile_binary(p, "gcc"), input_gen.generate(p, 0),
                         tiny)
        assert rec.status is RunStatus.HANG
        assert rec.time_us == 1.0


class TestDifferential:
    def test_runs_every_vendor(self, program_stream, input_gen, machine):
        p = program_stream[1]
        bins = compile_all(p, ("gcc", "clang", "intel"))
        recs = run_differential(bins, input_gen.generate(p, 0), machine)
        assert [r.vendor for r in recs] == ["gcc", "clang", "intel"]

    def test_to_dict_serializable(self, program_stream, input_gen, machine):
        import json

        p = program_stream[0]
        rec = run_binary(compile_binary(p, "gcc"), input_gen.generate(p, 0),
                         machine)
        text = json.dumps(rec.to_dict())
        assert p.name in text

    def test_profile_only_when_requested(self, program_stream, input_gen,
                                         machine):
        p = program_stream[0]
        binary = compile_binary(p, "gcc")
        inp = input_gen.generate(p, 0)
        assert run_binary(binary, inp, machine).profile is None
        assert run_binary(binary, inp, machine,
                          collect_profile=True).profile is not None
