"""Native g++ backend tests: the generator's output is real OpenMP C++.

Skipped wholesale when no g++ is on PATH.  The agreement test is the
strongest statement in the suite: for programs whose output is
schedule-independent and contraction-free, the pure-Python simulated
backend and a real g++/libgomp execution print the *identical* value.
"""

import math

import pytest

from repro.backends import gcc_native
from repro.config import GeneratorConfig, MachineConfig
from repro.core.features import extract_features
from repro.core.generator import ProgramGenerator
from repro.core.inputs import InputGenerator
from repro.driver import RunStatus, run_binary
from repro.driver.records import values_equal
from repro.vendors import compile_binary

pytestmark = pytest.mark.skipif(not gcc_native.available(),
                                reason="no g++ on PATH")

#: small teams so the native runs do not oversubscribe CI hosts
_CFG = GeneratorConfig(num_threads=4, max_total_iterations=4_000,
                       loop_trip_max=60)


@pytest.fixture(scope="module")
def native_stream():
    gen = ProgramGenerator(_CFG, seed=424242)
    return [gen.generate(i) for i in range(6)]


class TestNativeCompilation:
    def test_every_program_compiles(self, native_stream, tmp_path_factory):
        wd = tmp_path_factory.mktemp("native")
        for p in native_stream:
            binary = gcc_native.compile_native(p, workdir=wd / p.name)
            assert binary.path.exists()

    def test_compile_and_run_produces_record(self, native_stream):
        p = native_stream[0]
        inputs = InputGenerator(_CFG, seed=99)
        rec = gcc_native.compile_and_run(p, inputs.generate(p, 0),
                                         num_threads=2)
        assert rec.status is RunStatus.OK
        assert rec.comp is not None
        assert rec.time_us >= 0


class TestSimulatedNativeAgreement:
    def _agreement_candidates(self, count=3):
        """Programs whose printed value is schedule-independent: no
        reductions (combine order varies at runtime in libgomp), no
        criticals or atomics (interleaving-dependent rounding), no
        dynamic/guided schedules (nondeterministic iteration-to-thread
        mapping), no math calls (libm vs Python ulp differences), double
        precision.  static schedules, collapse, singles, and barriers are
        all deterministic and stay eligible."""
        gen = ProgramGenerator(_CFG, seed=31337)
        out = []
        i = 0
        while len(out) < count and i < 300:
            p = gen.generate(i)
            i += 1
            f = extract_features(p)
            if (f.n_reductions == 0 and f.n_critical == 0
                    and f.n_atomic == 0 and f.n_nondet_schedules == 0
                    and f.n_math_calls == 0 and f.uses_double):
                out.append(p)
        assert out, "no agreement candidates found"
        return out

    def test_printed_values_match_real_gcc(self):
        inputs = InputGenerator(_CFG, seed=555)
        machine = MachineConfig()
        checked = 0
        for p in self._agreement_candidates():
            inp = inputs.generate(p, 0)
            # clang model = plain IEEE at -O1 (no contraction, no FTZ);
            # native g++ with contraction pinned off is the same function
            sim = run_binary(compile_binary(p, "clang", "-O1"), inp, machine)
            native = gcc_native.compile_and_run(p, inp, fp_contract="off",
                                                num_threads=None)
            assert native.status is RunStatus.OK
            assert sim.ok
            assert values_equal(sim.comp, native.comp), (
                p.name, sim.comp, native.comp)
            checked += 1
        assert checked >= 1

    def test_thread_override_rewrites_clauses(self, native_stream):
        p = native_stream[0]
        from repro.backends.gcc_native import _with_threads
        from repro.core.nodes import OmpParallel, walk

        clone = _with_threads(p, 2)
        for n in walk(clone):
            if isinstance(n, OmpParallel):
                assert n.clauses.num_threads == 2
        # original untouched
        for n in walk(p):
            if isinstance(n, OmpParallel):
                assert n.clauses.num_threads == _CFG.num_threads
