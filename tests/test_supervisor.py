"""Supervisor tests: lifecycle, restart-from-store, signal drains,
dead-unit rescue, degraded finish, and the fleet service CLI."""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.cli import main
from repro.config import ConfigError, SupervisorConfig
from repro.driver.engine import ExecutionPlan, plan_units
from repro.errors import FleetDegradedWarning, FleetError
from repro.fleet import (
    ChaosCoordinatorFactory,
    ChaosPlan,
    FleetCoordinator,
    FleetSupervisor,
    QueueServer,
    ResultStore,
    WorkQueue,
    worker_loop,
)
from repro.fleet.coordinator import _spawn_worker
from repro.fleet.store import campaign_key
from repro.fleet.supervisor import SIGTERM_EXIT
from repro.harness.session import CampaignSession


def ordered_key(result):
    """Order-*sensitive* full-fidelity identity of a campaign result."""
    return [v.identity() for v in result.verdicts]


def _fast_sup(**overrides) -> SupervisorConfig:
    base = dict(poll_s=0.01, status_every_s=0.05,
                restart_backoff_s=0.02, max_restart_backoff_s=0.1,
                store_retry_backoff_s=0.02, store_retry_max_backoff_s=0.1)
    base.update(overrides)
    return SupervisorConfig(**base)


# ----------------------------------------------------------------------
# config + session plumbing
# ----------------------------------------------------------------------

class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ConfigError, match="max_restarts"):
            SupervisorConfig(max_restarts=-1)
        with pytest.raises(ConfigError, match="max_restart_backoff_s"):
            SupervisorConfig(restart_backoff_s=2.0, max_restart_backoff_s=1.0)
        with pytest.raises(ConfigError, match="poll_s"):
            SupervisorConfig(poll_s=0)
        with pytest.raises(ConfigError, match="store_retry_max_backoff_s"):
            SupervisorConfig(store_retry_backoff_s=2.0,
                             store_retry_max_backoff_s=1.0)

    def test_supervisor_requires_a_store(self, fleet_cfg):
        with pytest.raises(ConfigError, match="store"):
            FleetSupervisor(fleet_cfg, None)


class TestSessionElapsed:
    def test_add_elapsed_accumulates_and_validates(self, fleet_cfg):
        session = CampaignSession(fleet_cfg)
        with pytest.raises(ConfigError, match=">= 0"):
            session.add_elapsed(-0.1)
        session.add_elapsed(1.25)
        session.add_elapsed(0.75)
        assert session._elapsed == pytest.approx(2.0)


# ----------------------------------------------------------------------
# coordinator cleanup regressions (satellite 2)
# ----------------------------------------------------------------------

class TestCoordinatorCleanup:
    def test_wait_timeout_tears_down_workers_and_socket(self, fleet_cfg,
                                                        monkeypatch):
        """Regression: a timed-out wait() used to raise with the worker
        processes and the bound socket still alive."""
        monkeypatch.setattr("repro.fleet.worker.execute_unit",
                            lambda plan, unit: time.sleep(600))
        coord = FleetCoordinator(fleet_cfg)
        procs = coord.spawn_workers(1)
        with pytest.raises(FleetError, match="shut down"):
            coord.wait(poll_s=0.01, timeout=0.3)
        assert coord._server is None
        assert coord._procs == []
        assert not any(p.is_alive() for p in procs)
        assert coord.queue.closed
        # the wait-loop time is credited through the public API
        assert coord.session._elapsed > 0

    def test_interrupt_during_wait_leaves_no_workers(self, fleet_cfg,
                                                     monkeypatch):
        """Ctrl-C to a coordinator run: the context manager tears down
        workers and socket on the way out."""
        monkeypatch.setattr("repro.fleet.worker.execute_unit",
                            lambda plan, unit: time.sleep(600))
        coord = FleetCoordinator(fleet_cfg)
        with pytest.raises(KeyboardInterrupt):
            with coord:
                procs = coord.spawn_workers(2)

                def interrupt(done, total):
                    raise KeyboardInterrupt

                coord.wait(poll_s=0.01, timeout=60, progress=interrupt)
        assert coord._server is None
        assert not any(p.is_alive() for p in procs)
        assert coord.queue.closed


# ----------------------------------------------------------------------
# worker SIGTERM: hand leases back without losing a completed unit
# ----------------------------------------------------------------------

class TestWorkerSigterm:
    def test_sigterm_hands_back_unexecuted_leases(self, fleet_cfg,
                                                  fleet_serial_result,
                                                  monkeypatch):
        from repro.fleet import worker as worker_mod

        real = worker_mod.execute_unit

        def first_fast_then_block(plan, unit):
            if unit.program_index == 0:
                return real(plan, unit)
            time.sleep(600)

        monkeypatch.setattr("repro.fleet.worker.execute_unit",
                            first_fast_then_block)
        plan = ExecutionPlan(config=fleet_cfg)
        queue = WorkQueue(plan, plan_units(fleet_cfg),
                          lease_seconds=0.5, backoff_s=0.0)
        server = QueueServer(queue, authkey=b"test-key")
        proc = _spawn_worker(server.address, b"test-key", batch=3)
        try:
            # wait until unit 0 completed and the worker blocks on unit 1
            deadline = time.monotonic() + 60
            while (queue.stats()["completed"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert queue.stats()["completed"] == 1
            os.kill(proc.pid, signal.SIGTERM)
            proc.join(timeout=60)
            assert proc.exitcode == SIGTERM_EXIT  # shell convention: 143
            stats = queue.stats()
            # the completed unit is never lost, the unexecuted lease was
            # handed back promptly, and at most the in-flight unit waits
            # out its deadline
            assert stats["completed"] == 1
            assert stats["leased"] <= 1
            # a surviving worker finishes the grid; the interrupted
            # unit's re-execution is pure, so verdicts stay identical
            monkeypatch.undo()  # the survivor executes for real
            worker_loop(queue, poll_s=0.02)
            assert queue.finished() and queue.dead_units() == []
            outcomes = dict(queue.collect())
            verdicts = [v for i in sorted(outcomes)
                        for v in outcomes[i].verdicts]
            assert [v.identity() for v in verdicts] == \
                ordered_key(fleet_serial_result)
        finally:
            server.close()
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)


# ----------------------------------------------------------------------
# supervisor lifecycle
# ----------------------------------------------------------------------

class TestFleetSupervisor:
    def test_supervised_campaign_matches_serial(self, fleet_cfg,
                                                fleet_serial_result,
                                                tmp_path):
        status = tmp_path / "status.json"
        with ResultStore(tmp_path / "sup.db") as store:
            sup = FleetSupervisor(fleet_cfg, store, workers=2,
                                  supervisor=_fast_sup(),
                                  status_path=status)
            result = sup.run(timeout=180)
            assert sup.state == "finished"
            assert sup.restarts == 0 and sup.crashes == []
            assert ordered_key(result) == ordered_key(fleet_serial_result)
            assert store.completed_indices(sup.campaign_id) == \
                set(range(fleet_cfg.n_programs))
            assert result.elapsed_seconds > 0
        snap = json.loads(status.read_text())
        assert snap["state"] == "finished"
        assert snap["completed_tests"] == snap["total_tests"] == \
            fleet_cfg.n_programs * fleet_cfg.inputs_per_program
        assert snap["store"]["recorded"] == fleet_cfg.n_programs
        assert snap["store"]["buffered"] == 0

    def test_crashed_coordinator_restarts_from_store(self, fleet_cfg,
                                                     fleet_serial_result,
                                                     tmp_path):
        factory = ChaosCoordinatorFactory(
            fleet_cfg, ChaosPlan(coordinator_crash_after=(2,)))
        with ResultStore(tmp_path / "restart.db") as store:
            sup = FleetSupervisor(fleet_cfg, store, workers=2,
                                  supervisor=_fast_sup(),
                                  coordinator_factory=factory)
            result = sup.run(timeout=180)
        assert factory.incarnations == 2 and factory.crashes_fired == 1
        assert sup.restarts == 1 and len(sup.crashes) == 1
        assert "ChaosCoordinatorCrash" in sup.crashes[0]
        assert sup.state == "finished"
        assert ordered_key(result) == ordered_key(fleet_serial_result)

    def test_sigint_drains_and_a_successor_resumes(self, fleet_cfg,
                                                   fleet_serial_result,
                                                   tmp_path):
        with ResultStore(tmp_path / "drain.db") as store:
            sup = FleetSupervisor(fleet_cfg, store, workers=2,
                                  supervisor=_fast_sup())
            sup._signal = signal.SIGINT  # Ctrl-C landed before this poll
            with pytest.raises(KeyboardInterrupt):
                sup.run(timeout=60)
            assert sup.state == "interrupted"
            assert sup.buffer.pending == 0  # drain flushed the buffer
            sup2 = FleetSupervisor(fleet_cfg, store, workers=2,
                                   supervisor=_fast_sup())
            result = sup2.run(timeout=180)
        assert ordered_key(result) == ordered_key(fleet_serial_result)

    def test_dead_units_are_rescued_inline(self, fleet_cfg,
                                           fleet_serial_result,
                                           tmp_path, monkeypatch):
        """Workers that cannot execute one unit kill its fleet retry
        budget; the supervisor's inline rescue still finishes the grid."""
        from repro.fleet import worker as worker_mod

        real = worker_mod.execute_unit

        def sabotaged(plan, unit):
            if unit.program_index == 2:
                raise RuntimeError("injected unit failure")
            return real(plan, unit)

        monkeypatch.setattr("repro.fleet.worker.execute_unit", sabotaged)

        def factory(buffer):
            return FleetCoordinator(fleet_cfg, store_buffer=buffer,
                                    max_attempts=1, backoff_s=0.0)

        with ResultStore(tmp_path / "rescue.db") as store:
            sup = FleetSupervisor(fleet_cfg, store, workers=2,
                                  supervisor=_fast_sup(),
                                  coordinator_factory=factory)
            with pytest.warns(FleetDegradedWarning, match="inline"):
                result = sup.run(timeout=180)
            assert sup.state == "finished"
            assert ordered_key(result) == ordered_key(fleet_serial_result)
            assert store.completed_indices(sup.campaign_id) == \
                set(range(fleet_cfg.n_programs))

    def test_degrades_to_inline_when_restart_budget_spent(
            self, fleet_cfg, fleet_serial_result, tmp_path):
        def crashing_factory(buffer):
            coord = FleetCoordinator(fleet_cfg, store_buffer=buffer)

            def doomed_poll():
                raise RuntimeError("incarnation doomed")

            coord.poll = doomed_poll
            return coord

        with ResultStore(tmp_path / "degraded.db") as store:
            sup = FleetSupervisor(fleet_cfg, store, workers=0, serve=False,
                                  supervisor=_fast_sup(max_restarts=1),
                                  coordinator_factory=crashing_factory)
            with pytest.warns(FleetDegradedWarning, match="restart budget"):
                result = sup.run(timeout=180)
            assert sup.state == "finished"
            assert sup.restarts == 1 and len(sup.crashes) == 2
            assert ordered_key(result) == ordered_key(fleet_serial_result)
            # the degraded inline run still persisted everything
            assert store.completed_indices(sup.campaign_id) == \
                set(range(fleet_cfg.n_programs))

    def test_no_degrade_raises_after_budget(self, fleet_cfg, tmp_path):
        def crashing_factory(buffer):
            coord = FleetCoordinator(fleet_cfg, store_buffer=buffer)

            def doomed_poll():
                raise RuntimeError("incarnation doomed")

            coord.poll = doomed_poll
            return coord

        with ResultStore(tmp_path / "hard.db") as store:
            sup = FleetSupervisor(fleet_cfg, store, workers=0, serve=False,
                                  supervisor=_fast_sup(max_restarts=1,
                                                       degrade=False),
                                  coordinator_factory=crashing_factory)
            with pytest.raises(FleetError, match="restart budget"):
                sup.run(timeout=60)
            assert sup.state == "failed"


# ----------------------------------------------------------------------
# SIGTERM to a supervisor process: drain, exit 143, resume
# ----------------------------------------------------------------------

def _supervised_child(cfg, db_path, status_path):
    """Run a supervisor whose workers are slowed enough for the parent
    to SIGTERM it mid-campaign (forked workers inherit the patch)."""
    import repro.fleet.worker as worker_mod

    real = worker_mod.execute_unit

    def slow(plan, unit):
        outcome = real(plan, unit)
        time.sleep(0.6)
        return outcome

    worker_mod.execute_unit = slow
    store = ResultStore(db_path)
    try:
        sup = FleetSupervisor(
            cfg, store, workers=2,
            supervisor=SupervisorConfig(poll_s=0.01, status_every_s=0.05),
            status_path=status_path)
        sup.run(timeout=300)
    finally:
        store.close()


class TestSupervisorSigterm:
    def test_sigterm_drains_and_exits_143(self, fleet_cfg,
                                          fleet_serial_result, tmp_path):
        db = tmp_path / "term.db"
        status = tmp_path / "term-status.json"
        proc = mp.Process(target=_supervised_child,
                          args=(fleet_cfg, db, status))
        proc.start()
        try:
            # wait for at least one unit to persist before the signal
            deadline = time.monotonic() + 60
            recorded = 0
            while time.monotonic() < deadline:
                try:
                    recorded = json.loads(
                        status.read_text())["store"]["recorded"]
                except (OSError, ValueError, KeyError):
                    recorded = 0
                if recorded >= 1:
                    break
                time.sleep(0.02)
            assert recorded >= 1, "child made no progress before the signal"
            os.kill(proc.pid, signal.SIGTERM)
            proc.join(timeout=60)
            assert proc.exitcode == SIGTERM_EXIT
        finally:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        snap = json.loads(status.read_text())
        assert snap["state"] == "interrupted"
        with ResultStore(db) as store:
            cid = campaign_key(fleet_cfg)
            persisted = store.completed_indices(cid)
            assert len(persisted) >= 1  # nothing completed was lost
            # a successor over the same store finishes the remainder
            sup = FleetSupervisor(fleet_cfg, store, workers=2,
                                  supervisor=_fast_sup())
            result = sup.run(timeout=180)
            assert ordered_key(result) == ordered_key(fleet_serial_result)
            assert store.completed_indices(cid) == \
                set(range(fleet_cfg.n_programs))


# ----------------------------------------------------------------------
# the service CLI
# ----------------------------------------------------------------------

class TestFleetServiceCLI:
    def test_supervise_then_status_roundtrip(self, tmp_path, capsys):
        db = tmp_path / "cli.db"
        status = tmp_path / "cli-status.json"
        rc = main(["fleet", "supervise", "--programs", "2", "--inputs", "1",
                   "--seed", "9", "--workers", "2", "--store", str(db),
                   "--status-file", str(status), "--timeout", "180",
                   "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdicts stored in" in out
        # snapshot mode reads the file the supervisor mirrored
        rc = main(["fleet", "status", "--status-file", str(status)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "finished" in out and "2/2 tests" in out
        # store mode reports campaign completeness
        rc = main(["fleet", "status", "--store", str(db)])
        assert rc == 0
        assert "COMPLETE" in capsys.readouterr().out

    def test_status_requires_a_source(self, capsys):
        assert main(["fleet", "status"]) == 2
        assert "--status-file" in capsys.readouterr().err
