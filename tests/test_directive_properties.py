"""Property-based conformance suite for the directive-diversity expansion.

For every new directive family — combined ``parallel for`` (with
``schedule`` and ``collapse``), ``min``/``max`` reductions, ``atomic``,
``single``, and ``barrier`` — generate hundreds of seeded programs with
that family boosted and assert the end-to-end invariants the four layers
must agree on:

* **grammar**: every generated program passes :func:`check_conformance`;
* **race oracle**: every ``allow_data_races=False`` program is race-free;
* **determinism**: regeneration from ``(config, index)`` yields a
  byte-identical translation unit;
* **execution**: the simulated vendors interpret every construct, and all
  three agree bit-for-bit on race-free schedule-independent programs;
* **native**: the emitted C++ compiles under ``g++ -fopenmp`` and — for
  schedule-independent candidates — prints the simulator's exact value
  (skipped cleanly when no ``g++`` is on PATH).

The sweep sizes satisfy the acceptance bar: >= 500 programs spanning all
five families pass conformance; set ``REPRO_FULL_NATIVE=1`` to also
native-compile every swept program instead of the stratified sample.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.backends import gcc_native
from repro.codegen.emit_main import emit_translation_unit
from repro.config import GeneratorConfig, MachineConfig
from repro.core.features import ProgramFeatures, extract_features
from repro.core.generator import ProgramGenerator
from repro.core.grammar import check_conformance
from repro.core.inputs import InputGenerator
from repro.core.races import find_races
from repro.driver import RunStatus, run_binary
from repro.driver.records import values_equal
from repro.vendors import compile_binary

#: small, fast base configuration shared by every family sweep
_BASE = GeneratorConfig(max_total_iterations=4_000, loop_trip_max=60,
                        num_threads=4)

#: per-family generator boost + the feature that proves the family landed
FAMILIES: dict[str, tuple[dict, str]] = {
    "parallel_for": (dict(parallel_for_probability=0.9), "n_parallel_for"),
    "schedules": (dict(schedule_probability=0.95,
                       parallel_for_probability=0.5), "n_scheduled"),
    "collapse": (dict(collapse_probability=0.85, schedule_probability=0.5),
                 "n_collapse"),
    "minmax_reduction": (dict(reduction_probability=0.9),
                         "n_minmax_reductions"),
    "atomic": (dict(atomic_probability=0.9), "n_atomic"),
    "single": (dict(single_probability=0.95), "n_single"),
    "barrier": (dict(barrier_probability=0.9), "n_barrier"),
    # the worksharing-graph families (repro.core.taskgraph): off by
    # default, so the boost must also flip their enable flags
    "sections": (dict(enable_sections=True, sections_probability=0.9,
                      parallel_for_probability=0.0), "n_sections"),
    "tasks": (dict(enable_sections=True, enable_tasks=True,
                   sections_probability=0.9, task_probability=0.9,
                   parallel_for_probability=0.0), "n_tasks"),
}

_PER_FAMILY = 80  # 9 families x 80 = 720 programs >= the 500 bar
_SEED = 20260730


def _family_cfg(name: str) -> GeneratorConfig:
    return dataclasses.replace(_BASE, **FAMILIES[name][0])


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def family_sweep(request):
    """(family name, programs, features) for one boosted family stream."""
    name = request.param
    gen = ProgramGenerator(_family_cfg(name), seed=_SEED)
    programs = [gen.generate(i) for i in range(_PER_FAMILY)]
    features = [extract_features(p) for p in programs]
    return name, programs, features


class TestGenerationProperties:
    def test_family_is_actually_exercised(self, family_sweep):
        name, _, features = family_sweep
        feat = FAMILIES[name][1]
        hits = sum(1 for f in features if getattr(f, feat) > 0)
        # the boost must make the family common, not incidental
        assert hits >= _PER_FAMILY // 5, (name, hits)

    def test_every_program_conforms(self, family_sweep):
        name, programs, _ = family_sweep
        for p in programs:
            check_conformance(p)  # raises GrammarError on violation

    def test_every_program_is_race_free(self, family_sweep):
        name, programs, _ = family_sweep
        for p in programs:
            reports = find_races(p)
            assert not reports, (name, p.name,
                                 [str(r) for r in reports])

    def test_seed_determinism_of_ast(self, family_sweep):
        """generate(config, index) is a pure function: a fresh generator
        reproduces the byte-identical translation unit."""
        name, programs, _ = family_sweep
        regen = ProgramGenerator(_family_cfg(name), seed=_SEED)
        for i in range(0, _PER_FAMILY, 8):
            assert emit_translation_unit(regen.generate(i)) == \
                emit_translation_unit(programs[i]), (name, i)


class TestSimulatedExecution:
    def test_all_vendors_execute_every_family(self, family_sweep):
        """Each family's directives lower and run on all three simulated
        vendors; race-free + schedule-independent programs must agree
        bit-for-bit across vendors at -O1 (no contraction applied)."""
        name, programs, features = family_sweep
        feat = FAMILIES[name][1]
        inputs = InputGenerator(_family_cfg(name), seed=_SEED + 1)
        machine = MachineConfig()
        executed = 0
        for p, f in zip(programs, features):
            if getattr(f, feat) == 0:
                continue
            inp = inputs.generate(p, 0)
            records = []
            for vendor in ("gcc", "clang", "intel"):
                rec = run_binary(compile_binary(p, vendor, "-O1"), inp,
                                 machine)
                assert rec.status in (RunStatus.OK, RunStatus.CRASH,
                                      RunStatus.HANG), (name, p.name)
                records.append(rec)
            # GCC and Clang models share IEEE semantics at -O1 (no FMA,
            # no FTZ); the only legal divergence left is reduction
            # combine order, which min/max make order-independent
            g, c = records[0], records[1]
            if (g.ok and c.ok and f.n_reductions == 0
                    and f.n_nondet_schedules == 0):
                assert values_equal(g.comp, c.comp), (name, p.name,
                                                      g.comp, c.comp)
            executed += 1
            if executed >= 10:
                break
        assert executed > 0, f"no {name} programs executed"


@pytest.mark.skipif(not gcc_native.available(), reason="no g++ on PATH")
class TestNativeConformance:
    def _sample(self, family_sweep, k: int):
        name, programs, features = family_sweep
        feat = FAMILIES[name][1]
        hits = [p for p, f in zip(programs, features)
                if getattr(f, feat) > 0]
        if os.environ.get("REPRO_FULL_NATIVE"):
            return name, hits
        return name, hits[:k]

    def test_emitted_cpp_compiles(self, family_sweep, tmp_path):
        """The generated C++ of every family is real OpenMP that g++
        accepts (stratified sample by default, everything under
        REPRO_FULL_NATIVE=1)."""
        name, sample = self._sample(family_sweep, 3)
        assert sample, f"no {name} programs to compile"
        for p in sample:
            binary = gcc_native.compile_native(p, opt_level="-O1",
                                               workdir=tmp_path / p.name)
            assert binary.path.exists()

    def test_sim_native_agreement_on_race_free(self, family_sweep):
        """For race-free schedule-independent programs of this family the
        pure-Python simulation and a real g++/libgomp run print the
        identical value.

        ``atomic`` and ``min``/``max`` reduction values are legitimately
        interleaving-dependent in a real runtime (RMW order, combine
        order with NaNs) — those two families have no exact-agreement
        candidates *by design* and are skipped explicitly.
        """
        name = family_sweep[0]
        if name in ("atomic", "minmax_reduction"):
            pytest.skip(f"{name}: native output is interleaving-dependent "
                        f"by design; covered by the simulated-vendor "
                        f"agreement test instead")
        # strip every interleaving-dependent feature that is not the
        # family under test, so candidates are common in a short window
        cfg = dataclasses.replace(
            _family_cfg(name), critical_probability=0.0,
            atomic_probability=0.0, reduction_probability=0.0,
            math_func_probability=0.0, fp_double_probability=1.0)
        gen = ProgramGenerator(cfg, seed=_SEED + 7)
        inputs = InputGenerator(cfg, seed=_SEED + 8)
        machine = MachineConfig()
        feat = FAMILIES[name][1]
        checked = 0
        for i in range(120):
            p = gen.generate(i)
            f = extract_features(p)
            if getattr(f, feat) == 0 or not _schedule_independent(f):
                continue
            assert not find_races(p)
            inp = inputs.generate(p, 0)
            sim = run_binary(compile_binary(p, "clang", "-O1"), inp, machine)
            native = gcc_native.compile_and_run(p, inp, opt_level="-O1",
                                                fp_contract="off",
                                                num_threads=None)
            assert native.status is RunStatus.OK, (name, p.name,
                                                   native.detail)
            assert sim.ok, (name, p.name)
            assert values_equal(sim.comp, native.comp), (
                name, p.name, sim.comp, native.comp)
            checked += 1
            if checked >= 3:
                break
        assert checked > 0, f"no schedule-independent {name} candidates"


def _schedule_independent(f: ProgramFeatures) -> bool:
    """Is the printed value independent of runtime thread interleaving?

    Reductions (libgomp combine order), criticals and atomics
    (interleaving-dependent FP rounding), and dynamic/guided schedules
    (first-come chunk hand-out) all make native output vary run to run;
    math calls differ between libm and Python by ulps; float programs
    round differently through printf.  Everything else — including
    static schedules, collapse, singles, and barriers — is exact.
    """
    return (f.n_reductions == 0 and f.n_critical == 0 and f.n_atomic == 0
            and f.n_nondet_schedules == 0 and f.n_math_calls == 0
            and f.uses_double)


class TestWorkshareGraphCampaign:
    """The `tasks` mix end-to-end through the campaign surface: every
    engine, checkpoint/resume, and the kernel cache."""

    def _cfg(self, **kw):
        from repro.config import CampaignConfig

        boosted = dataclasses.replace(_BASE, sections_probability=0.9,
                                      task_probability=0.9)
        return CampaignConfig(n_programs=6, inputs_per_program=2, seed=4242,
                              directive_mix="tasks", generator=boosted, **kw)

    def _sweep_program(self):
        gen = ProgramGenerator(self._cfg().generator, seed=4242)
        for i in range(30):
            p = gen.generate(i)
            f = extract_features(p)
            if f.n_sections > 0 and f.n_tasks > 0:
                return p
        raise AssertionError("no sections+tasks program in 30 draws")

    def test_mix_opens_the_graph_families(self):
        cfg = self._cfg()
        assert cfg.generator.enable_sections and cfg.generator.enable_tasks
        gen = ProgramGenerator(cfg.generator, seed=cfg.seed)
        feats = [extract_features(gen.generate(i)) for i in range(12)]
        assert any(f.n_sections for f in feats)
        assert any(f.n_tasks for f in feats)

    def test_serial_and_pooled_engines_agree(self):
        from repro.harness.session import CampaignSession

        serial = CampaignSession(self._cfg(), engine="serial").run()
        pooled = CampaignSession(self._cfg(), engine="thread", jobs=2).run()
        assert sorted(v.identity() for v in serial.verdicts) == \
            sorted(v.identity() for v in pooled.verdicts)
        # the grid really ran on all three simulated vendors
        vendors = {r.vendor for v in serial.verdicts for r in v.records}
        assert vendors == {"gcc", "clang", "intel"}

    def test_tasks_mix_checkpoint_resume_round_trip(self, tmp_path):
        from repro.harness.session import CampaignSession

        baseline = CampaignSession(self._cfg(), engine="serial").run()
        session = CampaignSession(self._cfg(), engine="serial")
        it = session.stream()
        for _ in range(session.total_tests // 2):
            next(it)
        it.close()
        path = tmp_path / "tasks.jsonl"
        session.checkpoint(path)

        resumed = CampaignSession.resume(path, engine="process", jobs=2)
        assert 0 < resumed.completed_tests < resumed.total_tests
        assert resumed.config.directive_mix == "tasks"
        assert resumed.config.generator.enable_sections
        result = resumed.run()
        assert sorted(v.identity() for v in result.verdicts) == \
            sorted(v.identity() for v in baseline.verdicts)

    def test_kernel_cache_hit_on_repeated_lowering(self):
        from repro.sim.kcache import get_kernel_cache

        p = self._sweep_program()
        cache = get_kernel_cache()
        b1 = compile_binary(p, "gcc", "-O1")
        before = cache.stats()
        b2 = compile_binary(p, "gcc", "-O1")
        after = cache.stats()
        assert b2.kernel is b1.kernel  # the bound kernel itself is reused
        assert after.kernel_hits == before.kernel_hits + 1
        # same-shape vendors share one structural template
        b3 = compile_binary(p, "clang", "-O1")
        assert b3.kernel.code is b1.kernel.code


class TestAcceptanceSweep:
    def test_500_programs_span_all_families_and_conform(self):
        """The acceptance bar in one number: across the family sweeps,
        >= 500 distinct seeded programs all pass check_conformance and the
        race oracle, and every family appears."""
        total = 0
        family_seen: dict[str, int] = {}
        for name in sorted(FAMILIES):
            gen = ProgramGenerator(_family_cfg(name), seed=_SEED)
            feat = FAMILIES[name][1]
            for i in range(_PER_FAMILY):
                p = gen.generate(i)
                check_conformance(p)
                assert not find_races(p)
                f = extract_features(p)
                if getattr(f, feat) > 0:
                    family_seen[name] = family_seen.get(name, 0) + 1
                total += 1
        assert total >= 500
        assert set(family_seen) == set(FAMILIES), family_seen
