"""Tests for the simulated OpenMP runtime (RegionExecutor)."""

import math

import pytest

from repro.errors import SimulatedCrash, SimulatedHang
from repro.sim.counters import PerfCounters
from repro.sim.events import ProfileRecorder
from repro.sim.lower import CostState, RegionMeta
from repro.sim.runtime import RegionExecutor
from repro.vendors import CLANG, GCC, INTEL


def _executor(vendor=GCC, *, regions=None, threads=4, **kw):
    regions = regions if regions is not None else [RegionMeta(n_threads=threads)]
    cost = CostState()
    return RegionExecutor(vendor, regions, cost, PerfCounters(),
                          ProfileRecorder(binary_name="t"),
                          wrap_fn=lambda x: x, **kw), cost


class TestChunking:
    @pytest.mark.parametrize("n,threads", [(0, 4), (1, 4), (13, 4), (16, 4),
                                           (100, 32), (3, 8)])
    def test_chunks_partition_range(self, n, threads):
        ex, _ = _executor(threads=threads)
        ex.region_enter(0)
        covered = []
        for tid in range(threads):
            lo, hi = ex.chunk(tid, n)
            assert lo <= hi
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    def test_chunks_are_balanced(self):
        ex, _ = _executor(threads=4)
        ex.region_enter(0)
        sizes = [hi - lo for lo, hi in (ex.chunk(t, 14) for t in range(4))]
        assert max(sizes) - min(sizes) <= 1


class TestRegionAccounting:
    def test_elapsed_is_max_thread_plus_overheads(self):
        ex, cost = _executor(threads=2)
        ex.region_enter(0)
        # thread 0 computes 1000 cycles, thread 1 computes 3000
        for tid, work in ((0, 1000.0), (1, 3000.0)):
            ex.thread_begin(tid)
            cost.cy += work
            ex.thread_end(tid)
        before = cost.cy
        ex.region_exit(0, 0.0, None, None)
        # cycles were replaced by snapshot + elapsed, not the 4000 sum
        region_elapsed = cost.cy
        assert region_elapsed < 4000.0 + ex.vendor.runtime.spawn_cold_cycles \
            + 100_000
        assert region_elapsed >= 3000.0  # at least the slowest thread

    def test_critical_time_serializes(self):
        ex, cost = _executor(threads=2)
        ex.region_enter(0)
        for tid in (0, 1):
            ex.thread_begin(tid)
            ex.crit_enter()
            cost.ccy += 500.0
            ex.crit_exit()
            ex.thread_end(tid)
        ex.region_exit(0, 0.0, None, None)
        # both threads' critical bodies must appear in elapsed (serialized)
        assert cost.cy >= 1000.0
        assert cost.ccy == 0.0  # folded back

    def test_cold_then_warm_spawn(self):
        ex, _ = _executor(vendor=GCC)
        ex.region_enter(0)
        ex.region_exit(0, 0.0, None, None)
        pf_after_cold = ex.counters.page_faults
        ex.region_enter(0)
        ex.region_exit(0, 0.0, None, None)
        pf_after_warm = ex.counters.page_faults
        assert pf_after_cold == GCC.runtime.spawn_cold_page_faults
        assert pf_after_warm - pf_after_cold == GCC.runtime.spawn_warm_page_faults

    def test_clang_thrash_mode_engages_after_threshold(self):
        ex, cost = _executor(vendor=CLANG)
        costs = []
        for i in range(CLANG.runtime.spawn_thrash_threshold + 3):
            before = cost.cy
            ex.region_enter(0)
            ex.region_exit(0, 0.0, None, None)
            costs.append(cost.cy - before)
        # entries beyond the threshold pay the thrash cost
        assert costs[-1] > costs[2] * 3

    def test_nested_region_enter_rejected(self):
        ex, _ = _executor()
        ex.region_enter(0)
        with pytest.raises(RuntimeError):
            ex.region_enter(0)

    def test_event_outside_region_rejected(self):
        ex, _ = _executor()
        with pytest.raises(RuntimeError):
            ex.crit_enter()


class TestReductionCombining:
    def test_linear_combine_order(self):
        ex, _ = _executor(vendor=GCC)
        out = ex._combine_reduction(1.0, [2.0, 3.0, 4.0], "+", tree=False)
        assert out == ((1.0 + 2.0) + 3.0) + 4.0

    def test_tree_combine_order(self):
        ex, _ = _executor(vendor=INTEL)
        out = ex._combine_reduction(1.0, [2.0, 3.0, 4.0, 5.0], "+", tree=True)
        assert out == 1.0 + ((2.0 + 3.0) + (4.0 + 5.0))

    def test_orders_can_differ_numerically(self):
        ex, _ = _executor()
        partials = [1e16, 1.0, 1.0, 1.0, -1e16, 1.0, 1.0, 1.0]
        lin = ex._combine_reduction(0.0, partials, "+", tree=False)
        tree = ex._combine_reduction(0.0, partials, "+", tree=True)
        assert lin != tree

    def test_product_combine(self):
        ex, _ = _executor()
        assert ex._combine_reduction(2.0, [3.0, 4.0], "*", tree=False) == 24.0

    def test_empty_partials(self):
        ex, _ = _executor()
        assert ex._combine_reduction(7.0, [], "+", tree=True) == 7.0


class TestFaults:
    def test_crash_on_region_enter(self):
        ex, _ = _executor(crash_active=True)
        with pytest.raises(SimulatedCrash) as exc:
            ex.region_enter(0)
        assert exc.value.signal_name == "SIGSEGV"

    def test_crash_in_prologue_when_no_regions(self):
        ex, _ = _executor(regions=[], crash_active=True)
        with pytest.raises(SimulatedCrash):
            ex.prologue()

    def test_no_crash_when_inactive(self):
        ex, _ = _executor(crash_active=False)
        ex.prologue()
        ex.region_enter(0)

    def test_hang_after_threshold_acquires(self):
        ex, _ = _executor(vendor=INTEL, threads=32, hang_active=True)
        ex.region_enter(0)
        ex.thread_begin(0)
        with pytest.raises(SimulatedHang) as exc:
            for _ in range(INTEL.faults.hang_min_acquires + 1):
                ex.crit_enter()
                ex.crit_exit()
        states = exc.value.thread_states
        assert sum(len(v) for v in states.values()) == 32
        assert "__kmp_eq_4" in states
        assert INTEL.symbols.yield_ in states

    def test_no_hang_when_inactive(self):
        ex, _ = _executor(vendor=INTEL, hang_active=False)
        ex.region_enter(0)
        ex.thread_begin(0)
        for _ in range(INTEL.faults.hang_min_acquires + 10):
            ex.crit_enter()


class TestWaitSideEffects:
    def test_intel_lock_waiting_generates_counters(self):
        ex, _ = _executor(vendor=INTEL)
        ex._apply_wait_side_effects(10_000_000.0, reschedules=True)
        assert ex.counters.context_switches > 100
        assert ex.counters.cpu_migrations > 50
        assert ex.c.ins > 1_000_000

    def test_barrier_waiting_only_spins(self):
        ex, _ = _executor(vendor=INTEL)
        ex._apply_wait_side_effects(10_000_000.0, reschedules=False)
        assert ex.counters.context_switches == 0
        assert ex.counters.cpu_migrations == 0
        assert ex.c.ins > 1_000_000  # spinning still burns instructions

    def test_gcc_waiting_is_quiet(self):
        ex, _ = _executor(vendor=GCC)
        ex._apply_wait_side_effects(10_000_000.0, reschedules=True)
        assert ex.counters.context_switches < 100
        assert ex.counters.cpu_migrations == 0

    def test_profile_receives_wait_symbols(self):
        ex, cost = _executor(vendor=INTEL, threads=2)
        ex.region_enter(0)
        for tid in (0, 1):
            ex.thread_begin(tid)
            ex.crit_enter()
            cost.ccy += 10_000.0
            ex.crit_exit()
            ex.thread_end(tid)
        ex.region_exit(0, 0.0, None, None)
        symbols = {sym for _, sym in ex.profile.samples}
        assert INTEL.symbols.wait_primary in symbols
        assert INTEL.symbols.lock in symbols
