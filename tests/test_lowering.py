"""Tests for AST -> Python lowering: semantics and cost accounting.

Hand-built mini programs with known answers exercise each construct the
lowerer supports; full generated programs verify executability at scale.
"""

import math

import pytest

from repro.config import MachineConfig
from repro.core.nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Block,
    BoolExpr,
    DeclAssign,
    ForLoop,
    FPNumeral,
    IfBlock,
    IntNumeral,
    MathCall,
    ModIdx,
    OmpCritical,
    OmpParallel,
    Program,
    ThreadIdx,
    VarRef,
)
from repro.core.types import (
    AssignOpKind,
    BinOpKind,
    BoolOpKind,
    FPType,
    OmpClauses,
    ReductionOp,
    Variable,
    VarKind,
)
from repro.driver.execution import run_binary
from repro.core.inputs import TestInput
from repro.vendors.toolchain import compile_binary


def _mk(body_fn, *, fp=FPType.DOUBLE, extra_params=(), threads=4):
    comp = Variable("comp", fp, VarKind.COMP)
    params = [comp, *extra_params]
    body = body_fn(comp)
    return Program(name="mini", seed=0, fp_type=fp, comp=comp, params=params,
                   body=body, num_threads=threads)


def _input(program, **values) -> TestInput:
    inp = TestInput(program_name=program.name, index=0)
    defaults = {}
    for p in program.params:
        defaults[p.name] = values.get(p.name, 0 if p.is_int else 0.0)
    inp.values = defaults
    return inp


def _run(program, vendor="clang", **values):
    binary = compile_binary(program, vendor, "-O3")
    return run_binary(binary, _input(program, **values), MachineConfig())


class TestScalarSemantics:
    def test_simple_assignment(self):
        p = _mk(lambda comp: Block([
            Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(2.5))]))
        assert _run(p).comp == 2.5

    def test_compound_ops(self):
        p = _mk(lambda comp: Block([
            Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(10.0)),
            Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN, FPNumeral(5.0)),
            Assignment(VarRef(comp), AssignOpKind.MUL_ASSIGN, FPNumeral(2.0)),
            Assignment(VarRef(comp), AssignOpKind.SUB_ASSIGN, FPNumeral(6.0)),
            Assignment(VarRef(comp), AssignOpKind.DIV_ASSIGN, FPNumeral(8.0)),
        ]))
        assert _run(p).comp == ((10 + 5) * 2 - 6) / 8

    def test_division_by_zero_yields_inf(self):
        p = _mk(lambda comp: Block([
            Assignment(VarRef(comp), AssignOpKind.ASSIGN,
                       BinOp(BinOpKind.DIV, FPNumeral(1.0), FPNumeral(0.0)))]))
        assert _run(p).comp == math.inf

    def test_math_call(self):
        p = _mk(lambda comp: Block([
            Assignment(VarRef(comp), AssignOpKind.ASSIGN,
                       MathCall("sqrt", FPNumeral(16.0)))]))
        assert _run(p).comp == 4.0

    def test_decl_assign_temp(self):
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        p = _mk(lambda comp: Block([
            DeclAssign(tmp, FPNumeral(3.0)),
            Assignment(VarRef(comp), AssignOpKind.ASSIGN,
                       BinOp(BinOpKind.MUL, VarRef(tmp), FPNumeral(7.0)))]))
        assert _run(p).comp == 21.0

    def test_param_value_flows_in(self):
        x = Variable("var_1", FPType.DOUBLE, VarKind.PARAM)
        p = _mk(lambda comp: Block([
            Assignment(VarRef(comp), AssignOpKind.ASSIGN, VarRef(x))]),
            extra_params=[x])
        assert _run(p, var_1=42.0).comp == 42.0


class TestControlFlow:
    def test_if_taken_and_not_taken(self):
        x = Variable("var_1", FPType.DOUBLE, VarKind.PARAM)

        def body(comp):
            cond = BoolExpr(VarRef(x), BoolOpKind.LT, FPNumeral(1.0))
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(0.0)),
                IfBlock(cond, Block([Assignment(VarRef(comp),
                                                AssignOpKind.ASSIGN,
                                                FPNumeral(9.0))]))])

        p = _mk(body, extra_params=[x])
        assert _run(p, var_1=0.5).comp == 9.0
        assert _run(p, var_1=1.5).comp == 0.0

    def test_nan_comparison_is_false(self):
        x = Variable("var_1", FPType.DOUBLE, VarKind.PARAM)

        def body(comp):
            cond = BoolExpr(VarRef(x), BoolOpKind.LT, FPNumeral(1.0))
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(0.0)),
                IfBlock(cond, Block([Assignment(VarRef(comp),
                                                AssignOpKind.ASSIGN,
                                                FPNumeral(9.0))]))])

        p = _mk(body, extra_params=[x])
        assert _run(p, var_1=math.nan).comp == 0.0

    def test_serial_loop_with_literal_bound(self):
        lv = Variable("i_1", None, VarKind.LOOP)

        def body(comp):
            inc = Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN,
                             FPNumeral(1.0))
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(0.0)),
                ForLoop(lv, IntNumeral(17), Block([inc]))])

        assert _run(_mk(body)).comp == 17.0

    def test_loop_with_param_bound(self):
        n = Variable("var_n", None, VarKind.PARAM)
        lv = Variable("i_1", None, VarKind.LOOP)

        def body(comp):
            inc = Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN,
                             FPNumeral(2.0))
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(0.0)),
                ForLoop(lv, VarRef(n), Block([inc]))])

        p = _mk(body, extra_params=[n])
        assert _run(p, var_n=6).comp == 12.0

    def test_loop_var_as_fp_term(self):
        lv = Variable("i_1", None, VarKind.LOOP)

        def body(comp):
            inc = Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN, VarRef(lv))
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(0.0)),
                ForLoop(lv, IntNumeral(5), Block([inc]))])

        assert _run(_mk(body)).comp == 0 + 1 + 2 + 3 + 4


class TestArrays:
    def _arr(self, size=8):
        return Variable("var_a", FPType.DOUBLE, VarKind.PARAM, is_array=True,
                        array_size=size)

    def test_array_fill_and_read(self):
        arr = self._arr()
        p = _mk(lambda comp: Block([
            Assignment(VarRef(comp), AssignOpKind.ASSIGN,
                       ArrayRef(arr, IntNumeral(3)))]), extra_params=[arr])
        assert _run(p, var_a=1.25).comp == 1.25

    def test_array_write_with_mod_index(self):
        arr = self._arr(4)
        lv = Variable("i_1", None, VarKind.LOOP)

        def body(comp):
            w = Assignment(ArrayRef(arr, ModIdx(VarRef(lv), 4)),
                           AssignOpKind.ADD_ASSIGN, FPNumeral(1.0))
            r = Assignment(VarRef(comp), AssignOpKind.ASSIGN,
                           ArrayRef(arr, IntNumeral(1)))
            return Block([ForLoop(lv, IntNumeral(8), Block([w])), r])

        # 8 iterations over 4 slots: each slot incremented twice
        assert _run(_mk(body, extra_params=[arr]), var_a=0.0).comp == 2.0

    def test_runs_do_not_share_array_state(self):
        arr = self._arr(4)

        def body(comp):
            w = Assignment(ArrayRef(arr, IntNumeral(0)),
                           AssignOpKind.ADD_ASSIGN, FPNumeral(1.0))
            r = Assignment(VarRef(comp), AssignOpKind.ASSIGN,
                           ArrayRef(arr, IntNumeral(0)))
            return Block([w, r])

        p = _mk(body, extra_params=[arr])
        binary = compile_binary(p, "gcc", "-O3")
        inp = _input(p, var_a=0.0)
        r1 = run_binary(binary, inp, MachineConfig())
        r2 = run_binary(binary, inp, MachineConfig())
        assert r1.comp == r2.comp == 1.0


def _simple_region(comp, *, reduction=None, threads=4, trip=8,
                   private=None, extra_stmts=()):
    x = private or Variable("var_p", FPType.DOUBLE, VarKind.PARAM)
    clauses = OmpClauses(num_threads=threads, reduction=reduction,
                         private=[x])
    lv = Variable("i_1", None, VarKind.LOOP)
    if reduction is not None:
        upd = Assignment(VarRef(comp),
                         AssignOpKind.ADD_ASSIGN if reduction is ReductionOp.SUM
                         else AssignOpKind.MUL_ASSIGN,
                         FPNumeral(1.0 if reduction is ReductionOp.SUM else 2.0))
    else:
        upd = Assignment(VarRef(x), AssignOpKind.ADD_ASSIGN, FPNumeral(1.0))
    loop = ForLoop(lv, IntNumeral(trip), Block([upd, *extra_stmts]),
                   omp_for=True)
    lead = Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0))
    return OmpParallel(clauses, Block([lead, loop])), x


class TestParallelRegions:
    def test_sum_reduction_exact(self):
        def body(comp):
            region, x = _simple_region(comp, reduction=ReductionOp.SUM,
                                       trip=12)
            self._x = x
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(5.0)),
                region])

        p = _mk(body)
        p.params.append(self._x)
        # 12 iterations of comp += 1 under reduction(+), initial 5
        assert _run(p).comp == 17.0

    def test_prod_reduction(self):
        def body(comp):
            region, x = _simple_region(comp, reduction=ReductionOp.PROD,
                                       trip=5)
            self._x = x
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(1.0)),
                region])

        p = _mk(body)
        p.params.append(self._x)
        assert _run(p).comp == 2.0 ** 5

    def test_private_does_not_leak_out(self):
        def body(comp):
            region, x = _simple_region(comp, trip=8)
            self._x = x
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(0.0)),
                region,
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, VarRef(x))])

        p = _mk(body)
        p.params.append(self._x)
        # var_p is private: its outer value (the input, 3.5) must survive
        assert _run(p, var_p=3.5).comp == 3.5

    def test_tid_array_writes_land_in_own_slots(self):
        arr = Variable("var_a", FPType.DOUBLE, VarKind.PARAM, is_array=True,
                       array_size=16)
        x = Variable("var_p", FPType.DOUBLE, VarKind.PARAM)

        def body(comp):
            clauses = OmpClauses(num_threads=4, private=[x])
            lv = Variable("i_1", None, VarKind.LOOP)
            w = Assignment(ArrayRef(arr, ThreadIdx()), AssignOpKind.ADD_ASSIGN,
                           FPNumeral(1.0))
            loop = ForLoop(lv, IntNumeral(4), Block([w]))  # serial in region
            lead = Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0))
            region = OmpParallel(clauses, Block([lead, loop]))
            reads = [Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN,
                                ArrayRef(arr, IntNumeral(t)))
                     for t in range(4)]
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(0.0)),
                region, *reads])

        p = _mk(body, extra_params=[arr, x])
        # each of 4 threads runs the serial loop: own slot += 4
        assert _run(p, var_a=0.0).comp == 16.0

    def test_critical_comp_updates_serialize_correctly(self):
        x = Variable("var_p", FPType.DOUBLE, VarKind.PARAM)

        def body(comp):
            clauses = OmpClauses(num_threads=4, private=[x])
            lv = Variable("i_1", None, VarKind.LOOP)
            crit = OmpCritical(Block([
                Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN,
                           FPNumeral(1.0))]))
            loop = ForLoop(lv, IntNumeral(10), Block([crit]), omp_for=True)
            lead = Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0))
            region = OmpParallel(clauses, Block([lead, loop]))
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(0.0)),
                region])

        p = _mk(body, extra_params=[x])
        assert _run(p).comp == 10.0

    def test_omp_for_covers_every_iteration_exactly_once(self):
        # trip not divisible by thread count: chunking must still cover all
        x = Variable("var_p", FPType.DOUBLE, VarKind.PARAM)

        def body(comp):
            region, _ = _simple_region(comp, reduction=ReductionOp.SUM,
                                       trip=13, threads=4, private=x)
            return Block([
                Assignment(VarRef(comp), AssignOpKind.ASSIGN, FPNumeral(0.0)),
                region])

        p = _mk(body, extra_params=[x])
        assert _run(p).comp == 13.0


class TestFloat32Programs:
    def test_float_program_rounds_per_op(self):
        x = Variable("var_1", FPType.FLOAT, VarKind.PARAM)
        p = _mk(lambda comp: Block([
            Assignment(VarRef(comp), AssignOpKind.ASSIGN,
                       BinOp(BinOpKind.ADD, VarRef(x), FPNumeral(1.0)))]),
            fp=FPType.FLOAT, extra_params=[x])
        # 0.1f + 1.0f in binary32
        from repro.sim.values import f32

        assert _run(p, var_1=0.1).comp == f32(f32(0.1) + 1.0)


class TestVendorDivergence:
    def _sub_pattern_program(self):
        # comp = a*b - c : contracted only by SimGCC (aggressive)
        a = Variable("var_1", FPType.DOUBLE, VarKind.PARAM)
        b = Variable("var_2", FPType.DOUBLE, VarKind.PARAM)
        c = Variable("var_3", FPType.DOUBLE, VarKind.PARAM)
        p = _mk(lambda comp: Block([
            Assignment(VarRef(comp), AssignOpKind.ASSIGN,
                       BinOp(BinOpKind.SUB,
                             BinOp(BinOpKind.MUL, VarRef(a), VarRef(b)),
                             VarRef(c)))]), extra_params=[a, b, c])
        return p

    def test_gcc_contracts_where_clang_does_not(self):
        p = self._sub_pattern_program()
        vals = dict(var_1=1.0 + 2.0 ** -30, var_2=1.0 + 2.0 ** -23,
                    var_3=(1.0 + 2.0 ** -30) * (1.0 + 2.0 ** -23))
        gcc = _run(p, "gcc", **vals).comp
        clang = _run(p, "clang", **vals).comp
        intel = _run(p, "intel", **vals).comp
        assert clang == intel  # same LLVM lowering
        assert gcc != clang    # -ffp-contract=fast fuses the subtraction

    def test_intel_ftz_flushes_subnormal_inputs(self):
        x = Variable("var_1", FPType.DOUBLE, VarKind.PARAM)
        p = _mk(lambda comp: Block([
            Assignment(VarRef(comp), AssignOpKind.ASSIGN, VarRef(x))]),
            extra_params=[x])
        sub = 1e-310
        assert _run(p, "gcc", var_1=sub).comp == sub
        assert _run(p, "intel", var_1=sub).comp == 0.0


class TestGeneratedProgramsExecute:
    def test_whole_stream_runs_on_all_vendors(self, program_stream, input_gen,
                                              machine):
        for p in program_stream[:6]:
            inp = input_gen.generate(p, 0)
            outs = {}
            for vendor in ("gcc", "clang", "intel"):
                binary = compile_binary(p, vendor, "-O3")
                rec = run_binary(binary, inp, machine)
                assert rec.ok
                assert rec.time_us > 0
                outs[vendor] = rec.comp
            assert len(outs) == 3

    def test_execution_deterministic(self, program_stream, input_gen, machine):
        p = program_stream[0]
        inp = input_gen.generate(p, 0)
        binary = compile_binary(p, "intel", "-O3")
        a = run_binary(binary, inp, machine)
        b = run_binary(binary, inp, machine)
        assert (a.comp == b.comp or (math.isnan(a.comp) and math.isnan(b.comp)))
        assert a.time_us == b.time_us
        assert a.counters.as_dict() == b.counters.as_dict()
