"""Program sources: provenance specs, mutation operators, adaptive
planning, and the byte-identity hard gate for the default source."""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle

import pytest

from repro.analysis.buckets import directive_vector
from repro.codegen.emit_main import emit_translation_unit
from repro.config import (
    PROGRAM_SOURCES,
    CampaignConfig,
    ConfigError,
    GeneratorConfig,
    campaign_from_dict,
    campaign_to_json,
)
from repro.core.features import extract_features
from repro.core.generator import ProgramGenerator
from repro.core.grammar import check_conformance
from repro.core.races import find_races
from repro.core.surgery import reads_undeclared_locals
from repro.corpus import (
    MUTATORS,
    AdaptiveSource,
    CoverageMap,
    MutationSource,
    ProgramSpec,
    RandomSource,
    corpus_from_triage,
    create_source,
    materialize_spec,
    mutator_names,
    plan_specs,
    shape_fingerprint,
)
from repro.driver.engine import ExecutionPlan, execute_unit, plan_units
from repro.fleet.store import campaign_key
from repro.rng import Rng


@pytest.fixture(scope="module")
def adaptive_cfg(fast_gen_cfg) -> CampaignConfig:
    """The pinned reference grid for adaptive-vs-random comparisons."""
    return CampaignConfig(n_programs=12, inputs_per_program=1, seed=777,
                          generator=fast_gen_cfg, directive_mix="paper",
                          program_source="adaptive")


# ----------------------------------------------------------------------
# ProgramSpec: the provenance record
# ----------------------------------------------------------------------

class TestProgramSpec:
    def test_round_trips_through_dict_including_parent_chain(self):
        parent = ProgramSpec(source="random", index=3)
        spec = ProgramSpec(source="adaptive", index=7, salt=2,
                           flags=(("enable_tasks", True),
                                  ("enable_atomic", False)),
                           op="dup-stmt", parent=parent,
                           parent_fingerprint="sdeadbeef")
        assert ProgramSpec.from_dict(spec.to_dict()) == spec
        # dict form is JSON-safe
        assert ProgramSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_defaults_are_omitted_from_dict_form(self):
        assert ProgramSpec(source="random", index=5).to_dict() == {
            "source": "random", "index": 5}

    def test_specs_are_picklable(self):
        spec = ProgramSpec(source="mutation", index=1, op="drop-stmt",
                           parent=ProgramSpec(source="random", index=0))
        assert pickle.loads(pickle.dumps(spec)) == spec


# ----------------------------------------------------------------------
# the hard gate: default source == historical contract, byte for byte
# ----------------------------------------------------------------------

class TestDefaultSourceByteIdentity:
    #: pinned before this refactor existed — these literals are the
    #: proof that adding program sources changed nothing for existing
    #: configs, checkpoints, and stores
    PRE_REFACTOR_DEFAULT_KEY = "c677e61cba706"
    PRE_REFACTOR_FLEET_KEY = "c3086e39fdfcb"
    PRE_REFACTOR_JSON_SHA = (
        "80e102f98a65f80dbe3491e91d1ac9f0ad8cca292e8153f57852f99c113d3c27")

    def test_default_campaign_key_unchanged(self):
        assert campaign_key(CampaignConfig()) == self.PRE_REFACTOR_DEFAULT_KEY

    def test_fleet_fixture_campaign_key_unchanged(self, fleet_cfg):
        assert campaign_key(fleet_cfg) == self.PRE_REFACTOR_FLEET_KEY

    def test_default_config_json_unchanged(self):
        doc = campaign_to_json(CampaignConfig())
        assert hashlib.sha256(doc.encode()).hexdigest() == \
            self.PRE_REFACTOR_JSON_SHA
        assert "program_source" not in doc
        assert "mutation_corpus" not in doc

    def test_legacy_config_dict_still_loads(self):
        data = json.loads(campaign_to_json(CampaignConfig(seed=5)))
        assert "program_source" not in data
        cfg = campaign_from_dict(data)
        assert cfg.program_source == "random"
        assert cfg.mutation_corpus == ()

    def test_random_source_matches_program_generator_stream(self, fast_gen_cfg):
        cfg = CampaignConfig(n_programs=4, seed=777, generator=fast_gen_cfg)
        source = RandomSource(cfg)
        legacy = ProgramGenerator(cfg.generator, seed=cfg.seed)
        for i in range(4):
            spec = source.spec(i)
            assert spec == ProgramSpec(source="random", index=i)
            assert emit_translation_unit(source.materialize(spec)) == \
                emit_translation_unit(legacy.generate(i))

    def test_default_units_carry_no_spec(self, fast_campaign_cfg):
        assert plan_specs(fast_campaign_cfg) is None
        assert all(u.spec is None for u in plan_units(fast_campaign_cfg))


# ----------------------------------------------------------------------
# campaign identity classification (declarative campaign_key)
# ----------------------------------------------------------------------

class TestIdentityClassification:
    def test_every_field_is_classified(self):
        names = {f.name for f in dataclasses.fields(CampaignConfig)}
        classified = (CampaignConfig.IDENTITY_FIELDS
                      | CampaignConfig.EXECUTION_FIELDS)
        assert classified == names, (
            "every CampaignConfig field must be classified identity or "
            f"execution; unclassified: {sorted(names - classified)}, "
            f"stale: {sorted(classified - names)}")
        assert not (CampaignConfig.IDENTITY_FIELDS
                    & CampaignConfig.EXECUTION_FIELDS)

    def test_unclassified_field_is_a_hard_error(self, monkeypatch):
        monkeypatch.setattr(
            CampaignConfig, "IDENTITY_FIELDS",
            CampaignConfig.IDENTITY_FIELDS - {"seed"})
        with pytest.raises(TypeError, match="seed"):
            campaign_key(CampaignConfig())

    def test_program_source_is_identity_bearing(self):
        assert "program_source" in CampaignConfig.IDENTITY_FIELDS
        assert "mutation_corpus" in CampaignConfig.IDENTITY_FIELDS
        base = CampaignConfig()
        assert campaign_key(dataclasses.replace(
            base, program_source="adaptive")) != campaign_key(base)
        assert campaign_key(dataclasses.replace(
            base, mutation_corpus=(1, 2))) != campaign_key(base)

    def test_execution_fields_stay_neutral(self):
        base = CampaignConfig()
        variant = dataclasses.replace(base, engine="process", jobs=7,
                                      chunk_size=3, kernel_backend="interp",
                                      output_dir="/tmp/x")
        assert campaign_key(variant) == campaign_key(base)

    def test_bad_program_source_rejected(self):
        with pytest.raises(ConfigError, match="program_source"):
            CampaignConfig(program_source="genetic")
        with pytest.raises(ConfigError, match="mutation_corpus"):
            CampaignConfig(mutation_corpus=(-1,))

    def test_source_round_trips_through_json(self):
        cfg = CampaignConfig(program_source="mutation",
                             mutation_corpus=(4, 9))
        rt = campaign_from_dict(json.loads(campaign_to_json(cfg)))
        assert rt == cfg
        assert isinstance(rt.mutation_corpus, tuple)


# ----------------------------------------------------------------------
# coverage signal
# ----------------------------------------------------------------------

class TestCoverage:
    def test_fingerprint_ignores_names_and_constants(self, program_stream):
        from repro.core.surgery import clone_program

        program = program_stream[0]
        clone = clone_program(program)
        clone.name = "something_else"
        assert shape_fingerprint(clone) == shape_fingerprint(program)

    def test_fingerprint_sees_structure(self, program_stream):
        fps = {shape_fingerprint(p) for p in program_stream}
        assert len(fps) > 1  # not a constant function

    def test_coverage_map_accumulates_pairs(self, program_stream):
        cov = CoverageMap()
        for p in program_stream[:4]:
            cov.record(p)
        assert cov.total == 4
        assert 1 <= len(cov.pairs) <= 4
        novel = program_stream[5]
        if cov.is_novel(novel):
            before = len(cov.pairs)
            cov.record(novel)
            assert len(cov.pairs) == before + 1


# ----------------------------------------------------------------------
# mutation operators
# ----------------------------------------------------------------------

class TestMutators:
    @pytest.mark.parametrize("name", sorted(MUTATORS))
    def test_operator_is_pure_and_deterministic(self, name, program_stream,
                                                fast_gen_cfg):
        program = program_stream[1]
        before = emit_translation_unit(program)
        out1 = MUTATORS[name](program, Rng(9).child("m"), fast_gen_cfg)
        out2 = MUTATORS[name](program, Rng(9).child("m"), fast_gen_cfg)
        # parent untouched regardless of outcome
        assert emit_translation_unit(program) == before
        if out1 is None:
            assert out2 is None
        else:
            assert emit_translation_unit(out1) == emit_translation_unit(out2)

    def test_some_operator_applies_to_every_stream_program(
            self, program_stream, fast_gen_cfg):
        for program in program_stream[:6]:
            applied = [n for n in mutator_names()
                       if MUTATORS[n](program, Rng(3).child(n),
                                      fast_gen_cfg) is not None]
            assert applied, f"no operator applies to {program.name}"


# ----------------------------------------------------------------------
# mutation source
# ----------------------------------------------------------------------

class TestMutationSource:
    def test_specs_record_parent_and_replay_exactly(self, fast_gen_cfg):
        cfg = CampaignConfig(n_programs=4, seed=777, generator=fast_gen_cfg,
                             program_source="mutation")
        source = MutationSource(cfg)
        for i in range(4):
            spec = source.spec(i)
            assert spec.source == "mutation"
            if spec.op is not None:
                assert spec.parent is not None
                assert spec.parent_fingerprint is not None
            a = emit_translation_unit(source.materialize(spec))
            b = emit_translation_unit(materialize_spec(cfg, spec))
            assert a == b

    def test_mutants_stay_inside_grammar_and_race_policy(self, fast_gen_cfg):
        cfg = CampaignConfig(n_programs=6, seed=1234, generator=fast_gen_cfg,
                             program_source="mutation")
        source = MutationSource(cfg)
        for i in range(6):
            program = source.materialize(source.spec(i))
            check_conformance(program)  # raises on violation
            assert not reads_undeclared_locals(program)
            assert not find_races(program)
            assert program.name == f"test_{cfg.seed}_{i}"

    def test_corpus_indices_pick_parents(self, fast_gen_cfg):
        cfg = CampaignConfig(n_programs=4, seed=777, generator=fast_gen_cfg,
                             program_source="mutation",
                             mutation_corpus=(2, 5))
        source = MutationSource(cfg)
        for i in range(4):
            spec = source.spec(i)
            if spec.op is not None:
                assert spec.parent.index in (2, 5)

    def test_corpus_from_triage_reads_summary(self, tmp_path):
        (tmp_path / "summary.json").write_text(json.dumps({
            "buckets": [
                {"members": [{"program_index": 7}, {"program_index": 2}]},
                {"members": [{"program_index": 7}]},
            ]}))
        assert corpus_from_triage(tmp_path) == (2, 7)


# ----------------------------------------------------------------------
# adaptive source
# ----------------------------------------------------------------------

class TestAdaptiveSource:
    def test_replanning_is_deterministic(self, adaptive_cfg):
        specs1 = plan_specs(adaptive_cfg)
        specs2 = plan_specs(adaptive_cfg)
        assert specs1 == specs2
        srcs1 = [emit_translation_unit(materialize_spec(adaptive_cfg, s))
                 for s in specs1]
        srcs2 = [emit_translation_unit(materialize_spec(adaptive_cfg, s))
                 for s in specs2]
        assert srcs1 == srcs2

    def test_adaptive_covers_strictly_more_pairs_than_random(
            self, adaptive_cfg):
        random_cfg = dataclasses.replace(adaptive_cfg,
                                         program_source="random")
        cov_random, cov_adaptive = CoverageMap(), CoverageMap()
        gen = ProgramGenerator(random_cfg.generator, seed=random_cfg.seed)
        for i in range(random_cfg.n_programs):
            cov_random.record(gen.generate(i))
        for spec in plan_specs(adaptive_cfg):
            cov_adaptive.record(materialize_spec(adaptive_cfg, spec))
        assert cov_adaptive.total == cov_random.total
        assert len(cov_adaptive.pairs) > len(cov_random.pairs)

    def test_adaptive_programs_are_valid_and_uniformly_named(
            self, adaptive_cfg):
        for spec in plan_specs(adaptive_cfg)[:6]:
            program = materialize_spec(adaptive_cfg, spec)
            check_conformance(program)
            assert not find_races(program)
            assert program.name == f"test_{adaptive_cfg.seed}_{spec.index}"

    def test_spec_is_lazy_but_order_independent(self, adaptive_cfg):
        source = AdaptiveSource(adaptive_cfg)
        late = source.spec(5)
        fresh = AdaptiveSource(adaptive_cfg)
        assert fresh.spec(5) == late
        assert [fresh.spec(i) for i in range(6)] == \
            [source.spec(i) for i in range(6)]

    def test_create_source_dispatch(self, fast_gen_cfg):
        for name, cls in (("random", RandomSource),
                          ("mutation", MutationSource),
                          ("adaptive", AdaptiveSource)):
            cfg = CampaignConfig(generator=fast_gen_cfg,
                                 program_source=name)
            assert isinstance(create_source(cfg), cls)
        assert tuple(PROGRAM_SOURCES) == ("random", "mutation", "adaptive")


# ----------------------------------------------------------------------
# engine integration: units rebuild from spec alone
# ----------------------------------------------------------------------

class TestEngineIntegration:
    def test_units_carry_specs_for_adaptive(self, adaptive_cfg):
        units = plan_units(adaptive_cfg)
        assert [u.spec.index for u in units] == list(range(12))
        assert all(u.spec.source == "adaptive" for u in units)

    def test_execute_unit_rebuilds_from_pickled_unit(self, adaptive_cfg):
        cfg = dataclasses.replace(adaptive_cfg, n_programs=3)
        unit = plan_units(cfg)[2]
        wire_unit = pickle.loads(pickle.dumps(unit))  # the fleet transport
        plan = ExecutionPlan(config=cfg)
        a = execute_unit(plan, unit)
        b = execute_unit(plan, wire_unit)
        assert a.program_name == b.program_name == f"test_{cfg.seed}_2"
        assert [v.identity() for v in a.verdicts] == \
            [v.identity() for v in b.verdicts]

    def test_features_follow_the_materialized_program(self, adaptive_cfg):
        cfg = dataclasses.replace(adaptive_cfg, n_programs=2)
        unit = plan_units(cfg)[1]
        outcome = execute_unit(ExecutionPlan(config=cfg), unit)
        expected = extract_features(materialize_spec(cfg, unit.spec))
        assert outcome.features == expected
        assert directive_vector(outcome.features) == \
            directive_vector(expected)


# ----------------------------------------------------------------------
# fleet ≡ serial on an adaptive campaign — workers rebuild from the
# leased spec alone, no corpus files cross the wire
# ----------------------------------------------------------------------

class TestFleetEqualsSerialOnAdaptive:
    def test_queue_workers_match_serial_session(self, adaptive_cfg):
        from repro.fleet import WorkQueue, worker_loop
        from repro.harness.session import CampaignSession

        cfg = dataclasses.replace(adaptive_cfg, n_programs=6)
        serial = CampaignSession(cfg, engine="serial").run()

        plan = ExecutionPlan(config=cfg)
        queue = WorkQueue(plan, plan_units(cfg))
        assert worker_loop(queue, batch=2) == cfg.n_programs
        outcomes = dict(queue.collect())
        fleet_verdicts = [v for i in sorted(outcomes)
                          for v in outcomes[i].verdicts]
        assert [v.identity() for v in fleet_verdicts] == \
            [v.identity() for v in serial.verdicts]


# ----------------------------------------------------------------------
# store coverage reports and `repro-omp query --coverage`
# ----------------------------------------------------------------------

class TestCoverageReports:
    @pytest.fixture(scope="class")
    def coverage_store(self, adaptive_cfg, tmp_path_factory):
        from repro.fleet import ResultStore
        from repro.harness.session import CampaignSession

        db = tmp_path_factory.mktemp("covdb") / "cov.db"
        cids = {}
        with ResultStore(db) as store:
            for src in ("random", "adaptive"):
                cfg = dataclasses.replace(adaptive_cfg, n_programs=6,
                                          program_source=src)
                session = CampaignSession(cfg, engine="serial")
                session.run()
                cids[src], _ = store.record_session(session)
        return db, cids

    def test_store_coverage_rebuilds_from_identity(self, coverage_store):
        from repro.fleet import ResultStore

        db, cids = coverage_store
        with ResultStore(db) as store:
            random_cov = store.coverage(cids["random"])
            adaptive_cov = store.coverage(cids["adaptive"])
        assert random_cov["program_source"] == "random"
        assert adaptive_cov["program_source"] == "adaptive"
        assert random_cov["programs"] == adaptive_cov["programs"] == 6
        # the acceptance bar, measured end-to-end through the store
        assert adaptive_cov["distinct_pairs"] > random_cov["distinct_pairs"]

    def test_query_coverage_text_and_json(self, coverage_store, capsys):
        from repro.cli import main

        db, cids = coverage_store
        assert main(["query", "--store", str(db), "--coverage"]) == 0
        out = capsys.readouterr().out
        assert "source=random" in out and "source=adaptive" in out
        assert main(["query", "--store", str(db), "--coverage",
                     "--campaign", cids["adaptive"], "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert [r["campaign_id"] for r in reports] == [cids["adaptive"]]
        assert reports[0]["distinct_pairs"] >= 1
