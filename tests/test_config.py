"""Tests for configuration validation and (de)serialization."""

import pytest

from repro.config import (
    CampaignConfig,
    GeneratorConfig,
    MachineConfig,
    OutlierConfig,
    campaign_from_dict,
    campaign_to_json,
    load_campaign,
    save_campaign,
)
from repro.errors import ConfigError


class TestGeneratorConfig:
    def test_defaults_match_paper_section_va(self):
        cfg = GeneratorConfig()
        assert cfg.max_expression_size == 5
        assert cfg.max_nesting_levels == 3
        assert cfg.max_lines_in_block == 10
        assert cfg.array_size == 1000
        assert cfg.max_same_level_blocks == 3
        assert cfg.math_func_allowed is True
        assert cfg.math_func_probability == 0.01
        assert cfg.num_threads == 32

    @pytest.mark.parametrize("field,value", [
        ("max_expression_size", 0),
        ("max_nesting_levels", 0),
        ("max_lines_in_block", 0),
        ("array_size", 0),
        ("max_same_level_blocks", 0),
        ("math_func_probability", 1.5),
        ("loop_trip_min", 0),
        ("reduction_probability", -0.1),
        ("critical_probability", 2.0),
        ("num_threads", 0),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ConfigError):
            GeneratorConfig(**{field: value})

    def test_rejects_inverted_trip_range(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(loop_trip_min=10, loop_trip_max=5)

    def test_rejects_privatization_overflow(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(private_probability=0.7,
                            firstprivate_probability=0.7)


class TestMachineConfig:
    def test_paper_cluster_defaults(self):
        m = MachineConfig()
        assert m.cores == 36       # 2 x 18-core Xeon E5-2695
        assert m.ghz == 2.1
        assert m.cycles_per_us == pytest.approx(2100.0)

    @pytest.mark.parametrize("kw", [dict(cores=0), dict(ghz=0.0),
                                    dict(timeout_us=0.0)])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ConfigError):
            MachineConfig(**kw)


class TestOutlierConfig:
    def test_paper_thresholds(self):
        o = OutlierConfig()
        assert o.alpha == 0.2 and o.beta == 1.5 and o.min_time_us == 1000.0

    def test_beta_must_exceed_one(self):
        with pytest.raises(ConfigError):
            OutlierConfig(beta=1.0)

    def test_alpha_must_be_positive(self):
        with pytest.raises(ConfigError):
            OutlierConfig(alpha=0.0)


class TestCampaignConfig:
    def test_paper_grid(self):
        c = CampaignConfig()
        assert c.n_programs == 200
        assert c.inputs_per_program == 3
        assert c.compilers == ("gcc", "clang", "intel")
        assert c.total_runs == 1800
        assert c.opt_level == "-O3"

    def test_needs_two_compilers(self):
        with pytest.raises(ConfigError):
            CampaignConfig(compilers=("gcc",))

    def test_rejects_duplicate_compilers(self):
        with pytest.raises(ConfigError):
            CampaignConfig(compilers=("gcc", "gcc"))

    def test_rejects_unknown_opt_level(self):
        with pytest.raises(ConfigError):
            CampaignConfig(opt_level="-Ofast")


class TestSerialization:
    def test_roundtrip_via_json(self, tmp_path):
        cfg = CampaignConfig(n_programs=7, seed=99,
                             generator=GeneratorConfig(array_size=128),
                             outliers=OutlierConfig(alpha=0.3))
        path = tmp_path / "c.json"
        save_campaign(cfg, path)
        loaded = load_campaign(path)
        assert loaded == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            campaign_from_dict({"not_a_field": 1})

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_campaign(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{nope")
        with pytest.raises(ConfigError):
            load_campaign(p)

    def test_load_non_object(self, tmp_path):
        p = tmp_path / "arr.json"
        p.write_text("[1, 2]")
        with pytest.raises(ConfigError):
            load_campaign(p)

    def test_json_contains_paper_parameters(self):
        text = campaign_to_json(CampaignConfig())
        assert '"max_expression_size": 5' in text
        assert '"alpha": 0.2' in text


class TestDirectiveMixes:
    def test_every_preset_resolves(self):
        import json

        from repro.config import (
            DIRECTIVE_MIXES,
            CampaignConfig,
            apply_directive_mix,
            campaign_from_dict,
            campaign_to_json,
        )
        for name in DIRECTIVE_MIXES:
            cfg = CampaignConfig(directive_mix=name)
            for flag, value in DIRECTIVE_MIXES[name].items():
                assert getattr(cfg.generator, flag) is value, (name, flag)
            # serialization round-trips the resolved generator + mix name
            again = campaign_from_dict(json.loads(campaign_to_json(cfg)))
            assert again == cfg
            # applying a mix is idempotent
            assert apply_directive_mix(cfg.generator, name) == cfg.generator

    def test_unknown_mix_rejected(self):
        import pytest

        from repro.config import CampaignConfig
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="unknown directive mix"):
            CampaignConfig(directive_mix="bogus")

    def test_paper_mix_generates_only_listing2_constructs(self):
        from repro.config import GeneratorConfig, apply_directive_mix
        from repro.core.features import extract_features
        from repro.core.generator import ProgramGenerator

        cfg = apply_directive_mix(
            GeneratorConfig(max_total_iterations=4_000, loop_trip_max=60,
                            num_threads=8), "paper")
        gen = ProgramGenerator(cfg, seed=4242)
        for i in range(25):
            f = extract_features(gen.generate(i))
            assert f.n_parallel_for == 0
            assert f.n_atomic == f.n_single == f.n_barrier == 0
            assert f.n_collapse == f.n_scheduled == 0
            assert f.n_minmax_reductions == 0
