"""Integration tests: campaign runner, reports, result persistence."""

import json

import pytest

from repro.analysis.outliers import OutlierKind
from repro.config import CampaignConfig, GeneratorConfig
from repro.harness import (
    CampaignRunner,
    differential_test_single,
    dump_campaign_artifacts,
    read_verdict_rows,
    render_campaign_summary,
    render_counters_table,
    render_table1,
    render_versions_table,
    write_verdicts,
)
from repro.sim.counters import PerfCounters
from repro.vendors import CLANG, GCC, INTEL


@pytest.fixture(scope="module")
def small_campaign(fast_campaign_cfg):
    return CampaignRunner(fast_campaign_cfg).run()


class TestCampaignRunner:
    def test_grid_size(self, small_campaign, fast_campaign_cfg):
        cfg = fast_campaign_cfg
        assert len(small_campaign.verdicts) == \
            cfg.n_programs * cfg.inputs_per_program
        assert small_campaign.n_runs == cfg.total_runs

    def test_every_verdict_has_all_vendors(self, small_campaign,
                                           fast_campaign_cfg):
        for v in small_campaign.verdicts:
            assert {r.vendor for r in v.records} == \
                set(fast_campaign_cfg.compilers)

    def test_features_per_program(self, small_campaign, fast_campaign_cfg):
        assert len(small_campaign.features) == fast_campaign_cfg.n_programs

    def test_deterministic_across_runs(self, fast_campaign_cfg,
                                       small_campaign):
        again = CampaignRunner(fast_campaign_cfg).run()
        a = [(v.program_name, v.input_index,
              sorted(str(o) for o in v.outliers),
              [repr(r.comp) for r in v.records])
             for v in small_campaign.verdicts]
        b = [(v.program_name, v.input_index,
              sorted(str(o) for o in v.outliers),
              [repr(r.comp) for r in v.records])
             for v in again.verdicts]
        assert a == b

    def test_progress_callback_per_test(self, fast_campaign_cfg):
        seen = []
        CampaignRunner(fast_campaign_cfg).run(
            progress=lambda done, total: seen.append((done, total)))
        n_tests = (fast_campaign_cfg.n_programs *
                   fast_campaign_cfg.inputs_per_program)
        # fires once per differential test (program x input), monotonically
        assert seen == [(i + 1, n_tests) for i in range(n_tests)]

    def test_race_filtering_in_limitation_mode(self):
        gen = GeneratorConfig(allow_data_races=True,
                              max_total_iterations=3_000, loop_trip_max=50,
                              num_threads=8)
        cfg = CampaignConfig(n_programs=25, inputs_per_program=1,
                             seed=20240915, generator=gen)
        result = CampaignRunner(cfg).run()
        # the Section III-E limitation produces races; the harness filters
        assert len(result.race_filtered) >= 1
        assert len(result.features) == 25 - len(result.race_filtered)

    def test_iter_tests_matches_grid(self, fast_campaign_cfg):
        runner = CampaignRunner(fast_campaign_cfg)
        pairs = list(runner.iter_tests())
        assert len(pairs) == fast_campaign_cfg.n_programs * \
            fast_campaign_cfg.inputs_per_program


class TestSingleTest:
    def test_quickstart_shape(self):
        result = differential_test_single(seed=42)
        text = result.table()
        assert "gcc" in text and "clang" in text and "intel" in text
        assert "#pragma omp" in result.cpp_source
        assert len(result.records) == 3

    def test_package_level_entry(self):
        import repro

        result = repro.quick_differential_test(seed=7)
        assert len(result.records) == 3


class TestReports:
    def test_table1_rendering(self, small_campaign, fast_campaign_cfg):
        text = render_table1(small_campaign.table, fast_campaign_cfg.compilers)
        assert "Slow" in text and "Fast" in text
        assert "Gcc" in text and "Clang" in text and "Intel" in text

    def test_summary_rendering(self, small_campaign):
        text = render_campaign_summary(small_campaign.table)
        assert "outlier rate" in text
        assert "paper: 7.4%" in text

    def test_counters_table(self):
        text = render_counters_table("T", "Intel", PerfCounters(cycles=5),
                                     "GCC", PerfCounters(cycles=7))
        assert "cycles" in text and "Intel" in text

    def test_versions_table(self):
        text = render_versions_table([GCC, CLANG, INTEL])
        assert "GNU GCC" in text and "icpx" in text and "13.1" in text


class TestPersistence:
    def test_verdict_jsonl_roundtrip(self, small_campaign, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        n = write_verdicts(small_campaign.verdicts, path)
        rows = list(read_verdict_rows(path))
        assert len(rows) == n == len(small_campaign.verdicts)
        assert all("runs" in r and "outliers" in r for r in rows)
        # every run row is valid JSON with the seven counters
        first = rows[0]["runs"][0]
        assert set(first["counters"]) == set(PerfCounters.PERF_FIELDS)

    def test_dump_campaign_artifacts(self, small_campaign, tmp_path,
                                     fast_campaign_cfg):
        out = dump_campaign_artifacts(small_campaign, tmp_path / "ds")
        cpps = list((out / "tests").glob("*.cpp"))
        assert len(cpps) == fast_campaign_cfg.n_programs
        assert (out / "verdicts.jsonl").exists()
        cfg = json.loads((out / "config.json").read_text())
        assert cfg["n_programs"] == fast_campaign_cfg.n_programs
        # sources are real OpenMP C++
        assert "#pragma omp" in cpps[0].read_text() or len(cpps) > 1
