"""Chaos tests: seeded fault decisions, transport/store fault injection,
the crash-safe write buffer, and the supervised chaos == serial soak."""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.config import ConfigError
from repro.driver.engine import (
    ExecutionPlan,
    UnitOutcome,
    WorkUnit,
    execute_unit,
)
from repro.errors import FleetDegradedWarning
from repro.fleet import (
    ChaosConnectionError,
    ChaosPlan,
    ChaosQueueProxy,
    ChaosStore,
    ChaosStoreFault,
    ChaosWorkerCrash,
    FleetCoordinator,
    ResultStore,
    StoreWriteBuffer,
    WorkQueue,
    run_chaos_campaign,
)
from repro.fleet.chaos import _CrashBudget
from repro.fleet.store import campaign_key
from repro.harness.session import CampaignSession


def ordered_key(result):
    """Order-*sensitive* full-fidelity identity of a campaign result."""
    return [v.identity() for v in result.verdicts]


@pytest.fixture(scope="module")
def unit_outcome(fleet_cfg):
    """One real executed unit (program 0, both inputs) to feed stores."""
    plan = ExecutionPlan(config=fleet_cfg)
    return execute_unit(plan, WorkUnit(0, (0, 1)))


# ----------------------------------------------------------------------
# the plan: every fault decision is a pure function of (seed, site, key)
# ----------------------------------------------------------------------

class TestChaosPlan:
    def test_validation(self):
        with pytest.raises(ConfigError, match="drop_rate"):
            ChaosPlan(drop_rate=1.5)
        with pytest.raises(ConfigError, match="delay_s"):
            ChaosPlan(delay_s=-0.1)
        with pytest.raises(ConfigError, match="max_worker_crashes"):
            ChaosPlan(max_worker_crashes=-1)
        with pytest.raises(ConfigError, match="crash point"):
            ChaosPlan(crash_points=("lease", "bogus"))

    def test_decisions_are_seed_deterministic(self):
        a = ChaosPlan(seed=11, drop_rate=0.3)
        b = ChaosPlan(seed=11, drop_rate=0.3)
        keys = [("w0", "lease", n) for n in range(128)]
        stream = [a.fires(0.3, "drop", *k) for k in keys]
        assert stream == [b.fires(0.3, "drop", *k) for k in keys]
        # a 30% rate over 128 calls fires sometimes, never always
        assert any(stream) and not all(stream)
        other = ChaosPlan(seed=12, drop_rate=0.3)
        assert stream != [other.fires(0.3, "drop", *k) for k in keys]

    def test_rate_extremes_short_circuit(self):
        plan = ChaosPlan()
        assert not plan.fires(0.0, "x", 1)
        assert plan.fires(1.0, "x", 1)

    def test_worker_crash_is_uncatchable_by_except_exception(self):
        # models SIGKILL: no `except Exception` recovery path absorbs it
        assert not issubclass(ChaosWorkerCrash, Exception)


# ----------------------------------------------------------------------
# transport faults through the proxy
# ----------------------------------------------------------------------

@pytest.fixture
def proxy_queue(fleet_cfg):
    plan = ExecutionPlan(config=fleet_cfg)
    units = [WorkUnit(i, (0, 1)) for i in range(3)]
    return WorkQueue(plan, units, lease_seconds=10.0)


class TestChaosQueueProxy:
    def test_drop_before_delivery_leaves_queue_untouched(self, proxy_queue):
        proxy = ChaosQueueProxy(proxy_queue, ChaosPlan(drop_rate=1.0),
                                ident="w0")
        with pytest.raises(ChaosConnectionError, match="dropped"):
            proxy.lease(1, "w0")
        assert proxy_queue.stats()["leased"] == 0  # request never arrived
        assert proxy.faults["drop"] == 1

    def test_drop_after_delivery_advances_queue_state(self, proxy_queue):
        # the nastiest transport fault: the queue processed the call but
        # the caller never hears back — idempotency is the safety net
        proxy = ChaosQueueProxy(proxy_queue, ChaosPlan(drop_after_rate=1.0),
                                ident="w0")
        with pytest.raises(ChaosConnectionError, match="reply dropped"):
            proxy.lease(1, "w0")
        assert proxy_queue.stats()["leased"] == 1  # state advanced anyway
        with pytest.raises(ChaosConnectionError, match="reply dropped"):
            proxy.complete(0, "p0", "w0")
        assert proxy_queue.stats()["completed"] == 1

    def test_duplicate_mutators_absorbed_first_write_wins(self, proxy_queue):
        proxy = ChaosQueueProxy(proxy_queue, ChaosPlan(duplicate_rate=1.0),
                                ident="w0")
        proxy.lease(1, "w0")  # lease is not a mutator: delivered once
        assert proxy.complete(0, "first", "w0")  # delivered twice inside
        assert proxy.faults["duplicate"] >= 1
        assert proxy_queue.collect() == [(0, "first")]

    def test_scheduled_crash_kills_connection_permanently(self, proxy_queue):
        plan = ChaosPlan(crash_after_units=0, max_worker_crashes=1)
        budget = _CrashBudget(1)
        proxy = ChaosQueueProxy(proxy_queue, plan, ident="w0",
                                crash_budget=budget)
        with pytest.raises(ChaosWorkerCrash):
            proxy.lease(1, "w0")  # first crash-point call dies
        assert proxy.dead
        assert proxy_queue.stats()["leased"] == 0  # nothing landed
        # every later call — including a courtesy hand-back — fails,
        # so recovery must come from queue-side lease expiry
        with pytest.raises(ChaosConnectionError, match="dead"):
            proxy.finished()

    def test_crash_budget_caps_fleet_wide_kills(self, proxy_queue):
        plan = ChaosPlan(crash_after_units=0, max_worker_crashes=1)
        budget = _CrashBudget(1)
        first = ChaosQueueProxy(proxy_queue, plan, ident="w0",
                                crash_budget=budget)
        with pytest.raises(ChaosWorkerCrash):
            first.lease(1, "w0")
        assert budget.used == 1
        # the budget is spent: the next connection survives its calls
        second = ChaosQueueProxy(proxy_queue, plan, ident="w1",
                                 crash_budget=budget)
        assert [l.unit_id for l in second.lease(1, "w1")] == [0]
        assert budget.used == 1


# ----------------------------------------------------------------------
# metric reports under transport faults (telemetry satellite)
# ----------------------------------------------------------------------

def _metrics_snap(tests: float) -> dict:
    """A minimal cumulative snapshot carrying one counter."""
    return {"v": 1, "counters": {"repro_tests_total": tests},
            "gauges": {}, "hists": {}}


def _reported_tests(queue) -> dict[str, float]:
    return {w: snap["counters"].get("repro_tests_total", 0.0)
            for w, snap in queue.worker_metrics().items()}


class TestChaosMetricReports:
    """Reports are *cumulative* snapshots ordered by sequence number, so
    transport faults can only delay fleet aggregation — never corrupt it:
    a dropped report is superseded by the next, a duplicated report is
    rejected by its stale sequence number."""

    def test_dropped_report_is_superseded_not_lost(self, proxy_queue):
        proxy = ChaosQueueProxy(proxy_queue, ChaosPlan(drop_rate=1.0),
                                ident="w0")
        with pytest.raises(ChaosConnectionError, match="dropped"):
            proxy.report_metrics("w0", 1, _metrics_snap(3.0))
        assert proxy_queue.worker_metrics() == {}  # never arrived
        # the next report (healed transport, higher seq) carries the
        # full cumulative state: the merged view is 5, not 3 or 8
        assert proxy_queue.report_metrics("w0", 2, _metrics_snap(5.0))
        assert _reported_tests(proxy_queue) == {"w0": 5.0}

    def test_drop_after_reply_cannot_double_count(self, proxy_queue):
        # the queue stored the snapshot but the worker never heard back;
        # the worker bumps seq *before* sending, so its retry/next flush
        # replaces rather than adds
        proxy = ChaosQueueProxy(proxy_queue, ChaosPlan(drop_after_rate=1.0),
                                ident="w0")
        with pytest.raises(ChaosConnectionError, match="reply dropped"):
            proxy.report_metrics("w0", 1, _metrics_snap(3.0))
        assert _reported_tests(proxy_queue) == {"w0": 3.0}  # landed anyway
        assert proxy_queue.report_metrics("w0", 2, _metrics_snap(4.0))
        assert _reported_tests(proxy_queue) == {"w0": 4.0}

    def test_duplicated_report_rejected_by_stale_seq(self, proxy_queue):
        # report_metrics is a chaos mutator: delivered twice; the second
        # delivery's seq is no longer strictly greater and is refused
        proxy = ChaosQueueProxy(proxy_queue, ChaosPlan(duplicate_rate=1.0),
                                ident="w0")
        assert proxy.report_metrics("w0", 1, _metrics_snap(2.0))
        assert proxy.faults["duplicate"] >= 1
        assert _reported_tests(proxy_queue) == {"w0": 2.0}

    def test_seq_ordering_is_strict_per_worker(self, proxy_queue):
        q = proxy_queue
        assert q.report_metrics("w0", 2, _metrics_snap(10.0))
        assert not q.report_metrics("w0", 1, _metrics_snap(99.0))  # stale
        assert not q.report_metrics("w0", 2, _metrics_snap(99.0))  # dup
        assert q.report_metrics("w1", 1, _metrics_snap(7.0))  # independent
        assert q.report_metrics("w0", 3, _metrics_snap(11.0))
        assert _reported_tests(q) == {"w0": 11.0, "w1": 7.0}


# ----------------------------------------------------------------------
# store faults: refusals and torn appends
# ----------------------------------------------------------------------

class TestChaosStore:
    def test_refused_write_leaves_no_trace(self, fleet_cfg, unit_outcome,
                                           tmp_path):
        with ResultStore(tmp_path / "refuse.db") as store:
            cid = store.ensure_campaign(fleet_cfg)
            chaotic = ChaosStore(store, ChaosPlan(store_fail_calls=(0,)))
            with pytest.raises(ChaosStoreFault, match="refused"):
                chaotic.record_unit(cid, unit_outcome)
            assert store.completed_indices(cid) == set()
            # the next call (a buffer retry) lands normally
            assert chaotic.record_unit(cid, unit_outcome)
            assert store.completed_indices(cid) == {0}
            assert dict(chaotic.faults) == {"fail": 1}

    def test_torn_append_heals_on_replay(self, fleet_cfg, unit_outcome,
                                         tmp_path):
        with ResultStore(tmp_path / "torn.db") as store:
            cid = store.ensure_campaign(fleet_cfg)
            chaotic = ChaosStore(store, ChaosPlan(store_torn_calls=(0,)))
            with pytest.raises(ChaosStoreFault, match="torn"):
                chaotic.record_unit(cid, unit_outcome)
            # torn shape: the unit row committed, the index rows lost
            assert store.completed_indices(cid) == {0}
            assert store.verdict_count(cid) == 0
            # a replay (coordinator restart / buffer retry) is not fresh
            # but must rebuild the missing index rows
            assert not store.record_unit(cid, unit_outcome)
            assert store.verdict_count(cid) == len(unit_outcome.verdicts)


# ----------------------------------------------------------------------
# the write buffer: store failures park and retry, never raise
# ----------------------------------------------------------------------

class _FlakyStore:
    """record_unit refuses while .broken; lands program indices after."""

    def __init__(self):
        self.broken = True
        self.landed: list[int] = []

    def record_unit(self, campaign_id, outcome):
        if self.broken:
            raise OSError("store down")
        self.landed.append(outcome.program_index)
        return True


def _outcome(i: int) -> UnitOutcome:
    return UnitOutcome(program_index=i, program_name=f"p{i}")


class TestStoreWriteBuffer:
    def test_validation(self):
        with pytest.raises(ConfigError, match="backoff_s"):
            StoreWriteBuffer(_FlakyStore(), "c0", backoff_s=-1.0)
        with pytest.raises(ConfigError, match="max_backoff_s"):
            StoreWriteBuffer(_FlakyStore(), "c0",
                             backoff_s=2.0, max_backoff_s=1.0)

    def test_failures_park_and_back_off_exponentially(self):
        clk = [0.0]
        store = _FlakyStore()
        buf = StoreWriteBuffer(store, "c0", backoff_s=1.0, max_backoff_s=4.0,
                               clock=lambda: clk[0])
        assert not buf.record(_outcome(0))  # parked, never raises
        assert buf.pending == 1 and buf.failures == 1
        assert isinstance(buf.last_error, OSError)
        # inside the 1s backoff window nothing is attempted
        assert buf.retry_due() == 0
        assert not buf.record(_outcome(1))  # queues behind, no store call
        assert buf.failures == 1
        assert [o.program_index for o in buf.pending_outcomes()] == [0, 1]
        # window elapses, store still down: the window doubles to 2s
        clk[0] = 1.0
        assert buf.retry_due() == 0 and buf.failures == 2
        clk[0] = 2.5  # only 1.5s into the doubled window: still gated
        assert buf.retry_due() == 0 and buf.failures == 2
        clk[0] = 3.1
        store.broken = False
        assert buf.retry_due() == 2
        assert store.landed == [0, 1]  # original completion order
        assert buf.pending == 0 and buf.recorded == 2

    def test_flush_ignores_the_backoff_gate(self):
        clk = [0.0]
        store = _FlakyStore()
        buf = StoreWriteBuffer(store, "c0", backoff_s=10.0,
                               clock=lambda: clk[0])
        buf.record(_outcome(0))
        store.broken = False
        assert buf.retry_due() == 0  # still inside the 10s window...
        assert buf.flush() == 1      # ...but a flush goes now
        assert buf.pending == 0 and store.landed == [0]


# ----------------------------------------------------------------------
# regression: poll() must not desync session from store (satellite 1)
# ----------------------------------------------------------------------

class TestPollStoreDivergence:
    def test_poll_ingests_full_batch_despite_store_refusal(self, fleet_cfg,
                                                           tmp_path):
        """A store write raising mid-poll used to lose every outcome
        collected after it and desynchronize session from store; now the
        refused write parks in the buffer and the batch ingests whole."""
        with ResultStore(tmp_path / "flaky.db") as store:
            chaotic = ChaosStore(store, ChaosPlan(store_fail_calls=(0,)))
            coord = FleetCoordinator(fleet_cfg, store=chaotic)
            try:
                plan = coord.queue.plan()
                leases = coord.queue.lease(2, "w1")
                for lease in leases:
                    coord.queue.complete(lease.unit_id,
                                         execute_unit(plan, lease.unit),
                                         "w1")
                assert coord.poll() == 2  # both ingested, refusal or not
                assert len(coord.session._outcomes) == 2
                assert coord.store_buffer.pending == 2  # parked, not lost
                # a flush converges the store with the session
                assert coord.store_buffer.flush() == 2
                assert store.completed_indices(coord.campaign_id) == \
                    {l.unit_id for l in leases}
            finally:
                coord.close()


# ----------------------------------------------------------------------
# FleetEngine graceful degradation
# ----------------------------------------------------------------------

def _exit_immediately() -> None:
    pass


class TestFleetEngineDegradation:
    def test_engine_finishes_inline_when_every_worker_dies(
            self, fleet_cfg, fleet_serial_result, monkeypatch):
        def doomed_spawn(address, authkey, *, batch=1, poll_s=0.05):
            proc = mp.Process(target=_exit_immediately, daemon=True)
            proc.start()
            return proc

        monkeypatch.setattr("repro.fleet.coordinator._spawn_worker",
                            doomed_spawn)
        with pytest.warns(FleetDegradedWarning, match="in-process"):
            result = CampaignSession(fleet_cfg, engine="fleet", jobs=2).run()
        assert ordered_key(result) == ordered_key(fleet_serial_result)
        assert result.race_filtered == fleet_serial_result.race_filtered


# ----------------------------------------------------------------------
# the capstone: a supervised campaign under chaos == serial, twice
# ----------------------------------------------------------------------

class TestChaosCampaign:
    def test_supervised_chaos_run_matches_serial_and_replays(
            self, fleet_cfg, fleet_serial_result, tmp_path):
        plan = ChaosPlan(
            seed=5,
            drop_rate=0.02, drop_after_rate=0.02, duplicate_rate=0.05,
            crash_after_units=1, max_worker_crashes=1,
            store_fail_calls=(1,),
            coordinator_crash_after=(2,),
        )
        result, report = run_chaos_campaign(
            fleet_cfg, plan, tmp_path / "chaos-a.db", workers=2, timeout=180)
        # the robustness contract: verdicts byte-identical to serial
        assert ordered_key(result) == ordered_key(fleet_serial_result)
        assert result.race_filtered == fleet_serial_result.race_filtered
        # and every scheduled fault actually fired
        assert report["worker_kills"] == 1
        assert report["coordinator_crashes"] == 1
        assert report["supervisor_restarts"] == 1
        assert report["store_faults"] == {"fail": 1}
        assert report["store_buffered"] == 0
        with ResultStore(tmp_path / "chaos-a.db") as store:
            cid = campaign_key(fleet_cfg)
            assert len(store.completed_indices(cid)) == fleet_cfg.n_programs
            assert store.verdict_count(cid) == \
                len(fleet_serial_result.verdicts)

        # determinism: the same (seed, plan) over a fresh store replays
        # the scheduled fault counts and the identical verdict stream
        result2, report2 = run_chaos_campaign(
            fleet_cfg, plan, tmp_path / "chaos-b.db", workers=2, timeout=180)
        assert ordered_key(result2) == ordered_key(result)
        for key in ("worker_kills", "coordinator_crashes",
                    "supervisor_restarts"):
            assert report2[key] == report[key]
        assert report2["store_faults"] == report["store_faults"]
