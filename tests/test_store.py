"""Result-store tests: append-only writes, indexed queries, synthetic
``comp`` rows, checkpoint import, store-backed resume, bucket merging,
and the fleet/query CLI surface."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis.outliers import analyze_test
from repro.backends import unregister_backend
from repro.backends.fault import InjectedFault, register_fault_backend
from repro.cli import main
from repro.config import CampaignConfig, ConfigError
from repro.core.features import extract_features
from repro.driver.engine import UnitOutcome
from repro.driver.records import RunRecord, RunStatus
from repro.fleet import ResultStore
from repro.fleet.store import campaign_key
from repro.harness.session import CampaignSession


def verdict_key(verdicts):
    return sorted(v.identity() for v in verdicts)


@pytest.fixture(scope="module")
def fault_campaign(fast_gen_cfg):
    """A small campaign with an injected gcc crash: outliers guaranteed."""
    register_fault_backend(
        "gcc", InjectedFault("crash", "n_parallel_regions"),
        name="gcc-buggy")
    try:
        cfg = CampaignConfig(n_programs=5, inputs_per_program=2, seed=4242,
                             generator=fast_gen_cfg,
                             compilers=("gcc-buggy", "clang", "intel"))
        session = CampaignSession(cfg, engine="serial")
        result = session.run()
        assert any(v.outliers for v in result.verdicts)
        yield cfg, session, result
    finally:
        unregister_backend("gcc-buggy")


class TestResultStore:
    def test_record_query_roundtrip(self, fault_campaign, tmp_path):
        cfg, session, result = fault_campaign
        with ResultStore(tmp_path / "s.db") as store:
            cid, n = store.record_session(session)
            assert n == cfg.n_programs
            assert store.verdict_count(cid) == len(result.verdicts)
            crashes = store.query(kind="crash", backend="gcc-buggy")
            want = sum(1 for v in result.verdicts for o in v.outliers
                       if o.kind.value == "crash" and o.vendor == "gcc-buggy")
            assert len(crashes) == want > 0
            assert all(r["signature"].startswith("crash|gcc-buggy|")
                       for r in crashes)
            # the feature filter matches whole labels, not substrings
            for row in crashes:
                assert store.query(kind="crash",
                                   feature=row["vector"].split("+")[0])
            assert store.query(kind="crash", backend="clang") == []
            assert store.query(limit=1) == store.query()[:1]

    def test_record_unit_first_write_wins(self, fault_campaign, tmp_path):
        cfg, session, _result = fault_campaign
        with ResultStore(tmp_path / "dup.db") as store:
            cid = store.ensure_campaign(cfg)
            outcome = session._outcomes[0]
            assert store.record_unit(cid, outcome)
            assert not store.record_unit(cid, outcome)  # idempotent replay
            assert store.verdict_count(cid) == len(outcome.verdicts)

    def test_outcomes_roundtrip_full_fidelity(self, fault_campaign,
                                              tmp_path):
        cfg, session, result = fault_campaign
        with ResultStore(tmp_path / "rt.db") as store:
            cid, _ = store.record_session(session)
            stored = store.outcomes(cid)
            assert [o.program_index for o in stored] == \
                list(range(cfg.n_programs))
            assert verdict_key([v for o in stored for v in o.verdicts]) == \
                verdict_key(result.verdicts)

    def test_import_checkpoint(self, fault_campaign, tmp_path):
        cfg, session, result = fault_campaign
        ckpt = tmp_path / "c.jsonl"
        session.checkpoint(ckpt)
        with ResultStore(tmp_path / "imp.db") as store:
            cid, n = store.import_checkpoint(ckpt)
            assert n == cfg.n_programs
            assert store.verdict_count(cid) == len(result.verdicts)
            # importing again is a no-op, not a duplication
            cid2, n2 = store.import_checkpoint(ckpt)
            assert (cid2, n2) == (cid, 0)

    def test_campaign_key_ignores_execution_knobs(self, fault_campaign):
        cfg, _session, _result = fault_campaign
        variants = [
            dataclasses.replace(cfg, engine="process", jobs=4),
            dataclasses.replace(cfg, engine="fleet", chunk_size=3),
            dataclasses.replace(cfg, output_dir="/tmp/elsewhere"),
        ]
        assert {campaign_key(v) for v in variants} == {campaign_key(cfg)}
        # but grid fields DO change identity
        assert campaign_key(dataclasses.replace(cfg, seed=1)) != \
            campaign_key(cfg)

    def test_ensure_campaign_rejects_conflicting_grid(self, fault_campaign,
                                                      tmp_path):
        cfg, _session, _result = fault_campaign
        with ResultStore(tmp_path / "conflict.db") as store:
            store.ensure_campaign(cfg, "pinned-id")
            # same grid rejoins fine, even with different execution knobs
            assert store.ensure_campaign(
                dataclasses.replace(cfg, engine="process", jobs=2),
                "pinned-id") == "pinned-id"
            with pytest.raises(ConfigError, match="different"):
                store.ensure_campaign(dataclasses.replace(cfg, seed=9),
                                      "pinned-id")

    def test_comp_rows_for_divergent_outputs(self, program_stream,
                                             tmp_path):
        program = program_stream[0]
        records = [
            RunRecord("t", "gcc", 0, RunStatus.OK, 2.0, 2000.0),
            RunRecord("t", "clang", 0, RunStatus.OK, 2.0, 2000.0),
            RunRecord("t", "intel", 0, RunStatus.OK, 1.0, 2000.0),
        ]
        verdict = analyze_test(records)
        assert verdict.output_divergent
        outcome = UnitOutcome(program_index=0, program_name="t",
                              features=extract_features(program),
                              verdicts=[verdict])
        cfg = CampaignConfig(n_programs=1, inputs_per_program=1)
        with ResultStore(tmp_path / "comp.db") as store:
            cid = store.ensure_campaign(cfg)
            store.record_unit(cid, outcome)
            rows = store.query(kind="comp")
            # intel is the minority against the gcc/clang modal output
            assert [(r["vendor"], r["ratio"]) for r in rows] == \
                [("intel", 0.0)]
            assert rows[0]["signature"].startswith("comp|intel|")

    def test_merge_buckets_across_campaigns(self, fault_campaign,
                                            fast_gen_cfg, tmp_path):
        cfg, session, _result = fault_campaign
        other_cfg = dataclasses.replace(cfg, seed=4243)
        other = CampaignSession(other_cfg, engine="serial")
        other.run()
        with ResultStore(tmp_path / "merge.db") as store:
            cid_a, _ = store.record_session(session)
            cid_b, _ = store.record_session(other)
            assert cid_a != cid_b
            buckets = store.merge_buckets(kinds=["crash"])
            assert buckets
            # every crash row lands in exactly one bucket, and the merged
            # view draws members from both campaigns
            members = [m for b in buckets for m in b.members]
            assert len(members) == len(store.query(kind="crash"))
            assert {m["campaign_id"] for m in members} == {cid_a, cid_b}
            for bucket in buckets:
                assert len({m["signature"] for m in bucket.members}) == 1

    def test_unknown_campaign_raises(self, tmp_path):
        with ResultStore(tmp_path / "empty.db") as store:
            with pytest.raises(ConfigError, match="unknown campaign"):
                store.config_for("nope")


class TestStoreBackedResume:
    def test_store_session_finishes_grid(self, fast_gen_cfg, tmp_path):
        cfg = CampaignConfig(n_programs=6, inputs_per_program=1, seed=77,
                             generator=fast_gen_cfg)
        serial = CampaignSession(cfg, engine="serial").run()

        partial = CampaignSession(cfg, engine="serial")
        it = partial.stream()
        for _ in range(3):
            next(it)
        it.close()
        with ResultStore(tmp_path / "resume.db") as store:
            cid, n = store.record_session(partial)
            assert 0 < n < cfg.n_programs
            resumed = store.session(cid)
            assert 0 < resumed.completed_tests < resumed.total_tests
            result = resumed.run()
        assert verdict_key(result.verdicts) == verdict_key(serial.verdicts)


class TestFleetCli:
    def test_import_and_query_cli(self, fault_campaign, tmp_path, capsys):
        cfg, session, result = fault_campaign
        ckpt = tmp_path / "cli.jsonl"
        session.checkpoint(ckpt)
        db = str(tmp_path / "cli.db")

        assert main(["fleet", "import", str(ckpt), "--store", db]) == 0
        out = capsys.readouterr().out
        assert f"imported {cfg.n_programs} new unit(s)" in out

        assert main(["query", "--store", db, "--list"]) == 0
        out = capsys.readouterr().out
        assert f"verdicts={len(result.verdicts)}" in out

        assert main(["query", "--store", db, "--kind", "crash",
                     "--backend", "gcc-buggy"]) == 0
        out = capsys.readouterr().out
        assert "gcc-buggy crash" in out

        assert main(["query", "--store", db, "--buckets"]) == 0
        out = capsys.readouterr().out
        assert "crash|gcc-buggy|" in out

        assert main(["query", "--store", db, "--kind", "crash",
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and all(r["kind"] == "crash" for r in rows)

    def test_fleet_run_cli_with_store(self, tmp_path, capsys):
        db = str(tmp_path / "run.db")
        code = main(["fleet", "run", "--programs", "3", "--inputs", "1",
                     "--seed", "1234", "--mix", "paper", "--workers", "2",
                     "--store", db, "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verdicts stored in" in out
        with ResultStore(db) as store:
            (c,) = store.campaigns()
            assert c["units"] == 3 and c["verdicts"] == 3
