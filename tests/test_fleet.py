"""Fleet tests: lease-queue semantics, socket transport, worker fault
paths, FleetEngine/serial equivalence, and coordinator restart."""

from __future__ import annotations

import multiprocessing as mp
import os

import pytest

from repro.config import CampaignConfig, ConfigError
from repro.driver.engine import (
    ExecutionPlan,
    WorkUnit,
    create_engine,
    plan_units,
)
from repro.errors import FleetError
from repro.fleet import (
    FleetCoordinator,
    QueueClient,
    QueueServer,
    ResultStore,
    WorkQueue,
    worker_loop,
)
from repro.fleet.coordinator import FleetEngine
from repro.harness.session import CampaignSession


def ordered_key(result):
    """Order-*sensitive* full-fidelity identity of a campaign result."""
    return [v.identity() for v in result.verdicts]


@pytest.fixture
def small_queue(fleet_cfg):
    """A queue over a 3-unit slice with an injectable clock."""
    clk = [0.0]
    plan = ExecutionPlan(config=fleet_cfg)
    units = [WorkUnit(i, (0, 1)) for i in range(3)]
    queue = WorkQueue(plan, units, lease_seconds=10.0, max_attempts=3,
                      backoff_s=1.0, clock=lambda: clk[0])
    return queue, clk


# ----------------------------------------------------------------------
# queue protocol (fake clock: every deadline path is deterministic)
# ----------------------------------------------------------------------

class TestWorkQueue:
    def test_lease_complete_collect(self, small_queue):
        queue, _clk = small_queue
        leases = queue.lease(2, "w1")
        assert [l.unit_id for l in leases] == [0, 1]
        assert all(l.attempt == 1 for l in leases)
        assert queue.complete(0, "payload-0", "w1")
        assert queue.collect() == [(0, "payload-0")]
        assert queue.collect() == []  # drained
        assert not queue.finished()

    def test_duplicate_completion_is_idempotent(self, small_queue):
        queue, _clk = small_queue
        queue.lease(3, "w1")
        assert queue.complete(0, "first", "w1")
        assert not queue.complete(0, "second", "w2")  # first write wins
        assert queue.collect() == [(0, "first")]

    def test_expired_lease_is_redispatched(self, small_queue):
        queue, clk = small_queue
        (lease,) = queue.lease(1, "w1")
        assert lease.unit_id == 0
        # while the lease is live, unit 0 is checked out
        assert 0 not in {l.unit_id for l in queue.lease(3, "w2")}
        clk[0] = 10.1  # past the 10s deadline: the lease is reclaimed...
        assert queue.lease(3, "w3") == []  # ...behind a backoff gate
        clk[0] = 11.2  # past the 1s backoff
        (again,) = [l for l in queue.lease(3, "w3") if l.unit_id == 0]
        assert again.attempt == 2  # the retry charged the unit's budget

    def test_fail_requeues_with_backoff(self, small_queue):
        queue, clk = small_queue
        queue.lease(1, "w1")
        queue.fail(0, "boom", "w1")
        # inside the backoff window unit 0 is gated; units 1, 2 still go
        assert [l.unit_id for l in queue.lease(3, "w1")] == [1, 2]
        clk[0] = 1.1  # backoff_s * 2**0 elapsed
        assert [l.unit_id for l in queue.lease(3, "w2")] == [0]

    def test_retry_budget_exhaustion_kills_unit(self, small_queue):
        queue, clk = small_queue
        for attempt in range(3):
            (lease,) = [l for l in queue.lease(1, f"w{attempt}")
                        if l.unit_id == 0]
            assert lease.attempt == attempt + 1
            queue.fail(0, f"boom #{attempt}", f"w{attempt}")
            clk[0] += 10.0  # clear every backoff gate
        assert queue.dead_units() == [(0, "boom #2")]
        # the dead unit never leases again
        assert 0 not in {l.unit_id for l in queue.lease(3, "w9")}

    def test_straggler_redispatch(self, small_queue):
        queue, clk = small_queue
        queue.lease(3, "w1")  # w1 holds the whole grid
        queue.complete(1, "p1", "w1")
        queue.complete(2, "p2", "w1")
        # before straggler_after (lease_seconds/2 = 5s): nothing to shadow
        clk[0] = 3.0
        assert queue.lease(1, "w2") == []
        clk[0] = 5.0
        (dup,) = queue.lease(1, "w2")
        assert dup.unit_id == 0
        assert dup.attempt == 1  # speculation does not charge the budget
        # never a third holder, never twice to one worker
        assert queue.lease(1, "w2") == []
        assert queue.lease(1, "w3") == []

    def test_late_straggler_completion_rescues_dead_unit(self, small_queue):
        queue, clk = small_queue
        queue.lease(3, "w1")
        for i in range(1, 3):
            queue.complete(i, f"p{i}", "w1")
        clk[0] = 5.0
        queue.lease(1, "w2")  # straggler duplicate on unit 0
        # every holder goes silent; expiry sweeps charge the budget
        # (backoff gates between re-dispatches) until the unit dies
        for _ in range(6):
            clk[0] += 100.0
            queue.lease(1, "w3")
        assert [uid for uid, _ in queue.dead_units()] == [0]
        assert queue.finished()  # dead counts as closed
        # w2's stale completion still lands: done work rescues the unit
        assert queue.complete(0, "rescued", "w2")
        assert queue.finished()
        assert queue.dead_units() == []

    def test_heartbeat_extends_deadline(self, small_queue):
        queue, clk = small_queue
        (lease,) = queue.lease(1, "w1")
        clk[0] = 9.0
        assert queue.heartbeat([lease.unit_id], "w1") == 1
        clk[0] = 15.0  # past the original deadline, inside the extension
        assert 0 not in {l.unit_id for l in queue.lease(3, "w2")}
        assert queue.complete(0, "p", "w1")

    def test_stats_and_finished(self, small_queue):
        queue, _clk = small_queue
        queue.lease(1, "w1")
        s = queue.stats()
        assert (s["total"], s["leased"], s["pending"]) == (3, 1, 2)
        for i in range(3):
            queue.complete(i, f"p{i}")
        assert queue.finished()
        assert queue.stats()["completed"] == 3

    def test_closed_queue_refuses_dispatch(self, small_queue):
        queue, _clk = small_queue
        queue.lease(2, "w1")
        queue.complete(0, "p0", "w1")
        queue.close()
        assert queue.closed
        assert queue.finished()            # retired reads as done...
        assert queue.lease(1, "w2") == []  # ...and hands out nothing
        assert not queue.complete(1, "p1", "w1")
        assert not queue.fail(1, "boom", "w1")
        assert queue.heartbeat([1], "w1") == 0
        # work completed before retirement still drains to the collector
        assert queue.collect() == [(0, "p0")]

    def test_validation(self, fleet_cfg):
        plan = ExecutionPlan(config=fleet_cfg)
        with pytest.raises(ConfigError, match="lease_seconds"):
            WorkQueue(plan, [], lease_seconds=0)
        with pytest.raises(ConfigError, match="duplicate"):
            WorkQueue(plan, [WorkUnit(0, (0,)), WorkUnit(0, (1,))])
        queue = WorkQueue(plan, [WorkUnit(0, (0,))])
        with pytest.raises(FleetError, match="unknown work unit"):
            queue.complete(99, None)


# ----------------------------------------------------------------------
# socket transport
# ----------------------------------------------------------------------

class TestTransport:
    def test_round_trip_over_socket(self, fleet_cfg):
        plan = ExecutionPlan(config=fleet_cfg)
        queue = WorkQueue(plan, [WorkUnit(0, (0,)), WorkUnit(1, (0,))])
        server = QueueServer(queue, authkey=b"test-key")
        client = QueueClient(server.address, authkey=b"test-key")
        try:
            assert client.plan().config == fleet_cfg
            (lease,) = client.lease(1, "w1")
            assert lease.unit_id == 0 and lease.unit == WorkUnit(0, (0,))
            assert client.complete(0, "payload", "w1")
            assert not client.complete(0, "dup", "w2")
            assert client.stats()["completed"] == 1
            assert not client.finished()
        finally:
            client.close()
            server.close()

    def test_server_side_errors_propagate(self, fleet_cfg):
        plan = ExecutionPlan(config=fleet_cfg)
        queue = WorkQueue(plan, [WorkUnit(0, (0,))])
        server = QueueServer(queue, authkey=b"test-key")
        client = QueueClient(server.address, authkey=b"test-key")
        try:
            with pytest.raises(FleetError, match="unknown work unit"):
                client.complete(42, None)
            with pytest.raises(ConfigError, match="n >= 1"):
                client.lease(0, "w1")
        finally:
            client.close()
            server.close()

    def test_non_protocol_methods_refused(self, fleet_cfg):
        plan = ExecutionPlan(config=fleet_cfg)
        queue = WorkQueue(plan, [WorkUnit(0, (0,))])
        server = QueueServer(queue, authkey=b"test-key")
        client = QueueClient(server.address, authkey=b"test-key")
        try:
            with pytest.raises(FleetError, match="not part of the queue"):
                client._call("_expire", 0.0)
        finally:
            client.close()
            server.close()


# ----------------------------------------------------------------------
# workers: the happy path and the fault paths
# ----------------------------------------------------------------------

def _lease_and_die(address, authkey):
    """A worker that checks out a unit and dies without the courtesy
    fail() — SIGKILL/OOM shape; only lease expiry can recover the unit."""
    client = QueueClient(tuple(address), authkey=authkey)
    client.lease(1, "doomed")
    os._exit(1)


class TestWorkerLoop:
    def test_in_process_worker_drains_queue(self, fleet_cfg,
                                            fleet_serial_result):
        plan = ExecutionPlan(config=fleet_cfg)
        queue = WorkQueue(plan, plan_units(fleet_cfg))
        completed = worker_loop(queue, batch=2)
        assert completed == fleet_cfg.n_programs
        assert queue.finished()
        outcomes = dict(queue.collect())
        result_verdicts = [v for i in sorted(outcomes)
                           for v in outcomes[i].verdicts]
        assert [v.identity() for v in result_verdicts] == \
            ordered_key(fleet_serial_result)

    def test_killed_worker_lease_is_redispatched(self, fleet_cfg,
                                                 fleet_serial_result):
        plan = ExecutionPlan(config=fleet_cfg)
        queue = WorkQueue(plan, plan_units(fleet_cfg), lease_seconds=0.4)
        server = QueueServer(queue, authkey=b"test-key")
        try:
            proc = mp.Process(target=_lease_and_die,
                              args=(server.address, b"test-key"))
            proc.start()
            proc.join(timeout=30)
            assert proc.exitcode == 1
            assert queue.stats()["leased"] == 1  # the orphaned lease
            # a live worker finishes the grid: the orphaned unit comes
            # back via lease expiry (or straggler re-dispatch) and its
            # verdicts are identical to serial — re-execution is pure
            worker_loop(queue, poll_s=0.05)
            assert queue.finished()
            assert queue.dead_units() == []
            outcomes = dict(queue.collect())
            verdicts = [v for i in sorted(outcomes)
                        for v in outcomes[i].verdicts]
            assert [v.identity() for v in verdicts] == \
                ordered_key(fleet_serial_result)
        finally:
            server.close()

    def test_transport_error_chains_original_unit_error(self, fleet_cfg,
                                                        monkeypatch,
                                                        caplog):
        # the unit error must survive as __cause__ when reporting it to
        # the queue also fails — neither traceback may vanish
        plan = ExecutionPlan(config=fleet_cfg)
        queue = WorkQueue(plan, [WorkUnit(0, (0,))])

        def exploding_unit(plan_, unit):
            raise ValueError("unit went sideways")

        def exploding_fail(unit_id, reason, worker_id=None):
            raise ConnectionError("socket torn down")

        monkeypatch.setattr("repro.fleet.worker.execute_unit",
                            exploding_unit)
        monkeypatch.setattr(queue, "fail", exploding_fail)
        with caplog.at_level("ERROR", logger="repro.fleet.worker"):
            with pytest.raises(ConnectionError) as excinfo:
                worker_loop(queue)
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "unit went sideways" in str(excinfo.value.__cause__)
        assert any("unit went sideways" in rec.message
                   and "socket torn down" in rec.message
                   for rec in caplog.records)

    def test_interrupt_handback_failure_is_logged(self, fleet_cfg,
                                                  monkeypatch, caplog):
        # interrupt mid-batch with a dead transport: the interrupt still
        # propagates, and the failed hand-back is visible in the log
        # instead of swallowed
        plan = ExecutionPlan(config=fleet_cfg)
        queue = WorkQueue(plan, [WorkUnit(0, (0,)), WorkUnit(1, (0,))])

        def interrupted_unit(plan_, unit):
            raise KeyboardInterrupt

        def exploding_fail(unit_id, reason, worker_id=None):
            raise ConnectionError("socket torn down")

        monkeypatch.setattr("repro.fleet.worker.execute_unit",
                            interrupted_unit)
        monkeypatch.setattr(queue, "fail", exploding_fail)
        with caplog.at_level("WARNING", logger="repro.fleet.worker"):
            with pytest.raises(KeyboardInterrupt):
                worker_loop(queue, batch=2)
        assert any("lease expiry" in rec.message
                   for rec in caplog.records)

    def test_reported_failures_spend_the_retry_budget(self, fleet_cfg):
        plan = ExecutionPlan(config=fleet_cfg)
        queue = WorkQueue(plan, [WorkUnit(7, (0,))],
                          max_attempts=2, backoff_s=0.0)
        # a fail() without a lease charges nothing — only dispatches do
        queue.fail(7, "spurious")
        queue.fail(7, "spurious")
        assert not queue.finished()
        (lease,) = queue.lease(1, "w1")
        queue.fail(lease.unit_id, "boom", "w1")
        (lease,) = queue.lease(1, "w1")
        queue.fail(lease.unit_id, "boom", "w1")
        assert queue.finished()
        assert queue.dead_units() == [(7, "boom")]


# ----------------------------------------------------------------------
# FleetEngine: the ExecutionEngine adapter
# ----------------------------------------------------------------------

class TestFleetEngine:
    def test_factory_and_config(self):
        engine = create_engine("fleet", 2)
        assert isinstance(engine, FleetEngine)
        assert engine.jobs == 2 and engine.requested_jobs == 2
        assert CampaignConfig(engine="fleet", jobs=2).engine == "fleet"

    def test_fleet_result_identical_to_serial(self, fleet_cfg,
                                              fleet_serial_result):
        """The acceptance bar: the pinned paper-mix grid through the
        fleet yields verdicts byte-identical to SerialEngine — same
        values, same order, same outliers."""
        result = CampaignSession(fleet_cfg, engine="fleet", jobs=2).run()
        assert ordered_key(result) == ordered_key(fleet_serial_result)
        assert result.race_filtered == fleet_serial_result.race_filtered
        assert set(result.features) == set(fleet_serial_result.features)

    def test_fleet_session_checkpoints_like_any_engine(self, fleet_cfg,
                                                       tmp_path):
        session = CampaignSession(fleet_cfg, engine="fleet", jobs=2)
        session.run()
        path = tmp_path / "fleet.jsonl"
        session.checkpoint(path)
        resumed = CampaignSession.resume(path)
        assert resumed.done
        assert isinstance(resumed.engine, FleetEngine)
        assert resumed.engine.requested_jobs == 2


# ----------------------------------------------------------------------
# coordinator: store persistence and restart
# ----------------------------------------------------------------------

class TestFleetCoordinator:
    def test_coordinator_with_spawned_workers(self, fleet_cfg, tmp_path,
                                              fleet_serial_result):
        store = ResultStore(tmp_path / "fleet.db")
        with store, FleetCoordinator(fleet_cfg, store=store) as coord:
            coord.spawn_workers(2)
            result = coord.wait(timeout=120)
            assert ordered_key(result) == ordered_key(fleet_serial_result)
            assert store.completed_indices(coord.campaign_id) == \
                set(range(fleet_cfg.n_programs))

    def test_duplicate_completion_idempotent_end_to_end(self, fleet_cfg):
        from repro.driver.engine import execute_unit

        coord = FleetCoordinator(fleet_cfg)
        try:
            plan = coord.queue.plan()
            (lease,) = coord.queue.lease(1, "w1")
            outcome = execute_unit(plan, lease.unit)
            assert coord.queue.complete(lease.unit_id, outcome, "w1")
            # a racing straggler replays the completion with a different
            # (here: corrupted) payload — the first write must win
            assert not coord.queue.complete(lease.unit_id, "garbage", "w2")
            assert coord.poll() == 1
            assert coord.session._outcomes[lease.unit_id] is outcome
        finally:
            coord.close()

    def test_restart_resumes_from_store(self, fleet_cfg, tmp_path,
                                        fleet_serial_result):
        from repro.driver.engine import execute_unit

        db = tmp_path / "restart.db"
        # phase 1: a coordinator completes 2 units, then "crashes"
        store = ResultStore(db)
        coord = FleetCoordinator(fleet_cfg, store=store)
        plan = coord.queue.plan()
        for lease in coord.queue.lease(2, "w1"):
            coord.queue.complete(lease.unit_id,
                                 execute_unit(plan, lease.unit), "w1")
        assert coord.poll() == 2
        coord.close()
        store.close()

        # phase 2: a successor over the same config re-queues only the
        # remaining units and finishes the grid
        store = ResultStore(db)
        with store, FleetCoordinator(fleet_cfg, store=store) as coord2:
            assert coord2.queue.stats()["total"] == \
                fleet_cfg.n_programs - 2
            coord2.spawn_workers(2)
            result = coord2.wait(timeout=120)
        assert ordered_key(result) == ordered_key(fleet_serial_result)

    def test_wait_timeout_raises(self, fleet_cfg):
        coord = FleetCoordinator(fleet_cfg)
        try:
            with pytest.raises(FleetError, match="unfinished"):
                coord.wait(poll_s=0.01, timeout=0.05)  # no workers
        finally:
            coord.close()

    def test_ingest_validates_grid(self, fleet_cfg):
        from repro.driver.engine import UnitOutcome

        session = CampaignSession(fleet_cfg)
        bogus = UnitOutcome(program_index=99, program_name="x")
        with pytest.raises(ConfigError, match="outside"):
            session.ingest(bogus)
        ok = UnitOutcome(program_index=0, program_name="x")
        assert session.ingest(ok)
        assert not session.ingest(ok)  # first write wins
