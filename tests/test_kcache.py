"""Tests for the two-phase lowering pipeline and its KernelCache."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.core.generator import ProgramGenerator
from repro.core.inputs import InputGenerator
from repro.sim.kcache import KernelCache, get_kernel_cache, set_kernel_cache
from repro.sim.lower import Lowerer, StructuralLowerer, bind_costs
from repro.driver.execution import run_binary
from repro.vendors.clang import CLANG
from repro.vendors.gcc import GCC
from repro.vendors.toolchain import compile_binary


@pytest.fixture()
def program(program_stream):
    return program_stream[0]


class TestKernelCache:
    def test_recompile_hits_both_phases(self, program):
        cache = KernelCache()
        a = compile_binary(program, "gcc", cache=cache)
        b = compile_binary(program, "gcc", cache=cache)
        stats = cache.stats()
        assert stats.structural_hits >= 1
        assert stats.kernel_hits >= 1
        # the bound kernel object itself is shared, not rebuilt
        assert a.kernel is b.kernel

    def test_three_vendor_compile_counts(self, program):
        cache = KernelCache()
        for vendor in ("gcc", "clang", "intel"):
            compile_binary(program, vendor, cache=cache)
        stats = cache.stats()
        # at -O3 the three vendors have three distinct shapes (gcc
        # contracts aggressively, clang basic, intel basic+FTZ), so no
        # sharing yet — but nothing is compiled twice either
        assert stats.kernel_misses == 3
        assert stats.kernel_hits == 0

    def test_structural_shared_when_shapes_coincide(self, program):
        # at -O1 FMA contraction is off for everyone: gcc and clang emit
        # the identical template and must share one structural pass
        cache = KernelCache()
        a = compile_binary(program, "gcc", "-O1", cache=cache)
        b = compile_binary(program, "clang", "-O1", cache=cache)
        stats = cache.stats()
        assert stats.structural_misses == 1
        assert stats.structural_hits == 1
        assert a.kernel.code is b.kernel.code  # same compiled template
        assert a.kernel.constants != b.kernel.constants  # vendor costs

    def test_lru_eviction_bounds_entries(self, program_stream):
        cache = KernelCache(structural_capacity=2, kernel_capacity=2)
        for p in program_stream[:4]:
            compile_binary(p, "gcc", cache=cache)
        assert len(cache) <= 4  # 2 structural + 2 kernel entries
        assert cache.stats().evictions >= 4

    def test_cached_and_fresh_kernels_execute_identically(
            self, program, input_gen, machine):
        cache = KernelCache()
        warm1 = compile_binary(program, "intel", cache=cache)
        warm2 = compile_binary(program, "intel", cache=cache)  # cache hit
        fresh = compile_binary(program, "intel", cache=KernelCache())
        t = input_gen.generate(program, 0)
        rows = [run_binary(b, t, machine).to_row()
                for b in (warm1, warm2, fresh)]
        assert rows[0] == rows[1] == rows[2]

    def test_snapshot_since_gives_per_phase_deltas(self, program,
                                                   program_stream):
        cache = KernelCache()
        compile_binary(program, "gcc", cache=cache)
        before = cache.snapshot()
        compile_binary(program, "gcc", cache=cache)          # all hits
        compile_binary(program_stream[1], "gcc", cache=cache)  # all misses
        delta = cache.stats().since(before)
        assert delta.structural_hits == 1
        assert delta.kernel_hits == 1
        assert delta.structural_misses == 1
        assert delta.kernel_misses == 1
        # totals keep accumulating independently of the snapshot
        assert cache.stats().structural_misses == 2

    def test_reset_zeroes_counters_but_keeps_entries(self, program):
        cache = KernelCache()
        a = compile_binary(program, "gcc", cache=cache)
        cache.reset()
        stats = cache.stats()
        assert stats.as_dict() == KernelCache().stats().as_dict()
        assert len(cache) > 0
        # entries survived: the next compile is a pure hit
        b = compile_binary(program, "gcc", cache=cache)
        assert a.kernel is b.kernel
        assert cache.stats().kernel_hits == 1
        assert cache.stats().kernel_misses == 0

    def test_reset_zeroes_evictions(self, program_stream):
        cache = KernelCache(structural_capacity=1, kernel_capacity=1)
        for p in program_stream[:3]:
            compile_binary(p, "gcc", cache=cache)
        assert cache.stats().evictions > 0
        cache.reset()
        assert cache.stats().evictions == 0

    def test_default_cache_swap(self):
        original = get_kernel_cache()
        try:
            mine = KernelCache()
            assert set_kernel_cache(mine) is mine
            assert get_kernel_cache() is mine
            with pytest.raises(TypeError):
                set_kernel_cache(object())  # type: ignore[arg-type]
        finally:
            set_kernel_cache(original)


class TestTwoPhaseLowering:
    def test_facade_matches_cached_pipeline(self, program):
        # the facade (like the seed Lowerer) lowers the tree it is given;
        # compile_binary applies the vendor FMA transform first
        from repro.vendors.optimizer import effective_fma_mode, lower_block
        from repro.vendors.toolchain import replace_body

        fma = effective_fma_mode(GCC.traits.fma_mode, "-O3")
        transformed = replace_body(program, lower_block(program.body, fma))
        via_facade = Lowerer(transformed, GCC, "-O3").lower()
        via_cache = compile_binary(program, "gcc",
                                   cache=KernelCache()).kernel
        assert via_facade.constants == via_cache.constants
        assert via_facade.source == via_cache.source

    def test_bind_is_memoized(self, program):
        kernel = Lowerer(program, CLANG, "-O3").lower()
        assert kernel.bind() is kernel.bind()

    def test_cost_pass_needs_no_ast(self, program):
        structural = StructuralLowerer(program, ftz=False).lower()
        gcc_kernel = bind_costs(structural, GCC, "-O3")
        clang_kernel = bind_costs(structural, CLANG, "-O3")
        assert gcc_kernel.code is clang_kernel.code
        assert len(gcc_kernel.constants) == structural.n_constants
        assert gcc_kernel.constants != clang_kernel.constants

    def test_fault_scaling_changes_only_constants(self, program):
        structural = StructuralLowerer(program, ftz=False).lower()
        plain = bind_costs(structural, GCC, "-O3")
        slow = bind_costs(structural, GCC, "-O3", slow_armed=True)
        assert plain.code is slow.code
        assert plain.constants != slow.constants

    def test_opt_level_changes_only_constants(self, program):
        # -O2 and -O3 share the gcc shape (same fma mode) but cost
        # differently; the compiled template is reused across levels
        cache = KernelCache()
        o2 = compile_binary(program, "gcc", "-O2", cache=cache)
        o3 = compile_binary(program, "gcc", "-O3", cache=cache)
        assert o2.kernel.code is o3.kernel.code
        assert o2.kernel.constants != o3.kernel.constants

    def test_regions_metadata_preserved(self, program):
        kernel = Lowerer(program, GCC, "-O3").lower()
        legacy_meta = [m.n_threads for m in kernel.regions]
        assert legacy_meta  # generated programs always have a region


class TestVendorVariantKeys:
    def test_custom_vendor_variant_never_hits_stock_entry(self, program):
        """A replace()-built vendor sharing the registry name must get
        its own kernel entry — constants differ with the cost model."""
        import dataclasses

        from repro.vendors.base import OpCosts

        cache = KernelCache()
        stock = compile_binary(program, GCC, cache=cache)
        variant_model = dataclasses.replace(
            GCC, ops=OpCosts(arith=(99.0, 9.0)))
        variant = compile_binary(program, variant_model, cache=cache)
        assert variant_model.name == GCC.name
        assert stock.kernel.constants != variant.kernel.constants
        # the structural template is shape-keyed and still shared
        assert stock.kernel.code is variant.kernel.code
