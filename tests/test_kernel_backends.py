"""Byte-identity battery and selection tests for the kernel backends.

The compiled C backend (:mod:`repro.sim.ckernel`) and the bytecode VM
(:mod:`repro.sim.vm`) must be *indistinguishable* from the interpreted
reference on every observable of a run record — status, numerical
output, virtual time, all nine counters, per-thread states, and the
fault detail string.  Anything less silently changes campaign verdicts,
which is the one thing a speed knob may never do.

The battery sweeps every directive mix × all three vendor models × two
optimization levels and compares full records across backends.  Fault
parity (CRASH/HANG records) is pinned separately.
"""

from __future__ import annotations

import warnings

import pytest

from repro.config import (
    DIRECTIVE_MIXES,
    CampaignConfig,
    ConfigError,
    GeneratorConfig,
    MachineConfig,
    apply_directive_mix,
)
from repro.core.generator import ProgramGenerator
from repro.core.inputs import InputGenerator
from repro.driver import run_binary
from repro.driver.engine import ExecutionPlan, execute_unit, plan_units
from repro.driver.records import RunStatus
from repro.sim import backend as backend_mod
from repro.sim import backend_info
from repro.sim.backend import (
    BACKENDS,
    active_kernel_backend,
    kernel_backend_info,
    set_kernel_backend,
    use_kernel_backend,
)
from repro.vendors import compile_binary

VENDORS = ("gcc", "clang", "intel")

_C_OK = backend_mod._c_available()[0]

#: backends every machine can run; "c" joins when the toolchain is up
PORTABLE = ("interp", "vm")
ALL_ACTIVE = PORTABLE + (("c",) if _C_OK else ())


def record_tuple(r):
    """Every observable of a run record (comp via repr: NaN-safe,
    -0.0-safe bit-level comparison)."""
    return (r.status, repr(r.comp), r.time_us, r.counters.as_dict(),
            r.thread_states, r.detail)


def run_under(binary, test_input, machine, backend):
    """Execute ``binary`` with the given backend, re-binding its entry
    (``Binary.entry`` memoizes the callable bound at first use)."""
    with use_kernel_backend(backend):
        binary.reset_entry()
        record = run_binary(binary, test_input, machine)
    binary.reset_entry()
    return record


# ----------------------------------------------------------------------
# entry-point caching
# ----------------------------------------------------------------------

class TestResetEntry:
    def test_reset_entry_drops_memoized_binding(self, program_stream):
        binary = compile_binary(program_stream[0], "gcc", "-O1")
        assert "entry" not in binary.__dict__
        first = binary.entry
        assert binary.__dict__["entry"] is first  # memoized
        binary.reset_entry()
        assert "entry" not in binary.__dict__
        binary.reset_entry()  # idempotent on an unbound binary
        assert callable(binary.entry)  # re-binds on next access

    def test_reset_entry_rebinds_under_new_backend(self, program_stream):
        binary = compile_binary(program_stream[0], "gcc", "-O1")
        with use_kernel_backend("interp"):
            interp_entry = binary.entry
        binary.reset_entry()
        with use_kernel_backend("vm"):
            vm_entry = binary.entry
        binary.reset_entry()
        assert interp_entry is not vm_entry


# ----------------------------------------------------------------------
# selection
# ----------------------------------------------------------------------

class TestBackendSelection:
    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "interp")
        assert active_kernel_backend() == "interp"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "vm")
        assert active_kernel_backend() == "vm"

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "turbo")
        with pytest.raises(ValueError, match="turbo"):
            active_kernel_backend()

    def test_set_kernel_backend_validates_eagerly(self):
        with pytest.raises(ValueError, match="warp"):
            set_kernel_backend("warp")

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "interp")
        with use_kernel_backend("vm"):
            assert active_kernel_backend() == "vm"
        assert active_kernel_backend() == "interp"

    def test_auto_resolves_to_c_or_interp(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "auto")
        active = active_kernel_backend()
        assert active in ("c", "interp")
        assert active == ("c" if _C_OK else "interp")

    def test_info_reports_requested_and_active(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "vm")
        info = kernel_backend_info()
        assert info["requested"] == "vm"
        assert info["active"] == "vm"
        assert info["reason"]

    def test_explicit_c_unavailable_warns_once(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_C_AVAIL",
                            (False, "simulated missing toolchain"))
        monkeypatch.setattr(backend_mod, "_warned", set())
        with use_kernel_backend("c"):
            with warnings.catch_warnings(record=True) as first:
                warnings.simplefilter("always")
                assert active_kernel_backend() == "interp"
            with warnings.catch_warnings(record=True) as second:
                warnings.simplefilter("always")
                active_kernel_backend()
        relevant = [w for w in first
                    if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1
        assert "simulated missing toolchain" in str(relevant[0].message)
        assert not [w for w in second
                    if issubclass(w.category, RuntimeWarning)]

    def test_auto_fallback_is_silent(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_C_AVAIL",
                            (False, "simulated missing toolchain"))
        monkeypatch.setattr(backend_mod, "_warned", set())
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "auto")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert active_kernel_backend() == "interp"
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert "unavailable" in kernel_backend_info()["reason"]

    def test_backend_info_aggregate(self):
        info = backend_info()
        assert set(info) == {"native_values", "kernel_backend", "ckernel"}
        assert "active" in info["native_values"]
        assert "reason" in info["kernel_backend"]
        assert "compiled" in info["ckernel"]


# ----------------------------------------------------------------------
# campaign-config plumbing
# ----------------------------------------------------------------------

class TestConfigPlumbing:
    def test_campaign_config_validates(self):
        with pytest.raises(ConfigError, match="kernel backend"):
            CampaignConfig(kernel_backend="fast")
        for b in BACKENDS:
            assert CampaignConfig(kernel_backend=b).kernel_backend == b

    def test_campaign_key_ignores_kernel_backend(self):
        from repro.fleet.store import campaign_key
        keys = {campaign_key(CampaignConfig(n_programs=2,
                                            kernel_backend=b))
                for b in (None, "interp", "vm", "c", "auto")}
        assert len(keys) == 1

    def test_execute_unit_applies_config_backend(self, fast_gen_cfg,
                                                 monkeypatch):
        applied = []
        real = backend_mod.use_kernel_backend

        def spy(backend):
            applied.append(backend)
            return real(backend)

        monkeypatch.setattr("repro.sim.backend.use_kernel_backend", spy)
        cfg = CampaignConfig(n_programs=1, inputs_per_program=1,
                             generator=fast_gen_cfg,
                             kernel_backend="interp")
        plan = ExecutionPlan(cfg)
        execute_unit(plan, plan_units(cfg)[0])
        assert applied == ["interp"]

    def test_execute_unit_none_leaves_default(self, fast_gen_cfg,
                                              monkeypatch):
        applied = []
        real = backend_mod.use_kernel_backend

        def spy(backend):
            applied.append(backend)
            return real(backend)

        monkeypatch.setattr("repro.sim.backend.use_kernel_backend", spy)
        cfg = CampaignConfig(n_programs=1, inputs_per_program=1,
                             generator=fast_gen_cfg)
        plan = ExecutionPlan(cfg)
        execute_unit(plan, plan_units(cfg)[0])
        assert applied == []

    def test_unit_outcomes_identical_across_backends(self, fast_gen_cfg):
        def outcome_key(o):
            return [(v.program_name, v.input_index, v.analyzed,
                     v.output_divergent,
                     [record_tuple(r) for r in v.records],
                     sorted((x.vendor, x.kind, x.score)
                            for x in v.outliers))
                    for v in o.verdicts]

        results = []
        for b in ALL_ACTIVE:
            cfg = CampaignConfig(n_programs=2, inputs_per_program=2,
                                 generator=fast_gen_cfg,
                                 kernel_backend=b)
            plan = ExecutionPlan(cfg)
            results.append([outcome_key(execute_unit(plan, u))
                            for u in plan_units(cfg)])
        for other in results[1:]:
            assert other == results[0]


# ----------------------------------------------------------------------
# the bitwise battery
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mix", sorted(DIRECTIVE_MIXES))
class TestBitwiseBattery:
    """Full-record identity across backends, per directive mix."""

    PROGRAMS_PER_MIX = 2
    OPT_LEVELS = ("-O1", "-O3")

    def test_records_identical(self, mix, machine):
        gen_cfg = apply_directive_mix(
            GeneratorConfig(max_total_iterations=4_000, loop_trip_max=60,
                            num_threads=8), mix)
        gen = ProgramGenerator(gen_cfg, seed=777)
        inputs = InputGenerator(gen_cfg, seed=778)
        compared = 0
        for i in range(self.PROGRAMS_PER_MIX):
            program = gen.generate(i)
            test_input = inputs.generate(program, 0)
            for vendor in VENDORS:
                for opt in self.OPT_LEVELS:
                    binary = compile_binary(program, vendor, opt)
                    reference = record_tuple(run_under(
                        binary, test_input, machine, "interp"))
                    for backend in ALL_ACTIVE[1:]:
                        got = record_tuple(run_under(
                            binary, test_input, machine, backend))
                        assert got == reference, (
                            f"{backend} diverged from interp on "
                            f"{program.name}/{vendor}/{opt} ({mix})")
                        compared += 1
        assert compared == (self.PROGRAMS_PER_MIX * len(VENDORS)
                            * len(self.OPT_LEVELS)
                            * (len(ALL_ACTIVE) - 1))


# ----------------------------------------------------------------------
# fault parity
# ----------------------------------------------------------------------

class TestFaultParity:
    """CRASH/HANG records — injected-fault paths leave the kernel early;
    the compiled code must unwind to the same partial time and detail.

    The (program index, vendor, status) triples are pinned from a scan
    of the seed-777 full-mix stream; faults arm deterministically from
    (fingerprint, vendor), so they can only move if the generator stream
    or the arming rule changes — both of which should fail loudly.
    """

    FAULT_CASES = (
        (45, "intel", RunStatus.HANG),
        (62, "intel", RunStatus.HANG),
        (136, "gcc", RunStatus.CRASH),
    )

    @pytest.mark.parametrize("index,vendor,status", FAULT_CASES)
    def test_faulting_records_identical(self, index, vendor, status,
                                        machine):
        gen_cfg = apply_directive_mix(
            GeneratorConfig(max_total_iterations=4_000, loop_trip_max=60,
                            num_threads=8), "full")
        program = ProgramGenerator(gen_cfg, seed=777).generate(index)
        test_input = InputGenerator(gen_cfg, seed=778).generate(program, 0)
        binary = compile_binary(program, vendor, "-O3")
        ref = run_under(binary, test_input, machine, "interp")
        assert ref.status is status
        for backend in ALL_ACTIVE[1:]:
            got = run_under(binary, test_input, machine, backend)
            assert record_tuple(got) == record_tuple(ref), (
                f"{backend} fault record diverged on "
                f"program {index}/{vendor}")
