"""Tests for the grammar formalization and the conformance checker."""

import pytest

from repro.core.grammar import GRAMMAR, check_conformance, conforms
from repro.core.nodes import (
    Assignment,
    Block,
    BoolExpr,
    DeclAssign,
    ForLoop,
    FPNumeral,
    IfBlock,
    IntNumeral,
    ModIdx,
    OmpCritical,
    OmpParallel,
    Program,
    VarRef,
)
from repro.core.types import (
    AssignOpKind,
    BoolOpKind,
    FPType,
    OmpClauses,
    Variable,
    VarKind,
)
from repro.errors import GrammarError


def _mk_var(name, kind=VarKind.PARAM, fp=FPType.DOUBLE, array=False):
    return Variable(name, fp, kind, is_array=array,
                    array_size=100 if array else 0)


def _mk_program(body: Block) -> Program:
    comp = _mk_var("comp", VarKind.COMP)
    x = _mk_var("var_1")
    return Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                   params=[comp, x], body=body)


def _assign(var, value=1.0):
    return Assignment(VarRef(var), AssignOpKind.ASSIGN, FPNumeral(value))


class TestGrammarData:
    def test_all_listing2_nonterminals_present(self):
        for lhs in ("function", "assignment", "expression", "term", "block",
                    "openmp-head", "openmp-block", "openmp-critical",
                    "if-block", "for-loop-head", "for-loop-block",
                    "loop-header", "bool-expression"):
            assert lhs in GRAMMAR

    def test_operator_terminals(self):
        assert '"+="' in GRAMMAR["assign-op"].alternatives
        assert '"*"' in GRAMMAR["reduction-op"].alternatives
        assert len(GRAMMAR["bool-op"].alternatives) == 6

    def test_str_rendering(self):
        assert str(GRAMMAR["term"]).startswith("<term> ::=")


class TestConformanceAccepts:
    def test_minimal_program(self):
        comp = _mk_var("comp", VarKind.COMP)
        p = _mk_program(Block([_assign(comp)]))
        p.comp = comp
        p.params[0] = comp
        check_conformance(p)

    def test_generated_stream_conforms(self, program_stream):
        for p in program_stream:
            check_conformance(p)


class TestConformanceRejects:
    def test_empty_block(self):
        p = _mk_program(Block([]))
        with pytest.raises(GrammarError, match="at least one statement"):
            check_conformance(p)

    def test_omp_for_outside_parallel(self):
        lv = Variable("i_1", None, VarKind.LOOP)
        body = Block([ForLoop(lv, IntNumeral(4),
                              Block([_assign(_mk_var("var_1"))]),
                              omp_for=True)])
        with pytest.raises(GrammarError, match="omp for outside"):
            check_conformance(_mk_program(body))

    def test_critical_outside_parallel(self):
        body = Block([OmpCritical(Block([_assign(_mk_var("var_1"))]))])
        with pytest.raises(GrammarError, match="critical outside"):
            check_conformance(_mk_program(body))

    def test_openmp_block_requires_trailing_loop(self):
        clauses = OmpClauses(num_threads=4)
        region = OmpParallel(clauses, Block([_assign(_mk_var("var_1"))]))
        with pytest.raises(GrammarError, match="end with a for-loop"):
            check_conformance(_mk_program(Block([region])))

    def test_uninitialized_private_rejected(self):
        v = _mk_var("var_1")
        clauses = OmpClauses(private=[v], num_threads=4)
        lv = Variable("i_1", None, VarKind.LOOP)
        loop = ForLoop(lv, IntNumeral(4), Block([_assign(v)]))
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        region = OmpParallel(clauses,
                             Block([DeclAssign(tmp, FPNumeral(0.0)), loop]))
        with pytest.raises(GrammarError, match="not initialized"):
            check_conformance(_mk_program(Block([region])))

    def test_variable_in_two_clauses_rejected(self):
        v = _mk_var("var_1")
        clauses = OmpClauses(private=[v], firstprivate=[v], num_threads=4)
        lv = Variable("i_1", None, VarKind.LOOP)
        loop = ForLoop(lv, IntNumeral(4), Block([_assign(v)]))
        region = OmpParallel(clauses, Block([_assign(v), loop]))
        with pytest.raises(GrammarError, match="two data-sharing clauses"):
            check_conformance(_mk_program(Block([region])))

    def test_self_referential_declassign_rejected(self):
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        body = Block([DeclAssign(tmp, VarRef(tmp))])
        with pytest.raises(GrammarError, match="references itself"):
            check_conformance(_mk_program(body))

    def test_negative_loop_bound_rejected(self):
        lv = Variable("i_1", None, VarKind.LOOP)
        body = Block([ForLoop(lv, IntNumeral(-3),
                              Block([_assign(_mk_var("var_1"))]))])
        with pytest.raises(GrammarError, match="non-negative"):
            check_conformance(_mk_program(body))

    def test_fp_loop_bound_rejected(self):
        lv = Variable("i_1", None, VarKind.LOOP)
        fp_bound = _mk_var("var_1")  # fp scalar, not int
        body = Block([ForLoop(lv, VarRef(fp_bound),
                              Block([_assign(_mk_var("var_2"))]))])
        with pytest.raises(GrammarError, match="must be an int"):
            check_conformance(_mk_program(body))

    def test_bad_index_modulus(self):
        arr = _mk_var("var_9", array=True)
        lv = Variable("i_1", None, VarKind.LOOP)
        target = Block([Assignment(
            VarRef(_mk_var("var_1")), AssignOpKind.ASSIGN, FPNumeral(1.0))])
        from repro.core.nodes import ArrayRef
        bad = Assignment(ArrayRef(arr, ModIdx(VarRef(lv), 0)),
                         AssignOpKind.ASSIGN, FPNumeral(1.0))
        body = Block([ForLoop(lv, IntNumeral(3), Block([bad]))])
        with pytest.raises(GrammarError, match="modulus"):
            check_conformance(_mk_program(body))

    def test_comp_must_be_scalar(self):
        comp = Variable("comp", FPType.DOUBLE, VarKind.COMP, is_array=True,
                        array_size=10)
        p = Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                    params=[comp], body=Block([_assign(_mk_var("x"))]))
        with pytest.raises(GrammarError, match="scalar"):
            check_conformance(p)

    def test_conforms_wrapper(self):
        p = _mk_program(Block([]))
        assert conforms(p) is False


class TestErrorPaths:
    """Satellite regression: GrammarError carries the full node path."""

    def test_path_points_into_nested_block(self):
        lv = Variable("i_1", None, VarKind.LOOP)
        good = _assign(_mk_var("var_1"))
        bad = ForLoop(lv, IntNumeral(-3),
                      Block([_assign(_mk_var("var_1"))]))
        body = Block([good, IfBlock(
            BoolExpr(VarRef(_mk_var("var_1")), BoolOpKind.LT, FPNumeral(1.0)),
            Block([bad]))])
        with pytest.raises(GrammarError) as exc:
            check_conformance(_mk_program(body))
        err = exc.value
        assert err.path == "program.body.stmts[1].body.stmts[0]"
        assert err.reason == "loop bound must be non-negative"
        assert "(at program.body.stmts[1].body.stmts[0])" in str(err)

    def test_path_reaches_expression_positions(self):
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        from repro.core.nodes import BinOp
        from repro.core.types import BinOpKind
        bad_expr = BinOp(BinOpKind.ADD, FPNumeral(1.0), object())
        body = Block([DeclAssign(tmp, bad_expr)])
        with pytest.raises(GrammarError) as exc:
            check_conformance(_mk_program(body))
        assert exc.value.path == "program.body.stmts[0].expr.rhs"

    def test_path_into_region_lead_statements(self):
        v = _mk_var("var_1")
        clauses = OmpClauses(num_threads=4)
        lv = Variable("i_1", None, VarKind.LOOP)
        loop = ForLoop(lv, IntNumeral(4), Block([_assign(v)]))
        # a critical may not appear among the leading statements
        region = OmpParallel(clauses, Block([
            _assign(v), OmpCritical(Block([_assign(v)])), loop]))
        with pytest.raises(GrammarError) as exc:
            check_conformance(_mk_program(Block([region])))
        assert exc.value.path == "program.body.stmts[0].body.stmts[1]"

    def test_error_without_path_has_plain_message(self):
        err = GrammarError("boom")
        assert err.path is None
        assert str(err) == "boom"


class TestDirectiveConformance:
    """Conformance rules of the directive-diversity constructs."""

    def _region(self, stmts):
        clauses = OmpClauses(num_threads=4)
        return _mk_program(Block([OmpParallel(clauses, Block(stmts))]))

    def _loop(self, body_stmts, **kw):
        lv = Variable(f"i_{id(body_stmts) % 97}", None, VarKind.LOOP)
        return ForLoop(lv, IntNumeral(4), Block(body_stmts), **kw)

    def test_atomic_outside_region_rejected(self):
        from repro.core.nodes import OmpAtomic
        upd = Assignment(VarRef(_mk_var("var_1")), AssignOpKind.ADD_ASSIGN,
                         FPNumeral(1.0))
        body = Block([OmpAtomic(upd)])
        with pytest.raises(GrammarError, match="atomic outside"):
            check_conformance(_mk_program(body))

    def test_atomic_must_use_compound_op(self):
        from repro.core.nodes import OmpAtomic
        v = _mk_var("var_1")
        upd = Assignment(VarRef(v), AssignOpKind.ASSIGN, FPNumeral(1.0))
        loop = self._loop([OmpAtomic(upd)], omp_for=True)
        p = self._region([_assign(v), loop])
        with pytest.raises(GrammarError, match="compound operator"):
            check_conformance(p)

    def test_atomic_expression_may_not_read_target(self):
        from repro.core.nodes import OmpAtomic
        v = _mk_var("var_1")
        upd = Assignment(VarRef(v), AssignOpKind.ADD_ASSIGN, VarRef(v))
        loop = self._loop([OmpAtomic(upd)], omp_for=True)
        p = self._region([_assign(v), loop])
        with pytest.raises(GrammarError, match="may not read the target"):
            check_conformance(p)

    def test_barrier_inside_worksharing_loop_rejected(self):
        from repro.core.nodes import OmpBarrier
        v = _mk_var("var_1")
        loop = self._loop([_assign(v), OmpBarrier()], omp_for=True)
        p = self._region([_assign(v), loop])
        with pytest.raises(GrammarError, match="non-uniform"):
            check_conformance(p)

    def test_single_inside_worksharing_loop_rejected(self):
        from repro.core.nodes import OmpSingle
        v = _mk_var("var_1")
        single = OmpSingle(Block([_assign(v)]))
        loop = self._loop([_assign(v), single], omp_for=True)
        p = self._region([_assign(v), loop])
        with pytest.raises(GrammarError, match="non-uniform"):
            check_conformance(p)

    def test_single_and_barrier_legal_in_region_lead(self):
        from repro.core.nodes import OmpBarrier, OmpSingle
        v = _mk_var("var_1")
        single = OmpSingle(Block([_assign(v)]))
        loop = self._loop([_assign(v)], omp_for=True)
        p = self._region([_assign(v), single, OmpBarrier(), loop])
        check_conformance(p)

    def test_collapse_requires_perfect_nesting(self):
        v = _mk_var("var_1")
        # outer body has an assignment next to the inner loop: not nested
        inner = self._loop([_assign(v)])
        outer = self._loop([_assign(v), inner], omp_for=True, collapse=2)
        p = self._region([_assign(v), outer])
        with pytest.raises(GrammarError, match="perfectly nested"):
            check_conformance(p)

    def test_collapse_with_perfect_nesting_accepted(self):
        v = _mk_var("var_1")
        inner = self._loop([_assign(v)])
        outer = self._loop([inner], omp_for=True, collapse=2)
        p = self._region([_assign(v), outer])
        check_conformance(p)

    def test_schedule_on_serial_loop_rejected(self):
        from repro.core.types import ScheduleKind
        v = _mk_var("var_1")
        loop = self._loop([_assign(v)], schedule=ScheduleKind.DYNAMIC)
        p = self._region([_assign(v), loop])
        with pytest.raises(GrammarError, match="serial for loop"):
            check_conformance(p)

    def test_combined_parallel_for_shape(self):
        v = _mk_var("var_1")
        loop = self._loop([_assign(v)], omp_for=True)
        clauses = OmpClauses(num_threads=4)
        p = _mk_program(Block([OmpParallel(clauses, Block([loop]),
                                           combined_for=True)]))
        check_conformance(p)

    def test_combined_parallel_for_rejects_private(self):
        v = _mk_var("var_1")
        loop = self._loop([_assign(v)], omp_for=True)
        clauses = OmpClauses(private=[v], num_threads=4)
        p = _mk_program(Block([OmpParallel(clauses, Block([loop]),
                                           combined_for=True)]))
        with pytest.raises(GrammarError, match="private clause"):
            check_conformance(p)

    def test_combined_parallel_for_requires_single_loop(self):
        v = _mk_var("var_1")
        loop = self._loop([_assign(v)], omp_for=True)
        clauses = OmpClauses(num_threads=4)
        p = _mk_program(Block([OmpParallel(clauses,
                                           Block([_assign(v), loop]),
                                           combined_for=True)]))
        with pytest.raises(GrammarError, match="exactly one"):
            check_conformance(p)

    def test_nested_worksharing_rejected(self):
        v = _mk_var("var_1")
        inner = self._loop([_assign(v)], omp_for=True)
        outer = self._loop([inner], omp_for=True)
        p = self._region([_assign(v), outer])
        with pytest.raises(GrammarError, match="closely nested"):
            check_conformance(p)
