"""Tests for the grammar formalization and the conformance checker."""

import pytest

from repro.core.grammar import GRAMMAR, check_conformance, conforms
from repro.core.nodes import (
    Assignment,
    Block,
    BoolExpr,
    DeclAssign,
    ForLoop,
    FPNumeral,
    IfBlock,
    IntNumeral,
    ModIdx,
    OmpCritical,
    OmpParallel,
    Program,
    VarRef,
)
from repro.core.types import (
    AssignOpKind,
    BoolOpKind,
    FPType,
    OmpClauses,
    Variable,
    VarKind,
)
from repro.errors import GrammarError


def _mk_var(name, kind=VarKind.PARAM, fp=FPType.DOUBLE, array=False):
    return Variable(name, fp, kind, is_array=array,
                    array_size=100 if array else 0)


def _mk_program(body: Block) -> Program:
    comp = _mk_var("comp", VarKind.COMP)
    x = _mk_var("var_1")
    return Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                   params=[comp, x], body=body)


def _assign(var, value=1.0):
    return Assignment(VarRef(var), AssignOpKind.ASSIGN, FPNumeral(value))


class TestGrammarData:
    def test_all_listing2_nonterminals_present(self):
        for lhs in ("function", "assignment", "expression", "term", "block",
                    "openmp-head", "openmp-block", "openmp-critical",
                    "if-block", "for-loop-head", "for-loop-block",
                    "loop-header", "bool-expression"):
            assert lhs in GRAMMAR

    def test_operator_terminals(self):
        assert '"+="' in GRAMMAR["assign-op"].alternatives
        assert '"*"' in GRAMMAR["reduction-op"].alternatives
        assert len(GRAMMAR["bool-op"].alternatives) == 6

    def test_str_rendering(self):
        assert str(GRAMMAR["term"]).startswith("<term> ::=")


class TestConformanceAccepts:
    def test_minimal_program(self):
        comp = _mk_var("comp", VarKind.COMP)
        p = _mk_program(Block([_assign(comp)]))
        p.comp = comp
        p.params[0] = comp
        check_conformance(p)

    def test_generated_stream_conforms(self, program_stream):
        for p in program_stream:
            check_conformance(p)


class TestConformanceRejects:
    def test_empty_block(self):
        p = _mk_program(Block([]))
        with pytest.raises(GrammarError, match="at least one statement"):
            check_conformance(p)

    def test_omp_for_outside_parallel(self):
        lv = Variable("i_1", None, VarKind.LOOP)
        body = Block([ForLoop(lv, IntNumeral(4),
                              Block([_assign(_mk_var("var_1"))]),
                              omp_for=True)])
        with pytest.raises(GrammarError, match="omp for outside"):
            check_conformance(_mk_program(body))

    def test_critical_outside_parallel(self):
        body = Block([OmpCritical(Block([_assign(_mk_var("var_1"))]))])
        with pytest.raises(GrammarError, match="critical outside"):
            check_conformance(_mk_program(body))

    def test_openmp_block_requires_trailing_loop(self):
        clauses = OmpClauses(num_threads=4)
        region = OmpParallel(clauses, Block([_assign(_mk_var("var_1"))]))
        with pytest.raises(GrammarError, match="end with a for-loop"):
            check_conformance(_mk_program(Block([region])))

    def test_uninitialized_private_rejected(self):
        v = _mk_var("var_1")
        clauses = OmpClauses(private=[v], num_threads=4)
        lv = Variable("i_1", None, VarKind.LOOP)
        loop = ForLoop(lv, IntNumeral(4), Block([_assign(v)]))
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        region = OmpParallel(clauses,
                             Block([DeclAssign(tmp, FPNumeral(0.0)), loop]))
        with pytest.raises(GrammarError, match="not initialized"):
            check_conformance(_mk_program(Block([region])))

    def test_variable_in_two_clauses_rejected(self):
        v = _mk_var("var_1")
        clauses = OmpClauses(private=[v], firstprivate=[v], num_threads=4)
        lv = Variable("i_1", None, VarKind.LOOP)
        loop = ForLoop(lv, IntNumeral(4), Block([_assign(v)]))
        region = OmpParallel(clauses, Block([_assign(v), loop]))
        with pytest.raises(GrammarError, match="two data-sharing clauses"):
            check_conformance(_mk_program(Block([region])))

    def test_self_referential_declassign_rejected(self):
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        body = Block([DeclAssign(tmp, VarRef(tmp))])
        with pytest.raises(GrammarError, match="references itself"):
            check_conformance(_mk_program(body))

    def test_negative_loop_bound_rejected(self):
        lv = Variable("i_1", None, VarKind.LOOP)
        body = Block([ForLoop(lv, IntNumeral(-3),
                              Block([_assign(_mk_var("var_1"))]))])
        with pytest.raises(GrammarError, match="non-negative"):
            check_conformance(_mk_program(body))

    def test_fp_loop_bound_rejected(self):
        lv = Variable("i_1", None, VarKind.LOOP)
        fp_bound = _mk_var("var_1")  # fp scalar, not int
        body = Block([ForLoop(lv, VarRef(fp_bound),
                              Block([_assign(_mk_var("var_2"))]))])
        with pytest.raises(GrammarError, match="must be an int"):
            check_conformance(_mk_program(body))

    def test_bad_index_modulus(self):
        arr = _mk_var("var_9", array=True)
        lv = Variable("i_1", None, VarKind.LOOP)
        target = Block([Assignment(
            VarRef(_mk_var("var_1")), AssignOpKind.ASSIGN, FPNumeral(1.0))])
        from repro.core.nodes import ArrayRef
        bad = Assignment(ArrayRef(arr, ModIdx(VarRef(lv), 0)),
                         AssignOpKind.ASSIGN, FPNumeral(1.0))
        body = Block([ForLoop(lv, IntNumeral(3), Block([bad]))])
        with pytest.raises(GrammarError, match="modulus"):
            check_conformance(_mk_program(body))

    def test_comp_must_be_scalar(self):
        comp = Variable("comp", FPType.DOUBLE, VarKind.COMP, is_array=True,
                        array_size=10)
        p = Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                    params=[comp], body=Block([_assign(_mk_var("x"))]))
        with pytest.raises(GrammarError, match="scalar"):
            check_conformance(p)

    def test_conforms_wrapper(self):
        p = _mk_program(Block([]))
        assert conforms(p) is False
