"""Tests for the session/engine API: backend registry, execution engines,
streaming, and checkpoint/resume."""

from __future__ import annotations

import json
import os
import warnings
from concurrent.futures import BrokenExecutor

import pytest

from repro.backends import (
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    unregister_backend,
)
from repro.backends.registry import SimulatedBackend
from repro.config import CampaignConfig, ConfigError, GeneratorConfig
from repro.driver.engine import (
    ExecutionPlan,
    ProcessPoolEngine,
    SerialEngine,
    ThreadPoolEngine,
    WorkUnit,
    create_engine,
    execute_unit,
    plan_units,
)
from repro.driver.records import RunRecord, RunStatus
from repro.errors import UnknownBackendError
from repro.harness import CampaignRunner, CampaignSession
from repro.sim.counters import PerfCounters
from repro.vendors import GCC


def verdict_key(verdicts):
    """Order-independent identity of a verdict set (and its records)."""
    return sorted(v.identity() for v in verdicts)


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------

class TestBackendRegistry:
    def test_paper_vendors_preregistered(self):
        assert {"gcc", "clang", "intel"} <= set(registered_backends())
        assert "gcc-native" in registered_backends()

    def test_simulated_backends_always_available(self):
        assert {"gcc", "clang", "intel"} <= set(available_backends())

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(UnknownBackendError, match="no-such-backend"):
            get_backend("no-such-backend")

    def test_register_lookup_unregister(self):
        b = register_backend(_Renamed(SimulatedBackend(GCC), "my-gcc"))
        try:
            assert get_backend("my-gcc") is b
            assert "my-gcc" in registered_backends()
        finally:
            unregister_backend("my-gcc")
        assert "my-gcc" not in registered_backends()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend(_Renamed(SimulatedBackend(GCC), "gcc"))

    def test_duplicate_registration_with_replace(self):
        original = get_backend("gcc")
        try:
            replacement = register_backend(
                _Renamed(SimulatedBackend(GCC), "gcc"), replace=True)
            assert get_backend("gcc") is replacement
        finally:
            register_backend(original, replace=True)

    def test_backend_contract_round_trip(self, program_stream, input_gen,
                                         machine):
        """compile/execute through the registry matches the legacy path."""
        from repro.driver.execution import run_binary
        from repro.vendors.toolchain import compile_binary

        program = program_stream[0]
        test_input = input_gen.generate(program, 0)
        backend = get_backend("gcc")
        exe = backend.compile(program, "-O2")
        got = backend.execute(exe, test_input, machine)
        want = run_binary(compile_binary(program, "gcc", "-O2"),
                          test_input, machine)
        assert (got.status, repr(got.comp), got.time_us) == \
            (want.status, repr(want.comp), want.time_us)


class _Renamed:
    """Wrap a backend under a different registry name."""

    def __init__(self, inner, name):
        self._inner = inner
        self.name = name

    def is_available(self):
        return self._inner.is_available()

    def compile(self, program, opt_level="-O3"):
        return self._inner.compile(program, opt_level)

    def execute(self, executable, test_input, machine=None, *,
                collect_profile=False):
        return self._inner.execute(executable, test_input, machine,
                                   collect_profile=collect_profile)


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------

class TestEngines:
    def test_factory_names(self):
        from repro.fleet.coordinator import FleetEngine

        assert isinstance(create_engine("serial"), SerialEngine)
        assert isinstance(create_engine("thread", 2), ThreadPoolEngine)
        assert isinstance(create_engine("process", 2), ProcessPoolEngine)
        assert isinstance(create_engine("fleet", 2), FleetEngine)
        with pytest.raises(ConfigError):
            create_engine("quantum")

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ConfigError):
            CampaignConfig(engine="quantum")
        with pytest.raises(ConfigError):
            CampaignConfig(jobs=0)

    def test_plan_units_covers_grid(self, fast_campaign_cfg):
        units = plan_units(fast_campaign_cfg)
        assert len(units) == fast_campaign_cfg.n_programs
        assert all(u.n_tests == fast_campaign_cfg.inputs_per_program
                   for u in units)

    def test_execute_unit_is_pure(self, fast_campaign_cfg):
        plan = ExecutionPlan(config=fast_campaign_cfg)
        unit = WorkUnit(0, (0, 1))
        a, b = execute_unit(plan, unit), execute_unit(plan, unit)
        assert verdict_key(a.verdicts) == verdict_key(b.verdicts)
        assert a.program_name == b.program_name

    @pytest.mark.parametrize("engine,jobs", [("serial", None),
                                             ("thread", 3),
                                             ("process", 2)])
    def test_engine_equivalence(self, fast_campaign_cfg, engine, jobs,
                                small_serial_result):
        result = CampaignSession(fast_campaign_cfg, engine=engine,
                                 jobs=jobs).run()
        assert verdict_key(result.verdicts) == \
            verdict_key(small_serial_result.verdicts)
        assert result.race_filtered == small_serial_result.race_filtered
        assert set(result.features) == set(small_serial_result.features)

    def test_run_order_is_deterministic_for_pooled_engines(
            self, fast_campaign_cfg, small_serial_result):
        result = CampaignSession(fast_campaign_cfg, engine="thread",
                                 jobs=4).run()
        # run() (unlike stream()) re-orders by program then input
        assert [(v.program_name, v.input_index) for v in result.verdicts] == \
            [(v.program_name, v.input_index)
             for v in small_serial_result.verdicts]

    def test_jobs_implies_process_engine(self, fast_campaign_cfg):
        # jobs without an engine means "go parallel"...
        assert isinstance(CampaignSession(fast_campaign_cfg, jobs=2).engine,
                          ProcessPoolEngine)
        # ...and contradicting it with an explicit serial request errors
        with pytest.raises(ConfigError, match="pooled"):
            CampaignSession(fast_campaign_cfg, engine="serial", jobs=2)
        # an engine instance carries its own worker count: jobs conflicts
        with pytest.raises(ConfigError, match="jobs"):
            CampaignSession(fast_campaign_cfg, engine=ThreadPoolEngine(2),
                            jobs=4)
        # config.jobs only sizes pooled engines; it never conflicts with
        # serial — neither from the config nor when downgrading a pooled
        # checkpoint to a serial finish
        import dataclasses
        cfg = dataclasses.replace(fast_campaign_cfg, engine="serial", jobs=4)
        assert isinstance(CampaignSession(cfg).engine, SerialEngine)
        cfg = dataclasses.replace(fast_campaign_cfg, engine="process", jobs=2)
        assert isinstance(CampaignSession(cfg, engine="serial").engine,
                          SerialEngine)

    def test_progress_fires_per_test_in_parallel(self, fast_campaign_cfg):
        seen = []
        CampaignSession(fast_campaign_cfg, engine="thread", jobs=2).run(
            progress=lambda d, t: seen.append((d, t)))
        n = fast_campaign_cfg.n_programs * fast_campaign_cfg.inputs_per_program
        assert seen == [(i + 1, n) for i in range(n)]


@pytest.fixture(scope="module")
def small_serial_result(fast_campaign_cfg):
    return CampaignSession(fast_campaign_cfg, engine="serial").run()


@pytest.fixture(scope="module")
def race_cfg():
    """Limitation-reproducing config whose grid contains racy programs."""
    gen = GeneratorConfig(allow_data_races=True, max_total_iterations=3_000,
                          loop_trip_max=50, num_threads=8)
    return CampaignConfig(n_programs=25, inputs_per_program=1,
                          seed=20240915, generator=gen)


@pytest.fixture(scope="module")
def race_full(race_cfg):
    return CampaignSession(race_cfg).run()


# ----------------------------------------------------------------------
# session streaming + checkpoint/resume
# ----------------------------------------------------------------------

class TestSession:
    def test_stream_yields_every_verdict(self, fast_campaign_cfg,
                                         small_serial_result):
        session = CampaignSession(fast_campaign_cfg, engine="thread", jobs=2)
        streamed = list(session.stream())
        assert verdict_key(streamed) == \
            verdict_key(small_serial_result.verdicts)
        assert session.done
        # a drained session streams nothing more, runs nothing more
        assert list(session.stream()) == []

    def test_matches_legacy_runner(self, fast_campaign_cfg,
                                   small_serial_result):
        legacy = CampaignRunner(fast_campaign_cfg).run()
        assert verdict_key(legacy.verdicts) == \
            verdict_key(small_serial_result.verdicts)

    def test_checkpoint_resume_round_trip_midway(self, fast_campaign_cfg,
                                                 small_serial_result,
                                                 tmp_path):
        session = CampaignSession(fast_campaign_cfg, engine="serial")
        half = (fast_campaign_cfg.n_programs *
                fast_campaign_cfg.inputs_per_program) // 2
        it = session.stream()
        for _ in range(half):
            next(it)
        it.close()  # interrupt mid-campaign
        path = tmp_path / "ckpt.jsonl"
        session.checkpoint(path)

        resumed = CampaignSession.resume(path, engine="process", jobs=2)
        assert 0 < resumed.completed_tests < resumed.total_tests
        result = resumed.run()
        assert verdict_key(result.verdicts) == \
            verdict_key(small_serial_result.verdicts)
        assert result.race_filtered == small_serial_result.race_filtered

    def test_checkpoint_of_complete_session(self, fast_campaign_cfg,
                                            small_serial_result, tmp_path):
        session = CampaignSession(fast_campaign_cfg)
        session.run()
        path = tmp_path / "done.jsonl"
        n = session.checkpoint(path)
        assert n == fast_campaign_cfg.n_programs
        resumed = CampaignSession.resume(path)
        assert resumed.done
        assert verdict_key(resumed.run().verdicts) == \
            verdict_key(small_serial_result.verdicts)

    def test_checkpoint_is_jsonl_with_header(self, fast_campaign_cfg,
                                             tmp_path):
        session = CampaignSession(fast_campaign_cfg)
        session.run()
        path = tmp_path / "c.jsonl"
        session.checkpoint(path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert lines[0]["config"]["n_programs"] == \
            fast_campaign_cfg.n_programs
        assert all(row["kind"] == "unit" for row in lines[1:])

    def test_checkpoint_persists_effective_engine(self, fast_campaign_cfg,
                                                  tmp_path):
        session = CampaignSession(fast_campaign_cfg, engine="thread", jobs=2)
        it = session.stream()
        next(it)
        it.close()
        path = tmp_path / "eng.jsonl"
        session.checkpoint(path)
        # a bare resume continues the way the campaign was running
        resumed = CampaignSession.resume(path)
        assert isinstance(resumed.engine, ThreadPoolEngine)
        assert resumed.engine.jobs == 2

    def test_concurrent_streams_rejected(self, fast_campaign_cfg):
        session = CampaignSession(fast_campaign_cfg)
        it = session.stream()
        next(it)
        with pytest.raises(ConfigError, match="already running"):
            next(session.stream())
        it.close()
        # after teardown a fresh stream is allowed again
        assert list(session.stream()) is not None

    def test_interrupt_salvages_in_flight_units(self, fast_campaign_cfg):
        session = CampaignSession(fast_campaign_cfg, engine="thread", jobs=4)
        it = session.stream()
        next(it)
        it.close()  # pool shutdown waits for in-flight units...
        # ...and everything that finished during teardown is kept
        assert session.completed_tests >= fast_campaign_cfg.inputs_per_program
        assert all(len(o.verdicts) == fast_campaign_cfg.inputs_per_program
                   for o in session._outcomes.values())

    def test_incremental_checkpoint_writer(self, fast_campaign_cfg,
                                           small_serial_result, tmp_path):
        session = CampaignSession(fast_campaign_cfg)
        path = tmp_path / "inc.jsonl"
        writer = session.open_checkpoint(path)
        seen = 0
        for _ in session.stream():
            seen += 1
            if seen % 3 == 0:
                writer.update()
        writer.update()
        assert writer.update() == 0  # idempotent when nothing is new
        # appended form resumes identically to a full snapshot
        resumed = CampaignSession.resume(path)
        assert resumed.done
        assert verdict_key(resumed.result().verdicts) == \
            verdict_key(small_serial_result.verdicts)

    def test_resume_drops_torn_trailing_line(self, fast_campaign_cfg,
                                             small_serial_result, tmp_path):
        session = CampaignSession(fast_campaign_cfg)
        session.run()
        path = tmp_path / "torn.jsonl"
        session.checkpoint(path)
        with path.open("a") as fh:
            fh.write('{"kind": "unit", "program_index": 99, "trunca')
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            resumed = CampaignSession.resume(path)  # hard-kill mid-append
        assert verdict_key(resumed.run().verdicts) == \
            verdict_key(small_serial_result.verdicts)

    def test_resume_survives_byte_truncation(self, fast_campaign_cfg,
                                             small_serial_result, tmp_path):
        """A power-cut mid-append leaves a half-written final row; resume
        drops it with a warning and re-runs that unit."""
        session = CampaignSession(fast_campaign_cfg)
        session.run()
        path = tmp_path / "cut.jsonl"
        session.checkpoint(path)
        path.write_bytes(path.read_bytes()[:-20])

        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            resumed = CampaignSession.resume(path)
        assert resumed.completed_tests < resumed.total_tests

        # re-checkpointing produces a clean file that resumes silently
        clean_path = tmp_path / "clean.jsonl"
        resumed.checkpoint(clean_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clean = CampaignSession.resume(clean_path)
        assert verdict_key(clean.run().verdicts) == \
            verdict_key(small_serial_result.verdicts)

    def test_resume_drops_malformed_final_row(self, fast_campaign_cfg,
                                              small_serial_result, tmp_path):
        session = CampaignSession(fast_campaign_cfg)
        session.run()
        path = tmp_path / "badrow.jsonl"
        session.checkpoint(path)
        with path.open("a") as fh:  # parses as JSON but fails to decode
            fh.write('{"kind": "unit", "program_index": 99}\n')
        with pytest.warns(RuntimeWarning, match="malformed final row"):
            resumed = CampaignSession.resume(path)
        assert verdict_key(resumed.run().verdicts) == \
            verdict_key(small_serial_result.verdicts)

    def test_resume_rejects_malformed_middle_row(self, fast_campaign_cfg,
                                                 tmp_path):
        """Corruption anywhere but the tail is not crash debris — refuse."""
        session = CampaignSession(fast_campaign_cfg)
        session.run()
        path = tmp_path / "mid.jsonl"
        session.checkpoint(path)
        lines = path.read_text().splitlines()
        lines.insert(2, '{"kind": "unit", "program_index": 99}')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigError, match="bad unit row"):
            CampaignSession.resume(path)

    def test_resume_rejects_bad_files(self, tmp_path):
        with pytest.raises(ConfigError):
            CampaignSession.resume(tmp_path / "missing.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "unit"}\n')
        with pytest.raises(ConfigError, match="header"):
            CampaignSession.resume(bad)

    def test_race_filtered_units_survive_resume(self, race_cfg, race_full,
                                                tmp_path):
        assert race_full.race_filtered  # the Section III-E limitation fires

        session = CampaignSession(race_cfg)
        it = session.stream()
        for _ in range(len(race_full.verdicts) // 2):
            next(it)
        it.close()
        path = tmp_path / "races.jsonl"
        session.checkpoint(path)
        result = CampaignSession.resume(path).run()
        assert result.race_filtered == race_full.race_filtered
        assert verdict_key(result.verdicts) == verdict_key(race_full.verdicts)


# ----------------------------------------------------------------------
# record row round-trip (the checkpoint's foundation)
# ----------------------------------------------------------------------

class TestRecordRows:
    def test_row_round_trip_exact(self):
        rec = RunRecord("t", "gcc", 1, RunStatus.OK, 1.0000000000000002e-308,
                        1234.56789012345,
                        counters=PerfCounters(cycles=7, branches=3),
                        detail="d", thread_states={"spin": [1, 2]})
        back = RunRecord.from_row(json.loads(json.dumps(rec.to_row())))
        assert repr(back.comp) == repr(rec.comp)
        assert back.time_us == rec.time_us
        assert back.counters == rec.counters
        assert back.thread_states == rec.thread_states
        assert back.status is rec.status

    def test_row_round_trip_nan_and_none(self):
        nan = RunRecord("t", "gcc", 0, RunStatus.OK, float("nan"), 1.0)
        back = RunRecord.from_row(json.loads(json.dumps(nan.to_row())))
        assert back.comp != back.comp  # NaN survives
        crash = RunRecord("t", "gcc", 0, RunStatus.CRASH, None, 0.0)
        back = RunRecord.from_row(json.loads(json.dumps(crash.to_row())))
        assert back.comp is None and back.status is RunStatus.CRASH


# ----------------------------------------------------------------------
# the satellite fix: iter_tests agrees with run() under race filtering
# ----------------------------------------------------------------------

class TestIterTestsRaceFilter:
    def test_iter_tests_applies_static_race_filter(self, race_cfg, race_full):
        runner = CampaignRunner(race_cfg)
        iterated = {p.name for p, _ in runner.iter_tests()}
        executed = {v.program_name for v in race_full.verdicts}
        assert iterated == executed
        assert not iterated & set(race_full.race_filtered)


class TestChunkedDispatch:
    """Chunked pooled dispatch: batching must be invisible in results."""

    def test_resolve_chunk_size_auto_and_explicit(self, fast_campaign_cfg):
        import dataclasses

        from repro.driver.engine import resolve_chunk_size

        cfg = fast_campaign_cfg
        assert resolve_chunk_size(cfg, 8, jobs=8) == 1  # fits the pool
        assert resolve_chunk_size(cfg, 200, jobs=4) == 13  # ~4 per worker
        assert resolve_chunk_size(cfg, 10_000, jobs=2) == 16  # capped
        explicit = dataclasses.replace(cfg, chunk_size=5)
        assert resolve_chunk_size(explicit, 10_000, jobs=2) == 5

    def test_chunk_size_validation(self, fast_campaign_cfg):
        import dataclasses

        with pytest.raises(ConfigError, match="chunk_size"):
            dataclasses.replace(fast_campaign_cfg, chunk_size=0)

    @pytest.mark.parametrize("engine", ["thread", "process"])
    def test_chunked_verdicts_identical_to_serial(self, fast_campaign_cfg,
                                                  small_serial_result,
                                                  engine):
        import dataclasses

        cfg = dataclasses.replace(fast_campaign_cfg, chunk_size=3)
        result = CampaignSession(cfg, engine=engine, jobs=2).run()
        assert verdict_key(result.verdicts) == \
            verdict_key(small_serial_result.verdicts)

    def test_mid_chunk_resume_equivalence(self, fast_campaign_cfg,
                                          small_serial_result, tmp_path):
        """Interrupting a chunked process run mid-grid and resuming must
        reproduce the uninterrupted result exactly (the checkpoint
        persists whole units, never partial chunks)."""
        import dataclasses

        cfg = dataclasses.replace(fast_campaign_cfg, chunk_size=3)
        session = CampaignSession(cfg, engine="process", jobs=2)
        seen = 0
        for _ in session.stream():
            seen += 1
            if seen >= 5:  # abandon mid-grid, mid-chunk
                break
        path = tmp_path / "midchunk.jsonl"
        session.checkpoint(path)

        resumed = CampaignSession.resume(path)
        assert 0 < resumed.completed_tests <= resumed.total_tests
        result = resumed.run()
        assert verdict_key(result.verdicts) == \
            verdict_key(small_serial_result.verdicts)

    def test_salvaged_chunk_outcomes_checkpointable(self, fast_campaign_cfg,
                                                    tmp_path):
        import dataclasses

        cfg = dataclasses.replace(fast_campaign_cfg, chunk_size=4)
        session = CampaignSession(cfg, engine="thread", jobs=2)
        stream = session.stream()
        next(stream)
        stream.close()  # interrupt: in-flight chunks are salvaged whole
        path = tmp_path / "salvaged.jsonl"
        session.checkpoint(path)
        resumed = CampaignSession.resume(path)
        assert resumed.completed_tests >= fast_campaign_cfg.inputs_per_program


def _double_or_die_once(item):
    """First call anywhere in the pool hard-kills its worker; later calls
    (sentinel present) succeed.  Module-level so process pools can pickle."""
    value, sentinel = item
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)
    return value * 2


def _always_die(_value):
    os._exit(1)


class TestMapUnorderedWorkerDeath:
    def test_chunk_retried_once_after_worker_death(self, tmp_path):
        engine = ProcessPoolEngine(2)
        sentinel = str(tmp_path / "died-once")
        items = [(i, sentinel) for i in range(8)]
        got = sorted(engine.map_unordered(_double_or_die_once, items,
                                          chunk_size=2))
        assert got == [i * 2 for i in range(8)]

    def test_persistent_worker_death_raises(self):
        engine = ProcessPoolEngine(2)
        with pytest.raises(BrokenExecutor):
            list(engine.map_unordered(_always_die, list(range(4)),
                                      chunk_size=2))

    def test_progress_counts_retried_items_once(self, tmp_path):
        engine = ProcessPoolEngine(2)
        sentinel = str(tmp_path / "died-counting")
        items = [(i, sentinel) for i in range(6)]
        seen = []
        list(engine.map_unordered(_double_or_die_once, items, chunk_size=3,
                                  progress=lambda d, t: seen.append((d, t))))
        assert seen[-1] == (6, 6)
        assert [d for d, _ in seen] == list(range(1, 7))


class TestProgressThrottling:
    def test_progress_none_runs_clean(self, fast_campaign_cfg,
                                      small_serial_result):
        result = CampaignSession(fast_campaign_cfg).run(progress=None)
        assert verdict_key(result.verdicts) == \
            verdict_key(small_serial_result.verdicts)

    def test_progress_every_throttles_firing_count(self, fast_campaign_cfg):
        per_test, throttled = [], []
        CampaignSession(fast_campaign_cfg).run(
            progress=lambda d, t: per_test.append((d, t)))
        CampaignSession(fast_campaign_cfg).run(
            progress=lambda d, t: throttled.append((d, t)),
            progress_every=6)
        n = (fast_campaign_cfg.n_programs *
             fast_campaign_cfg.inputs_per_program)
        assert len(per_test) == n
        assert len(throttled) < len(per_test)
        # monotone, and the final total always reports
        assert [d for d, _ in throttled] == sorted(d for d, _ in throttled)
        assert throttled[-1] == (n, n)

    def test_progress_every_on_pooled_engine(self, fast_campaign_cfg):
        seen = []
        CampaignSession(fast_campaign_cfg, engine="thread", jobs=2).run(
            progress=lambda d, t: seen.append((d, t)), progress_every=4)
        n = (fast_campaign_cfg.n_programs *
             fast_campaign_cfg.inputs_per_program)
        assert seen and seen[-1] == (n, n)
        assert len(seen) <= -(-n // 4) + 1

    def test_mid_chunk_interrupt_salvages_rest_of_chunk(
            self, fast_campaign_cfg):
        """Closing the stream between two yields of one chunk must hand
        the chunk's remaining completed outcomes to the salvage hook —
        they are finished work."""
        import dataclasses

        from repro.driver.engine import ExecutionPlan, ThreadPoolEngine, \
            plan_units

        cfg = dataclasses.replace(fast_campaign_cfg, chunk_size=4)
        plan = ExecutionPlan(config=cfg)
        units = plan_units(cfg)
        salvaged = []
        engine = ThreadPoolEngine(1)  # one worker: chunks complete whole
        stream = engine.run(plan, units, salvage=salvaged.append)
        first = next(stream)
        stream.close()
        salvaged_idx = {o.program_index for o in salvaged}
        assert first.program_index not in salvaged_idx
        # the first chunk had 4 units; the 3 unyielded ones must survive
        assert {1, 2, 3} <= salvaged_idx
