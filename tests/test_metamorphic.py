"""Metamorphic properties of the generator and emitter.

Two invariances the differential pipeline silently depends on:

* **emission is pure** — emitting the same ``Program`` twice (even with a
  compile in between, which must not mutate the tree) yields byte-identical
  C++; fingerprints and fault triggers would otherwise drift;
* **generation is restart-invariant** — ``generate(config, index)`` is a
  pure function of its arguments, reproducible in a *fresh interpreter
  process* (work units cross process boundaries as two integers, so a
  forked pool worker must rebuild the identical program).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from pathlib import Path

from repro.codegen.emit_main import emit_translation_unit, source_fingerprint
from repro.config import GeneratorConfig
from repro.core.generator import ProgramGenerator
from repro.vendors import compile_binary

_SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

#: a deliberately non-default config: the subprocess must reproduce the
#: stream from the serialized parameters alone
_CFG_KWARGS = dict(max_total_iterations=3_000, loop_trip_max=50,
                   num_threads=4, parallel_for_probability=0.6,
                   atomic_probability=0.5, single_probability=0.5,
                   reduction_probability=0.5)
_SEED = 99173
_INDICES = (0, 1, 5, 11)


def _digests_inprocess() -> list[str]:
    gen = ProgramGenerator(GeneratorConfig(**_CFG_KWARGS), seed=_SEED)
    return [hashlib.sha256(
        emit_translation_unit(gen.generate(i)).encode()).hexdigest()
        for i in _INDICES]


class TestEmissionIsPure:
    def test_double_emission_is_byte_identical(self, program_stream):
        for p in program_stream:
            assert emit_translation_unit(p) == emit_translation_unit(p)

    def test_compilation_does_not_mutate_the_tree(self, program_stream):
        """Vendor lowering builds new trees; the original program must
        emit identically (and keep its fingerprint) after a compile."""
        for p in program_stream[:4]:
            before = emit_translation_unit(p)
            fp_before = source_fingerprint(p)
            for vendor in ("gcc", "clang", "intel"):
                compile_binary(p, vendor, "-O3")
            assert emit_translation_unit(p) == before
            assert source_fingerprint(p) == fp_before


class TestRestartInvariance:
    def test_generate_is_invariant_under_process_restart(self):
        """A fresh interpreter rebuilds byte-identical programs from
        (config, seed, index) — the contract the process-pool engine's
        two-integer work units rely on."""
        script = (
            "import hashlib, json, sys\n"
            "from repro.config import GeneratorConfig\n"
            "from repro.core.generator import ProgramGenerator\n"
            "from repro.codegen.emit_main import emit_translation_unit\n"
            "spec = json.loads(sys.stdin.read())\n"
            "gen = ProgramGenerator(GeneratorConfig(**spec['cfg']),"
            " seed=spec['seed'])\n"
            "out = [hashlib.sha256(emit_translation_unit("
            "gen.generate(i)).encode()).hexdigest()"
            " for i in spec['indices']]\n"
            "print(json.dumps(out))\n"
        )
        spec = json.dumps({"cfg": _CFG_KWARGS, "seed": _SEED,
                           "indices": list(_INDICES)})
        proc = subprocess.run(
            [sys.executable, "-c", script], input=spec, text=True,
            capture_output=True, timeout=120,
            env={"PYTHONPATH": _SRC_DIR, "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr[:2000]
        assert json.loads(proc.stdout) == _digests_inprocess()

    def test_same_session_regeneration_matches(self):
        a = ProgramGenerator(GeneratorConfig(**_CFG_KWARGS), seed=_SEED)
        b = ProgramGenerator(GeneratorConfig(**_CFG_KWARGS), seed=_SEED)
        # out-of-order access must not matter: the stream is indexed
        for i in reversed(_INDICES):
            assert emit_translation_unit(b.generate(i)) == \
                emit_translation_unit(a.generate(i))
