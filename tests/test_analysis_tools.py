"""Tests for perf-counter comparisons, profiles, and thread-state views."""

import pytest

from repro.analysis.perfstats import (
    CounterComparison,
    TABLE2_DIRECTIONS,
    TABLE3_DIRECTIONS,
    check_directions,
    compare_counters,
)
from repro.analysis.profiles import (
    children_report,
    flat_report,
    render_children,
    render_flat,
    symbol_fraction,
)
from repro.analysis.threadstate import (
    render_backtrace,
    render_thread_groups,
    thread_groups,
)
from repro.driver.records import RunRecord, RunStatus
from repro.errors import AnalysisError
from repro.sim.counters import PerfCounters
from repro.sim.events import ProfileRecorder
from repro.vendors import GCC, INTEL


def _rec(vendor, status=RunStatus.OK, counters=None, states=None):
    return RunRecord(program_name="p", vendor=vendor, input_index=0,
                     status=status, comp=1.0, time_us=2000.0,
                     counters=counters or PerfCounters(),
                     thread_states=states)


class TestCounterComparison:
    def test_compare_and_ratio(self):
        left = PerfCounters(context_switches=10, cycles=100)
        right = PerfCounters(context_switches=230, cycles=150)
        recs = [_rec("gcc", counters=left), _rec("intel", counters=right)]
        cmp = compare_counters(recs, "gcc", "intel")
        assert cmp.ratio("context_switches") == 23.0
        assert cmp.ratio("cycles") == 1.5

    def test_zero_left_ratio(self):
        cmp = CounterComparison("p", 0, "a", "b", PerfCounters(),
                                PerfCounters(cpu_migrations=5))
        assert cmp.ratio("cpu_migrations") == float("inf")
        assert cmp.ratio("page_faults") == 1.0

    def test_missing_vendor_raises(self):
        with pytest.raises(AnalysisError):
            compare_counters([_rec("gcc")], "gcc", "intel")

    def test_render_contains_all_rows(self):
        cmp = CounterComparison("p", 0, "intel", "gcc",
                                PerfCounters(cycles=5), PerfCounters(cycles=9))
        text = cmp.render()
        for label in ("context-switches", "cpu-migrations", "page-faults",
                      "cycles", "instructions", "branches", "branch-misses"):
            assert label in text

    def test_check_directions(self):
        left = PerfCounters(context_switches=10, cpu_migrations=0,
                            page_faults=226, cycles=154_797_061,
                            instructions=60_084_059, branch_misses=67_406)
        right = PerfCounters(context_switches=232, cpu_migrations=96,
                             page_faults=627, cycles=110_520_780,
                             instructions=85_366_729, branch_misses=182_300)
        # oriented as (gcc, intel): Table II directions ask intel/gcc
        cmp = CounterComparison("p", 0, "gcc", "intel", left, right)
        result = check_directions(cmp, TABLE2_DIRECTIONS)
        assert all(result.values())


class TestProfiles:
    def _profile(self):
        pr = ProfileRecorder(binary_name="bin")
        pr.charge("libiomp5.so", INTEL.symbols.wait_primary, 3000.0)
        pr.charge("libiomp5.so", INTEL.symbols.wait_secondary, 1200.0)
        pr.charge("bin", INTEL.symbols.compute, 5000.0)
        pr.charge("bin", INTEL.symbols.serial_compute, 800.0)
        return pr

    def test_flat_report_sorted_and_normalized(self):
        rows = flat_report(self._profile())
        assert rows[0].overhead >= rows[-1].overhead
        assert sum(r.overhead for r in rows) == pytest.approx(1.0)

    def test_flat_render(self):
        text = render_flat(self._profile())
        assert "__kmp_wait" in text and "%" in text

    def test_children_mode_parents_accumulate(self):
        rows = children_report(self._profile(), INTEL)
        by_symbol = {r.symbol: r for r in rows}
        # start_thread sits above every worker leaf
        st = by_symbol["start_thread"]
        leaf = by_symbol[INTEL.symbols.wait_primary]
        assert st.children >= leaf.children
        assert st.children > 0.5  # "the sum ... exceeds 100%" territory

    def test_children_render(self):
        text = render_children(self._profile(), INTEL)
        assert "Children" in text and "start_thread" in text

    def test_symbol_fraction(self):
        pr = self._profile()
        assert symbol_fraction(pr, INTEL.symbols.compute) == pytest.approx(
            5000.0 / pr.total())
        assert symbol_fraction(pr, "nonexistent") == 0.0

    def test_empty_profile(self):
        pr = ProfileRecorder()
        assert flat_report(pr) == []
        assert children_report(pr, GCC) == []
        assert symbol_fraction(pr, "x") == 0.0

    def test_merge(self):
        a, b = self._profile(), self._profile()
        total = a.total()
        a.merge(b)
        assert a.total() == pytest.approx(2 * total)


class TestThreadState:
    def _hang(self):
        states = {"__kmp_wait_4": list(range(16)),
                  "__kmp_eq_4": list(range(16, 25)),
                  "sched_yield": list(range(25, 32))}
        return _rec("intel", RunStatus.HANG, states=states)

    def test_groups_sorted_by_size(self):
        groups = thread_groups(self._hang())
        assert [g.size for g in groups] == [16, 9, 7]
        assert groups[0].state == "__kmp_wait_4"

    def test_total_is_team_size(self):
        assert sum(g.size for g in thread_groups(self._hang())) == 32

    def test_render_groups(self):
        text = render_thread_groups(self._hang())
        assert "32 threads stuck" in text
        assert "__kmp_eq_4" in text

    def test_backtrace_mentions_critical_with_hint(self):
        text = render_backtrace(self._hang())
        assert "__kmpc_critical_with_hint" in text
        assert "SIGINT" in text

    def test_non_hang_rejected(self):
        with pytest.raises(AnalysisError):
            thread_groups(_rec("intel", RunStatus.OK))

    def test_hang_without_snapshot_rejected(self):
        with pytest.raises(AnalysisError):
            thread_groups(_rec("intel", RunStatus.HANG, states=None))
