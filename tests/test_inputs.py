"""Tests for the five-category floating-point input generator (§III-D)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GeneratorConfig
from repro.core.inputs import (
    CATEGORY_WEIGHTS,
    FPCategory,
    InputGenerator,
    LIMITS,
    classify,
    sample_category,
)
from repro.core.types import FPType
from repro.rng import Rng

_CATS = list(FPCategory)
_TYPES = [FPType.FLOAT, FPType.DOUBLE]


class TestSampling:
    @pytest.mark.parametrize("fp", _TYPES)
    @pytest.mark.parametrize("cat", _CATS)
    def test_sample_classifies_back(self, cat, fp):
        rng = Rng(17)
        for _ in range(200):
            v = sample_category(rng, cat, fp)
            assert classify(v, fp) is cat, (cat, fp, v)

    @pytest.mark.parametrize("fp", _TYPES)
    def test_subnormal_is_ieee_subnormal(self, fp):
        rng = Rng(3)
        lim = LIMITS[fp]
        for _ in range(100):
            v = sample_category(rng, FPCategory.SUBNORMAL, fp)
            assert 0 < abs(v) < lim.min_normal

    @pytest.mark.parametrize("fp", _TYPES)
    def test_almost_inf_is_still_finite_normal(self, fp):
        rng = Rng(4)
        lim = LIMITS[fp]
        for _ in range(100):
            v = sample_category(rng, FPCategory.ALMOST_INF, fp)
            assert math.isfinite(v)
            assert abs(v) <= lim.max_normal
            assert abs(v) >= lim.min_normal  # "still a normal number"

    @pytest.mark.parametrize("fp", _TYPES)
    def test_almost_subnormal_is_normal(self, fp):
        rng = Rng(5)
        lim = LIMITS[fp]
        for _ in range(100):
            v = sample_category(rng, FPCategory.ALMOST_SUBNORMAL, fp)
            assert abs(v) >= lim.min_normal

    def test_zero_has_both_signs(self):
        rng = Rng(6)
        signs = {math.copysign(1.0, sample_category(rng, FPCategory.ZERO,
                                                    FPType.DOUBLE))
                 for _ in range(50)}
        assert signs == {1.0, -1.0}

    def test_float_values_survive_f32_rounding(self):
        import ctypes
        rng = Rng(7)
        for cat in (FPCategory.SUBNORMAL, FPCategory.ALMOST_INF):
            for _ in range(50):
                v = sample_category(rng, cat, FPType.FLOAT)
                assert classify(ctypes.c_float(v).value, FPType.FLOAT) is cat


class TestClassify:
    def test_classify_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            classify(math.inf, FPType.DOUBLE)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_classify_total_on_finite_doubles(self, v):
        assert classify(v, FPType.DOUBLE) in FPCategory


class TestInputGenerator:
    def test_covers_every_param(self, program_stream, input_gen):
        for p in program_stream:
            inp = input_gen.generate(p, 0)
            assert set(inp.values) == {v.name for v in p.params}

    def test_int_params_within_trip_range(self, fast_gen_cfg, program_stream,
                                          input_gen):
        for p in program_stream:
            inp = input_gen.generate(p, 0)
            for v in p.int_params:
                assert fast_gen_cfg.loop_trip_min <= inp.values[v.name] \
                    <= fast_gen_cfg.loop_trip_max

    def test_deterministic(self, fast_gen_cfg, program_stream):
        a = InputGenerator(fast_gen_cfg, seed=42)
        b = InputGenerator(fast_gen_cfg, seed=42)
        p = program_stream[0]
        assert a.generate(p, 1).values == b.generate(p, 1).values

    def test_inputs_differ_across_indices(self, program_stream, input_gen):
        p = program_stream[0]
        assert input_gen.generate(p, 0).values != input_gen.generate(p, 1).values

    def test_argv_roundtrip_precision(self, program_stream, input_gen):
        p = program_stream[0]
        inp = input_gen.generate(p, 0)
        argv = inp.argv(p)
        for param, token in zip(p.params, argv):
            if param.is_int:
                assert int(token) == inp.values[param.name]
            else:
                assert float(token) == float(inp.values[param.name])

    def test_batch_matches_singles(self, program_stream, input_gen):
        p = program_stream[1]
        batch = input_gen.batch(p, 3)
        assert [t.values for t in batch] == \
            [input_gen.generate(p, i).values for i in range(3)]

    def test_category_weights_sum_to_one(self):
        assert sum(w for _, w in CATEGORY_WEIGHTS) == pytest.approx(1.0)

    def test_extreme_count_counts_hard_categories(self, program_stream,
                                                  input_gen):
        p = program_stream[0]
        inp = input_gen.generate(p, 0)
        n = sum(c in (FPCategory.SUBNORMAL, FPCategory.ALMOST_INF)
                for c in inp.categories.values())
        assert inp.extreme_count() == n
