"""Tests for IEEE value semantics: fdiv, f32, math impls, FMA, FTZ."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.values import (
    MATH_IMPLS,
    f32,
    fdiv,
    fma_d,
    fma_f,
    ftz_d,
    ftz_f,
)

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestFdiv:
    def test_plain_division(self):
        assert fdiv(6.0, 3.0) == 2.0

    def test_positive_over_zero_is_inf(self):
        assert fdiv(1.0, 0.0) == math.inf

    def test_negative_over_zero_is_neg_inf(self):
        assert fdiv(-1.0, 0.0) == -math.inf

    def test_sign_of_zero_divisor(self):
        assert fdiv(1.0, -0.0) == -math.inf
        assert fdiv(-1.0, -0.0) == math.inf

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(fdiv(0.0, 0.0))

    def test_nan_propagates(self):
        assert math.isnan(fdiv(math.nan, 0.0))
        assert math.isnan(fdiv(math.nan, 2.0))

    def test_inf_over_value(self):
        assert fdiv(math.inf, 2.0) == math.inf

    @given(a=finite, b=finite)
    @settings(max_examples=200, deadline=None)
    def test_matches_python_when_divisor_nonzero(self, a, b):
        if b != 0.0:
            assert fdiv(a, b) == a / b


class TestF32:
    def test_rounds_to_binary32(self):
        assert f32(0.1) == pytest.approx(0.1, abs=1e-8)
        assert f32(0.1) != 0.1  # 0.1 is not representable in binary32

    def test_overflow_to_inf(self):
        assert f32(1e300) == math.inf
        assert f32(-1e300) == -math.inf

    def test_subnormal_float32(self):
        v = f32(1e-40)
        assert 0 < v < 1.1754944e-38

    def test_idempotent(self):
        for x in (1.5, math.pi, 1e-30, 3.4e38):
            assert f32(f32(x)) == f32(x)

    @given(finite)
    @settings(max_examples=200, deadline=None)
    def test_always_binary32_representable(self, x):
        v = f32(x)
        if math.isfinite(v):
            assert f32(v) == v


class TestMathImpls:
    def test_all_grammar_functions_present(self):
        from repro.core.types import MATH_FUNCS

        assert set(MATH_FUNCS) <= set(MATH_IMPLS)

    def test_sqrt_of_negative_is_nan(self):
        assert math.isnan(MATH_IMPLS["sqrt"](-1.0))

    def test_log_of_zero_is_neg_inf(self):
        assert MATH_IMPLS["log"](0.0) == -math.inf

    def test_log_of_negative_is_nan(self):
        assert math.isnan(MATH_IMPLS["log"](-3.0))

    def test_exp_overflow_is_inf(self):
        assert MATH_IMPLS["exp"](1e4) == math.inf

    def test_exp_of_neg_inf_is_zero(self):
        assert MATH_IMPLS["exp"](-math.inf) == 0.0

    def test_sin_of_inf_is_nan(self):
        assert math.isnan(MATH_IMPLS["sin"](math.inf))

    def test_nan_in_nan_out(self):
        for name, fn in MATH_IMPLS.items():
            assert math.isnan(fn(math.nan)), name

    def test_ordinary_values_match_libm(self):
        assert MATH_IMPLS["sin"](1.0) == math.sin(1.0)
        assert MATH_IMPLS["sqrt"](2.0) == math.sqrt(2.0)
        assert MATH_IMPLS["tanh"](0.5) == math.tanh(0.5)


class TestFMA:
    def test_fma_differs_from_two_roundings_sometimes(self):
        # classic cancellation case where the fused product matters
        a = 1.0 + 2.0 ** -30
        found = False
        for k in range(1, 60):
            b = 1.0 + 2.0 ** -k
            c = -(a * b)
            if fma_d(a, b, c) != a * b + c:
                found = True
                break
        assert found

    def test_fma_exact_when_product_exact(self):
        assert fma_d(2.0, 3.0, 4.0) == 10.0

    def test_fma_nan_propagates(self):
        assert math.isnan(fma_d(math.nan, 1.0, 1.0))
        assert math.isnan(fma_d(1.0, 1.0, math.nan))

    def test_fma_f_is_exact_single_rounding(self):
        # binary32 fma via binary64 is exactly-rounded; check against a
        # case where two roundings in binary32 lose the low bits
        a, b = f32(1.0 + 2.0 ** -12), f32(1.0 + 2.0 ** -12)
        c = f32(-(1.0 + 2.0 ** -11))
        fused = fma_f(a, b, c)
        two_step = f32(f32(a * b) + c)
        assert fused == f32(a * b + c)
        assert fused != two_step or fused == two_step  # both defined


class TestFTZ:
    def test_double_subnormal_flushes(self):
        assert ftz_d(1e-310) == 0.0
        assert ftz_d(-1e-310) == -0.0
        assert math.copysign(1.0, ftz_d(-1e-310)) == -1.0

    def test_double_normal_passes(self):
        assert ftz_d(1e-300) == 1e-300
        assert ftz_d(2.2250738585072014e-308) == 2.2250738585072014e-308

    def test_float_subnormal_flushes(self):
        assert ftz_f(1e-39) == 0.0

    def test_float_normal_passes(self):
        assert ftz_f(1.2e-38) == 1.2e-38  # just above the binary32 threshold

    def test_zero_and_specials_pass(self):
        assert ftz_d(0.0) == 0.0
        assert ftz_d(math.inf) == math.inf
        assert math.isnan(ftz_d(math.nan))
