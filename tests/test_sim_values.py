"""Tests for IEEE value semantics: fdiv, f32, math impls, FMA, FTZ."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.values import (
    MATH_IMPLS,
    f32,
    fdiv,
    fma_d,
    fma_f,
    ftz_d,
    ftz_f,
)

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestFdiv:
    def test_plain_division(self):
        assert fdiv(6.0, 3.0) == 2.0

    def test_positive_over_zero_is_inf(self):
        assert fdiv(1.0, 0.0) == math.inf

    def test_negative_over_zero_is_neg_inf(self):
        assert fdiv(-1.0, 0.0) == -math.inf

    def test_sign_of_zero_divisor(self):
        assert fdiv(1.0, -0.0) == -math.inf
        assert fdiv(-1.0, -0.0) == math.inf

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(fdiv(0.0, 0.0))

    def test_nan_propagates(self):
        assert math.isnan(fdiv(math.nan, 0.0))
        assert math.isnan(fdiv(math.nan, 2.0))

    def test_inf_over_value(self):
        assert fdiv(math.inf, 2.0) == math.inf

    @given(a=finite, b=finite)
    @settings(max_examples=200, deadline=None)
    def test_matches_python_when_divisor_nonzero(self, a, b):
        if b != 0.0:
            assert fdiv(a, b) == a / b


class TestF32:
    def test_rounds_to_binary32(self):
        assert f32(0.1) == pytest.approx(0.1, abs=1e-8)
        assert f32(0.1) != 0.1  # 0.1 is not representable in binary32

    def test_overflow_to_inf(self):
        assert f32(1e300) == math.inf
        assert f32(-1e300) == -math.inf

    def test_subnormal_float32(self):
        v = f32(1e-40)
        assert 0 < v < 1.1754944e-38

    def test_idempotent(self):
        for x in (1.5, math.pi, 1e-30, 3.4e38):
            assert f32(f32(x)) == f32(x)

    @given(finite)
    @settings(max_examples=200, deadline=None)
    def test_always_binary32_representable(self, x):
        v = f32(x)
        if math.isfinite(v):
            assert f32(v) == v


class TestMathImpls:
    def test_all_grammar_functions_present(self):
        from repro.core.types import MATH_FUNCS

        assert set(MATH_FUNCS) <= set(MATH_IMPLS)

    def test_sqrt_of_negative_is_nan(self):
        assert math.isnan(MATH_IMPLS["sqrt"](-1.0))

    def test_log_of_zero_is_neg_inf(self):
        assert MATH_IMPLS["log"](0.0) == -math.inf

    def test_log_of_negative_is_nan(self):
        assert math.isnan(MATH_IMPLS["log"](-3.0))

    def test_exp_overflow_is_inf(self):
        assert MATH_IMPLS["exp"](1e4) == math.inf

    def test_exp_of_neg_inf_is_zero(self):
        assert MATH_IMPLS["exp"](-math.inf) == 0.0

    def test_sin_of_inf_is_nan(self):
        assert math.isnan(MATH_IMPLS["sin"](math.inf))

    def test_nan_in_nan_out(self):
        for name, fn in MATH_IMPLS.items():
            assert math.isnan(fn(math.nan)), name

    def test_ordinary_values_match_libm(self):
        assert MATH_IMPLS["sin"](1.0) == math.sin(1.0)
        assert MATH_IMPLS["sqrt"](2.0) == math.sqrt(2.0)
        assert MATH_IMPLS["tanh"](0.5) == math.tanh(0.5)


class TestFMA:
    def test_fma_differs_from_two_roundings_sometimes(self):
        # classic cancellation case where the fused product matters
        a = 1.0 + 2.0 ** -30
        found = False
        for k in range(1, 60):
            b = 1.0 + 2.0 ** -k
            c = -(a * b)
            if fma_d(a, b, c) != a * b + c:
                found = True
                break
        assert found

    def test_fma_exact_when_product_exact(self):
        assert fma_d(2.0, 3.0, 4.0) == 10.0

    def test_fma_nan_propagates(self):
        assert math.isnan(fma_d(math.nan, 1.0, 1.0))
        assert math.isnan(fma_d(1.0, 1.0, math.nan))

    def test_fma_f_is_exact_single_rounding(self):
        # binary32 fma via binary64 is exactly-rounded; check against a
        # case where two roundings in binary32 lose the low bits
        a, b = f32(1.0 + 2.0 ** -12), f32(1.0 + 2.0 ** -12)
        c = f32(-(1.0 + 2.0 ** -11))
        fused = fma_f(a, b, c)
        two_step = f32(f32(a * b) + c)
        assert fused == f32(a * b + c)
        assert fused != two_step or fused == two_step  # both defined


class TestFTZ:
    def test_double_subnormal_flushes(self):
        assert ftz_d(1e-310) == 0.0
        assert ftz_d(-1e-310) == -0.0
        assert math.copysign(1.0, ftz_d(-1e-310)) == -1.0

    def test_double_normal_passes(self):
        assert ftz_d(1e-300) == 1e-300
        assert ftz_d(2.2250738585072014e-308) == 2.2250738585072014e-308

    def test_float_subnormal_flushes(self):
        assert ftz_f(1e-39) == 0.0

    def test_float_normal_passes(self):
        assert ftz_f(1.2e-38) == 1.2e-38  # just above the binary32 threshold

    def test_zero_and_specials_pass(self):
        assert ftz_d(0.0) == 0.0
        assert ftz_d(math.inf) == math.inf
        assert math.isnan(ftz_d(math.nan))


class TestNativeEquivalence:
    """The compiled helper module must be bitwise-identical to the
    pure-Python reference (campaign verdicts depend on it)."""

    @staticmethod
    def _same(a: float, b: float) -> bool:
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)

    EDGE = [0.0, -0.0, 1.5, -2.75, 0.1, 1 / 3, 5e-324, -5e-324, 1e-310,
            -1e-310, 2.2250738585072014e-308, 1.1754943508222875e-38,
            1e-39, -1e-39, 3.4028234663852886e+38, 3.4028235677973366e+38,
            1e39, -1e39, 1e308, -1e308, math.inf, -math.inf, math.nan]

    @pytest.fixture(autouse=True)
    def _require_native(self):
        from repro.sim import values
        if not values.native_values_active():
            pytest.skip("compiled value helpers unavailable on this host")

    def test_unary_helpers_bitwise_equal(self):
        from repro.sim import values as v
        for x in self.EDGE:
            assert self._same(v.f32(x), v._py_f32(x)), ("f32", x)
            assert self._same(v.ftz_d(x), v._py_ftz_d(x)), ("ftz_d", x)
            assert self._same(v.ftz_f(x), v._py_ftz_f(x)), ("ftz_f", x)
            assert self._same(v.f32z(x), v._py_f32z(x)), ("f32z", x)

    def test_fdiv_bitwise_equal(self):
        from repro.sim import values as v
        for a in self.EDGE:
            for b in self.EDGE:
                assert self._same(v.fdiv(a, b), v._py_fdiv(a, b)), (a, b)

    @given(st.floats(allow_nan=True, allow_infinity=True),
           st.floats(allow_nan=True, allow_infinity=True),
           st.floats(allow_nan=True, allow_infinity=True))
    @settings(max_examples=300, deadline=None)
    def test_fma_bitwise_equal_property(self, a, b, c):
        from repro.sim import values as v
        assert self._same(v.fma_d(a, b, c), v._py_fma_d(a, b, c))
        assert self._same(v.fma_f(a, b, c), v._py_fma_f(a, b, c))

    @given(st.floats(allow_nan=True, allow_infinity=True))
    @settings(max_examples=300, deadline=None)
    def test_unary_bitwise_equal_property(self, x):
        from repro.sim import values as v
        assert self._same(v.f32(x), v._py_f32(x))
        assert self._same(v.ftz_d(x), v._py_ftz_d(x))
        assert self._same(v.f32z(x), v._py_f32z(x))

    def test_math_impls_bitwise_equal(self):
        from repro.sim import values as v
        args = [0.0, -0.0, 0.5, -0.5, 1.0, -1.0, 2.75, 100.0, 710.0,
                -710.0, 1e-300, 1e308, -1e308, math.inf, -math.inf,
                math.nan, -3.0]
        for name, ref in v._PY_MATH_IMPLS.items():
            for x in args:
                assert self._same(v.MATH_IMPLS[name](x), ref(x)), (name, x)

    def test_fallback_campaign_verdicts_identical(self):
        """A tiny campaign in a REPRO_NATIVE_VALUES=0 subprocess must
        produce the byte-identical verdict set."""
        import json
        import os
        import subprocess
        import sys

        code = (
            "import json\n"
            "from repro.config import CampaignConfig, GeneratorConfig\n"
            "from repro.harness.session import CampaignSession\n"
            "from repro.sim.values import native_values_active\n"
            "cfg = CampaignConfig(n_programs=3, inputs_per_program=2,"
            " seed=1234, generator=GeneratorConfig("
            "max_total_iterations=4000, loop_trip_max=60, num_threads=8))\n"
            "r = CampaignSession(cfg).run()\n"
            "ids = sorted(repr(v.identity()) for v in r.verdicts)\n"
            "print(json.dumps({'native': native_values_active(),"
            " 'ids': ids}))\n"
        )
        env = dict(os.environ, REPRO_NATIVE_VALUES="0")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        doc = json.loads(out.stdout)
        assert doc["native"] is False

        from repro.config import CampaignConfig, GeneratorConfig
        from repro.harness.session import CampaignSession
        cfg = CampaignConfig(n_programs=3, inputs_per_program=2, seed=1234,
                             generator=GeneratorConfig(
                                 max_total_iterations=4000,
                                 loop_trip_max=60, num_threads=8))
        r = CampaignSession(cfg).run()
        assert sorted(repr(v.identity()) for v in r.verdicts) == doc["ids"]


class TestNativeLoader:
    """The accelerator loader must degrade, never raise."""

    def test_disabled_via_env(self, monkeypatch):
        from repro.sim import _native
        monkeypatch.setenv("REPRO_NATIVE_VALUES", "0")
        with _native.scoped_load_info():
            assert _native.load() is None

    def test_load_is_exception_free_on_broken_cache(self, monkeypatch,
                                                    tmp_path):
        from repro.sim import _native
        monkeypatch.delenv("REPRO_NATIVE_VALUES", raising=False)
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        bad = tmp_path / "unwritable"
        bad.write_text("not a directory")
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(bad / "x"))
        # builds into an impossible cache dir: must fall back, not raise
        with _native.scoped_load_info():
            assert _native.load() is None

    def test_verify_rejects_wrong_math(self):
        from repro.sim import _native, values

        class Wrong:
            def __getattr__(self, name):
                if name.startswith("m_"):
                    return lambda x: 0.0
                return getattr(values, f"_py_{name}")

        assert _native._verify(Wrong()) is False

    def test_verify_rejects_wrong_f32(self):
        from repro.sim import _native, values

        class Wrong:
            f32 = staticmethod(lambda x: x)  # skips the rounding
            ftz_d = staticmethod(values._py_ftz_d)
            ftz_f = staticmethod(values._py_ftz_f)
            f32z = staticmethod(values._py_f32z)
            fdiv = staticmethod(values._py_fdiv)
            fma_d = staticmethod(values._py_fma_d)
            fma_f = staticmethod(values._py_fma_f)

        assert _native._verify(Wrong()) is False

    def test_verify_accepts_the_reference_itself(self):
        from repro.sim import _native, values

        class Ref:
            f32 = staticmethod(values._py_f32)
            ftz_d = staticmethod(values._py_ftz_d)
            ftz_f = staticmethod(values._py_ftz_f)
            f32z = staticmethod(values._py_f32z)
            fdiv = staticmethod(values._py_fdiv)
            fma_d = staticmethod(values._py_fma_d)
            fma_f = staticmethod(values._py_fma_f)

            def __getattr__(self, name):
                if name.startswith("m_"):
                    return values._PY_MATH_IMPLS[name[2:]]
                raise AttributeError(name)

        assert _native._verify(Ref()) is True

    def test_disabled_load_records_reason(self, monkeypatch):
        from repro.sim import _native
        monkeypatch.setenv("REPRO_NATIVE_VALUES", "0")
        with _native.scoped_load_info():
            assert _native.load() is None
            info = _native.load_info()
        assert info["active"] is False
        assert info["requested"] is False
        assert "REPRO_NATIVE_VALUES" in info["reason"]

    def test_requested_but_unavailable_warns(self, monkeypatch, tmp_path):
        import warnings as warnings_mod
        from repro.sim import _native
        monkeypatch.setenv("REPRO_NATIVE_VALUES", "1")
        bad = tmp_path / "not-a-dir"
        bad.write_text("file, not directory")
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(bad / "x"))
        with _native.scoped_load_info(), \
                warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            assert _native.load() is None
            info = _native.load_info()
        relevant = [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1
        assert "REPRO_NATIVE_VALUES requested" in str(relevant[0].message)
        assert info["requested"] is True and info["active"] is False

    def test_unrequested_fallback_is_silent(self, monkeypatch, tmp_path):
        import warnings as warnings_mod
        from repro.sim import _native
        monkeypatch.delenv("REPRO_NATIVE_VALUES", raising=False)
        bad = tmp_path / "not-a-dir"
        bad.write_text("file, not directory")
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(bad / "x"))
        with _native.scoped_load_info(), \
                warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            assert _native.load() is None
            info = _native.load_info()
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert info["active"] is False

    def test_successful_load_reports_active(self, monkeypatch):
        from repro.sim import _native, values
        if not values.native_values_active():
            pytest.skip("no toolchain in this environment")
        # loader tests scope their load-record mutations, so the record
        # still reflects the process's import-time load here; a fresh
        # re-load must land on the verified-and-active state either way
        monkeypatch.delenv("REPRO_NATIVE_VALUES", raising=False)
        with _native.scoped_load_info():
            assert _native.load() is not None
            info = values.native_values_info()
        assert info["active"] is True
        assert "verified" in info["reason"]

    def test_scoped_load_info_restores_exact_record(self):
        from repro.sim import _native
        before = _native.load_info()
        with _native.scoped_load_info():
            _native._LOAD_INFO.update(active=True, reason="scribbled",
                                      extra="junk")
            assert _native.load_info()["reason"] == "scribbled"
        assert _native.load_info() == before

    def test_scoped_load_info_restores_on_exception(self):
        from repro.sim import _native
        before = _native.load_info()
        with pytest.raises(RuntimeError):
            with _native.scoped_load_info():
                _native._LOAD_INFO["reason"] = "mid-failure"
                raise RuntimeError("boom")
        assert _native.load_info() == before

    def test_reset_load_info_returns_to_pristine(self):
        from repro.sim import _native
        with _native.scoped_load_info():
            _native._LOAD_INFO.update(active=True, requested=True,
                                      reason="left over", stray=1)
            _native.reset_load_info()
            info = _native.load_info()
        assert info == {"active": False, "requested": False,
                        "reason": "load() not called yet"}

    def test_find_cc_returns_path_or_none(self):
        from repro.sim import _native
        cc = _native._find_cc()
        assert cc is None or isinstance(cc, str)

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        from repro.sim import _native
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "c"))
        assert _native._cache_dir() == tmp_path / "c"
