"""Property-based tests over the random program generator.

These are the core guarantees the paper's methodology rests on:
every generated program is grammar-conformant (Listing 2), respects the
configured limits (Fig. 2), is data-race-free under the Section III-G
rules (unless the limitation-reproducing flag is set), and generation is
a pure function of (config, seed, index).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import GeneratorConfig
from repro.core.features import extract_features
from repro.core.generator import ProgramGenerator
from repro.core.grammar import check_conformance
from repro.core.nodes import (
    Block,
    BinOp,
    BoolExpr,
    ForLoop,
    IfBlock,
    MathCall,
    OmpCritical,
    OmpParallel,
    OmpSingle,
    Program,
    walk,
)
from repro.core.races import find_races

_SETTINGS = dict(max_examples=30, deadline=None)


def _cfg(**kw) -> GeneratorConfig:
    base = dict(max_total_iterations=3_000, loop_trip_max=50, num_threads=8)
    base.update(kw)
    return GeneratorConfig(**base)


@st.composite
def gen_params(draw):
    return _cfg(
        max_expression_size=draw(st.integers(1, 8)),
        max_nesting_levels=draw(st.integers(1, 4)),
        max_lines_in_block=draw(st.integers(1, 12)),
        max_same_level_blocks=draw(st.integers(1, 4)),
        reduction_probability=draw(st.floats(0.0, 1.0)),
        critical_probability=draw(st.floats(0.0, 1.0)),
        omp_for_probability=draw(st.floats(0.0, 1.0)),
        math_func_allowed=draw(st.booleans()),
        fp_double_probability=draw(st.floats(0.0, 1.0)),
    )


@given(cfg=gen_params(), seed=st.integers(0, 2**32), index=st.integers(0, 50))
@settings(**_SETTINGS)
def test_every_program_conforms_to_grammar(cfg, seed, index):
    program = ProgramGenerator(cfg, seed=seed).generate(index)
    check_conformance(program)  # raises on violation


@given(cfg=gen_params(), seed=st.integers(0, 2**32))
@settings(**_SETTINGS)
def test_safe_mode_programs_are_race_free(cfg, seed):
    program = ProgramGenerator(cfg, seed=seed).generate(0)
    assert find_races(program) == []


@given(seed=st.integers(0, 2**32), index=st.integers(0, 30))
@settings(**_SETTINGS)
def test_generation_is_deterministic(seed, index):
    cfg = _cfg()
    a = ProgramGenerator(cfg, seed=seed).generate(index)
    b = ProgramGenerator(cfg, seed=seed).generate(index)
    from repro.codegen.emit_main import emit_translation_unit

    assert emit_translation_unit(a) == emit_translation_unit(b)


@given(cfg=gen_params(), seed=st.integers(0, 2**32))
@settings(**_SETTINGS)
def test_expression_size_limit(cfg, seed):
    program = ProgramGenerator(cfg, seed=seed).generate(0)
    # number of binary operators in any expression tree < MAX_EXPRESSION_SIZE
    for node in walk(program):
        if isinstance(node, (BoolExpr,)):
            continue
        if isinstance(node, BinOp):
            # count the operator chain rooted here (each BinOp adds a term)
            ops = sum(1 for n in walk(node) if isinstance(n, BinOp))
            assert ops <= cfg.max_expression_size + 1


@given(cfg=gen_params(), seed=st.integers(0, 2**32))
@settings(**_SETTINGS)
def test_nesting_level_limit(cfg, seed):
    program = ProgramGenerator(cfg, seed=seed).generate(0)

    def depth(block: Block, d: int) -> int:
        worst = d
        for s in block.stmts:
            if isinstance(s, (IfBlock, ForLoop, OmpParallel)):
                worst = max(worst, depth(s.body, d + 1))
            elif isinstance(s, OmpCritical):
                # Fig. 2 counts "if condition and for loop blocks" only;
                # a critical wrapper is not a nesting level
                worst = max(worst, depth(s.body, d))
        return worst

    assert depth(program.body, 0) <= cfg.max_nesting_levels


@given(cfg=gen_params(), seed=st.integers(0, 2**32))
@settings(**_SETTINGS)
def test_lines_in_block_limit(cfg, seed):
    program = ProgramGenerator(cfg, seed=seed).generate(0)
    limit = cfg.max_lines_in_block

    def check(block: Block, allowance: int) -> None:
        assert len(block.stmts) <= limit + allowance, len(block.stmts)
        for s in block.stmts:
            if isinstance(s, OmpParallel):
                # region bodies add one init per private variable, up to
                # two extra leads, an optional single and barrier, and
                # the mandatory trailing loop
                extra = len(s.clauses.private) + 5
                check(s.body, extra)
            elif isinstance(s, ForLoop):
                # a planned-critical/planned-atomic region may inject one
                # critical block and one atomic update into the loop
                check(s.body, 2)
            elif isinstance(s, OmpSingle):
                # single bodies hold one or two assignments regardless of
                # the block line limit
                check(s.body, 2)
            elif isinstance(s, (IfBlock, OmpCritical)):
                check(s.body, 0)

    # +2 at top level: the closing comp accumulation, plus one forced
    # OpenMP region when the random walk produced a purely serial body
    check(program.body, 2)


@given(cfg=gen_params(), seed=st.integers(0, 2**32))
@settings(**_SETTINGS)
def test_math_funcs_only_when_allowed(cfg, seed):
    program = ProgramGenerator(cfg, seed=seed).generate(0)
    has_math = any(isinstance(n, MathCall) for n in walk(program))
    if not cfg.math_func_allowed:
        assert not has_math


@given(seed=st.integers(0, 2**32))
@settings(**_SETTINGS)
def test_iteration_budget_respected(seed):
    """For every loop-nest path, the product of *simulated* trip counts —
    per-thread chunks for omp-for loops, x num_threads inside regions —
    stays within ``max_total_iterations``.  This is the invariant that
    keeps the pure-Python backend able to execute every program."""
    cfg = _cfg(max_total_iterations=2_000, num_threads=8)
    program = ProgramGenerator(cfg, seed=seed).generate(0)

    def worst_path(block: Block, mult: int) -> int:
        worst = mult
        for s in block.stmts:
            if isinstance(s, ForLoop):
                from repro.core.nodes import IntNumeral

                bound = (s.bound.value if isinstance(s.bound, IntNumeral)
                         else cfg.loop_trip_max)
                if s.omp_for:
                    bound = -(-bound // cfg.num_threads)
                worst = max(worst, worst_path(s.body, mult * max(1, bound)))
            elif isinstance(s, (IfBlock, OmpCritical)):
                worst = max(worst, worst_path(s.body, mult))
            elif isinstance(s, OmpParallel):
                worst = max(worst,
                            worst_path(s.body, mult * cfg.num_threads))
        return worst

    assert worst_path(program.body, 1) <= cfg.max_total_iterations


@given(seed=st.integers(0, 2**32), index=st.integers(0, 10))
@settings(**_SETTINGS)
def test_num_threads_propagates(seed, index):
    cfg = _cfg(num_threads=6)
    program = ProgramGenerator(cfg, seed=seed).generate(index)
    for node in walk(program):
        if isinstance(node, OmpParallel):
            assert node.clauses.num_threads == 6
