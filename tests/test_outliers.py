"""Tests for outlier detection — the paper's Section IV math."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.outliers import (
    Outlier,
    OutlierKind,
    OutlierTable,
    analyze_test,
    build_outlier_table,
    comparable,
    detect_correctness_outliers,
    detect_performance_outliers,
    midpoint,
    mutually_comparable,
)
from repro.config import OutlierConfig
from repro.driver.records import RunRecord, RunStatus
from repro.errors import AnalysisError

times = st.floats(min_value=1e-3, max_value=1e9, allow_nan=False)


def _rec(vendor, time_us, status=RunStatus.OK, comp=1.0, program="p", inp=0):
    return RunRecord(program_name=program, vendor=vendor, input_index=inp,
                     status=status, comp=comp if status is RunStatus.OK else None,
                     time_us=time_us)


def _triple(g, c, i, **kw):
    return [_rec("gcc", g, **kw), _rec("clang", c, **kw), _rec("intel", i, **kw)]


class TestComparable:
    def test_paper_example(self):
        # alpha=0.2: within 20% is comparable
        assert comparable(100.0, 119.0, 0.2)
        assert not comparable(100.0, 121.0, 0.2)

    def test_zero_time_never_comparable(self):
        assert not comparable(0.0, 5.0, 0.2)

    @given(a=times, b=times)
    @settings(max_examples=200, deadline=None)
    def test_symmetry(self, a, b):
        assert comparable(a, b, 0.2) == comparable(b, a, 0.2)

    @given(a=times, b=times, c=st.floats(min_value=0.01, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_scale_invariance(self, a, b, c):
        assert comparable(a, b, 0.2) == comparable(a * c, b * c, 0.2)

    @given(a=times)
    @settings(max_examples=50, deadline=None)
    def test_reflexive(self, a):
        assert comparable(a, a, 0.2)

    @given(a=times, b=times, a1=st.floats(0.01, 1.0), a2=st.floats(0.01, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_alpha_monotonicity(self, a, b, a1, a2):
        lo, hi = min(a1, a2), max(a1, a2)
        if comparable(a, b, lo):
            assert comparable(a, b, hi)

    def test_midpoint_is_average(self):
        assert midpoint([2.0, 4.0]) == 3.0

    def test_midpoint_empty_raises(self):
        with pytest.raises(AnalysisError):
            midpoint([])

    def test_mutually_comparable_needs_all_pairs(self):
        assert mutually_comparable([100.0, 110.0], 0.2)
        assert not mutually_comparable([100.0, 110.0, 150.0], 0.2)
        assert mutually_comparable([5.0], 0.2)


class TestPerformanceOutliers:
    def test_figure1_example_slow(self):
        # 5min, 5min, 9min: compiler 3 is a slow outlier
        cfg = OutlierConfig(min_time_us=0.0)
        out = detect_performance_outliers(_triple(300.0, 300.0, 540.0), cfg)
        assert len(out) == 1
        assert out[0].vendor == "intel" and out[0].kind is OutlierKind.SLOW
        assert out[0].ratio == pytest.approx(540.0 / 300.0)

    def test_fast_outlier(self):
        cfg = OutlierConfig()
        out = detect_performance_outliers(_triple(100.0, 310.0, 300.0), cfg)
        assert len(out) == 1
        assert out[0].vendor == "gcc" and out[0].kind is OutlierKind.FAST

    def test_no_outlier_when_others_incomparable(self):
        # candidate far off, but witnesses disagree -> nothing is flagged
        cfg = OutlierConfig()
        out = detect_performance_outliers(_triple(1000.0, 100.0, 300.0), cfg)
        assert out == []

    def test_below_beta_not_flagged(self):
        cfg = OutlierConfig()
        out = detect_performance_outliers(_triple(100.0, 100.0, 140.0), cfg)
        assert out == []

    def test_beta_boundary_inclusive(self):
        cfg = OutlierConfig()
        out = detect_performance_outliers(_triple(100.0, 100.0, 150.0), cfg)
        assert len(out) == 1  # Eq. 2 is >=

    def test_needs_three_ok_runs(self):
        cfg = OutlierConfig()
        recs = [_rec("gcc", 100.0), _rec("clang", 500.0)]
        assert detect_performance_outliers(recs, cfg) == []

    @given(g=times, c=times, i=times,
           scale=st.floats(min_value=0.01, max_value=100))
    @settings(max_examples=150, deadline=None)
    def test_verdict_scale_invariant(self, g, c, i, scale):
        cfg = OutlierConfig(min_time_us=0.0)
        base = {(o.vendor, o.kind)
                for o in detect_performance_outliers(_triple(g, c, i), cfg)}
        scaled = {(o.vendor, o.kind)
                  for o in detect_performance_outliers(
                      _triple(g * scale, c * scale, i * scale), cfg)}
        assert base == scaled

    @given(g=times, c=times, i=times)
    @settings(max_examples=150, deadline=None)
    def test_at_most_one_outlier_per_test_with_three_impls(self, g, c, i):
        cfg = OutlierConfig(min_time_us=0.0)
        out = detect_performance_outliers(_triple(g, c, i), cfg)
        assert len(out) <= 1

    @given(g=times, c=times, i=times)
    @settings(max_examples=150, deadline=None)
    def test_slow_and_fast_exclusive(self, g, c, i):
        cfg = OutlierConfig(min_time_us=0.0)
        for o in detect_performance_outliers(_triple(g, c, i), cfg):
            assert o.kind in (OutlierKind.SLOW, OutlierKind.FAST)
            assert o.ratio >= cfg.beta


class TestCorrectnessOutliers:
    def test_single_crash_flagged(self):
        recs = _triple(100.0, 100.0, 100.0)
        recs[1] = _rec("clang", 50.0, RunStatus.CRASH)
        out = detect_correctness_outliers(recs)
        assert len(out) == 1
        assert out[0].vendor == "clang" and out[0].kind is OutlierKind.CRASH

    def test_single_hang_flagged(self):
        recs = _triple(100.0, 100.0, 100.0)
        recs[2] = _rec("intel", 1e6, RunStatus.HANG)
        out = detect_correctness_outliers(recs)
        assert out[0].kind is OutlierKind.HANG

    def test_two_failures_not_attributable(self):
        recs = _triple(100.0, 100.0, 100.0)
        recs[0] = _rec("gcc", 0.0, RunStatus.CRASH)
        recs[1] = _rec("clang", 0.0, RunStatus.CRASH)
        assert detect_correctness_outliers(recs) == []

    def test_all_ok_nothing_flagged(self):
        assert detect_correctness_outliers(_triple(1.0, 1.0, 1.0)) == []

    def test_correctness_outlier_not_a_performance_outlier(self):
        recs = _triple(2000.0, 2000.0, 2000.0)
        recs[2] = _rec("intel", 5e6, RunStatus.HANG)
        verdict = analyze_test(recs, OutlierConfig())
        kinds = [o.kind for o in verdict.outliers]
        assert kinds == [OutlierKind.HANG]


class TestAnalyzeTest:
    def test_min_time_filter(self):
        verdict = analyze_test(_triple(500.0, 500.0, 900.0), OutlierConfig())
        assert not verdict.analyzed
        assert "below" in verdict.filtered_reason
        assert verdict.outliers == []

    def test_analyzed_above_threshold(self):
        verdict = analyze_test(_triple(2000.0, 2000.0, 3500.0),
                               OutlierConfig())
        assert verdict.analyzed
        assert len(verdict.outliers) == 1

    def test_output_divergence_detected(self):
        recs = _triple(2000.0, 2000.0, 2000.0)
        recs[0] = _rec("gcc", 2000.0, comp=1.0 + 1e-12)
        verdict = analyze_test(recs, OutlierConfig())
        assert verdict.output_divergent

    def test_nan_outputs_not_divergent(self):
        recs = [_rec(v, 2000.0, comp=math.nan)
                for v in ("gcc", "clang", "intel")]
        verdict = analyze_test(recs, OutlierConfig())
        assert not verdict.output_divergent

    def test_mixed_tests_rejected(self):
        recs = [_rec("gcc", 1.0, program="a"), _rec("clang", 1.0, program="b")]
        with pytest.raises(AnalysisError):
            analyze_test(recs)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_test([])


class TestOutlierTable:
    def _verdicts(self):
        v1 = analyze_test(_triple(2000.0, 2000.0, 3500.0), OutlierConfig())
        recs = _triple(2000.0, 2000.0, 2000.0)
        recs[0] = _rec("gcc", 100.0, RunStatus.CRASH)
        v2 = analyze_test(recs, OutlierConfig())
        v3 = analyze_test(_triple(100.0, 100.0, 100.0), OutlierConfig())
        return [v1, v2, v3]

    def test_counts(self):
        table = build_outlier_table(self._verdicts())
        assert table.count("intel", OutlierKind.SLOW) == 1
        assert table.count("gcc", OutlierKind.CRASH) == 1
        assert table.count("clang", OutlierKind.SLOW) == 0
        assert table.n_tests == 3
        assert table.n_runs == 9
        # v1 analyzed; v2's surviving OK runs clear the threshold too
        assert table.n_analyzed == 2

    def test_rates(self):
        table = build_outlier_table(self._verdicts())
        assert table.outlier_run_rate() == pytest.approx(2 / 9)
        assert table.correctness_run_rate() == pytest.approx(1 / 9)

    def test_str_of_outlier(self):
        o = Outlier("p", 0, "gcc", OutlierKind.FAST, 2.0)
        assert "fast outlier" in str(o) and "x2.00" in str(o)
