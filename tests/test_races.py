"""Tests for the static data-race checker (the paper's manual filter)."""

from repro.config import GeneratorConfig
from repro.core.generator import ProgramGenerator
from repro.core.nodes import (
    ArrayRef,
    Assignment,
    Block,
    ForLoop,
    FPNumeral,
    IntNumeral,
    ModIdx,
    OmpCritical,
    OmpParallel,
    Program,
    ThreadIdx,
    VarRef,
)
from repro.core.races import find_races, is_race_free
from repro.core.types import (
    AssignOpKind,
    FPType,
    OmpClauses,
    ReductionOp,
    Variable,
    VarKind,
)


def _var(name, kind=VarKind.PARAM, array=False):
    return Variable(name, FPType.DOUBLE, kind, is_array=array,
                    array_size=64 if array else 0)


def _program(region: OmpParallel, extra_params=()) -> Program:
    comp = _var("comp", VarKind.COMP)
    params = [comp, *extra_params]
    return Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                   params=params, body=Block([region]))


def _loop(stmts, omp_for=True):
    lv = Variable("i_1", None, VarKind.LOOP)
    return ForLoop(lv, IntNumeral(8), Block(stmts), omp_for=omp_for)


def _region(stmts, *, clauses=None):
    clauses = clauses or OmpClauses(num_threads=4)
    x = _var("var_x")
    clauses.private.append(x)  # the lead write must itself be race-free
    lead = Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0))
    return OmpParallel(clauses, Block([lead, _loop(stmts)]))


class TestSafePatterns:
    def test_thread_indexed_array_write_is_safe(self):
        arr = _var("var_a", array=True)
        w = Assignment(ArrayRef(arr, ThreadIdx()), AssignOpKind.ASSIGN,
                       FPNumeral(1.0))
        p = _program(_region([w]), extra_params=[arr])
        assert is_race_free(p)

    def test_reduction_comp_update_is_safe(self):
        comp = _var("comp", VarKind.COMP)
        x = _var("var_x")
        clauses = OmpClauses(num_threads=4, reduction=ReductionOp.SUM,
                             private=[x])
        region = OmpParallel(clauses, Block([
            Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0)),
            _loop([Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN,
                              FPNumeral(1.0))])]))
        p = Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                    params=[comp, x], body=Block([region]))
        assert is_race_free(p)

    def test_critical_protected_shared_write_is_safe(self):
        shared = _var("var_s")
        upd = OmpCritical(Block([Assignment(VarRef(shared),
                                            AssignOpKind.ADD_ASSIGN,
                                            FPNumeral(1.0))]))
        p = _program(_region([upd]), extra_params=[shared])
        assert is_race_free(p)

    def test_readonly_shared_scalar_is_safe(self):
        shared = _var("var_s")
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        from repro.core.nodes import DeclAssign

        read = DeclAssign(tmp, VarRef(shared))
        p = _program(_region([read]), extra_params=[shared])
        assert is_race_free(p)

    def test_generated_safe_mode_is_race_free(self, program_stream):
        for p in program_stream:
            assert is_race_free(p)


class TestRacyPatterns:
    def test_unprotected_shared_scalar_write(self):
        shared = _var("var_s")
        w = Assignment(VarRef(shared), AssignOpKind.ADD_ASSIGN, FPNumeral(1.0))
        p = _program(_region([w]), extra_params=[shared])
        races = find_races(p)
        assert races and races[0].var_name == "var_s"

    def test_comp_written_without_reduction_or_critical(self):
        comp = _var("comp", VarKind.COMP)
        x = _var("var_x")
        region = OmpParallel(OmpClauses(num_threads=4, private=[x]), Block([
            Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0)),
            _loop([Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN,
                              FPNumeral(1.0))])]))
        p = Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                    params=[comp, x], body=Block([region]))
        races = find_races(p)
        assert any(r.var_name == "comp" for r in races)

    def test_critical_write_with_outside_read_is_racy(self):
        shared = _var("var_s")
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        from repro.core.nodes import DeclAssign

        crit = OmpCritical(Block([Assignment(VarRef(shared),
                                             AssignOpKind.ADD_ASSIGN,
                                             FPNumeral(1.0))]))
        outside_read = DeclAssign(tmp, VarRef(shared))
        p = _program(_region([crit, outside_read]), extra_params=[shared])
        assert not is_race_free(p)

    def test_array_written_at_loop_index_is_racy(self):
        arr = _var("var_a", array=True)
        lv = Variable("i_1", None, VarKind.LOOP)
        w = Assignment(ArrayRef(arr, ModIdx(VarRef(lv), 64)),
                       AssignOpKind.ASSIGN, FPNumeral(1.0))
        loop = ForLoop(lv, IntNumeral(8), Block([w]), omp_for=True)
        region = OmpParallel(OmpClauses(num_threads=4), Block([
            Assignment(VarRef(_var("var_x")), AssignOpKind.ASSIGN,
                       FPNumeral(0.0)), loop]))
        p = _program(region, extra_params=[arr])
        assert not is_race_free(p)

    def test_written_array_read_at_other_index_is_racy(self):
        arr = _var("var_a", array=True)
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        from repro.core.nodes import DeclAssign

        w = Assignment(ArrayRef(arr, ThreadIdx()), AssignOpKind.ASSIGN,
                       FPNumeral(1.0))
        r = DeclAssign(tmp, ArrayRef(arr, IntNumeral(3)))
        p = _program(_region([w, r]), extra_params=[arr])
        assert not is_race_free(p)

    def test_limitation_mode_eventually_generates_races(self):
        cfg = GeneratorConfig(allow_data_races=True,
                              max_total_iterations=3_000, loop_trip_max=50,
                              num_threads=8)
        gen = ProgramGenerator(cfg, seed=20240915)
        racy = sum(1 for i in range(40) if not is_race_free(gen.generate(i)))
        assert racy >= 1  # reproduces the Section III-E limitation


# ----------------------------------------------------------------------
# Directive-diversity classification: one table row per access pattern
# ----------------------------------------------------------------------

import pytest

from repro.core.nodes import OmpAtomic, OmpBarrier, OmpSingle


def _comp():
    return _var("comp", VarKind.COMP)


def _atomic(v, expr=None):
    return OmpAtomic(Assignment(VarRef(v), AssignOpKind.ADD_ASSIGN,
                                expr if expr is not None else FPNumeral(1.0)))


def _plain_write(v):
    return Assignment(VarRef(v), AssignOpKind.ADD_ASSIGN, FPNumeral(1.0))


def _crit_write(v):
    return OmpCritical(Block([_plain_write(v)]))


def _lead_region(stmts):
    """A plain region whose lead assignment writes a private scalar (so
    the lead itself can never be the race under test)."""
    clauses = OmpClauses(num_threads=4)
    x = _var("var_x")
    clauses.private.append(x)
    lead = Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0))
    return OmpParallel(clauses, Block([lead, *stmts]))


def _crit_write_expr(v, expr):
    return OmpCritical(Block([Assignment(VarRef(v), AssignOpKind.ASSIGN,
                                         expr)]))


def _combined_region(stmts):
    """A combined `omp parallel for` region over the given loop body."""
    return OmpParallel(OmpClauses(num_threads=4), Block([_loop(stmts)]),
                       combined_for=True)


def _case_reduction_free(op):
    comp = _comp()
    region = _region([_plain_write(comp)],
                     clauses=OmpClauses(num_threads=4, reduction=op))
    return _program_with(region, comp)


def _program_with(region, comp, extra=()):
    return Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                   params=[comp, *extra], body=Block([region]))


#: (case id, program builder, expected race-free?)
_DIRECTIVE_RACE_TABLE = [
    # every reduction operator makes unprotected comp updates race-free
    ("reduction_sum_free",
     lambda: _case_reduction_free(ReductionOp.SUM), True),
    ("reduction_prod_free",
     lambda: _case_reduction_free(ReductionOp.PROD), True),
    ("reduction_min_free",
     lambda: _case_reduction_free(ReductionOp.MIN), True),
    ("reduction_max_free",
     lambda: _case_reduction_free(ReductionOp.MAX), True),
    # an unguarded shared write under a combined parallel for is racy
    ("parallel_for_unguarded_write_racy",
     lambda: (lambda c: _program_with(_combined_region([_plain_write(c)]),
                                      c))(_comp()), False),
    # `omp atomic` suppresses the race verdict when every access is atomic
    ("atomic_only_updates_free",
     lambda: (lambda c: _program_with(_combined_region([_atomic(c)]),
                                      c))(_comp()), True),
    # ... but a plain write alongside atomic updates races
    ("atomic_plus_plain_write_racy",
     lambda: (lambda c: _program_with(
         _combined_region([_atomic(c), _plain_write(c)]), c))(_comp()),
     False),
    # ... and mixing critical with atomic protection also races (the two
    # exclusion mechanisms do not exclude each other)
    ("atomic_plus_critical_racy",
     lambda: (lambda c: _program_with(
         _combined_region([_atomic(c), _crit_write(c)]), c))(_comp()),
     False),
    # critical-only protection stays race-free (the paper's pattern)
    ("critical_only_free",
     lambda: (lambda c: _program_with(_combined_region([_crit_write(c)]),
                                      c))(_comp()), True),
    # single-only accesses to a shared scalar are serialized by the
    # implicit barriers: race-free
    ("single_only_writes_free",
     lambda: (lambda v, c: _program_with(
         _lead_region([OmpSingle(Block([_plain_write(v)])),
                       _loop([_crit_write(c)])]),
         c, extra=[v]))(_var("var_s"), _comp()), True),
    # a single write plus an unprotected read elsewhere races
    ("single_write_outside_read_racy",
     lambda: (lambda v, c: _program_with(
         _lead_region([OmpSingle(Block([_plain_write(v)])),
                       _loop([_crit_write_expr(c, VarRef(v))])]),
         c, extra=[v]))(_var("var_s"), _comp()), False),
    # barriers are not credited with ordering: write-barrier-read still
    # classifies as a race (conservative by design)
    ("barrier_does_not_legalize_racy",
     lambda: (lambda v, c: _program_with(
         _lead_region([OmpSingle(Block([_plain_write(v)])),
                       OmpBarrier(),
                       _loop([_crit_write_expr(c, VarRef(v))])]),
         c, extra=[v]))(_var("var_s"), _comp()), False),
    # a shared array touched from inside a single is flagged
    ("array_in_single_racy",
     lambda: (lambda a, c: _program_with(
         _lead_region([OmpSingle(Block([Assignment(ArrayRef(a, ThreadIdx()),
                                                   AssignOpKind.ASSIGN,
                                                   FPNumeral(1.0))])),
                       _loop([Assignment(ArrayRef(a, ThreadIdx()),
                                         AssignOpKind.ASSIGN,
                                         FPNumeral(2.0))])]),
         c, extra=[a]))(_var("var_a", array=True), _comp()), False),
    # thread-indexed array writes under an explicit schedule stay safe
    # (the mapping changes, the exclusivity argument does not)
    ("tid_array_write_free",
     lambda: (lambda a, c: _program_with(
         _combined_region([Assignment(ArrayRef(a, ThreadIdx()),
                                      AssignOpKind.ASSIGN, FPNumeral(1.0))]),
         c, extra=[a]))(_var("var_a", array=True), _comp()), True),
]


class TestDirectiveRaceTable:
    @pytest.mark.parametrize(
        "name,builder,expect_free",
        _DIRECTIVE_RACE_TABLE,
        ids=[row[0] for row in _DIRECTIVE_RACE_TABLE])
    def test_pattern_classification(self, name, builder, expect_free):
        program = builder()
        reports = find_races(program)
        if expect_free:
            assert not reports, (name, [str(r) for r in reports])
        else:
            assert reports, name

    def test_every_report_names_region_and_variable(self):
        racy = [row for row in _DIRECTIVE_RACE_TABLE if not row[2]]
        for name, builder, _ in racy:
            for report in find_races(builder()):
                assert report.var_name
                assert report.region_index == 0
                assert str(report)
