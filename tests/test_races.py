"""Tests for the static data-race checker (the paper's manual filter)."""

from repro.config import GeneratorConfig
from repro.core.generator import ProgramGenerator
from repro.core.nodes import (
    ArrayRef,
    Assignment,
    Block,
    ForLoop,
    FPNumeral,
    IntNumeral,
    ModIdx,
    OmpCritical,
    OmpParallel,
    Program,
    ThreadIdx,
    VarRef,
)
from repro.core.races import find_races, is_race_free
from repro.core.types import (
    AssignOpKind,
    FPType,
    OmpClauses,
    ReductionOp,
    Variable,
    VarKind,
)


def _var(name, kind=VarKind.PARAM, array=False):
    return Variable(name, FPType.DOUBLE, kind, is_array=array,
                    array_size=64 if array else 0)


def _program(region: OmpParallel, extra_params=()) -> Program:
    comp = _var("comp", VarKind.COMP)
    params = [comp, *extra_params]
    return Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                   params=params, body=Block([region]))


def _loop(stmts, omp_for=True):
    lv = Variable("i_1", None, VarKind.LOOP)
    return ForLoop(lv, IntNumeral(8), Block(stmts), omp_for=omp_for)


def _region(stmts, *, clauses=None):
    clauses = clauses or OmpClauses(num_threads=4)
    x = _var("var_x")
    clauses.private.append(x)  # the lead write must itself be race-free
    lead = Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0))
    return OmpParallel(clauses, Block([lead, _loop(stmts)]))


class TestSafePatterns:
    def test_thread_indexed_array_write_is_safe(self):
        arr = _var("var_a", array=True)
        w = Assignment(ArrayRef(arr, ThreadIdx()), AssignOpKind.ASSIGN,
                       FPNumeral(1.0))
        p = _program(_region([w]), extra_params=[arr])
        assert is_race_free(p)

    def test_reduction_comp_update_is_safe(self):
        comp = _var("comp", VarKind.COMP)
        x = _var("var_x")
        clauses = OmpClauses(num_threads=4, reduction=ReductionOp.SUM,
                             private=[x])
        region = OmpParallel(clauses, Block([
            Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0)),
            _loop([Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN,
                              FPNumeral(1.0))])]))
        p = Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                    params=[comp, x], body=Block([region]))
        assert is_race_free(p)

    def test_critical_protected_shared_write_is_safe(self):
        shared = _var("var_s")
        upd = OmpCritical(Block([Assignment(VarRef(shared),
                                            AssignOpKind.ADD_ASSIGN,
                                            FPNumeral(1.0))]))
        p = _program(_region([upd]), extra_params=[shared])
        assert is_race_free(p)

    def test_readonly_shared_scalar_is_safe(self):
        shared = _var("var_s")
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        from repro.core.nodes import DeclAssign

        read = DeclAssign(tmp, VarRef(shared))
        p = _program(_region([read]), extra_params=[shared])
        assert is_race_free(p)

    def test_generated_safe_mode_is_race_free(self, program_stream):
        for p in program_stream:
            assert is_race_free(p)


class TestRacyPatterns:
    def test_unprotected_shared_scalar_write(self):
        shared = _var("var_s")
        w = Assignment(VarRef(shared), AssignOpKind.ADD_ASSIGN, FPNumeral(1.0))
        p = _program(_region([w]), extra_params=[shared])
        races = find_races(p)
        assert races and races[0].var_name == "var_s"

    def test_comp_written_without_reduction_or_critical(self):
        comp = _var("comp", VarKind.COMP)
        x = _var("var_x")
        region = OmpParallel(OmpClauses(num_threads=4, private=[x]), Block([
            Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0)),
            _loop([Assignment(VarRef(comp), AssignOpKind.ADD_ASSIGN,
                              FPNumeral(1.0))])]))
        p = Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                    params=[comp, x], body=Block([region]))
        races = find_races(p)
        assert any(r.var_name == "comp" for r in races)

    def test_critical_write_with_outside_read_is_racy(self):
        shared = _var("var_s")
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        from repro.core.nodes import DeclAssign

        crit = OmpCritical(Block([Assignment(VarRef(shared),
                                             AssignOpKind.ADD_ASSIGN,
                                             FPNumeral(1.0))]))
        outside_read = DeclAssign(tmp, VarRef(shared))
        p = _program(_region([crit, outside_read]), extra_params=[shared])
        assert not is_race_free(p)

    def test_array_written_at_loop_index_is_racy(self):
        arr = _var("var_a", array=True)
        lv = Variable("i_1", None, VarKind.LOOP)
        w = Assignment(ArrayRef(arr, ModIdx(VarRef(lv), 64)),
                       AssignOpKind.ASSIGN, FPNumeral(1.0))
        loop = ForLoop(lv, IntNumeral(8), Block([w]), omp_for=True)
        region = OmpParallel(OmpClauses(num_threads=4), Block([
            Assignment(VarRef(_var("var_x")), AssignOpKind.ASSIGN,
                       FPNumeral(0.0)), loop]))
        p = _program(region, extra_params=[arr])
        assert not is_race_free(p)

    def test_written_array_read_at_other_index_is_racy(self):
        arr = _var("var_a", array=True)
        tmp = Variable("tmp_1", FPType.DOUBLE, VarKind.TEMP)
        from repro.core.nodes import DeclAssign

        w = Assignment(ArrayRef(arr, ThreadIdx()), AssignOpKind.ASSIGN,
                       FPNumeral(1.0))
        r = DeclAssign(tmp, ArrayRef(arr, IntNumeral(3)))
        p = _program(_region([w, r]), extra_params=[arr])
        assert not is_race_free(p)

    def test_limitation_mode_eventually_generates_races(self):
        cfg = GeneratorConfig(allow_data_races=True,
                              max_total_iterations=3_000, loop_trip_max=50,
                              num_threads=8)
        gen = ProgramGenerator(cfg, seed=20240915)
        racy = sum(1 for i in range(40) if not is_race_free(gen.generate(i)))
        assert racy >= 1  # reproduces the Section III-E limitation
