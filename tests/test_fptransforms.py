"""Tests for vendor FP lowering (FMA contraction modes)."""

from repro.core.nodes import (
    BinOp,
    Block,
    FPNumeral,
    Paren,
    UnaryOp,
    VarRef,
    Assignment,
)
from repro.core.types import AssignOpKind, BinOpKind, FPType, Variable, VarKind
from repro.sim.fptransforms import (
    FusedMulAdd,
    effective_fma_mode,
    lower_block,
    lower_expr,
    opt_cycle_scale,
)


def _v(name="x"):
    return Variable(name, FPType.DOUBLE, VarKind.PARAM)


def _mul(a, b):
    return BinOp(BinOpKind.MUL, VarRef(_v(a)), VarRef(_v(b)))


class TestContraction:
    def test_basic_contracts_mul_plus(self):
        e = BinOp(BinOpKind.ADD, _mul("a", "b"), VarRef(_v("c")))
        out = lower_expr(e, "basic")
        assert isinstance(out, FusedMulAdd)
        assert not out.negate_product

    def test_basic_contracts_plus_mul(self):
        e = BinOp(BinOpKind.ADD, VarRef(_v("c")), _mul("a", "b"))
        assert isinstance(lower_expr(e, "basic"), FusedMulAdd)

    def test_basic_does_not_contract_sub(self):
        e = BinOp(BinOpKind.SUB, _mul("a", "b"), VarRef(_v("c")))
        out = lower_expr(e, "basic")
        assert isinstance(out, BinOp)

    def test_aggressive_contracts_sub_left(self):
        e = BinOp(BinOpKind.SUB, _mul("a", "b"), VarRef(_v("c")))
        out = lower_expr(e, "aggressive")
        assert isinstance(out, FusedMulAdd)
        assert isinstance(out.c, UnaryOp) and out.c.op == "-"

    def test_aggressive_contracts_sub_right(self):
        e = BinOp(BinOpKind.SUB, VarRef(_v("c")), _mul("a", "b"))
        out = lower_expr(e, "aggressive")
        assert isinstance(out, FusedMulAdd)
        assert out.negate_product

    def test_none_mode_leaves_tree(self):
        e = BinOp(BinOpKind.ADD, _mul("a", "b"), VarRef(_v("c")))
        out = lower_expr(e, "none")
        assert isinstance(out, BinOp)

    def test_contraction_sees_through_parens(self):
        e = BinOp(BinOpKind.ADD, Paren(_mul("a", "b")), VarRef(_v("c")))
        assert isinstance(lower_expr(e, "basic"), FusedMulAdd)

    def test_div_never_contracts(self):
        e = BinOp(BinOpKind.DIV, _mul("a", "b"), VarRef(_v("c")))
        assert isinstance(lower_expr(e, "aggressive"), BinOp)

    def test_nested_contraction(self):
        inner = BinOp(BinOpKind.ADD, _mul("a", "b"), VarRef(_v("c")))
        outer = BinOp(BinOpKind.ADD, _mul("d", "e"), inner)
        out = lower_expr(outer, "basic")
        assert isinstance(out, FusedMulAdd)
        assert isinstance(out.c, FusedMulAdd)

    def test_original_tree_untouched(self):
        e = BinOp(BinOpKind.ADD, _mul("a", "b"), VarRef(_v("c")))
        lower_expr(e, "aggressive")
        assert isinstance(e, BinOp) and isinstance(e.lhs, BinOp)

    def test_lower_block_is_pure(self):
        target = VarRef(_v("t"))
        stmt = Assignment(target, AssignOpKind.ASSIGN,
                          BinOp(BinOpKind.ADD, _mul("a", "b"), VarRef(_v("c"))))
        block = Block([stmt])
        out = lower_block(block, "basic")
        assert out is not block
        assert isinstance(out.stmts[0].expr, FusedMulAdd)
        assert isinstance(block.stmts[0].expr, BinOp)


class TestOptLevels:
    def test_fma_disabled_below_o2(self):
        assert effective_fma_mode("aggressive", "-O0") == "none"
        assert effective_fma_mode("aggressive", "-O1") == "none"
        assert effective_fma_mode("aggressive", "-O2") == "aggressive"
        assert effective_fma_mode("basic", "-O3") == "basic"

    def test_cycle_scale_monotonic(self):
        scales = [opt_cycle_scale(o) for o in ("-O0", "-O1", "-O2", "-O3")]
        assert scales == sorted(scales, reverse=True)
        assert opt_cycle_scale("-O3") == 1.0
