"""Tests for ProfileRecorder and PerfCounters primitives."""

import pytest

from repro.sim.counters import PerfCounters
from repro.sim.events import ProfileRecorder


class TestPerfCounters:
    def test_perf_row_has_exactly_the_paper_columns(self):
        row = PerfCounters().perf_row()
        assert tuple(row) == PerfCounters.PERF_FIELDS
        assert len(row) == 7

    def test_add(self):
        a = PerfCounters(cycles=10, page_faults=3)
        b = PerfCounters(cycles=5, context_switches=2)
        a.add(b)
        assert a.cycles == 15
        assert a.page_faults == 3
        assert a.context_switches == 2

    def test_copy_is_independent(self):
        a = PerfCounters(cycles=1)
        b = a.copy()
        b.cycles = 99
        assert a.cycles == 1

    def test_as_dict_includes_lock_stats(self):
        d = PerfCounters(critical_acquires=4).as_dict()
        assert d["critical_acquires"] == 4


class TestProfileRecorder:
    def test_charge_accumulates(self):
        pr = ProfileRecorder()
        pr.charge("so", "sym", 10.0)
        pr.charge("so", "sym", 5.0)
        assert pr.samples[("so", "sym")] == 15.0
        assert pr.total() == 15.0

    def test_nonpositive_charges_ignored(self):
        pr = ProfileRecorder()
        pr.charge("so", "sym", 0.0)
        pr.charge("so", "sym", -3.0)
        assert pr.samples == {}

    def test_rows_are_fractions_descending(self):
        pr = ProfileRecorder()
        pr.charge("a", "x", 30.0)
        pr.charge("b", "y", 70.0)
        rows = pr.rows()
        assert rows[0] == (0.7, "b", "y")
        assert rows[1] == (0.3, "a", "x")

    def test_rows_empty(self):
        assert ProfileRecorder().rows() == []

    def test_merge_disjoint_and_overlapping(self):
        a = ProfileRecorder()
        a.charge("so", "x", 1.0)
        b = ProfileRecorder()
        b.charge("so", "x", 2.0)
        b.charge("so", "y", 5.0)
        a.merge(b)
        assert a.samples[("so", "x")] == 3.0
        assert a.samples[("so", "y")] == 5.0
