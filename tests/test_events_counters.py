"""Tests for ProfileRecorder and PerfCounters primitives."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.counters import PerfCounters
from repro.sim.events import ProfileRecorder


class TestPerfCounters:
    def test_perf_row_has_exactly_the_paper_columns(self):
        row = PerfCounters().perf_row()
        assert tuple(row) == PerfCounters.PERF_FIELDS
        assert len(row) == 7

    def test_add(self):
        a = PerfCounters(cycles=10, page_faults=3)
        b = PerfCounters(cycles=5, context_switches=2)
        a.add(b)
        assert a.cycles == 15
        assert a.page_faults == 3
        assert a.context_switches == 2

    def test_copy_is_independent(self):
        a = PerfCounters(cycles=1)
        b = a.copy()
        b.cycles = 99
        assert a.cycles == 1

    def test_as_dict_includes_lock_stats(self):
        d = PerfCounters(critical_acquires=4).as_dict()
        assert d["critical_acquires"] == 4


class TestProfileRecorder:
    def test_charge_accumulates(self):
        pr = ProfileRecorder()
        pr.charge("so", "sym", 10.0)
        pr.charge("so", "sym", 5.0)
        assert pr.samples[("so", "sym")] == 15.0
        assert pr.total() == 15.0

    def test_nonpositive_charges_ignored(self):
        pr = ProfileRecorder()
        pr.charge("so", "sym", 0.0)
        pr.charge("so", "sym", -3.0)
        assert pr.samples == {}

    def test_rows_are_fractions_descending(self):
        pr = ProfileRecorder()
        pr.charge("a", "x", 30.0)
        pr.charge("b", "y", 70.0)
        rows = pr.rows()
        assert rows[0] == (0.7, "b", "y")
        assert rows[1] == (0.3, "a", "x")

    def test_rows_empty(self):
        assert ProfileRecorder().rows() == []

    def test_merge_disjoint_and_overlapping(self):
        a = ProfileRecorder()
        a.charge("so", "x", 1.0)
        b = ProfileRecorder()
        b.charge("so", "x", 2.0)
        b.charge("so", "y", 5.0)
        a.merge(b)
        assert a.samples[("so", "x")] == 3.0
        assert a.samples[("so", "y")] == 5.0

    def test_pickle_roundtrip(self):
        pr = ProfileRecorder(binary_name="b0")
        pr.charge("so", "x", 1e16)
        pr.charge("so", "x", 1.0)
        clone = pickle.loads(pickle.dumps(pr))
        assert clone.binary_name == "b0"
        assert clone.samples == pr.samples


# charge streams designed to expose float non-associativity: huge and
# tiny magnitudes interleaved, so naive running sums would disagree
# across merge orders
_charges = st.lists(
    st.tuples(st.sampled_from(["libgomp.so", "libomp.so", "a.out"]),
              st.sampled_from(["gomp_barrier", "kmp_lock", "main"]),
              st.floats(min_value=1e-12, max_value=1e15,
                        allow_nan=False, allow_infinity=False)),
    max_size=40)


class TestProfileRecorderMergeAlgebra:
    """merge() concatenates exact partial sums, so fleet-wide profile
    aggregation is associative and order-independent — the same property
    the metrics registry guarantees for counters."""

    @settings(max_examples=60, deadline=None)
    @given(_charges, _charges, _charges, st.randoms())
    def test_merge_is_associative_and_order_independent(self, ca, cb, cc,
                                                        rng):
        def recorder(charges):
            pr = ProfileRecorder()
            for so, sym, cycles in charges:
                pr.charge(so, sym, cycles)
            return pr

        # ((a + b) + c)
        left = recorder(ca)
        ab = recorder(cb)
        left.merge(ab)
        left.merge(recorder(cc))
        # (a + (b + c))
        right_tail = recorder(cb)
        right_tail.merge(recorder(cc))
        right = recorder(ca)
        right.merge(right_tail)
        assert left.samples == right.samples
        assert left.total() == right.total()

        # any permutation of per-worker recorders folds to the same sums
        parts = [recorder(c) for c in (ca, cb, cc)]
        rng.shuffle(parts)
        folded = ProfileRecorder()
        for p in parts:
            folded.merge(p)
        assert folded.samples == left.samples

    @settings(max_examples=30, deadline=None)
    @given(_charges)
    def test_merge_matches_single_recorder_exactly(self, charges):
        whole = ProfileRecorder()
        for so, sym, cycles in charges:
            whole.charge(so, sym, cycles)
        half_a, half_b = ProfileRecorder(), ProfileRecorder()
        for i, (so, sym, cycles) in enumerate(charges):
            (half_a if i % 2 else half_b).charge(so, sym, cycles)
        half_a.merge(half_b)
        assert half_a.samples == whole.samples
