"""Tests for the worksharing graph (sections/tasks) and its race oracle.

Structural tests exercise :mod:`repro.core.taskgraph` directly; the
classification table mirrors ``test_races.py``'s style with one row per
graph access pattern, asserting the graph rule — two conflicting accesses
race iff neither work node reaches the other and no exclusion class
protects both.
"""

from __future__ import annotations

import pytest

from repro.core.nodes import (
    Assignment,
    Block,
    FPNumeral,
    IntNumeral,
    ForLoop,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSection,
    OmpSections,
    OmpTask,
    OmpTaskwait,
    Program,
    VarRef,
)
from repro.core.races import find_races, is_race_free
from repro.core.taskgraph import (
    BARRIER,
    SECTION,
    TASK,
    build_region_graph,
    has_graph_constructs,
)
from repro.core.types import (
    AssignOpKind,
    FPType,
    OmpClauses,
    Variable,
    VarKind,
)


def _var(name, kind=VarKind.PARAM):
    return Variable(name, FPType.DOUBLE, kind)


def _write(v, op=AssignOpKind.ASSIGN):
    return Assignment(VarRef(v), op, FPNumeral(1.0))


def _read_into(dst, src):
    return Assignment(VarRef(dst), AssignOpKind.ASSIGN, VarRef(src))


def _region(stmts, *, private=None):
    clauses = OmpClauses(num_threads=4)
    x = private if private is not None else _var("var_x")
    clauses.private.append(x)
    lead = Assignment(VarRef(x), AssignOpKind.ASSIGN, FPNumeral(0.0))
    lv = Variable("i_1", None, VarKind.LOOP)
    loop = ForLoop(lv, IntNumeral(4), Block([
        Assignment(VarRef(x), AssignOpKind.ADD_ASSIGN, FPNumeral(1.0))]),
        omp_for=True)
    return OmpParallel(clauses, Block([lead, *stmts, loop]))


def _program(region, extra_params=()):
    comp = _var("comp", VarKind.COMP)
    return Program(name="t", seed=0, fp_type=FPType.DOUBLE, comp=comp,
                   params=[comp, *extra_params], body=Block([region]))


def _sections(*arm_stmt_lists):
    return OmpSections([OmpSection(Block(list(stmts)))
                        for stmts in arm_stmt_lists])


# ----------------------------------------------------------------------
# graph structure
# ----------------------------------------------------------------------


class TestGraphStructure:
    def _graph(self, region):
        return build_region_graph(region)

    def test_region_without_graph_constructs_is_degenerate(self):
        region = _region([])
        assert not has_graph_constructs(region)
        g = self._graph(region)
        kinds = {n.kind for n in g.nodes}
        assert SECTION not in kinds and TASK not in kinds

    def test_sections_arms_are_mutually_concurrent(self):
        a, b = _var("var_a"), _var("var_b")
        region = _region([_sections([_write(a)], [_write(b)])])
        g = self._graph(region)
        arms = [n.nid for n in g.nodes if n.kind == SECTION]
        assert len(arms) >= 2
        s0, s1 = arms[0], arms[1]
        assert g.concurrent(s0, s1)
        assert all(g.node(n).once for n in arms)

    def test_arm_is_concurrent_with_preceding_segment(self):
        a = _var("var_a")
        region = _region([_sections([_write(a)])])
        g = self._graph(region)
        seg0 = next(n.nid for n in g.nodes if n.label == "seg0")
        arm = next(n.nid for n in g.nodes if n.kind == SECTION)
        assert g.concurrent(seg0, arm)

    def test_sections_end_barrier_orders_arms_before_next_segment(self):
        a = _var("var_a")
        region = _region([_sections([_write(a)])])
        g = self._graph(region)
        arm = next(n.nid for n in g.nodes if n.kind == SECTION)
        seg1 = next(n.nid for n in g.nodes if n.label == "seg1")
        assert g.reaches(arm, seg1)
        assert any(n.kind == BARRIER and n.label == "sections-end"
                   for n in g.nodes)

    def test_explicit_barrier_orders_segments(self):
        region = _region([OmpBarrier()])
        g = self._graph(region)
        seg0 = next(n.nid for n in g.nodes if n.label == "seg0")
        seg1 = next(n.nid for n in g.nodes if n.label == "seg1")
        assert g.reaches(seg0, seg1)

    def test_task_concurrent_with_spawn_continuation_until_taskwait(self):
        a, t = _var("var_a"), _var("var_t")
        arm = [_write(a), OmpTask(Block([_write(t)])), _write(a),
               OmpTaskwait(), _read_into(a, t)]
        region = _region([_sections(arm)])
        g = self._graph(region)
        task = next(n.nid for n in g.nodes if n.kind == TASK)
        # some arm segment is concurrent with the task (post-spawn code),
        # and some arm segment is strictly after it (post-taskwait code)
        arm_segs = [n.nid for n in g.nodes if n.kind == SECTION]
        assert any(g.concurrent(task, s) for s in arm_segs)
        assert any(g.reaches(task, s) for s in arm_segs)

    def test_loop_nested_barrier_does_not_split_segments(self):
        """A barrier inside a serial loop re-executes per iteration —
        iteration k+1's pre-barrier code runs after iteration k's
        post-barrier code — so it must not claim a global pre/post
        happens-before (regression: the public graph once split here)."""
        lv = Variable("i_9", None, VarKind.LOOP)
        loop = ForLoop(lv, IntNumeral(3), Block([OmpBarrier()]))
        g = build_region_graph(_region([loop]))
        implicit = [n for n in g.nodes if n.kind == "implicit"]
        assert len(implicit) == 1
        assert not any(n.kind == BARRIER for n in g.nodes)

    def test_conditional_barrier_does_not_split_segments(self):
        """A barrier under a conditional may not execute (and is not
        team-uniform), so it must not claim a happens-before either."""
        from repro.core.nodes import BoolExpr, IfBlock
        from repro.core.types import BoolOpKind

        u = _var("var_u")
        cond = BoolExpr(VarRef(u), BoolOpKind.LT, FPNumeral(1.0))
        g = build_region_graph(
            _region([IfBlock(cond, Block([OmpBarrier()]))], private=u))
        implicit = [n for n in g.nodes if n.kind == "implicit"]
        assert len(implicit) == 1
        assert not any(n.kind == BARRIER for n in g.nodes)

    def test_public_graph_matches_oracle_graph(self):
        """build_region_graph and the race oracle drive the same event
        walk: identical nodes and edges for the same region."""
        from repro.core.races import _collect_graph_accesses

        region = _task_result_read_after_taskwait().body.stmts[0]
        g_pub = build_region_graph(region)
        *_, g_oracle = _collect_graph_accesses(region)
        assert [(n.kind, n.once, n.label) for n in g_pub.nodes] == \
            [(n.kind, n.once, n.label) for n in g_oracle.nodes]
        assert g_pub.edges() == g_oracle.edges()

    def test_every_node_reaches_exit(self):
        a, t = _var("var_a"), _var("var_t")
        region = _region([_sections(
            [OmpTask(Block([_write(t)])), OmpTaskwait(), _write(a)])])
        g = self._graph(region)
        for n in g.nodes:
            if n.nid != g.exit:
                assert g.reaches(n.nid, g.exit), n


# ----------------------------------------------------------------------
# race classification over the graph
# ----------------------------------------------------------------------


def _case(name, builder, expect_free):
    return pytest.param(builder, expect_free, id=name)


_S = lambda: _var("var_s")  # noqa: E731
_T = lambda: _var("var_t")  # noqa: E731


def _two_arms_distinct():
    s, t = _S(), _T()
    return _program(_region([_sections([_write(s)], [_write(t)])]),
                    extra_params=[s, t])


def _two_arms_same_scalar():
    s = _S()
    return _program(_region([_sections([_write(s)], [_write(s)])]),
                    extra_params=[s])


def _two_arms_same_scalar_critical():
    s = _S()
    crit = lambda: OmpCritical(Block([_write(s, AssignOpKind.ADD_ASSIGN)]))  # noqa: E731
    return _program(_region([_sections([crit()], [crit()])]),
                    extra_params=[s])


def _arm_write_uniform_read():
    s, u = _S(), _var("var_u")
    # seg0 reads s into a private (concurrent with the arm writing s)
    pre = Assignment(VarRef(u), AssignOpKind.ASSIGN, VarRef(s))
    return _program(_region([pre, _sections([_write(s)])], private=u),
                    extra_params=[s, u])


def _arm_write_after_barrier_uniform_read_before():
    s, u = _S(), _var("var_u")
    # the barrier orders seg0 (the read) before the arm's write: race-free
    # under the graph rule (barrier edges are real happens-before)
    pre = Assignment(VarRef(u), AssignOpKind.ASSIGN, VarRef(s))
    return _program(_region([pre, OmpBarrier(), _sections([_write(s)])],
                            private=u),
                    extra_params=[s, u])


def _task_result_read_after_taskwait():
    s, t = _S(), _T()
    arm = [_write(s), OmpTask(Block([_write(t)])), OmpTaskwait(),
           Assignment(VarRef(s), AssignOpKind.ADD_ASSIGN, VarRef(t))]
    return _program(_region([_sections(arm)]), extra_params=[s, t])


def _task_result_read_without_taskwait():
    s, t = _S(), _T()
    arm = [_write(s), OmpTask(Block([_write(t)])),
           Assignment(VarRef(s), AssignOpKind.ADD_ASSIGN, VarRef(t))]
    return _program(_region([_sections(arm)]), extra_params=[s, t])


def _two_tasks_same_scalar():
    t = _T()
    arm = [OmpTask(Block([_write(t)])), OmpTask(Block([_write(t)])),
           OmpTaskwait()]
    return _program(_region([_sections(arm)]), extra_params=[t])


def _two_tasks_distinct_scalars():
    t1, t2, s = _T(), _var("var_t2"), _S()
    arm = [OmpTask(Block([_write(t1)])), OmpTask(Block([_write(t2)])),
           OmpTaskwait(),
           Assignment(VarRef(s), AssignOpKind.ASSIGN, VarRef(t1)),
           Assignment(VarRef(s), AssignOpKind.ADD_ASSIGN, VarRef(t2))]
    return _program(_region([_sections(arm)]), extra_params=[t1, t2, s])


def _task_reads_arm_scalar_spawn_ordered():
    s, t = _S(), _T()
    arm = [_write(s),
           OmpTask(Block([Assignment(VarRef(t), AssignOpKind.ASSIGN,
                                     VarRef(s))])),
           OmpTaskwait()]
    return _program(_region([_sections(arm)]), extra_params=[s, t])


def _arm_writes_scalar_task_reads_post_spawn_write():
    # the arm writes s AFTER spawning a task that reads s: concurrent
    s, t = _S(), _T()
    arm = [OmpTask(Block([Assignment(VarRef(t), AssignOpKind.ASSIGN,
                                     VarRef(s))])),
           _write(s), OmpTaskwait()]
    return _program(_region([_sections(arm)]), extra_params=[s, t])


_GRAPH_RACE_TABLE = [
    _case("two_arms_distinct_scalars_free", _two_arms_distinct, True),
    _case("two_arms_same_scalar_racy", _two_arms_same_scalar, False),
    _case("two_arms_same_scalar_critical_free",
          _two_arms_same_scalar_critical, True),
    _case("arm_write_vs_uniform_read_racy", _arm_write_uniform_read, False),
    _case("barrier_orders_uniform_read_before_arm_write_free",
          _arm_write_after_barrier_uniform_read_before, True),
    _case("task_result_after_taskwait_free",
          _task_result_read_after_taskwait, True),
    _case("task_result_without_taskwait_racy",
          _task_result_read_without_taskwait, False),
    _case("two_tasks_same_scalar_racy", _two_tasks_same_scalar, False),
    _case("two_tasks_distinct_scalars_free",
          _two_tasks_distinct_scalars, True),
    _case("task_reads_arm_scalar_spawn_ordered_free",
          _task_reads_arm_scalar_spawn_ordered, True),
    _case("arm_post_spawn_write_vs_task_read_racy",
          _arm_writes_scalar_task_reads_post_spawn_write, False),
]


class TestGraphRaceTable:
    @pytest.mark.parametrize("builder,expect_free", _GRAPH_RACE_TABLE)
    def test_pattern_classification(self, builder, expect_free):
        program = builder()
        reports = find_races(program)
        if expect_free:
            assert not reports, [str(r) for r in reports]
        else:
            assert reports

    def test_reports_carry_node_labels(self):
        reports = find_races(_two_arms_same_scalar())
        assert reports
        assert "work node" in reports[0].reason

    def test_generated_tasks_mix_is_race_free(self):
        import dataclasses

        from repro.config import GeneratorConfig, apply_directive_mix
        from repro.core.generator import ProgramGenerator

        cfg = apply_directive_mix(
            GeneratorConfig(max_total_iterations=3_000, loop_trip_max=50,
                            num_threads=4), "tasks")
        cfg = dataclasses.replace(cfg, sections_probability=0.9,
                                  task_probability=0.9)
        gen = ProgramGenerator(cfg, seed=20260731)
        for i in range(25):
            assert is_race_free(gen.generate(i)), i

    def test_generated_arms_never_read_thread_dependent_values(self):
        """Section arms / task bodies must not reference the thread id
        (directly or via arrays): the real runtime picks the executing
        thread, so any tid-dependent read would make a 'deterministic'
        program's output schedule-dependent on native runtimes."""
        import dataclasses

        from repro.config import GeneratorConfig, apply_directive_mix
        from repro.core.generator import ProgramGenerator
        from repro.core.nodes import ArrayRef, OmpSections, ThreadIdx, walk

        cfg = apply_directive_mix(
            GeneratorConfig(max_total_iterations=3_000, loop_trip_max=50,
                            num_threads=4), "tasks")
        cfg = dataclasses.replace(cfg, sections_probability=0.95,
                                  task_probability=0.9)
        gen = ProgramGenerator(cfg, seed=4242)
        arms_seen = 0
        for i in range(40):
            for n in walk(gen.generate(i)):
                if not isinstance(n, OmpSections):
                    continue
                arms_seen += len(n.sections)
                for sub in walk(n):  # yields the construct's whole subtree
                    assert not isinstance(sub, ThreadIdx), (i, sub)
                    assert not isinstance(sub, ArrayRef), (i, sub)
        assert arms_seen > 10
