"""Reduction subsystem tests: surgery, passes, reducer, and the
injected-fault invariant sweep of the acceptance criteria.

The sweep seeds a corpus of outliers by wrapping one simulated vendor in
a :class:`~repro.backends.fault.FaultInjectedBackend` — a deterministic
*structural* fault (crash on ``atomic``, hang on combined ``parallel
for``, crash on ``task``) — and asserts, for every case, the reducer
contracts: every accepted step is conformant and race-free, the reduced
test still reproduces the same outlier kind on the same backend, the
reduction is deterministic, and the corpus-wide mean statement reduction
clears 5x.
"""

from __future__ import annotations

import pytest

from repro.analysis.outliers import OutlierKind
from repro.backends import InjectedFault, register_fault_backend
from repro.codegen.emit_main import emit_translation_unit
from repro.config import CampaignConfig, GeneratorConfig, TriageConfig
from repro.core.generator import ProgramGenerator
from repro.core.grammar import check_conformance, conforms
from repro.core.inputs import InputGenerator
from repro.core.nodes import Block, DeclAssign, walk
from repro.core.races import find_races
from repro.core.surgery import (
    clone_program,
    count_statements,
    index_blocks,
    reads_undeclared_locals,
)
from repro.core.features import extract_features
from repro.errors import ConfigError
from repro.reduce.passes import DEFAULT_PASSES, DropStatements
from repro.reduce.reducer import OutlierCase, ReductionOracle, reduce_case

# ----------------------------------------------------------------------
# injected-fault fixtures: one structural vendor bug per directive mix
# ----------------------------------------------------------------------

#: (mix, trigger feature, fault kind, backend name) — three distinct
#: injected faults across three directive mixes (acceptance criteria)
FAULTS = (
    ("sync", "n_atomic", "crash", "buggy-atomic"),
    ("worksharing", "n_parallel_for", "hang", "buggy-parfor"),
    ("tasks", "n_tasks", "crash", "buggy-task"),
)

for _mix, _trigger, _kind, _name in FAULTS:
    register_fault_backend("intel", InjectedFault(kind=_kind, trigger=_trigger),
                           name=_name, replace=True)


def small_gen(mix: str) -> GeneratorConfig:
    from repro.config import apply_directive_mix

    return apply_directive_mix(
        GeneratorConfig(max_total_iterations=1500, loop_trip_max=30,
                        num_threads=8), mix)


def corpus_cases(mix: str, trigger: str, kind: str, backend: str,
                 count: int, seed: int = 4242) -> list[OutlierCase]:
    """The first ``count`` programs of the stream that arm the fault."""
    gen_cfg = small_gen(mix)
    programs = ProgramGenerator(gen_cfg, seed=seed)
    inputs = InputGenerator(gen_cfg, seed=seed + 1)
    cases = []
    index = 0
    while len(cases) < count and index < 300:
        program = programs.generate(index)
        index += 1
        if getattr(extract_features(program), trigger) < 1:
            continue
        if find_races(program):
            continue
        cases.append(OutlierCase(
            program=program, test_input=inputs.generate(program, 0),
            vendor=backend, kind=OutlierKind(kind),
            compilers=("gcc", "clang", backend)))
    assert len(cases) == count, f"stream too short for {mix}/{trigger}"
    return cases


# ----------------------------------------------------------------------
# surgery
# ----------------------------------------------------------------------

class TestSurgery:
    def test_clone_emits_identical_source(self, program_stream):
        for program in program_stream:
            clone = clone_program(program)
            assert emit_translation_unit(clone) == \
                emit_translation_unit(program)

    def test_clone_is_independent(self, program_stream):
        program = program_stream[0]
        before = emit_translation_unit(program)
        clone = clone_program(program)
        clone.body.stmts.pop()
        assert emit_translation_unit(program) == before

    def test_clone_shares_variables(self, program_stream):
        # Variables compare by identity: a clone must reference the
        # same objects or clause lists would detach from the body
        program = program_stream[0]
        clone = clone_program(program)
        assert clone.params[0] is program.params[0]

    def test_block_indices_stable_across_clone(self, program_stream):
        for program in program_stream[:4]:
            blocks = index_blocks(program)
            cloned = index_blocks(clone_program(program))
            assert len(blocks) == len(cloned)
            for b, c in zip(blocks, cloned):
                assert len(b.stmts) == len(c.stmts)

    def test_generator_output_has_no_undeclared_reads(self, program_stream):
        for program in program_stream:
            assert not reads_undeclared_locals(program)

    def test_dropped_declaration_is_detected(self, program_stream):
        # find a program with a temporary that is read after declaration
        for program in program_stream:
            clone = clone_program(program)
            for block in index_blocks(clone):
                for i, stmt in enumerate(block.stmts):
                    if not isinstance(stmt, DeclAssign):
                        continue
                    var = stmt.var
                    rest = Block(block.stmts[i + 1:])
                    reads = any(
                        getattr(n, "var", None) is var for n in walk(rest))
                    if not reads:
                        continue
                    del block.stmts[i]
                    assert reads_undeclared_locals(clone)
                    return
        pytest.fail("no droppable declaration found in the stream")


# ----------------------------------------------------------------------
# passes
# ----------------------------------------------------------------------

class TestPasses:
    def test_candidates_do_not_mutate_original(self, program_stream):
        program = program_stream[0]
        before = emit_translation_unit(program)
        for pass_ in DEFAULT_PASSES:
            for _desc, _cand in pass_.candidates(program):
                pass
        assert emit_translation_unit(program) == before

    def test_drop_statements_shrinks(self, program_stream):
        program = program_stream[0]
        n = count_statements(program)
        for _desc, cand in DropStatements().candidates(program):
            assert count_statements(cand) < n

    def test_conformant_candidates_are_distinct(self, program_stream):
        # candidates may be grammar-invalid (the oracle rejects those);
        # every *conformant* candidate must differ from its parent
        program = program_stream[1]
        source = emit_translation_unit(program)
        seen_conformant = 0
        for pass_ in DEFAULT_PASSES:
            for _desc, cand in pass_.candidates(program):
                if conforms(cand):
                    seen_conformant += 1
                    assert emit_translation_unit(cand) != source
        assert seen_conformant > 0


# ----------------------------------------------------------------------
# reducer mechanics
# ----------------------------------------------------------------------

class TestReducer:
    def test_unreproducible_case_is_unconfirmed(self):
        # intel never crashes here (no fault backend in the loop), so
        # the claimed crash cannot be confirmed
        [case] = corpus_cases("sync", "n_atomic", "crash", "buggy-atomic", 1)
        bogus = OutlierCase(program=case.program, test_input=case.test_input,
                            vendor="intel", kind=OutlierKind.CRASH,
                            compilers=("gcc", "clang", "intel"))
        result = reduce_case(bogus)
        assert not result.confirmed
        assert result.reduced_statements == result.original_statements
        assert result.reduction_factor == 1.0

    def test_candidate_budget_is_respected(self):
        [case] = corpus_cases("sync", "n_atomic", "crash", "buggy-atomic", 1)
        result = reduce_case(case, TriageConfig(max_candidates=10))
        assert result.candidates_tried <= 10

    def test_triage_config_validation(self):
        with pytest.raises(ConfigError):
            TriageConfig(max_rounds=0)
        with pytest.raises(ConfigError):
            TriageConfig(max_candidates=0)


# ----------------------------------------------------------------------
# the acceptance sweep: >=20 injected-fault outliers, >=3 mixes
# ----------------------------------------------------------------------

#: cases per fault — 3 faults x 7 = 21 outliers
_CASES_PER_FAULT = 7


@pytest.fixture(scope="module")
def sweep_results():
    results = {}
    for mix, trigger, kind, backend in FAULTS:
        cases = corpus_cases(mix, trigger, kind, backend, _CASES_PER_FAULT)
        reduced = []
        for case in cases:
            oracle = ReductionOracle(case)
            result = reduce_case(case, oracle=oracle)
            reduced.append((case, result, oracle))
        results[(mix, trigger, kind, backend)] = reduced
    return results


class TestInjectedFaultSweep:
    def test_corpus_size(self, sweep_results):
        total = sum(len(v) for v in sweep_results.values())
        assert total >= 20
        assert len(sweep_results) >= 3

    def test_every_case_confirmed_and_kind_preserved(self, sweep_results):
        for fault, reduced in sweep_results.items():
            for case, result, _oracle in reduced:
                assert result.confirmed, fault
                # 100% outlier-kind preservation: the reduced test still
                # flags the same kind on the same backend
                oracle = ReductionOracle(case)
                verdict = oracle.run_differential(result.reduced_program,
                                                  result.reduced_input)
                assert oracle.still_fails(verdict), fault

    def test_every_accepted_step_passes_the_gates(self, sweep_results):
        for fault, reduced in sweep_results.items():
            for _case, _result, oracle in reduced:
                assert oracle.accepted_trail, fault
                for program, _test_input in oracle.accepted_trail:
                    check_conformance(program)        # conformant
                    assert not find_races(program)    # race-free verdict
                    assert not reads_undeclared_locals(program)

    def test_reduced_program_keeps_the_trigger(self, sweep_results):
        for (mix, trigger, kind, backend), reduced in sweep_results.items():
            for _case, result, _oracle in reduced:
                feats = extract_features(result.reduced_program)
                assert getattr(feats, trigger) >= 1, (mix, trigger)

    def test_mean_reduction_factor_at_least_5x(self, sweep_results):
        factors = [result.reduction_factor
                   for reduced in sweep_results.values()
                   for _case, result, _oracle in reduced]
        mean = sum(factors) / len(factors)
        assert mean >= 5.0, f"mean reduction only x{mean:.2f}: {factors}"

    def test_bucketing_groups_each_fault_into_one_bucket(self, sweep_results):
        from repro.analysis.buckets import build_buckets
        from repro.reduce.triage import triaged_from_result

        entries = []
        fault_of = {}
        for fault, reduced in sweep_results.items():
            for i, (case, result, _oracle) in enumerate(reduced):
                t = triaged_from_result(i, 0, case.vendor, case.kind, result)
                entries.append((t.signature, t))
                fault_of[id(t)] = fault
        buckets = build_buckets(
            entries, size_of=lambda t: t.result.reduced_statements)
        # every outlier of one injected fault lands in exactly one bucket
        for fault in sweep_results:
            homes = {b.signature for b in buckets
                     for m in b.members if fault_of[id(m)] == fault}
            assert len(homes) == 1, (fault, homes)
        # and distinct faults never share a bucket
        assert len({b.signature for b in buckets}) == len(sweep_results)

    def test_reduction_is_deterministic(self, sweep_results):
        for fault, reduced in list(sweep_results.items()):
            case, first, _oracle = reduced[0]
            again = reduce_case(case)
            assert emit_translation_unit(again.reduced_program) == \
                emit_translation_unit(first.reduced_program), fault
            assert again.reduced_input.values == first.reduced_input.values
            assert again.history == first.history

    def test_reduced_programs_conform(self, sweep_results):
        for reduced in sweep_results.values():
            for _case, result, _oracle in reduced:
                assert conforms(result.reduced_program)
                assert not find_races(result.reduced_program)
