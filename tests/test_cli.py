"""Tests for the repro-omp command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("generate", "run", "campaign", "casestudy", "grammar"):
            args = parser.parse_args([cmd] if cmd != "casestudy"
                                     else [cmd, "1"])
            assert args.command == cmd

    def test_casestudy_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["casestudy", "4"])


class TestGenerate:
    def test_writes_sources_and_inputs(self, tmp_path, capsys):
        rc = main(["generate", "--count", "3", "--inputs", "2",
                   "--out", str(tmp_path / "g"), "--seed", "5"])
        assert rc == 0
        cpps = sorted((tmp_path / "g").glob("*.cpp"))
        assert len(cpps) == 3
        inputs = json.loads(
            (tmp_path / "g" / (cpps[0].stem + ".inputs.json")).read_text())
        assert len(inputs) == 2
        assert all(isinstance(row["argv"], list) for row in inputs)


class TestRun:
    def test_run_prints_table(self, capsys):
        rc = main(["run", "--seed", "42"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "intel" in out and "time (us)" in out

    def test_run_with_source(self, capsys):
        rc = main(["run", "--seed", "42", "--source"])
        assert rc == 0
        assert "#include <omp.h>" in capsys.readouterr().out


class TestCampaign:
    def test_small_campaign(self, capsys, tmp_path):
        rc = main(["campaign", "--programs", "4", "--inputs", "1",
                   "--seed", "9", "--quiet", "--out", str(tmp_path / "c")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I shape" in out
        assert "outlier rate" in out
        assert (tmp_path / "c" / "verdicts.jsonl").exists()

    def test_campaign_from_config_file(self, capsys, tmp_path):
        from repro.config import CampaignConfig, save_campaign

        cfg_path = tmp_path / "cfg.json"
        save_campaign(CampaignConfig(n_programs=2, inputs_per_program=1,
                                     seed=3), cfg_path)
        rc = main(["campaign", "--config", str(cfg_path), "--quiet"])
        assert rc == 0


class TestGrammarCmd:
    def test_prints_listing2(self, capsys):
        rc = main(["grammar"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "<openmp-head> ::=" in out
        assert "#pragma omp parallel default(shared)" in out
