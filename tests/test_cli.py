"""Tests for the repro-omp command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("generate", "run", "campaign", "casestudy", "grammar"):
            args = parser.parse_args([cmd] if cmd != "casestudy"
                                     else [cmd, "1"])
            assert args.command == cmd

    def test_casestudy_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["casestudy", "4"])


class TestGenerate:
    def test_writes_sources_and_inputs(self, tmp_path, capsys):
        rc = main(["generate", "--count", "3", "--inputs", "2",
                   "--out", str(tmp_path / "g"), "--seed", "5"])
        assert rc == 0
        cpps = sorted((tmp_path / "g").glob("*.cpp"))
        assert len(cpps) == 3
        inputs = json.loads(
            (tmp_path / "g" / (cpps[0].stem + ".inputs.json")).read_text())
        assert len(inputs) == 2
        assert all(isinstance(row["argv"], list) for row in inputs)


class TestRun:
    def test_run_prints_table(self, capsys):
        rc = main(["run", "--seed", "42"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "intel" in out and "time (us)" in out

    def test_run_with_source(self, capsys):
        rc = main(["run", "--seed", "42", "--source"])
        assert rc == 0
        assert "#include <omp.h>" in capsys.readouterr().out


class TestCampaign:
    def test_small_campaign(self, capsys, tmp_path):
        rc = main(["campaign", "--programs", "4", "--inputs", "1",
                   "--seed", "9", "--quiet", "--out", str(tmp_path / "c")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I shape" in out
        assert "outlier rate" in out
        assert (tmp_path / "c" / "verdicts.jsonl").exists()

    def test_campaign_from_config_file(self, capsys, tmp_path):
        from repro.config import CampaignConfig, save_campaign

        cfg_path = tmp_path / "cfg.json"
        save_campaign(CampaignConfig(n_programs=2, inputs_per_program=1,
                                     seed=3), cfg_path)
        rc = main(["campaign", "--config", str(cfg_path), "--quiet"])
        assert rc == 0


class TestConfigOverrides:
    """Regressions for the silently-dropped-flag bugs: explicit CLI flags
    must apply as overrides on top of a ``--config`` file."""

    def _cfg_file(self, tmp_path, **kw):
        from repro.config import CampaignConfig, save_campaign

        path = tmp_path / "cfg.json"
        save_campaign(CampaignConfig(**kw), path)
        return path

    def _load(self, argv):
        from repro.cli import _load_config, build_parser

        return _load_config(build_parser().parse_args(argv))

    def test_explicit_flags_override_config_file(self, tmp_path):
        path = self._cfg_file(tmp_path, n_programs=50, inputs_per_program=2,
                              seed=3, chunk_size=4)
        cfg = self._load(["campaign", "--config", str(path), "--seed", "99",
                          "--programs", "7", "--inputs", "1",
                          "--mix", "tasks", "--chunk-size", "2",
                          "--rng-mode", "fast"])
        assert cfg.seed == 99
        assert cfg.n_programs == 7
        assert cfg.inputs_per_program == 1
        assert cfg.directive_mix == "tasks"
        assert cfg.chunk_size == 2
        assert cfg.generator.rng_mode == "fast"
        assert cfg.generator.enable_sections and cfg.generator.enable_tasks

    def test_kernel_backend_flag_overrides_config(self, tmp_path):
        path = self._cfg_file(tmp_path, kernel_backend="c")
        cfg = self._load(["campaign", "--config", str(path),
                          "--kernel-backend", "interp"])
        assert cfg.kernel_backend == "interp"
        # and the file's value survives when the flag is not passed
        cfg = self._load(["campaign", "--config", str(path)])
        assert cfg.kernel_backend == "c"

    def test_kernel_backend_flag_rejects_unknown(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign",
                                       "--kernel-backend", "turbo"])

    def test_unpassed_flags_keep_config_file_values(self, tmp_path):
        path = self._cfg_file(tmp_path, n_programs=50, inputs_per_program=2,
                              seed=3)
        cfg = self._load(["campaign", "--config", str(path),
                          "--programs", "7"])
        assert cfg.n_programs == 7
        assert cfg.inputs_per_program == 2  # from the file
        assert cfg.seed == 3               # from the file

    def test_rng_mode_override_preserves_generator_kwargs(self, tmp_path):
        """--rng-mode must dataclasses.replace the effective generator,
        not clobber it with a fresh GeneratorConfig."""
        from repro.config import CampaignConfig, GeneratorConfig, save_campaign

        path = tmp_path / "cfg.json"
        save_campaign(CampaignConfig(
            generator=GeneratorConfig(max_total_iterations=1234,
                                      num_threads=8)), path)
        cfg = self._load(["campaign", "--config", str(path),
                          "--rng-mode", "fast"])
        assert cfg.generator.rng_mode == "fast"
        assert cfg.generator.max_total_iterations == 1234
        assert cfg.generator.num_threads == 8

    def test_config_campaign_honors_all_three_flags(self, tmp_path, capsys):
        """The acceptance scenario end-to-end: ``campaign --config f.json
        --rng-mode fast --mix tasks`` runs and honors every flag."""
        path = self._cfg_file(tmp_path, n_programs=12, inputs_per_program=3,
                              seed=5)
        rc = main(["campaign", "--config", str(path), "--rng-mode", "fast",
                   "--mix", "tasks", "--programs", "3", "--inputs", "1",
                   "--quiet"])
        assert rc == 0
        assert "Table I shape" in capsys.readouterr().out


class TestGenerateRngMode:
    def test_generate_emits_the_fast_campaign_stream(self, tmp_path):
        """`repro generate --rng-mode fast` must write the byte-identical
        sources a --rng-mode fast campaign generates and tests."""
        import dataclasses

        from repro.codegen.emit_main import emit_translation_unit
        from repro.config import GeneratorConfig
        from repro.core.generator import ProgramGenerator

        out = tmp_path / "g"
        rc = main(["generate", "--count", "3", "--inputs", "1",
                   "--seed", "11", "--rng-mode", "fast", "--out", str(out)])
        assert rc == 0
        campaign_cfg = dataclasses.replace(GeneratorConfig(),
                                           rng_mode="fast")
        gen = ProgramGenerator(campaign_cfg, seed=11)
        for i in range(3):
            p = gen.generate(i)
            on_disk = (out / f"{p.name}.cpp").read_text()
            assert on_disk == emit_translation_unit(p), i

    def test_fast_and_compat_streams_differ(self, tmp_path):
        for mode in ("fast", "compat"):
            rc = main(["generate", "--count", "1", "--inputs", "1",
                       "--seed", "11", "--rng-mode", mode,
                       "--out", str(tmp_path / mode)])
            assert rc == 0
        fast = sorted((tmp_path / "fast").glob("*.cpp"))[0].read_text()
        compat = sorted((tmp_path / "compat").glob("*.cpp"))[0].read_text()
        assert fast != compat


class TestGrammarCmd:
    def test_prints_listing2(self, capsys):
        rc = main(["grammar"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "<openmp-head> ::=" in out
        assert "#pragma omp parallel default(shared)" in out
