"""Shared fixtures: fast configurations and canned programs/binaries."""

from __future__ import annotations

import pytest

from repro.config import CampaignConfig, GeneratorConfig, MachineConfig, OutlierConfig
from repro.core.generator import ProgramGenerator
from repro.core.inputs import InputGenerator


@pytest.fixture(scope="session")
def fast_gen_cfg() -> GeneratorConfig:
    """Small iteration budget so interpreter-backed tests stay quick."""
    return GeneratorConfig(max_total_iterations=4_000, loop_trip_max=60,
                           num_threads=8)


@pytest.fixture(scope="session")
def paper_gen_cfg() -> GeneratorConfig:
    """The paper's Section V-A parameters (default config)."""
    return GeneratorConfig()


@pytest.fixture(scope="session")
def fast_campaign_cfg(fast_gen_cfg) -> CampaignConfig:
    return CampaignConfig(n_programs=8, inputs_per_program=2, seed=1234,
                          generator=fast_gen_cfg)


@pytest.fixture(scope="session")
def fleet_cfg(fast_gen_cfg) -> CampaignConfig:
    """The pinned paper-mix grid the fleet/supervisor/chaos suites all
    check against serial (session-scoped: the baseline runs once)."""
    return CampaignConfig(n_programs=6, inputs_per_program=2, seed=1234,
                          generator=fast_gen_cfg, directive_mix="paper")


@pytest.fixture(scope="session")
def fleet_serial_result(fleet_cfg):
    from repro.harness.session import CampaignSession

    return CampaignSession(fleet_cfg, engine="serial").run()


@pytest.fixture(scope="session")
def machine() -> MachineConfig:
    return MachineConfig()


@pytest.fixture(scope="session")
def outlier_cfg() -> OutlierConfig:
    return OutlierConfig()


@pytest.fixture(scope="session")
def program_stream(fast_gen_cfg):
    """Deterministic stream of small programs shared across test modules."""
    gen = ProgramGenerator(fast_gen_cfg, seed=777)
    return [gen.generate(i) for i in range(12)]


@pytest.fixture(scope="session")
def input_gen(fast_gen_cfg) -> InputGenerator:
    return InputGenerator(fast_gen_cfg, seed=778)
