#!/usr/bin/env python3
"""Campaigns over directive mixes: steering the fuzzer at new OpenMP surface.

The directive-diversity expansion teaches the generator five new
directive families beyond the paper's Listing-2 grammar — combined
``parallel for`` (with ``schedule`` and ``collapse`` clauses),
``min``/``max`` reductions, ``atomic`` updates, ``single`` blocks, and
explicit ``barrier``\\ s.  ``CampaignConfig(directive_mix=...)`` selects
which families a campaign exercises:

* ``paper``        — the paper's exact language (regression baseline)
* ``worksharing``  — parallel-for / schedules / collapse
* ``sync``         — atomic / single / barrier on top of criticals
* ``reductions``   — all four reduction operators
* ``tasks``        — sections arms + explicit tasks (worksharing graph)
* ``full``         — every loop-shaped family at once (graph families
  stay opt-in via ``tasks`` so the pinned full stream is unchanged)

This example streams a small campaign per mix through
:meth:`repro.CampaignSession.stream` and prints what the grid actually
explored (feature frequencies) next to its verdict summary.

Run:  python examples/directive_mix.py [seed]
"""

import sys

from repro import CampaignConfig, CampaignSession, GeneratorConfig

MIXES = ("paper", "worksharing", "sync", "reductions", "tasks", "full")

#: small programs so the whole sweep runs in seconds
_FAST = GeneratorConfig(max_total_iterations=4_000, loop_trip_max=60,
                        num_threads=8)

#: the feature columns each mix is expected to move
_DIVERSITY_FEATURES = ("n_parallel_for", "n_scheduled", "n_collapse",
                       "n_atomic", "n_single", "n_barrier",
                       "n_minmax_reductions", "n_sections", "n_tasks",
                       "n_taskwait")


def run_mix(mix: str, seed: int) -> None:
    cfg = CampaignConfig(n_programs=8, inputs_per_program=2, seed=seed,
                         generator=_FAST, directive_mix=mix)
    session = CampaignSession(cfg, engine="serial")

    outliers = divergent = 0
    for verdict in session.stream():
        outliers += len(verdict.outliers)
        divergent += verdict.output_divergent
    result = session.result()

    totals = {k: 0 for k in _DIVERSITY_FEATURES}
    regions = 0
    for feats in result.features.values():
        regions += feats.n_parallel_regions
        for k in totals:
            totals[k] += getattr(feats, k)
    explored = ", ".join(f"{k[2:]}={v}" for k, v in totals.items() if v) \
        or "Listing-2 constructs only"
    print(f"  {mix:<12} regions={regions:<3} outliers={outliers:<3} "
          f"value-divergent={divergent}")
    print(f"  {'':<12} explored: {explored}")


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    print("=== one campaign per directive mix ===")
    for mix in MIXES:
        run_mix(mix, seed)
    print()
    print("the paper mix is the regression baseline; every other mix opens "
          "directive surface the Listing-2 grammar cannot reach.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
