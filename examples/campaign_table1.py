#!/usr/bin/env python3
"""Regenerate the paper's Table I with a full differential campaign.

Runs the Section V-A grid — by default a scaled 60-program version; pass
``--full`` for the paper's 200 programs x 3 inputs x 3 implementations =
1,800 runs (a few minutes of CPU) — then prints the outlier table, the
campaign rates, and every correctness outlier with its detail.

Run:  python examples/campaign_table1.py [--full] [--seed N]
"""

import argparse
import sys

from repro.analysis.outliers import OutlierKind
from repro.config import CampaignConfig
from repro.harness import (
    CampaignRunner,
    render_campaign_summary,
    render_table1,
    render_versions_table,
)
from repro.vendors import CLANG, GCC, INTEL


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--full", action="store_true",
                    help="the paper's full 200-program grid")
    ap.add_argument("--seed", type=int, default=20240915)
    args = ap.parse_args()

    cfg = CampaignConfig(n_programs=200 if args.full else 60,
                         inputs_per_program=3, seed=args.seed)

    print("Simulated OpenMP implementations (paper Section V-A):")
    print(render_versions_table([INTEL, CLANG, GCC]))
    print()
    print(f"running {cfg.n_programs} programs x {cfg.inputs_per_program} "
          f"inputs x {len(cfg.compilers)} implementations "
          f"= {cfg.total_runs} runs ...")

    def progress(done: int, total: int) -> None:
        print(f"\r  {done}/{total} tests", end="", flush=True)

    result = CampaignRunner(cfg).run(progress=progress)
    print(f"\n  done in {result.elapsed_seconds:.1f}s\n")

    table = result.table
    print(render_table1(table, cfg.compilers))
    print()
    print(render_campaign_summary(table))
    print()

    correctness = [o for v in result.verdicts for o in v.outliers
                   if o.kind in (OutlierKind.CRASH, OutlierKind.HANG)]
    if correctness:
        print("correctness outliers found:")
        for o in correctness:
            print(f"  {o}")
    else:
        print("no correctness outliers in this window "
              "(expected at the full 200-program scale)")

    divergent = sum(v.output_divergent for v in result.verdicts)
    print(f"\ntests where implementations printed different values: "
          f"{divergent}/{len(result.verdicts)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
