#!/usr/bin/env python3
"""Validate the generator against a *real* OpenMP toolchain.

The differential campaign runs on simulated implementations, but the
generator emits genuine OpenMP C++.  On hosts with g++ this example:

1. generates a handful of test programs,
2. compiles each with ``g++ -O3 -fopenmp`` (real libgomp),
3. runs the native binaries with generated inputs,
4. for contraction-free, schedule-independent programs, checks that the
   simulated backend printed the *bit-identical* comp value.

Run:  python examples/native_gcc_validation.py
"""

import sys

from repro.backends import gcc_native
from repro.config import GeneratorConfig, MachineConfig
from repro.core.features import extract_features
from repro.core.generator import ProgramGenerator
from repro.core.inputs import InputGenerator
from repro.driver import run_binary
from repro.driver.records import values_equal
from repro.vendors import compile_binary


def main() -> int:
    if not gcc_native.available():
        print("no g++ on PATH — nothing to validate (the simulated backend "
              "is the default everywhere else)")
        return 0

    cfg = GeneratorConfig(num_threads=4, max_total_iterations=4_000,
                          loop_trip_max=60)
    gen = ProgramGenerator(cfg, seed=31337)
    inputs = InputGenerator(cfg, seed=555)
    machine = MachineConfig()

    # phase 1: arbitrary generated programs compile and run natively
    compiled = 0
    for i in range(6):
        program = gen.generate(i)
        inp = inputs.generate(program, 0)
        native = gcc_native.compile_and_run(program, inp, fp_contract="off",
                                            num_threads=None)
        compiled += 1
        print(f"{program.name}: native g++ -> {native.status.value} "
              f"comp={native.comp!r} time={native.time_us:.0f}us")

    # phase 2: for schedule-independent, contraction-free programs the
    # simulated backend must print the *identical* value
    print()
    print("searching for deterministic agreement candidates "
          "(no reduction/critical/math, double precision) ...")
    agreed = checked = 0
    i = 0
    while checked < 3 and i < 300:
        program = gen.generate(i)
        i += 1
        f = extract_features(program)
        if (f.n_reductions or f.n_critical or f.n_math_calls
                or not f.uses_double):
            continue
        inp = inputs.generate(program, 0)
        native = gcc_native.compile_and_run(program, inp, fp_contract="off",
                                            num_threads=None)
        if not native.ok:
            continue
        sim = run_binary(compile_binary(program, "clang", "-O1"), inp,
                         machine)
        same = values_equal(sim.comp, native.comp)
        checked += 1
        agreed += same
        print(f"  {program.name}: native={native.comp!r} "
              f"simulated={sim.comp!r} "
              f"{'EXACT MATCH' if same else 'MISMATCH (BUG)'}")

    print()
    print(f"compiled & ran {compiled + checked} generated programs with real "
          f"g++; simulated/native agreement: {agreed}/{checked}")
    return 0 if agreed == checked else 1


if __name__ == "__main__":
    sys.exit(main())
