#!/usr/bin/env python3
"""Reproduce the paper's three case studies end to end.

* Case 1 (Section V-C): a critical-section-heavy test where the GCC
  binary is a fast outlier — perf counters (Table II) and flat call-stack
  profiles (Fig. 6).
* Case 2 (Section V-D): a parallel region inside a serial loop where the
  Clang binary is a slow outlier — perf counters (Table III) and
  children-mode profiles (Fig. 7).
* Case 3 (Section V-E): an Intel binary that livelocks in
  ``__kmpc_critical_with_hint`` — GDB-style backtrace (Fig. 8) and the
  thread-state grouping (Fig. 9).

Run:  python examples/case_studies.py [1|2|3]   (default: all three)
"""

import sys

from repro.analysis.profiles import render_children, render_flat
from repro.analysis.threadstate import render_backtrace, render_thread_groups
from repro.codegen import emit_translation_unit
from repro.config import CampaignConfig
from repro.harness.casestudies import case_study_1, case_study_2, case_study_3
from repro.vendors import VENDORS


def show_case1(cfg: CampaignConfig) -> None:
    cs = case_study_1(cfg)
    print("=" * 70)
    print(f"CASE STUDY 1 — {cs.note}")
    print("=" * 70)
    times = {r.vendor: r.time_us for r in cs.records}
    print("execution times:",
          ", ".join(f"{v}={t:.0f}us" for v, t in times.items()))
    print()
    print(cs.comparison.render("perf counters (Table II analogue):"))
    print()
    for vendor in ("intel", "gcc"):
        print(render_flat(cs.record_for(vendor).profile,
                          title=f"--- {vendor} call-stack profile (Fig. 6) ---"))
        print()


def show_case2(cfg: CampaignConfig) -> None:
    cs = case_study_2(cfg)
    print("=" * 70)
    print(f"CASE STUDY 2 — {cs.note}")
    print("=" * 70)
    times = {r.vendor: r.time_us for r in cs.records}
    print("execution times:",
          ", ".join(f"{v}={t:.0f}us" for v, t in times.items()))
    print()
    print(cs.comparison.render("perf counters (Table III analogue):"))
    print()
    for vendor in ("intel", "clang"):
        print(render_children(
            cs.record_for(vendor).profile, VENDORS[vendor],
            title=f"--- {vendor} profile, children mode (Fig. 7) ---"))
        print()
    print("--- the offending source pattern (parallel inside a serial loop) ---")
    src = emit_translation_unit(cs.program)
    in_loop = [ln for ln in src.splitlines() if "#pragma omp parallel" in ln]
    print(f"  {len(in_loop)} parallel directive(s); region re-entered "
          f"~{cs.features.est_region_entries} times")


def show_case3(cfg: CampaignConfig) -> None:
    cs = case_study_3(cfg)
    print("=" * 70)
    print(f"CASE STUDY 3 — {cs.note}")
    print("=" * 70)
    for r in cs.records:
        status = r.status.value
        t = "3+ min (SIGINT)" if status == "HANG" else f"{r.time_us:.0f}us"
        print(f"  {r.vendor}: {status} ({t})")
    print()
    intel = cs.record_for("intel")
    print("--- GDB backtrace of thread 1 (Fig. 8) ---")
    print(render_backtrace(intel))
    print()
    print("--- thread states (Fig. 9) ---")
    print(render_thread_groups(intel))


def main() -> int:
    cfg = CampaignConfig(seed=20240915)
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    if which in ("1", "all"):
        show_case1(cfg)
    if which in ("2", "all"):
        show_case2(cfg)
    if which in ("3", "all"):
        show_case3(cfg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
