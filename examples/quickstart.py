#!/usr/bin/env python3
"""Quickstart: one differential OpenMP test in ~20 lines.

Generates a random OpenMP C++ test program and a random floating-point
input (Fig. 1 step (a)), compiles it with the three simulated OpenMP
implementations (step (b)), runs all binaries with the same input
(step (c)), and compares execution times and outputs for outliers
(step (d)).

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import quick_differential_test


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42

    result = quick_differential_test(seed=seed)

    print("=== generated test (C++ head) ===")
    for line in result.cpp_source.splitlines()[:25]:
        print(line)
    print("    ...")
    print()
    print("=== differential execution ===")
    print(result.table())
    print()
    if result.verdict.output_divergent:
        print("note: the implementations printed different values for comp —")
        print("the compiler halves disagree on FP lowering for this program.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
