#!/usr/bin/env python3
"""Quickstart: the session API in ~40 lines.

Part 1 — one differential test: generate a random OpenMP C++ program and
a random floating-point input (Fig. 1 step (a)), compile it with the
three simulated OpenMP implementations (step (b)), run all binaries with
the same input (step (c)), and compare execution times and outputs for
outliers (step (d)).

Part 2 — a small campaign through :class:`repro.CampaignSession`:
verdicts stream in as the engine completes them, a JSONL checkpoint is
written mid-flight, and the campaign is resumed from it — the workflow
that lets the paper's 200 x 3 x 3 grid (or a 100x larger one) survive
interruption.

Run:  python examples/quickstart.py [seed]
"""

import sys
import tempfile
from pathlib import Path

from repro import CampaignConfig, CampaignSession, quick_differential_test


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42

    # --- Part 1: one differential test -----------------------------------
    result = quick_differential_test(seed=seed)
    print("=== generated test (C++ head) ===")
    for line in result.cpp_source.splitlines()[:25]:
        print(line)
    print("    ...")
    print()
    print("=== differential execution ===")
    print(result.table())
    print()
    if result.verdict.output_divergent:
        print("note: the implementations printed different values for comp —")
        print("the compiler halves disagree on FP lowering for this program.")
        print()

    # --- Part 2: a streaming, resumable campaign -------------------------
    print("=== campaign session (stream, checkpoint, resume) ===")
    cfg = CampaignConfig(n_programs=6, inputs_per_program=2, seed=seed)
    session = CampaignSession(cfg, engine="serial")

    stream = session.stream()
    for _ in range(session.total_tests // 2):  # consume half, then "crash"
        verdict = next(stream)
        flag = " ".join(f"{o.vendor} {o.kind.value} outlier"
                        for o in verdict.outliers) or "ok"
        print(f"  {verdict.program_name}#in{verdict.input_index}: {flag}")
    stream.close()

    with tempfile.TemporaryDirectory(prefix="repro-quickstart-") as tmp:
        ckpt = Path(tmp) / "ckpt.jsonl"
        session.checkpoint(ckpt)
        print(f"  -- interrupted; checkpointed {session.completed_tests}/"
              f"{session.total_tests} tests --")

        resumed = CampaignSession.resume(ckpt)  # engine="process" also ok
        campaign = resumed.run()
    print(f"  -- resumed and finished: {len(campaign.verdicts)} verdicts, "
          f"{campaign.table.total_outlier_tests()} outlier tests --")
    return 0


if __name__ == "__main__":
    sys.exit(main())
