#!/usr/bin/env python3
"""Reproduce the paper's Section III-E limitation — and its mitigation.

"First, while the generator considers several scenarios and constraints
to generate correct OpenMP programs, we found that in some cases it can
generate data races, where the comp variable is written and read by
multiple threads without synchronization.  We mitigated this by manually
filtering out data race cases in the evaluation."

This example runs the generator in the limitation-reproducing mode
(``allow_data_races=True``), shows the static race checker catching the
racy programs (the automated version of the paper's manual filter), and
confirms the default safe mode generates zero races.

Run:  python examples/race_limitation.py
"""

import sys

from repro.config import GeneratorConfig
from repro.core.generator import ProgramGenerator
from repro.core.races import find_races

N = 60


def main() -> int:
    base = dict(max_total_iterations=6_000, loop_trip_max=60, num_threads=8)

    print(f"== limitation mode (allow_data_races=True), {N} programs ==")
    racy_cfg = GeneratorConfig(allow_data_races=True, **base)
    gen = ProgramGenerator(racy_cfg, seed=20240915)
    racy = 0
    for i in range(N):
        program = gen.generate(i)
        races = find_races(program)
        if races:
            racy += 1
            if racy <= 3:
                print(f"  {program.name}:")
                for r in races[:2]:
                    print(f"    RACE: {r}")
    print(f"  -> {racy}/{N} programs contain data races "
          f"(filtered out of campaigns, as the paper did manually)")
    print()

    print(f"== default safe mode (Section III-G rules), {N} programs ==")
    safe_cfg = GeneratorConfig(allow_data_races=False, **base)
    gen = ProgramGenerator(safe_cfg, seed=20240915)
    safe_races = sum(bool(find_races(gen.generate(i))) for i in range(N))
    print(f"  -> {safe_races}/{N} programs contain data races")

    if safe_races:
        print("BUG: safe mode must be race-free")
        return 1
    print()
    print("the static checker automates the paper's manual filtering step;")
    print("the default generator achieves the 'data-race-free 100% of the")
    print("time' goal the paper lists as future work.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
