"""Ablation — thread-count scaling of the critical-section mechanism.

DESIGN.md calls out the KMP-vs-libgomp lock gap as the mechanism behind
the GCC fast-outlier dominance.  This bench sweeps the team size on the
Case-Study-1 program and shows the gap *widening* with contention —
at 2 threads the implementations are nearly comparable; at 32 the Intel/
GCC ratio crosses the beta threshold.
"""

from __future__ import annotations

from repro.backends.gcc_native import _with_threads
from repro.core.inputs import InputGenerator
from repro.driver.execution import run_binary
from repro.vendors import compile_binary

THREADS = (2, 4, 8, 16, 32)


def _time_for(program, vendor, inp, machine):
    return run_binary(compile_binary(program, vendor), inp, machine).time_us


def test_contention_scaling(benchmark, case1, paper_cfg):
    inputs = InputGenerator(paper_cfg.generator, seed=paper_cfg.seed + 1)

    def sweep():
        rows = []
        for t in THREADS:
            program = _with_threads(case1.program, t)
            inp = inputs.generate(program, 0)
            gcc = _time_for(program, "gcc", inp, paper_cfg.machine)
            intel = _time_for(program, "intel", inp, paper_cfg.machine)
            rows.append((t, gcc, intel, intel / gcc))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("critical-section contention sweep (Case-Study-1 program):")
    print(f"{'threads':>8} {'gcc (us)':>12} {'intel (us)':>12} {'intel/gcc':>10}")
    for t, g, i, r in rows:
        print(f"{t:>8} {g:>12.0f} {i:>12.0f} {r:>10.2f}")

    ratios = [r for _, _, _, r in rows]
    # the gap widens with contention...
    assert ratios[-1] > ratios[0]
    # ...and crosses the outlier threshold at the paper's 32 threads
    assert ratios[-1] >= 1.5
    # at low contention the implementations are near-comparable
    assert ratios[0] < 1.5
