"""Fleet scaling: coordinator + socket-queue workers vs SerialEngine.

Runs the same campaign grid serially and then through ``engine="fleet"``
at 1, 2, and 4 workers (each worker is a separate process pulling leases
over the socket queue), asserts every fleet run reproduces the serial
verdict stream byte-identically *in grid order*, and records wall-clock
plus tests/s as a trajectory point in ``BENCH_fleet.json`` at the repo
root.

Interpretation guide: fleet workers are processes, so scaling tracks the
process engine minus the lease/transport overhead — a 1-worker fleet
measures that overhead directly. On a single-core host the fleet pays
its coordination cost and lands at or below 1x, same as any pool.

Run:  python -m pytest benchmarks/bench_fleet.py -q -s
  or: python benchmarks/bench_fleet.py

Environment: ``REPRO_BENCH_FLEET_PROGRAMS`` overrides the grid size
(default 30); ``REPRO_BENCH_FLEET_WORKERS`` overrides the worker sweep
(comma-separated, default ``1,2,4``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.config import CampaignConfig
from repro.harness.session import CampaignSession

N_PROGRAMS = int(os.environ.get("REPRO_BENCH_FLEET_PROGRAMS", "30"))
WORKER_SWEEP = tuple(
    int(w) for w in
    os.environ.get("REPRO_BENCH_FLEET_WORKERS", "1,2,4").split(","))
SEED = 20240915  # the seed every reported number in EXPERIMENTS.md uses

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def _ordered_key(result):
    return [v.identity() for v in result.verdicts]


def run_fleet_comparison() -> dict:
    cfg = CampaignConfig(n_programs=N_PROGRAMS, inputs_per_program=2,
                         seed=SEED)
    point: dict = {
        "bench": "fleet_scaling",
        "grid": {
            "n_programs": cfg.n_programs,
            "inputs_per_program": cfg.inputs_per_program,
            "compilers": list(cfg.compilers),
            "total_runs": cfg.total_runs,
            "seed": cfg.seed,
        },
        "cpu_count": os.cpu_count(),
        "engines": {},
    }

    t0 = time.perf_counter()
    serial = CampaignSession(cfg, engine="serial").run()
    serial_wall = time.perf_counter() - t0
    serial_key = _ordered_key(serial)
    point["engines"]["serial"] = {
        "wall_s": round(serial_wall, 3),
        "tests_per_s": round(len(serial.verdicts) / serial_wall, 2),
        "jobs_resolved": 1,
    }
    print(f"  serial     {serial_wall:7.2f}s  "
          f"({len(serial.verdicts)} verdicts)")

    identical = True
    for workers in WORKER_SWEEP:
        t0 = time.perf_counter()
        result = CampaignSession(cfg, engine="fleet", jobs=workers).run()
        wall = time.perf_counter() - t0
        identical = identical and _ordered_key(result) == serial_key
        point["engines"][f"fleet-{workers}"] = {
            "wall_s": round(wall, 3),
            "tests_per_s": round(len(result.verdicts) / wall, 2),
            "jobs_resolved": workers,
            "speedup_vs_serial": round(serial_wall / wall, 3),
        }
        print(f"  fleet-{workers:<4} {wall:7.2f}s  "
              f"({workers} worker{'s' if workers != 1 else ''}, "
              f"{serial_wall / wall:.2f}x serial)")

    point["identical_verdicts"] = identical
    return point


def test_fleet_scaling_trajectory():
    print()
    point = run_fleet_comparison()
    assert point["identical_verdicts"], \
        "a fleet run disagreed with the serial verdict stream"
    OUT_PATH.write_text(json.dumps(point, indent=2, sort_keys=True) + "\n")
    print(f"  trajectory point written to {OUT_PATH}")


if __name__ == "__main__":
    test_fleet_scaling_trajectory()
