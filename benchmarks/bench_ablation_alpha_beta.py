"""Ablation — sensitivity of Table I to the alpha/beta thresholds.

Section V-B: "Out of the 1,800 test runs, 7.4% were considered outliers
for our configuration of alpha, beta, and the Varity parameters.  Changes
to these parameters may produce more or less outliers."  This bench
quantifies that: the campaign's raw records are re-analyzed under sweeps
of alpha (comparability) and beta (outlier distance), asserting the
monotonicity the definitions imply.
"""

from __future__ import annotations

from repro.analysis.outliers import OutlierKind, analyze_test
from repro.config import OutlierConfig


def _reanalyze(campaign_result, cfg: OutlierConfig) -> int:
    n = 0
    for v in campaign_result.verdicts:
        verdict = analyze_test(v.records, cfg)
        n += sum(o.kind in (OutlierKind.SLOW, OutlierKind.FAST)
                 for o in verdict.outliers)
    return n


def test_beta_sweep_monotone_decreasing(benchmark, campaign_result):
    betas = (1.2, 1.35, 1.5, 1.75, 2.0, 3.0)

    def sweep():
        return [_reanalyze(campaign_result, OutlierConfig(beta=b))
                for b in betas]

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("beta sweep (alpha=0.2): performance outliers per threshold")
    for b, n in zip(betas, counts):
        print(f"  beta={b:<5} outliers={n}")

    # raising beta can only shrink the outlier set
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    # the paper's operating point sits strictly inside the range
    assert counts[betas.index(1.5)] > 0
    assert counts[0] > counts[-1]


def test_alpha_sweep(benchmark, campaign_result):
    alphas = (0.05, 0.1, 0.2, 0.4, 0.8)

    def sweep():
        return [_reanalyze(campaign_result, OutlierConfig(alpha=a))
                for a in alphas]

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("alpha sweep (beta=1.5): performance outliers per threshold")
    for a, n in zip(alphas, counts):
        print(f"  alpha={a:<5} outliers={n}")

    # widening alpha admits more comparable witness pairs, so the
    # flaggable population grows (weak monotonicity: never fewer by much)
    assert counts[-1] >= counts[0]
    assert max(counts) > 0


def test_min_time_filter_sweep(benchmark, campaign_result):
    thresholds = (0.0, 500.0, 1000.0, 5000.0, 20000.0)

    def sweep():
        out = []
        for t in thresholds:
            cfg = OutlierConfig(min_time_us=t)
            analyzed = sum(analyze_test(v.records, cfg).analyzed
                           for v in campaign_result.verdicts)
            out.append(analyzed)
        return out

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("min-time filter sweep: analyzed tests per threshold")
    for t, n in zip(thresholds, counts):
        print(f"  >={t:>7.0f}us analyzed={n}")

    assert all(a >= b for a, b in zip(counts, counts[1:]))
    # the paper's 1ms filter keeps a substantial majority-but-not-all
    idx = thresholds.index(1000.0)
    total = len(campaign_result.verdicts)
    assert 0.4 * total <= counts[idx] < total
