"""Figure 6 — call-stack overhead for Case Study 1 (flat profile).

Paper: on the critical-heavy test, the Intel binary spends 30.85 % in
``__kmp_wait_template`` + 12.13 % in ``__kmp_wait_4`` (aggressive
spinning), while the GCC binary spends 72.53 % in ``do_wait`` + 6.55 % in
``do_spin`` (futex parking).  Both are "waiting-dominated" profiles with
vendor-specific symbols — that is the shape this bench asserts.
"""

from __future__ import annotations

from repro.analysis.profiles import flat_report, render_flat, symbol_fraction
from repro.vendors import GCC, INTEL


def test_fig6_flat_profiles(benchmark, case1):
    intel = case1.record_for("intel")
    gcc = case1.record_for("gcc")

    benchmark(lambda: (flat_report(intel.profile), flat_report(gcc.profile)))

    print()
    print(render_flat(intel.profile, title="[Intel binary — Fig. 6 top]"))
    print()
    print(render_flat(gcc.profile, title="[GCC binary — Fig. 6 bottom]"))

    # Intel waits in the KMP symbols, with the primary/secondary split
    iw1 = symbol_fraction(intel.profile, INTEL.symbols.wait_primary)
    iw2 = symbol_fraction(intel.profile, INTEL.symbols.wait_secondary)
    assert iw1 > 0.10, f"__kmp_wait_template share {iw1:.1%} (paper: 30.85%)"
    assert iw2 > 0.02, f"__kmp_wait_4 share {iw2:.1%} (paper: 12.13%)"
    assert iw1 > iw2

    # GCC waits in do_wait/do_spin with do_wait dominant
    gw1 = symbol_fraction(gcc.profile, "do_wait")
    gw2 = symbol_fraction(gcc.profile, "do_spin")
    assert gw1 > 0.10, f"do_wait share {gw1:.1%} (paper: 72.53%)"
    assert gw1 > gw2, "do_wait dominates do_spin (paper: 72.5% vs 6.6%)"

    # symbols come from the right shared objects
    assert ("libiomp5.so", INTEL.symbols.wait_primary) in intel.profile.samples
    assert ("libgomp.so.1.0.0", "do_wait") in gcc.profile.samples

    # the lock itself is visible in both profiles
    assert symbol_fraction(intel.profile, INTEL.symbols.lock) > 0.0
    assert symbol_fraction(gcc.profile, GCC.symbols.lock) > 0.0
