"""Figure 7 — children-mode call-stack overhead for Case Study 2.

Paper (perf --children, so parents accumulate callees and the column can
exceed 100 % in total): both binaries spend ~90 % under
``start_thread`` -> ``__kmp_invoke_microtask``; the Clang binary
additionally shows ~48 % under ``__calloc`` / ``_int_malloc`` /
``sysmalloc`` / ``mprotect`` — the allocator churn of re-spawning team
resources inside the serial loop.
"""

from __future__ import annotations

from repro.analysis.profiles import (
    children_report,
    render_children,
    symbol_fraction,
)
from repro.vendors import CLANG, INTEL


def test_fig7_children_profiles(benchmark, case2):
    clang = case2.record_for("clang")
    intel = case2.record_for("intel")

    benchmark(lambda: children_report(clang.profile, CLANG))

    print()
    print(render_children(intel.profile, INTEL,
                          title="[Intel binary — Fig. 7 top]"))
    print()
    print(render_children(clang.profile, CLANG,
                          title="[Clang binary — Fig. 7 bottom]"))

    # parents accumulate: start_thread approaches the whole parallel share
    crows = {r.symbol: r for r in children_report(clang.profile, CLANG)}
    irows = {r.symbol: r for r in children_report(intel.profile, INTEL)}
    assert crows["start_thread"].children > 0.5
    assert irows["start_thread"].children > 0.5

    # the paper's headline: clang's allocator share is large, intel's small
    clang_alloc = symbol_fraction(clang.profile, CLANG.symbols.alloc)
    intel_alloc = symbol_fraction(intel.profile, INTEL.symbols.alloc)
    assert clang_alloc > 0.08, \
        f"clang calloc/mprotect share {clang_alloc:.1%} (paper: ~48%)"
    assert clang_alloc > 3 * max(intel_alloc, 1e-9)

    # both runtimes funnel through the invoke-microtask frame
    assert crows[CLANG.symbols.invoke].children > 0.1
    assert irows[INTEL.symbols.invoke].children > 0.1

    # children-mode totals exceed 100% ("the sum ... exceeds 100%")
    assert sum(r.children for r in crows.values()) > 1.0
