"""Figure 5 — slow and fast outlier classes against the midpoint.

The figure shows three execution times where r1 ~ r2 (comparable, with
midpoint M) and r3 is either far above M (slow outlier) or far below
(fast outlier).  This bench sweeps a synthetic r3 across the whole range
and verifies the classifier transitions exactly at the beta boundaries,
then benchmarks classification throughput.
"""

from __future__ import annotations

from repro.analysis.outliers import (
    OutlierKind,
    analyze_test,
    detect_performance_outliers,
)
from repro.config import OutlierConfig
from repro.driver.records import RunRecord, RunStatus

CFG = OutlierConfig()  # alpha=0.2, beta=1.5


def _triple(r1: float, r2: float, r3: float):
    return [RunRecord("p", v, 0, RunStatus.OK, 1.0, t)
            for v, t in (("impl1", r1), ("impl2", r2), ("impl3", r3))]


def test_fig5_outlier_classes(benchmark):
    r1, r2 = 10_000.0, 11_000.0  # comparable; midpoint M = 10,500
    m = (r1 + r2) / 2

    rows = []
    for factor in (0.25, 0.5, 1 / 1.5, 0.9, 1.0, 1.2, 1.49, 1.5, 2.0, 4.0):
        r3 = m * factor
        out = detect_performance_outliers(_triple(r1, r2, r3), CFG)
        kind = out[0].kind.value if out else "-"
        rows.append((factor, r3, kind))

    print()
    print("Fig. 5 sweep: r3 as a multiple of the midpoint of (r1, r2)")
    print(f"{'r3/M':>6}  {'r3 (us)':>10}  class")
    for factor, r3, kind in rows:
        print(f"{factor:>6.2f}  {r3:>10.0f}  {kind}")

    classes = {f: k for f, _, k in rows}
    assert classes[4.0] == "slow" and classes[2.0] == "slow"
    assert classes[1.5] == "slow"          # boundary is inclusive (Eq. 2)
    assert classes[1.49] == "-"
    assert classes[1.2] == "-" and classes[1.0] == "-"
    assert classes[0.9] == "-"
    assert classes[1 / 1.5] == "fast"      # M / r3 == beta
    assert classes[0.5] == "fast" and classes[0.25] == "fast"

    # throughput of full verdict construction
    records = _triple(10_000.0, 11_000.0, 40_000.0)
    verdict = benchmark(lambda: analyze_test(records, CFG))
    assert verdict.outliers[0].kind is OutlierKind.SLOW


def test_fig5_comparability_gate(benchmark):
    """No outlier verdict is possible when the witnesses disagree — the
    'midpoint' only exists between comparable times (Eq. 1)."""
    def sweep():
        flagged = 0
        for gap in (1.05, 1.1, 1.2, 1.3, 1.5, 2.0):
            r1, r2 = 10_000.0, 10_000.0 * gap
            out = detect_performance_outliers(_triple(r1, r2, 100_000.0), CFG)
            flagged += bool(out)
        return flagged

    flagged = benchmark(sweep)
    # only the gaps within alpha (1.05, 1.1, 1.2) admit a midpoint
    assert flagged == 3
