"""Ablation — sensitivity to the Section III-D input categories.

The input generator's five categories exist because extreme values shake
out behaviour that normal inputs never reach: the paper attributes about
half of the GCC fast outliers to NaN-driven control-flow divergence, and
its crash cases required specific inputs ("the test along with the
particular input that generates this behavior").

This bench re-runs a fixed program set with inputs *forced* into each
single category and measures (a) how often implementations print
different values and (b) how often outputs leave the finite range —
the upstream signals of input-dependent outliers.
"""

from __future__ import annotations

import math

from repro.config import CampaignConfig
from repro.core.generator import ProgramGenerator
from repro.core.inputs import FPCategory, TestInput, sample_category
from repro.driver.execution import run_differential
from repro.driver.records import values_equal
from repro.rng import Rng
from repro.vendors import compile_all

CFG = CampaignConfig(seed=20240915)
N_PROGRAMS = 12
CATEGORIES = (FPCategory.NORMAL, FPCategory.SUBNORMAL, FPCategory.ALMOST_INF,
              FPCategory.ALMOST_SUBNORMAL, FPCategory.ZERO)


def _forced_input(program, category: FPCategory, rng: Rng) -> TestInput:
    inp = TestInput(program_name=program.name, index=0)
    for p in program.params:
        if p.is_int:
            inp.values[p.name] = rng.randint(CFG.generator.loop_trip_min,
                                             CFG.generator.loop_trip_max)
        else:
            inp.values[p.name] = sample_category(rng, category,
                                                 program.fp_type)
            inp.categories[p.name] = category
    return inp


def test_input_category_sensitivity(benchmark):
    gen = ProgramGenerator(CFG.generator, seed=CFG.seed)
    programs = [gen.generate(i) for i in range(N_PROGRAMS)]
    binaries = {p.name: compile_all(p, CFG.compilers, CFG.opt_level)
                for p in programs}

    def sweep():
        stats = {}
        for cat in CATEGORIES:
            rng = Rng(99).child(f"cat:{cat.value}")
            divergent = nonfinite = crash = 0
            for p in programs:
                inp = _forced_input(p, cat, rng)
                records = run_differential(binaries[p.name], inp, CFG.machine)
                ok = [r for r in records if r.ok]
                crash += len(records) - len(ok)
                if len(ok) >= 2 and not all(
                        values_equal(ok[0].comp, r.comp) for r in ok[1:]):
                    divergent += 1
                if ok and not math.isfinite(ok[0].comp):
                    nonfinite += 1
            stats[cat] = (divergent, nonfinite, crash)
        return stats

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(f"input-category sweep over {N_PROGRAMS} programs "
          f"(same programs, forced input category):")
    print(f"{'category':<18} {'divergent':>10} {'non-finite':>11} {'crashed':>8}")
    for cat in CATEGORIES:
        d, nf, c = stats[cat]
        print(f"{cat.value:<18} {d:>10} {nf:>11} {c:>8}")

    # extreme categories drive non-finite outputs far more than normals
    nf_normal = stats[FPCategory.NORMAL][1]
    nf_extreme = max(stats[FPCategory.ALMOST_INF][1],
                     stats[FPCategory.ZERO][1],
                     stats[FPCategory.SUBNORMAL][1])
    assert nf_extreme >= nf_normal

    # subnormal inputs are where Intel's FTZ diverges from the others
    assert stats[FPCategory.SUBNORMAL][0] >= stats[FPCategory.NORMAL][0]
