"""Shared fixtures for the per-table/per-figure benchmarks.

The campaign and case studies are expensive; they are computed once per
session and shared by every bench that regenerates a table or figure.

Sizing: by default the Table-I campaign runs a 60-program grid (~1/3 of
the paper's 200) so the whole bench suite finishes in a few minutes.  Set
``REPRO_BENCH_FULL=1`` to run the paper's full 200 x 3 x 3 = 1,800-run
grid; EXPERIMENTS.md records the full-grid numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.config import CampaignConfig
from repro.harness.campaign import CampaignRunner
from repro.harness.casestudies import case_study_1, case_study_2, case_study_3

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: the seed every reported number in EXPERIMENTS.md uses
PAPER_SEED = 20240915


@pytest.fixture(scope="session")
def campaign_cfg() -> CampaignConfig:
    return CampaignConfig(n_programs=200 if FULL else 60,
                          inputs_per_program=3, seed=PAPER_SEED)


@pytest.fixture(scope="session")
def campaign_result(campaign_cfg):
    return CampaignRunner(campaign_cfg).run()


@pytest.fixture(scope="session")
def paper_cfg() -> CampaignConfig:
    """Full-fidelity config for case-study searches (always paper-sized)."""
    return CampaignConfig(seed=PAPER_SEED)


@pytest.fixture(scope="session")
def case1(paper_cfg):
    return case_study_1(paper_cfg)


@pytest.fixture(scope="session")
def case2(paper_cfg):
    return case_study_2(paper_cfg)


@pytest.fixture(scope="session")
def case3(paper_cfg):
    return case_study_3(paper_cfg)
