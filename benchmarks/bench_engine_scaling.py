"""Engine scaling: SerialEngine vs ThreadPoolEngine vs ProcessPoolEngine.

Runs the same 50-program campaign grid (50 x 3 inputs x 3 implementations
= 450 runs) through each execution engine, asserts all three produce the
identical verdict set, and records wall-clock plus speedups as a
trajectory point in ``BENCH_engine.json`` at the repo root.

Each engine entry records the worker count that *actually ran*
(``jobs_resolved`` — the serial engine is always 1) next to what was
requested, plus the resolved chunk size for the pooled engines, and the
top level records the host's CPU count; a 1-CPU host can no longer
masquerade as a parallel-scaling reference point.

Interpretation guide: the simulated pipeline is pure Python, so the
thread engine is GIL-bound and roughly matches serial (its win is on
backends that release the GIL, like the native g++ toolchain); the
process engine is the one that scales with cores.  On a single-core host
both pools pay their overhead and land at or below 1x.

Run:  python -m pytest benchmarks/bench_engine_scaling.py -q -s
  or: python benchmarks/bench_engine_scaling.py

Environment: ``REPRO_BENCH_ENGINE_PROGRAMS`` overrides the grid size
(default 50); ``REPRO_BENCH_JOBS`` overrides the pool width (default:
CPU count, at least 2).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.config import CampaignConfig
from repro.driver.engine import resolve_chunk_size
from repro.harness.session import CampaignSession

N_PROGRAMS = int(os.environ.get("REPRO_BENCH_ENGINE_PROGRAMS", "50"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or \
    max(2, os.cpu_count() or 1)
SEED = 20240915  # the seed every reported number in EXPERIMENTS.md uses

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _verdict_key(result):
    return sorted(v.identity() for v in result.verdicts)


def run_engine_comparison() -> dict:
    cfg = CampaignConfig(n_programs=N_PROGRAMS, inputs_per_program=3,
                         seed=SEED)
    point: dict = {
        "bench": "engine_scaling",
        "grid": {
            "n_programs": cfg.n_programs,
            "inputs_per_program": cfg.inputs_per_program,
            "compilers": list(cfg.compilers),
            "total_runs": cfg.total_runs,
            "seed": cfg.seed,
        },
        "jobs_requested": JOBS,
        "cpu_count": os.cpu_count(),
        "engines": {},
    }

    keys = {}
    for engine in ("serial", "thread", "process"):
        session = CampaignSession(cfg, engine=engine,
                                  jobs=None if engine == "serial" else JOBS)
        resolved = getattr(session.engine, "jobs", 1)
        t0 = time.perf_counter()
        result = session.run()
        wall = time.perf_counter() - t0
        keys[engine] = _verdict_key(result)
        entry = {
            "wall_s": round(wall, 3),
            "tests_per_s": round(len(result.verdicts) / wall, 2),
            "jobs_resolved": resolved,
        }
        if engine != "serial":
            entry["chunk_size"] = resolve_chunk_size(cfg, cfg.n_programs,
                                                     resolved)
        point["engines"][engine] = entry
        print(f"  {engine:<8} {wall:7.2f}s  "
              f"({len(result.verdicts)} verdicts, "
              f"{resolved} worker{'s' if resolved != 1 else ''})")

    serial_wall = point["engines"]["serial"]["wall_s"]
    for engine in ("thread", "process"):
        point["engines"][engine]["speedup_vs_serial"] = round(
            serial_wall / point["engines"][engine]["wall_s"], 3)

    point["identical_verdicts"] = (keys["serial"] == keys["thread"] ==
                                   keys["process"])
    return point


def test_engine_scaling_trajectory():
    print()
    point = run_engine_comparison()
    assert point["identical_verdicts"], \
        "engines disagreed on the verdict set"
    OUT_PATH.write_text(json.dumps(point, indent=2, sort_keys=True) + "\n")
    print(f"  trajectory point written to {OUT_PATH}")


if __name__ == "__main__":
    test_engine_scaling_trajectory()
