"""Table I — outlier counts per OpenMP implementation.

Paper (200 programs x 3 inputs x 3 implementations = 1,800 runs,
454 tests analyzed after the 1 ms filter):

    =======  =====  =====  ======  =====
             Slow   Fast   Crash   Hang
    Clang      10      -       -      -
    GCC         4    115       3      -
    Intel       -      1       -      1
    =======  =====  =====  ======  =====

plus the Section V-B rates: 7.4 % of runs are outliers, 0.22 % are
correctness outliers.  This bench regenerates the table (scaled grid by
default; set REPRO_BENCH_FULL=1 for the full 1,800 runs) and asserts the
qualitative shape: GCC dominates fast outliers by an order of magnitude,
Clang contributes only slow outliers, Intel is near-clean, and the two
rates land in the paper's bands.
"""

from __future__ import annotations

from repro.analysis.outliers import OutlierKind
from repro.harness.campaign import CampaignRunner
from repro.harness.report import render_campaign_summary, render_table1


def test_table1_outlier_overview(benchmark, campaign_cfg, campaign_result):
    # Bench cost: re-running one program of the campaign grid end to end
    runner = CampaignRunner(campaign_cfg)
    program = runner.programs.generate(0)
    from repro.vendors import compile_all
    from repro.driver import run_differential
    from repro.analysis import analyze_test

    def one_test():
        bins = compile_all(program, campaign_cfg.compilers)
        inp = runner.inputs.generate(program, 0)
        return analyze_test(run_differential(bins, inp, campaign_cfg.machine),
                            campaign_cfg.outliers)

    benchmark.pedantic(one_test, rounds=3, iterations=1)

    table = campaign_result.table
    print()
    print(render_table1(table, campaign_cfg.compilers))
    print()
    print(render_campaign_summary(table))

    # --- the paper's configuration is in force (Section V-A) ---
    g = campaign_cfg.generator
    assert (g.max_expression_size, g.max_nesting_levels,
            g.max_lines_in_block, g.array_size,
            g.max_same_level_blocks) == (5, 3, 10, 1000, 3)
    assert g.math_func_allowed and g.math_func_probability == 0.01
    assert g.num_threads == 32
    assert campaign_cfg.outliers.alpha == 0.2
    assert campaign_cfg.outliers.beta == 1.5
    assert campaign_cfg.opt_level == "-O3"

    # --- Table I shape ---
    gcc_fast = table.count("gcc", OutlierKind.FAST)
    gcc_slow = table.count("gcc", OutlierKind.SLOW)
    clang_slow = table.count("clang", OutlierKind.SLOW)
    clang_fast = table.count("clang", OutlierKind.FAST)
    intel_slow = table.count("intel", OutlierKind.SLOW)

    assert gcc_fast >= 10 * max(1, clang_slow) / 2, \
        "GCC fast outliers dominate the table (paper: 115 vs 10)"
    assert clang_slow >= 1, "Clang contributes slow outliers (paper: 10)"
    assert clang_fast == 0, "no Clang fast outliers (paper: none)"
    assert intel_slow == 0, "Intel is the platform baseline (paper: 0 slow)"
    assert gcc_slow <= gcc_fast / 5, "GCC slow outliers are rare (paper: 4)"

    # --- Section V-B rates ---
    rate = table.outlier_run_rate()
    assert 0.03 <= rate <= 0.15, f"outlier run rate {rate:.2%} (paper: 7.4%)"
    crate = table.correctness_run_rate()
    assert crate <= 0.02, f"correctness rate {crate:.3%} (paper: 0.22%)"

    # --- the >=1ms filter bites, as in the paper (454 of 600 tests) ---
    assert 0.5 <= table.n_analyzed / table.n_tests <= 0.95


def test_table1_correctness_classes_present_at_full_scale(benchmark,
                                                          campaign_result,
                                                          campaign_cfg):
    """At the paper's scale the crash/hang classes appear; on the scaled
    grid we only require that no *unexpected* class appears."""
    from repro.analysis.outliers import build_outlier_table

    # bench cost: assembling the Table-I aggregation from the verdicts
    table = benchmark(lambda: build_outlier_table(campaign_result.verdicts))
    assert table.count("clang", OutlierKind.CRASH) == 0
    assert table.count("clang", OutlierKind.HANG) == 0
    assert table.count("intel", OutlierKind.CRASH) == 0
    if campaign_cfg.n_programs >= 200:
        assert table.count("gcc", OutlierKind.CRASH) >= 1  # paper: 3
        assert table.count("intel", OutlierKind.HANG) >= 1  # paper: 1
