"""Table III — perf counters for Case Study 2 (Clang binary is slow).

Paper (Intel vs Clang on a test with a parallel region inside a serial
loop; the Clang binary runs 946 % slower):

    Counters          Intel         Clang
    context-switches     300         40,483
    cpu-migrations        93            126
    page-faults          684         70,990
    cycles         1,195,535,760  10,168,915,718
    instructions     887,175,940   8,212,422,901
    branches         250,167,701   2,163,265,059
    branch-misses        458,225      3,827,212

Mechanism: libomp re-allocates team resources on every region entry
(calloc/mprotect churn in the paper's Fig. 7), so a region inside a
serial loop multiplies the overhead by the loop trip count.
"""

from __future__ import annotations

from repro.analysis.perfstats import TABLE3_DIRECTIONS, check_directions
from repro.driver.execution import run_binary


def test_table3_counters_clang_slow_case(benchmark, case2, paper_cfg):
    from repro.vendors import compile_binary
    from repro.core.inputs import InputGenerator

    inputs = InputGenerator(paper_cfg.generator, seed=paper_cfg.seed + 1)
    inp = inputs.generate(case2.program, 0)
    clang_binary = compile_binary(case2.program, "clang",
                                  paper_cfg.opt_level)
    benchmark.pedantic(
        lambda: run_binary(clang_binary, inp, paper_cfg.machine,
                           collect_profile=True),
        rounds=3, iterations=1)

    cmp = case2.comparison  # (intel left, clang right): ratios = clang/intel
    print()
    print(cmp.render("Table III analogue — " + case2.note))

    result = check_directions(cmp, TABLE3_DIRECTIONS)
    for key, _ in TABLE3_DIRECTIONS:
        assert result[key], (key, cmp.rows())

    # magnitudes: context switches and page faults explode under clang
    assert cmp.ratio("context_switches") > 10   # paper: ~135x
    assert cmp.ratio("page_faults") > 10        # paper: ~104x
    assert cmp.ratio("instructions") > 2        # paper: ~9x

    # the timing claim: clang slower by >= the beta threshold
    clang = case2.record_for("clang")
    intel = case2.record_for("intel")
    assert clang.time_us / intel.time_us >= 1.5
