"""Table II — perf counters for Case Study 1 (GCC binary is fast).

Paper (Intel vs GCC on a critical-section-heavy test where the GCC
binary runs 80 % faster):

    Counters          Intel        GCC
    context-switches    232          10
    cpu-migrations       96           0
    page-faults         627         226
    cycles        110,520,780  154,797,061
    instructions   85,366,729   60,084,059
    branches       20,832,349   20,582,275
    branch-misses     182,300      67,406

The claim is directional: the KMP queuing lock spins and reschedules
(more context switches, migrations, instructions and misses on Intel)
while libgomp parks on a futex.  This bench regenerates the comparison
from a found GCC-fast outlier and asserts every direction.
"""

from __future__ import annotations

from repro.analysis.perfstats import TABLE2_DIRECTIONS, check_directions
from repro.driver.execution import run_binary


def test_table2_counters_gcc_fast_case(benchmark, case1, paper_cfg):
    from repro.vendors import compile_binary
    from repro.core.inputs import InputGenerator

    # bench cost: one profiled run of the case-study test on Intel
    inputs = InputGenerator(paper_cfg.generator, seed=paper_cfg.seed + 1)
    inp = inputs.generate(case1.program, 0)
    intel_binary = compile_binary(case1.program, "intel",
                                  paper_cfg.opt_level)
    benchmark.pedantic(
        lambda: run_binary(intel_binary, inp, paper_cfg.machine,
                           collect_profile=True),
        rounds=3, iterations=1)

    cmp = case1.comparison  # oriented (intel left, gcc right)
    print()
    print(cmp.render("Table II analogue — " + case1.note))

    # flip to (gcc, intel) so directions read intel/gcc like the paper
    flipped = type(cmp)(cmp.program_name, cmp.input_index, "gcc", "intel",
                        cmp.right, cmp.left)
    result = check_directions(flipped, TABLE2_DIRECTIONS)
    for key in ("context_switches", "cpu_migrations", "instructions",
                "branch_misses", "page_faults"):
        assert result[key], (key, flipped.rows())

    # magnitude checks: the paper's ratios are order-of-magnitude
    assert flipped.ratio("context_switches") > 5   # paper: 23x
    assert flipped.ratio("cpu_migrations") > 5     # paper: 96 vs 0

    # and the timing claim itself: GCC fast by >= the beta threshold
    gcc = case1.record_for("gcc")
    intel = case1.record_for("intel")
    assert intel.time_us / gcc.time_us >= 1.5
