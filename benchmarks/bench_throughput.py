"""Per-stage throughput profiling + the 20% regression gate.

Profiles each stage of the generate -> lower -> execute -> verdict hot
path on the reference campaign grid, measures end-to-end serial
throughput, and writes ``BENCH_throughput.json`` at the repo root.  The
checked-in copy of that file is the **baseline**: ``--check`` re-runs
the benchmark and fails (exit 1) if end-to-end throughput regressed more
than 20% against it.

Cross-host comparability: absolute tests/s moves with the host, so the
gate compares *normalized* throughput — ``tests_per_s x calibration_s``,
where ``calibration_s`` times a fixed pure-Python spin on the same
machine moments before the measurement.  A 2x-slower host halves both
factors' movement and the product stays put; a real hot-path regression
moves only ``tests_per_s``.

Usage::

    python benchmarks/bench_throughput.py            # full grid, write
    python benchmarks/bench_throughput.py --quick    # CI-sized grid
    python benchmarks/bench_throughput.py --quick --check   # + gate

Environment: ``REPRO_BENCH_THROUGHPUT_PROGRAMS`` overrides the full grid
size (default 50); the quick grid is fixed at 10 so CI baselines stay
comparable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.analysis.outliers import analyze_test
from repro.config import CampaignConfig
from repro.core.generator import ProgramGenerator
from repro.core.inputs import InputGenerator
from repro.driver.execution import run_binary
from repro.harness.session import CampaignSession
from repro.sim import backend_info
from repro.sim.backend import _c_available, use_kernel_backend
from repro.sim.kcache import KernelCache
from repro.sim.values import native_values_active
from repro.vendors.toolchain import compile_binary

SEED = 20240915  # the seed every reported number in EXPERIMENTS.md uses
FULL_PROGRAMS = int(os.environ.get("REPRO_BENCH_THROUGHPUT_PROGRAMS", "50"))
QUICK_PROGRAMS = 10
REGRESSION_THRESHOLD = 0.20

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_throughput.json"


def calibrate() -> float:
    """Seconds for a fixed pure-Python spin — the host-speed yardstick."""
    t0 = time.perf_counter()
    acc = 0.0
    for i in range(1_500_000):
        acc += (i % 7) * 0.5
    _ = acc
    return time.perf_counter() - t0


def profile_stages(cfg: CampaignConfig) -> dict:
    """Wall time of each pipeline stage over the grid, run in isolation.

    Stage sums exceed the end-to-end wall because the end-to-end path
    interleaves and shares work (e.g. one generation feeds both the
    race filter and compilation); the per-stage numbers are for spotting
    *which* stage moved, not for adding up.
    """
    gen = ProgramGenerator(cfg.generator, seed=cfg.seed)
    inputs = InputGenerator(cfg.generator, seed=cfg.seed + 1)

    t0 = time.perf_counter()
    programs = [gen.generate(i) for i in range(cfg.n_programs)]
    t_generate = time.perf_counter() - t0

    cold_cache = KernelCache()
    mark = cold_cache.snapshot()
    t0 = time.perf_counter()
    binaries = {}
    for p in programs:
        binaries[p.name] = [compile_binary(p, name, cfg.opt_level,
                                           cache=cold_cache)
                            for name in cfg.compilers]
    t_lower_cold = time.perf_counter() - t0
    cache_cold = cold_cache.snapshot().since(mark).as_dict()

    mark = cold_cache.snapshot()
    t0 = time.perf_counter()
    for p in programs:
        for name in cfg.compilers:
            compile_binary(p, name, cfg.opt_level, cache=cold_cache)
    t_lower_warm = time.perf_counter() - t0
    cache_warm = cold_cache.snapshot().since(mark).as_dict()

    t0 = time.perf_counter()
    all_records = []
    for p in programs:
        batch = [inputs.generate(p, j)
                 for j in range(cfg.inputs_per_program)]
        for t_input in batch:
            all_records.append([run_binary(b, t_input, cfg.machine)
                                for b in binaries[p.name]])
    t_execute = time.perf_counter() - t0

    t0 = time.perf_counter()
    for records in all_records:
        analyze_test(records, cfg.outliers)
    t_verdict = time.perf_counter() - t0

    return {
        "generate_s": round(t_generate, 3),
        "lower_cold_s": round(t_lower_cold, 3),
        "lower_warm_s": round(t_lower_warm, 3),
        "execute_s": round(t_execute, 3),
        "verdict_s": round(t_verdict, 3),
        "cache": cold_cache.stats().as_dict(),
        # per-stage deltas (snapshot/since), not totals: the cold pass
        # must read all-miss, the warm pass all-hit — a regression in
        # either shows up here without cross-stage smearing
        "cache_lower_cold": cache_cold,
        "cache_lower_warm": cache_warm,
    }


def backend_sweep(cfg: CampaignConfig) -> dict:
    """Warm execute-only throughput (runs/s) of each kernel backend on
    the same grid, plus the compiled backend's speedup over interp.

    Entry binding (including any C shared-object builds) happens before
    the clock starts: the sweep measures steady-state execution, which
    is what a long campaign amortizes to.
    """
    gen = ProgramGenerator(cfg.generator, seed=cfg.seed)
    inputs = InputGenerator(cfg.generator, seed=cfg.seed + 1)
    programs = [gen.generate(i) for i in range(cfg.n_programs)]
    grid = []
    for p in programs:
        bins = [compile_binary(p, name, cfg.opt_level)
                for name in cfg.compilers]
        for j in range(cfg.inputs_per_program):
            t_input = inputs.generate(p, j)
            grid.extend((b, t_input) for b in bins)

    backends = ["interp", "vm"] + (["c"] if _c_available()[0] else [])
    runs_per_s = {}
    for backend in backends:
        with use_kernel_backend(backend):
            for b, _ in grid:
                b.reset_entry()
                _ = b.entry  # bind (and build) outside the clock
            t0 = time.perf_counter()
            for b, t_input in grid:
                run_binary(b, t_input, cfg.machine)
            wall = time.perf_counter() - t0
        runs_per_s[backend] = round(len(grid) / wall, 2)
        for b, _ in grid:
            b.reset_entry()
    out = {"runs_per_s": runs_per_s}
    if "c" in runs_per_s:
        out["c_speedup_vs_interp"] = round(
            runs_per_s["c"] / runs_per_s["interp"], 2)
    return out


def run_profile(n_programs: int) -> dict:
    cfg = CampaignConfig(n_programs=n_programs, inputs_per_program=3,
                         seed=SEED)
    calibration_s = calibrate()
    stages = profile_stages(cfg)
    backends = backend_sweep(cfg)
    t0 = time.perf_counter()
    result = CampaignSession(cfg).run()
    wall = time.perf_counter() - t0
    tests_per_s = len(result.verdicts) / wall
    return {
        "grid": {
            "n_programs": cfg.n_programs,
            "inputs_per_program": cfg.inputs_per_program,
            "compilers": list(cfg.compilers),
            "total_runs": cfg.total_runs,
            "seed": cfg.seed,
        },
        "calibration_s": round(calibration_s, 4),
        "stages": stages,
        "kernel_backends": backends,
        "end_to_end": {
            "wall_s": round(wall, 3),
            "tests_per_s": round(tests_per_s, 2),
            "normalized": round(tests_per_s * calibration_s, 4),
        },
        "native_values": native_values_active(),
        "backend_info": backend_info(),
    }


def check_regression(current: dict, baseline: dict,
                     threshold: float = REGRESSION_THRESHOLD
                     ) -> tuple[bool, str]:
    """(ok, message): does ``current`` hold the line against ``baseline``?

    Both dicts are single-profile results (see :func:`run_profile`).
    Normalized throughput (tests/s x host calibration seconds) must not
    drop more than ``threshold``; grids must match for the comparison to
    mean anything.
    """
    if current["grid"] != baseline["grid"]:
        return False, (f"grid mismatch: current {current['grid']} vs "
                       f"baseline {baseline['grid']}")
    cur = current["end_to_end"]["normalized"]
    base = baseline["end_to_end"]["normalized"]
    if base <= 0:
        return False, f"baseline normalized throughput is {base}"
    floor = base * (1.0 - threshold)
    ratio = cur / base
    msg = (f"normalized throughput {cur:.4f} vs baseline {base:.4f} "
           f"({ratio:.2%}); floor at -{threshold:.0%} is {floor:.4f}")
    return cur >= floor, msg


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help=f"CI-sized grid ({QUICK_PROGRAMS} programs) "
                         f"instead of the full {FULL_PROGRAMS}")
    ap.add_argument("--check", action="store_true",
                    help="gate against the checked-in baseline "
                         "(exit 1 on >20%% regression)")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_OUT,
                    help="baseline JSON for --check (default: the "
                         "checked-in BENCH_throughput.json)")
    ap.add_argument("--out", type=Path, default=None,
                    help="where to write results (default: the baseline "
                         "path itself, i.e. refresh BENCH_throughput.json)")
    ap.add_argument("--telemetry", action="store_true",
                    help="run with the metrics registry and pipeline "
                         "spans enabled — proves enabled-telemetry "
                         "overhead stays inside the regression gate")
    args = ap.parse_args(argv)

    if args.telemetry:
        from repro import obs

        obs.enable(True)
        print("bench_throughput: telemetry ENABLED for this run",
              file=sys.stderr)

    profile_name = "quick" if args.quick else "full"
    n = QUICK_PROGRAMS if args.quick else FULL_PROGRAMS

    print(f"bench_throughput: {profile_name} grid ({n} programs x 3 "
          f"inputs x 3 compilers)", file=sys.stderr)
    current = run_profile(n)
    e2e = current["end_to_end"]
    print(f"  end-to-end: {e2e['wall_s']}s, {e2e['tests_per_s']} tests/s "
          f"(normalized {e2e['normalized']})", file=sys.stderr)
    for k, v in current["stages"].items():
        if not k.startswith("cache"):
            print(f"  {k:>14}: {v}s", file=sys.stderr)
    sweep = current["kernel_backends"]
    print(f"  kernel backends (runs/s): {sweep['runs_per_s']}"
          + (f", c speedup {sweep['c_speedup_vs_interp']}x"
             if "c_speedup_vs_interp" in sweep else ""), file=sys.stderr)

    ok = True
    if args.check:
        if not args.baseline.exists():
            print(f"  no baseline at {args.baseline}; nothing to gate "
                  f"against", file=sys.stderr)
        else:
            doc = json.loads(args.baseline.read_text())
            base = doc.get(profile_name)
            if base is None:
                print(f"  baseline lacks a {profile_name!r} profile; "
                      f"run without --check to create it", file=sys.stderr)
                ok = False
            else:
                ok, msg = check_regression(current, base)
                verdict = "OK" if ok else "REGRESSION"
                print(f"  gate: {verdict} — {msg}", file=sys.stderr)

    out_path = args.out if args.out is not None else args.baseline
    doc = {}
    if out_path.exists():
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc["bench"] = "throughput"
    doc[profile_name] = current
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"  written to {out_path}", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
