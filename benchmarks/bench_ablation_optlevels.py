"""Ablation — optimization levels.

The paper compiles everything at -O3.  Two design consequences are worth
regenerating: (1) timing scales with the optimization level, (2) FMA
contraction — the compiler-half divergence mechanism — only exists at
-O2 and above, so the GCC-vs-LLVM numeric divergence disappears at -O1.
"""

from __future__ import annotations

from repro.config import CampaignConfig
from repro.core.generator import ProgramGenerator
from repro.core.inputs import InputGenerator
from repro.driver.execution import run_binary
from repro.driver.records import values_equal
from repro.vendors import compile_binary

LEVELS = ("-O0", "-O1", "-O2", "-O3")
CFG = CampaignConfig(seed=20240915)


def test_opt_level_timing_and_divergence(benchmark):
    gen = ProgramGenerator(CFG.generator, seed=CFG.seed)
    inputs = InputGenerator(CFG.generator, seed=CFG.seed + 1)

    def sweep():
        rows = []
        for i in range(8):
            program = gen.generate(i)
            inp = inputs.generate(program, 0)
            times = {}
            values = {}
            for lvl in LEVELS:
                rec = run_binary(compile_binary(program, "gcc", lvl), inp,
                                 CFG.machine)
                times[lvl] = rec.time_us
                values[lvl] = rec.comp
            diverged = {}
            for lvl in LEVELS:
                g = run_binary(compile_binary(program, "gcc", lvl), inp,
                               CFG.machine).comp
                c = run_binary(compile_binary(program, "clang", lvl), inp,
                               CFG.machine).comp
                diverged[lvl] = not values_equal(g, c)
            rows.append((program.name, times, diverged))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("optimization-level sweep (gcc timing; gcc-vs-clang divergence):")
    n_div = {lvl: 0 for lvl in LEVELS}
    for name, times, diverged in rows:
        marks = " ".join(f"{lvl}:{times[lvl]:.0f}us{'*' if diverged[lvl] else ''}"
                         for lvl in LEVELS)
        print(f"  {name}: {marks}")
        for lvl in LEVELS:
            n_div[lvl] += diverged[lvl]
    print(f"  divergent programs per level: "
          f"{ {lvl: n_div[lvl] for lvl in LEVELS} }")

    # timing: -O0 must be slowest, -O3 fastest, monotone in between
    for _, times, _ in rows:
        assert times["-O0"] > times["-O2"] > 0
        assert times["-O0"] >= times["-O1"] >= times["-O2"] >= times["-O3"]

    # divergence mechanism only exists where contraction is on
    assert n_div["-O0"] == 0
    assert n_div["-O1"] == 0
    assert n_div["-O3"] >= n_div["-O1"]
