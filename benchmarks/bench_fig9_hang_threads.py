"""Figures 8-9 — the Intel hang: GDB backtrace and thread-state groups.

Paper: after SIGINT-ing the hung Intel binary, all 32 threads sit inside
``__kmpc_critical_with_hint`` -> ``__kmp_acquire_queuing_lock...``,
grouped into three states: ``__kmp_wait_4``, ``__kmp_eq_4`` and
``sched_yield``.  The GCC and Clang binaries finish in milliseconds.
"""

from __future__ import annotations

from repro.analysis.threadstate import (
    render_backtrace,
    render_thread_groups,
    thread_groups,
)
from repro.driver.records import RunStatus


def test_fig9_thread_states(benchmark, case3):
    intel = case3.record_for("intel")
    benchmark(lambda: thread_groups(intel))

    print()
    print(render_backtrace(intel))
    print()
    print(render_thread_groups(intel))

    assert intel.status is RunStatus.HANG
    groups = thread_groups(intel)

    # Fig. 9: the whole 32-thread team is stuck, in exactly three states
    assert sum(g.size for g in groups) == case3.program.num_threads == 32
    states = {g.state for g in groups}
    assert "__kmp_eq_4" in states
    assert "sched_yield" in states
    assert any("wait" in s for s in states)

    # Fig. 8: the backtrace walks the queuing-lock acquisition chain
    bt = render_backtrace(intel)
    assert "__kmpc_critical_with_hint" in bt
    assert "__kmp_acquire_queuing_lock" in bt

    # the sibling binaries finish quickly (paper: "a few milliseconds")
    for vendor in ("gcc", "clang"):
        rec = case3.record_for(vendor)
        assert rec.status is RunStatus.OK
        assert rec.time_us < intel.time_us / 10


def test_fig9_hang_is_input_reproducible(benchmark, case3, paper_cfg):
    """Re-running the same binary+input hangs again — the trigger is a
    deterministic function of the test, as a released dataset requires."""
    import dataclasses

    from repro.core.inputs import InputGenerator
    from repro.driver.execution import run_binary
    from repro.vendors import compile_binary

    binary = compile_binary(case3.program, "intel", paper_cfg.opt_level)
    if not binary.hang_armed:
        binary = dataclasses.replace(binary, hang_armed=True)
    inputs = InputGenerator(paper_cfg.generator, seed=paper_cfg.seed + 1)
    inp = inputs.generate(case3.program, 0)

    rec = benchmark.pedantic(
        lambda: run_binary(binary, inp, paper_cfg.machine),
        rounds=2, iterations=1)
    assert rec.status is RunStatus.HANG
