"""Figure 1 — the end-to-end differential pipeline.

(a) generate program+input -> (b) compile with every implementation ->
(c) run all binaries -> (d) compare results & find anomalies.

This bench times each stage separately and the pipeline as a whole, so
regressions in any stage are visible.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_test
from repro.config import CampaignConfig
from repro.core.generator import ProgramGenerator
from repro.core.inputs import InputGenerator
from repro.driver import run_differential
from repro.vendors import compile_all

CFG = CampaignConfig(seed=20240915)


@pytest.fixture(scope="module")
def pipeline_pieces():
    gen = ProgramGenerator(CFG.generator, seed=CFG.seed)
    inputs = InputGenerator(CFG.generator, seed=CFG.seed + 1)
    program = gen.generate(0)
    test_input = inputs.generate(program, 0)
    binaries = compile_all(program, CFG.compilers, CFG.opt_level)
    records = run_differential(binaries, test_input, CFG.machine)
    return gen, inputs, program, test_input, binaries, records


def test_stage_a_generation(benchmark):
    gen = ProgramGenerator(CFG.generator, seed=CFG.seed)
    counter = iter(range(10**9))
    program = benchmark(lambda: gen.generate(next(counter)))
    assert program.params


def test_stage_b_compilation(benchmark, pipeline_pieces):
    _, _, program, _, _, _ = pipeline_pieces
    binaries = benchmark(lambda: compile_all(program, CFG.compilers,
                                             CFG.opt_level))
    assert len(binaries) == 3


def test_stage_c_execution(benchmark, pipeline_pieces):
    _, _, _, test_input, binaries, _ = pipeline_pieces
    records = benchmark.pedantic(
        lambda: run_differential(binaries, test_input, CFG.machine),
        rounds=5, iterations=1)
    assert all(r.time_us >= 0 for r in records)


def test_stage_d_comparison(benchmark, pipeline_pieces):
    _, _, _, _, _, records = pipeline_pieces
    verdict = benchmark(lambda: analyze_test(records, CFG.outliers))
    assert verdict.records


def test_full_pipeline(benchmark):
    gen = ProgramGenerator(CFG.generator, seed=CFG.seed)
    inputs = InputGenerator(CFG.generator, seed=CFG.seed + 1)

    def pipeline(index: int = 0):
        program = gen.generate(index)
        test_input = inputs.generate(program, 0)
        binaries = compile_all(program, CFG.compilers, CFG.opt_level)
        records = run_differential(binaries, test_input, CFG.machine)
        return analyze_test(records, CFG.outliers)

    verdict = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert len(verdict.records) == 3
    print()
    print(f"pipeline verdict for {verdict.program_name}: "
          f"{[f'{r.vendor}:{r.time_us:.0f}us' for r in verdict.records]} "
          f"outliers={[str(o) for o in verdict.outliers]}")
