"""Figures 2-4 / Listing 2 — grammar coverage and generation parameters.

Fig. 2 shows how MAX_EXPRESSION_SIZE / MAX_NESTING_LEVELS /
MAX_LINES_IN_BLOCK bound the generated code; Figs. 3-4 show if-block and
OpenMP-block expansions.  This bench measures generation throughput and
verifies the generator exercises every production the paper illustrates:
if-blocks, nested loops, OpenMP blocks with private/firstprivate/
reduction clauses, critical sections, and thread-id array writes.
"""

from __future__ import annotations

from collections import Counter

from repro.config import GeneratorConfig
from repro.core.features import extract_features
from repro.core.generator import ProgramGenerator
from repro.core.grammar import check_conformance
from repro.core.nodes import (
    IfBlock,
    MathCall,
    OmpCritical,
    OmpParallel,
    walk,
)

CFG = GeneratorConfig()  # the paper's Section V-A parameters
N = 60


def test_generation_throughput_and_coverage(benchmark):
    gen = ProgramGenerator(CFG, seed=20240915)
    counter = iter(range(10**9))
    benchmark(lambda: gen.generate(next(counter)))

    # coverage sweep over a fixed window
    sweep = ProgramGenerator(CFG, seed=20240915)
    hits: Counter[str] = Counter()
    for i in range(N):
        p = sweep.generate(i)
        check_conformance(p)  # 100% grammar conformance
        f = extract_features(p)
        hits["if"] += f.n_if_blocks > 0
        hits["loop"] += f.n_loops > 0
        hits["omp"] += f.n_parallel_regions > 0
        hits["omp_for"] += f.n_omp_for > 0
        hits["critical"] += f.n_critical > 0
        hits["reduction"] += f.n_reductions > 0
        hits["tid_write"] += f.writes_tid_arrays
        hits["math"] += f.n_math_calls > 0
        hits["pisl"] += f.parallel_in_serial_loop > 0
        hits["double"] += f.uses_double
        hits["float"] += not f.uses_double

    print()
    print(f"feature coverage over {N} programs (Section V-A config):")
    for key in sorted(hits):
        print(f"  {key:<10} {hits[key]:>3}/{N}")

    # every production the paper's figures show is exercised
    assert hits["if"] >= N * 0.8
    assert hits["loop"] == N
    assert hits["omp"] >= N * 0.8
    assert hits["omp_for"] >= N * 0.6
    assert hits["critical"] >= N * 0.25
    assert hits["reduction"] >= N * 0.15
    assert hits["tid_write"] >= N * 0.3
    assert hits["double"] > 0 and hits["float"] > 0
    # the Listing-1 / Case-Study-2 pattern occurs but is rare
    assert 0 < hits["pisl"] <= N * 0.25


def test_parameter_limits_visible_in_output(benchmark):
    """Fig. 2's annotations: expression size, nesting, and block length
    are bounded by the configured limits."""
    small = GeneratorConfig(max_expression_size=2, max_nesting_levels=2,
                            max_lines_in_block=3, max_total_iterations=3000,
                            loop_trip_max=40, num_threads=8)
    gen = ProgramGenerator(small, seed=7)
    counter = iter(range(10**9))
    benchmark(lambda: gen.generate(next(counter)))

    from repro.core.nodes import BinOp, Block

    for i in range(20):
        p = gen.generate(i)
        for node in walk(p):
            if isinstance(node, BinOp):
                ops = sum(1 for n in walk(node) if isinstance(n, BinOp))
                assert ops <= small.max_expression_size + 1
