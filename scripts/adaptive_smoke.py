#!/usr/bin/env python
"""CI adaptive smoke: feedback-directed campaigns must stay deterministic.

Three legs, all on small paper-mix grids:

1. **Rerun determinism** — a seeded ``--source adaptive`` campaign run
   twice must plan the same specs, emit byte-identical program sources,
   and produce identical verdict streams.
2. **Pinned leg** — the default (random) source must remain
   byte-identical to the historical ``ProgramGenerator`` stream: same
   emitted sources, same campaign key, no ``program_source`` key in the
   serialized config.
3. **Coverage leg** — at equal program count the adaptive campaign must
   cover strictly more distinct (directive-vector, shape-fingerprint)
   pairs than the random baseline, measured through the result store
   exactly as ``repro-omp query --coverage`` reports it.

Exit status 0 on success; 1 with a diagnostic on any violated assertion.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import (  # noqa: E402
    CampaignConfig,
    GeneratorConfig,
    campaign_to_json,
)
from repro.codegen.emit_main import emit_translation_unit  # noqa: E402
from repro.core.generator import ProgramGenerator  # noqa: E402
from repro.corpus import (  # noqa: E402
    RandomSource,
    materialize_spec,
    plan_specs,
)
from repro.fleet import ResultStore  # noqa: E402
from repro.fleet.store import campaign_key  # noqa: E402
from repro.harness.session import CampaignSession  # noqa: E402

#: identity of the default CampaignConfig, pinned before program sources
#: existed — moves only if campaign identity itself changes
PINNED_DEFAULT_KEY = "c677e61cba706"


def identity_stream(result):
    return [v.identity() for v in result.verdicts]


def source_stream(cfg):
    return [emit_translation_unit(materialize_spec(cfg, s))
            for s in plan_specs(cfg)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--programs", type=int, default=8)
    parser.add_argument("--inputs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=777)
    args = parser.parse_args(argv)

    gen = GeneratorConfig(max_total_iterations=4000, loop_trip_max=60,
                          num_threads=8)
    random_cfg = CampaignConfig(n_programs=args.programs,
                                inputs_per_program=args.inputs,
                                seed=args.seed, generator=gen,
                                directive_mix="paper")
    adaptive_cfg = dataclasses.replace(random_cfg,
                                       program_source="adaptive")
    failures = []

    # leg 1: rerun determinism of the adaptive source
    specs_a, specs_b = plan_specs(adaptive_cfg), plan_specs(adaptive_cfg)
    if specs_a != specs_b:
        failures.append("adaptive plan differs across reruns")
    srcs_a, srcs_b = source_stream(adaptive_cfg), source_stream(adaptive_cfg)
    if srcs_a != srcs_b:
        failures.append("adaptive program sources differ across reruns")
    run_a = CampaignSession(adaptive_cfg, engine="serial").run()
    run_b = CampaignSession(adaptive_cfg, engine="serial").run()
    if identity_stream(run_a) != identity_stream(run_b):
        failures.append("adaptive verdict streams differ across reruns")
    digest = hashlib.sha256("".join(srcs_a).encode()).hexdigest()[:12]
    mutants = sum(1 for s in specs_a if s.op is not None)
    print(f"adaptive: {len(specs_a)} specs ({mutants} mutant(s)), "
          f"source digest {digest}, rerun identical="
          f"{'yes' if not failures else 'NO'}")

    # leg 2: the pinned default-source stream
    legacy = ProgramGenerator(random_cfg.generator, seed=random_cfg.seed)
    random_source = RandomSource(random_cfg)
    for i in range(random_cfg.n_programs):
        via_source = emit_translation_unit(
            materialize_spec(random_cfg, random_source.spec(i)))
        via_legacy = emit_translation_unit(legacy.generate(i))
        if via_source != via_legacy:
            failures.append(f"random source diverged from the historical "
                            f"stream at index {i}")
            break
    if campaign_key(CampaignConfig()) != PINNED_DEFAULT_KEY:
        failures.append("default campaign key moved: "
                        f"{campaign_key(CampaignConfig())}")
    if "program_source" in campaign_to_json(CampaignConfig()):
        failures.append("default config JSON grew a program_source key")
    print(f"pinned leg: default key {campaign_key(CampaignConfig())}, "
          f"paper-mix stream byte-identical through RandomSource")

    # leg 3: adaptive must out-cover random at equal program count
    with tempfile.TemporaryDirectory() as tmp:
        with ResultStore(Path(tmp) / "adaptive-smoke.db") as store:
            cids = {}
            for name, cfg in (("random", random_cfg),
                              ("adaptive", adaptive_cfg)):
                session = CampaignSession(cfg, engine="serial")
                session.run()
                cids[name], _ = store.record_session(session)
            random_cov = store.coverage(cids["random"])
            adaptive_cov = store.coverage(cids["adaptive"])
    print(f"coverage: random {random_cov['distinct_pairs']} pair(s), "
          f"adaptive {adaptive_cov['distinct_pairs']} pair(s) over "
          f"{adaptive_cov['programs']} program(s) each")
    if random_cov["programs"] != adaptive_cov["programs"]:
        failures.append("coverage legs ran unequal program counts")
    if adaptive_cov["distinct_pairs"] <= random_cov["distinct_pairs"]:
        failures.append(
            f"adaptive covered {adaptive_cov['distinct_pairs']} pair(s), "
            f"random covered {random_cov['distinct_pairs']} — no gain")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("adaptive smoke: deterministic reruns, pinned default stream, "
          "strict coverage gain")
    return 0


if __name__ == "__main__":
    sys.exit(main())
