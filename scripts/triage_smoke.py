#!/usr/bin/env python
"""CI triage smoke: injected vendor fault -> campaign -> triage -> assert.

Registers a deterministic structural fault (crash on ``omp atomic``) on
a wrapped simulated vendor, runs a small ``sync``-mix campaign against
it, triages the outliers, and asserts the contract the triage subsystem
exists to honor: at least one bug bucket whose exemplar is a genuinely
*reduced* reproducer that still carries the faulting construct.  The
reproducer bundles land in ``--out`` for artifact upload.

Exit status 0 on success; 1 with a diagnostic on any violated assertion.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends import InjectedFault, register_fault_backend  # noqa: E402
from repro.config import CampaignConfig, GeneratorConfig  # noqa: E402
from repro.harness.session import CampaignSession  # noqa: E402
from repro.reduce.bundle import write_triage_artifacts  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="triage-smoke",
                        help="bundle output directory (CI artifact)")
    parser.add_argument("--programs", type=int, default=10)
    parser.add_argument("--seed", type=int, default=4242)
    args = parser.parse_args(argv)

    register_fault_backend(
        "intel", InjectedFault(kind="crash", trigger="n_atomic"),
        name="smoke-buggy", replace=True)
    gen = GeneratorConfig(max_total_iterations=1500, loop_trip_max=30,
                          num_threads=8)
    cfg = CampaignConfig(n_programs=args.programs, inputs_per_program=1,
                         seed=args.seed, generator=gen, directive_mix="sync",
                         compilers=("gcc", "clang", "smoke-buggy"))

    session = CampaignSession(cfg)
    session.run()
    injected = [c for c in session.outlier_coordinates()
                if c[2] == "smoke-buggy" and c[3] == "crash"]
    if not injected:
        print("FAIL: the injected fault produced no outliers "
              f"(grid seed {args.seed}, {args.programs} programs)")
        return 1
    print(f"campaign flagged {len(injected)} injected-fault outlier(s)")

    report = session.triage()
    print(report.render())
    buckets = [b for b in report.buckets
               if b.vendor == "smoke-buggy" and b.kind == "crash"]
    if len(buckets) != 1:
        print(f"FAIL: expected exactly one injected-fault bucket, "
              f"got {len(buckets)}")
        return 1
    exemplar = buckets[0].exemplar
    if not exemplar.result.confirmed:
        print("FAIL: exemplar reduction was not confirmed")
        return 1
    if exemplar.result.reduced_statements >= \
            exemplar.result.original_statements:
        print(f"FAIL: exemplar was not reduced "
              f"({exemplar.result.original_statements} -> "
              f"{exemplar.result.reduced_statements} statements)")
        return 1
    if "atomic" not in exemplar.signature:
        print(f"FAIL: reduced exemplar lost the faulting construct "
              f"(signature {exemplar.signature})")
        return 1

    out = write_triage_artifacts(report, cfg, args.out)
    print(f"OK: bucket {buckets[0].signature}, exemplar "
          f"{exemplar.result.original_statements} -> "
          f"{exemplar.result.reduced_statements} statements "
          f"(x{exemplar.result.reduction_factor:.1f}); bundles in {out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
