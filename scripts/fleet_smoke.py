#!/usr/bin/env python
"""CI fleet smoke: coordinator + workers must reproduce serial exactly.

Runs a small paper-mix grid twice — once through ``SerialEngine`` and
once through a ``FleetCoordinator`` serving a socket queue to two
spawned worker processes recording into a SQLite result store — and
asserts the fleet subsystem's contract: every unit lands in the store,
the verdicts (including order within the campaign grid) are
byte-identical to the serial run, and the indexed store agrees with the
in-memory result on outlier counts.

Exit status 0 on success; 1 with a diagnostic on any violated assertion.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import CampaignConfig, GeneratorConfig  # noqa: E402
from repro.fleet import FleetCoordinator, ResultStore  # noqa: E402
from repro.harness.session import CampaignSession  # noqa: E402


def identity_stream(result):
    return [v.identity() for v in result.verdicts]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--programs", type=int, default=6)
    parser.add_argument("--inputs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    gen = GeneratorConfig(max_total_iterations=4000, loop_trip_max=60,
                          num_threads=8)
    cfg = CampaignConfig(n_programs=args.programs,
                         inputs_per_program=args.inputs, seed=args.seed,
                         generator=gen, directive_mix="paper")

    serial = CampaignSession(cfg, engine="serial").run()
    print(f"serial: {len(serial.verdicts)} verdicts, "
          f"{sum(len(v.outliers) for v in serial.verdicts)} outlier(s)")

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "fleet-smoke.db")
        try:
            with FleetCoordinator(cfg, store=store) as coord:
                address = coord.serve()
                print(f"coordinator on {address[0]}:{address[1]}, "
                      f"spawning {args.workers} worker(s)")
                coord.spawn_workers(args.workers)
                fleet = coord.wait(timeout=args.timeout)
            cid = coord.campaign_id
            stored_units = len(store.completed_indices(cid))
            stored_verdicts = store.verdict_count(cid)
            stored_outliers = len(store.query(campaign=cid))
        finally:
            store.close()

    failures = []
    if stored_units != cfg.n_programs:
        failures.append(f"store holds {stored_units}/{cfg.n_programs} units")
    if stored_verdicts != len(serial.verdicts):
        failures.append(f"store holds {stored_verdicts} verdicts, "
                        f"serial produced {len(serial.verdicts)}")
    if identity_stream(fleet) != identity_stream(serial):
        failures.append("fleet verdict stream differs from serial")
    if fleet.race_filtered != serial.race_filtered:
        failures.append("race-filtered sets differ")
    # the store's outlier rows are the verdict outliers plus synthetic
    # `comp` rows for divergent-output minorities — never fewer
    direct = sum(len(v.outliers) for v in serial.verdicts)
    if stored_outliers < direct:
        failures.append(f"store indexed {stored_outliers} outlier rows, "
                        f"verdicts carry {direct}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"fleet == serial: {len(fleet.verdicts)} verdicts identical, "
          f"{stored_outliers} outlier row(s) indexed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
