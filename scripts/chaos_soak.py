#!/usr/bin/env python
"""CI chaos soak: the fleet must survive a seeded fault barrage intact.

Runs a small paper-mix grid twice — once serially, once under a
supervised fleet wrapped in a :class:`repro.fleet.chaos.ChaosPlan` that
guarantees, by schedule:

* >= 2 worker kills (SIGKILL-style: no cleanup, leases recovered by
  expiry),
* >= 1 mid-campaign coordinator crash with restart-from-store,
* >= 1 store write fault plus >= 1 torn append (healed on replay),
* seeded transport drops, severed replies, duplicated calls, delays.

It then asserts the robustness contract: the campaign *finishes*, the
verdicts are byte-identical to the serial run, every unit is persisted
in the store, and each scheduled fault class actually fired (a chaos
run whose faults silently didn't fire proves nothing).

Exit status 0 on success; 1 with a diagnostic on any violated assertion.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import CampaignConfig, GeneratorConfig  # noqa: E402
from repro.fleet import ChaosPlan, ResultStore, run_chaos_campaign  # noqa: E402
from repro.harness.session import CampaignSession  # noqa: E402


def identity_stream(result):
    return [v.identity() for v in result.verdicts]


def build_plan(seed: int, quick: bool) -> ChaosPlan:
    return ChaosPlan(
        seed=seed,
        # transport: seeded background noise on every worker connection
        drop_rate=0.02,
        drop_after_rate=0.02,
        duplicate_rate=0.05,
        delay_rate=0.05,
        delay_s=0.002 if quick else 0.01,
        # workers: both kills scheduled (one completion each, then die)
        crash_after_units=1,
        max_worker_crashes=2,
        # store: one refusal and one torn append at exact call indices
        store_fail_calls=(1,),
        store_torn_calls=(3,),
        # coordinator: incarnation 0 dies once 3 units are ingested
        coordinator_crash_after=(3,),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI sizing: smallest grid that still exercises "
                             "every scheduled fault")
    parser.add_argument("--seed", type=int, default=0,
                        help="chaos plan seed (campaign seed stays fixed)")
    parser.add_argument("--programs", type=int, default=None)
    parser.add_argument("--inputs", type=int, default=None)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    programs = args.programs or (6 if args.quick else 10)
    inputs = args.inputs or 2
    gen = GeneratorConfig(max_total_iterations=4000, loop_trip_max=60,
                          num_threads=8)
    cfg = CampaignConfig(n_programs=programs, inputs_per_program=inputs,
                         seed=1234, generator=gen, directive_mix="paper")
    plan = build_plan(args.seed, args.quick)

    serial = CampaignSession(cfg, engine="serial").run()
    print(f"serial: {len(serial.verdicts)} verdicts, "
          f"{sum(len(v.outliers) for v in serial.verdicts)} outlier(s)")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "chaos-soak.db"
        print(f"chaos plan seed {plan.seed}: {args.workers} worker(s), "
              f"scheduled kills={plan.max_worker_crashes}, "
              f"coordinator crash at {plan.coordinator_crash_after}, "
              f"store faults at fail{plan.store_fail_calls}/"
              f"torn{plan.store_torn_calls}")
        result, report = run_chaos_campaign(
            cfg, plan, store_path, workers=args.workers,
            timeout=args.timeout,
            status_path=Path(tmp) / "chaos-status.json")
        with ResultStore(store_path) as store:
            from repro.fleet.store import campaign_key
            cid = campaign_key(cfg)
            stored_units = len(store.completed_indices(cid))
            stored_verdicts = store.verdict_count(cid)

    print(f"report: {report}")

    failures = []
    if identity_stream(result) != identity_stream(serial):
        failures.append("chaos verdict stream differs from serial")
    if result.race_filtered != serial.race_filtered:
        failures.append("race-filtered sets differ")
    if stored_units != cfg.n_programs:
        failures.append(f"store holds {stored_units}/{cfg.n_programs} units")
    if stored_verdicts != len(serial.verdicts):
        failures.append(f"store holds {stored_verdicts} verdicts, "
                        f"serial produced {len(serial.verdicts)}")
    if report["worker_kills"] < 2:
        failures.append(f"only {report['worker_kills']} worker kill(s) "
                        f"fired (need >= 2)")
    if report["coordinator_crashes"] < 1:
        failures.append("no coordinator crash fired")
    if report["supervisor_restarts"] < 1:
        failures.append("supervisor never restarted the coordinator")
    if report["store_faults"].get("fail", 0) < 1:
        failures.append("no store write refusal fired")
    if report["store_faults"].get("torn", 0) < 1:
        failures.append("no torn store append fired")
    if report["store_buffered"]:
        failures.append(f"{report['store_buffered']} outcome(s) still "
                        f"buffered at soak end")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"chaos == serial: {len(result.verdicts)} verdicts identical "
          f"through {report['worker_kills']} kill(s), "
          f"{report['supervisor_restarts']} restart(s), "
          f"{sum(report['store_faults'].values())} store fault(s), "
          f"{sum(report['transport_faults'].values())} transport fault(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
