#!/usr/bin/env python
"""CI observability smoke: telemetry must observe everything, change nothing.

Four legs, all on small paper-mix grids:

1. **Byte-identity** — the reference campaign run twice through the CLI,
   once bare and once with ``--metrics-file`` + ``--trace-file``; every
   artifact byte (verdicts.jsonl, config.json, generated sources) must
   be identical, and the campaign key must stay at its pinned value.
2. **Exposition** — the metrics file written by the telemetry run must
   parse as Prometheus text and carry the key pipeline series; the trace
   must be valid JSONL covering the plan/materialize/compile/execute/
   verdict stages.
3. **Fleet aggregation** — a supervised two-worker run with a result
   store: the fleet-wide merged counters must reconcile exactly with
   the store (units, tests), and the status file must carry the current
   schema plus a telemetry summary.
4. **Chaos reconciliation** — the same grid under a seeded chaos plan
   (every mutator delivered twice, one store refusal): duplicates and
   retries must be *observed* without ever double-counting the ledger.

The trace and metrics files land in ``--out`` for artifact upload.
Exit status 0 on success; 1 with a diagnostic on any violated assertion.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.cli import main as cli_main  # noqa: E402
from repro.config import (  # noqa: E402
    CampaignConfig,
    GeneratorConfig,
    save_campaign,
)
from repro.fleet import ChaosPlan, ResultStore, run_chaos_campaign  # noqa: E402
from repro.fleet.store import campaign_key  # noqa: E402
from repro.fleet.supervisor import STATUS_SCHEMA  # noqa: E402
from repro.obs import metrics as m  # noqa: E402

PINNED_DEFAULT_KEY = "c677e61cba706"

KEY_SERIES = (
    "repro_units_total",
    "repro_tests_total",
    "repro_lower_total",
    "repro_queue_leases_total",
    "repro_queue_completions_total",
)

SPAN_STAGES = ("plan", "materialize", "compile", "execute", "verdict")


def fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def _tree_bytes(root: Path) -> dict[str, bytes]:
    return {str(p.relative_to(root)): p.read_bytes()
            for p in sorted(root.rglob("*")) if p.is_file()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="obs-smoke",
                        help="artifact directory (metrics + trace files)")
    parser.add_argument("--programs", type=int, default=6)
    parser.add_argument("--inputs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    gen = GeneratorConfig(max_total_iterations=4000, loop_trip_max=60,
                          num_threads=8)
    cfg = CampaignConfig(n_programs=args.programs,
                         inputs_per_program=args.inputs, seed=args.seed,
                         generator=gen, directive_mix="paper")
    cfg_path = out / "campaign-config.json"
    save_campaign(cfg, cfg_path)
    grid = ["--config", str(cfg_path), "--quiet"]

    # -- leg 1: byte-identity ------------------------------------------
    if campaign_key(CampaignConfig()) != PINNED_DEFAULT_KEY:
        return fail("pinned default campaign key moved — telemetry (or "
                    "something riding with it) leaked into identity")
    bare_dir, obs_dir = out / "artifacts-bare", out / "artifacts-obs"
    metrics_file = out / "campaign.prom"
    trace_file = out / "trace.jsonl"
    rc = cli_main(["campaign", *grid, "--out", str(bare_dir)])
    if rc != 0:
        return fail(f"bare campaign exited {rc}")
    rc = cli_main(["campaign", *grid, "--out", str(obs_dir),
                   "--metrics-file", str(metrics_file),
                   "--trace-file", str(trace_file)])
    if rc != 0:
        return fail(f"telemetry campaign exited {rc}")
    bare, instrumented = _tree_bytes(bare_dir), _tree_bytes(obs_dir)
    if bare.keys() != instrumented.keys():
        return fail(f"artifact sets differ: {sorted(bare) } vs "
                    f"{sorted(instrumented)}")
    differing = [name for name in bare if bare[name] != instrumented[name]]
    if differing:
        return fail(f"telemetry changed artifact bytes: {differing}")
    print(f"byte-identity: {len(bare)} artifact file(s) identical with "
          f"telemetry on")

    # -- leg 2: exposition + trace -------------------------------------
    parsed = m.parse_exposition(metrics_file.read_text())  # raises if bad
    for series in ("repro_units_total", "repro_tests_total"):
        hits = {k: v for k, v in parsed.items() if k.startswith(series)}
        if sum(hits.values()) <= 0:
            return fail(f"exposition lacks {series}: {sorted(parsed)[:10]}")
    total_tests = args.programs * args.inputs
    tests_seen = sum(v for k, v in parsed.items()
                     if k.startswith("repro_tests_total"))
    if tests_seen > total_tests:
        return fail(f"tests counter {tests_seen} exceeds grid "
                    f"{total_tests}")
    records = [json.loads(line)
               for line in trace_file.read_text().splitlines()]
    stages = {r["span"] for r in records}
    missing = [s for s in SPAN_STAGES if s not in stages]
    if missing:
        return fail(f"trace lacks span(s) {missing}; has {sorted(stages)}")
    print(f"exposition: {len(parsed)} series parsed; trace: "
          f"{len(records)} span record(s) across {len(stages)} stage(s)")

    # -- leg 3: fleet aggregation reconciles with the store ------------
    obs.reset()
    fleet_db = out / "fleet.db"
    status_file = out / "fleet-status.json"
    fleet_prom = out / "fleet.prom"
    rc = cli_main(["fleet", "supervise", "--config", str(cfg_path),
                   "--workers", "2", "--quiet",
                   "--store", str(fleet_db),
                   "--status-file", str(status_file),
                   "--metrics-file", str(fleet_prom)])
    if rc != 0:
        return fail(f"fleet supervise exited {rc}")
    status = json.loads(status_file.read_text())
    if status.get("schema") != STATUS_SCHEMA:
        return fail(f"status schema {status.get('schema')} != "
                    f"{STATUS_SCHEMA}")
    if "telemetry" not in status:
        return fail("status file lacks the telemetry summary")
    with ResultStore(fleet_db) as store:
        cid = campaign_key(cfg)
        snap = store.telemetry(cid)
        if snap is None:
            return fail(f"store holds no telemetry for campaign {cid}")
        completed = len(store.completed_indices(cid))
        verdicts = store.verdict_count(cid)
    pairs = (("repro_units_total", completed),
             ("repro_tests_total", verdicts),
             ("repro_queue_completions_total", completed))
    for series, want in pairs:
        got = m.total_counter(snap, series)
        if got != want:
            return fail(f"fleet {series}={got} but store says {want}")
    print(f"fleet: merged counters reconcile with store "
          f"({completed} unit(s), {verdicts} verdict(s))")

    # -- leg 4: chaos reconciliation -----------------------------------
    obs.reset()
    obs.enable(True)
    try:
        plan = ChaosPlan(seed=7, duplicate_rate=1.0, store_fail_calls=(0,))
        chaos_db = out / "chaos.db"
        result, report = run_chaos_campaign(cfg, plan, chaos_db, workers=2,
                                            timeout=args.timeout)
    finally:
        obs.enable(False)
    if report["store_faults"] != {"fail": 1}:
        return fail(f"chaos store fault did not fire: {report}")
    with ResultStore(chaos_db) as store:
        cid = campaign_key(cfg)
        snap = store.telemetry(cid)
        if snap is None:
            return fail("chaos run persisted no telemetry")
        completed = len(store.completed_indices(cid))
        verdicts = store.verdict_count(cid)
    checks = (("repro_queue_completions_total", completed),
              ("repro_units_total", completed),
              ("repro_tests_total", verdicts),
              ("repro_store_write_failures_total", 1))
    for series, want in checks:
        got = m.total_counter(snap, series)
        if got != want:
            return fail(f"chaos {series}={got}, expected {want}")
    if m.total_counter(snap, "repro_queue_duplicate_completions_total") < 1:
        return fail("duplicated completions were not observed")
    if len(result.verdicts) != verdicts:
        return fail(f"chaos result has {len(result.verdicts)} verdicts, "
                    f"store {verdicts}")
    print(f"chaos: duplicates and store refusal observed; ledger exact "
          f"({completed} unit(s), {verdicts} verdict(s))")

    print("obs smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
