"""Run records: the observable outcome of one binary execution.

Section IV-C labels each execution ``P_i^OK``, ``P_i^CRASH`` or
``P_i^HANG``; a record also carries the numerical output, the virtual
execution time (Section III-H measures microseconds around ``compute``),
the simulated perf counters, and optionally the symbol profile.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any

from ..sim.counters import PerfCounters
from ..sim.events import ProfileRecorder


class RunStatus(enum.Enum):
    OK = "OK"
    CRASH = "CRASH"
    HANG = "HANG"


@dataclass(slots=True)
class RunRecord:
    """Outcome of running one binary with one input."""

    program_name: str
    vendor: str
    input_index: int
    status: RunStatus
    comp: float | None
    time_us: float
    counters: PerfCounters = field(default_factory=PerfCounters)
    profile: ProfileRecorder | None = None
    detail: str = ""
    thread_states: dict[str, list[int]] | None = None

    @property
    def ok(self) -> bool:
        return self.status is RunStatus.OK

    def label(self) -> str:
        """``P_i^OK`` notation from Section IV-C."""
        return f"P_{self.vendor}^{self.status.value}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (profiles are summarized, not embedded)."""
        return {
            "program": self.program_name,
            "vendor": self.vendor,
            "input": self.input_index,
            "status": self.status.value,
            "comp": None if self.comp is None else repr(self.comp),
            "time_us": round(self.time_us, 3),
            "counters": self.counters.perf_row(),
            "detail": self.detail,
        }

    def to_row(self) -> dict[str, Any]:
        """Full-fidelity JSON row for checkpoint/resume round-trips.

        Unlike :meth:`to_dict` (a human-facing dataset row), this keeps
        every bit: ``comp`` as its ``repr`` (floats round-trip exactly
        through ``repr``/``float``), ``time_us`` unrounded, all counters,
        and the thread-state snapshot.  Profiles are not serialized — a
        resumed campaign re-runs nothing, so completed tests lose their
        (optional) profiles.
        """
        return {
            "program": self.program_name,
            "vendor": self.vendor,
            "input": self.input_index,
            "status": self.status.value,
            "comp": None if self.comp is None else repr(self.comp),
            "time_us": self.time_us,
            "counters": self.counters.as_dict(),
            "detail": self.detail,
            "thread_states": self.thread_states,
        }

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "RunRecord":
        """Rebuild a record written by :meth:`to_row`."""
        comp = row.get("comp")
        return cls(
            program_name=row["program"],
            vendor=row["vendor"],
            input_index=int(row["input"]),
            status=RunStatus(row["status"]),
            comp=None if comp is None else float(comp),
            time_us=float(row["time_us"]),
            counters=PerfCounters(**row.get("counters", {})),
            detail=row.get("detail", ""),
            thread_states=row.get("thread_states"),
        )


def values_equal(a: float | None, b: float | None) -> bool:
    """Output equality for differential comparison.

    Exact bit-for-bit agreement is required (differential testing compares
    printed ``%.17g`` values), except that two NaNs — of any payload —
    count as the same answer.
    """
    if a is None or b is None:
        return a is b
    if math.isnan(a) and math.isnan(b):
        return True
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)
