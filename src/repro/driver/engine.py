"""Execution engines: schedule the campaign grid serially or in parallel.

The campaign grid (``n_programs x inputs_per_program x len(compilers)``)
decomposes into independent *work units*.  A unit is one program with its
batch of inputs: the program is generated, race-filtered, compiled once
per backend (batched compilation — the expensive step is shared by every
input), then each input is executed on every backend and analyzed into a
:class:`~repro.analysis.outliers.TestVerdict`.

Units are described by **indices, not objects**: program generation is a
pure function of ``(config, index)`` (see
:class:`~repro.core.generator.ProgramGenerator`), so a
:class:`WorkUnit` pickles as two integers and a worker process rebuilds
everything it needs from the :class:`ExecutionPlan`.  That is what lets
the same unit run unchanged on all three engines:

* :class:`SerialEngine`       — in-order, zero overhead, the reference;
* :class:`ThreadPoolEngine`   — concurrent futures over threads (wins
  when backends release the GIL, e.g. the native g++ backend's
  subprocess calls; simulated backends are pure Python and gain little);
* :class:`ProcessPoolEngine`  — one interpreter per worker, true
  parallelism for the pure-Python simulated pipeline.

The pooled engines dispatch units in **chunks**
(:attr:`~repro.config.CampaignConfig.chunk_size`, auto-sized by
default): one future per chunk amortizes executor bookkeeping, pickling,
and progress accounting, and each worker's process-local
:class:`~repro.sim.kcache.KernelCache` stays warm across a chunk's
units.  Chunking never changes results — outcomes are yielded per unit
and verdicts are byte-identical for every chunk size.

All engines yield :class:`UnitOutcome`\\ s as they complete (completion
order for the pooled engines).  The progress callback fires once per
differential test — per ``(program, input)``, not per program — unless a
``progress_every`` stride throttles it off the hot path; passing
``progress=None`` skips the accounting entirely.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import BrokenExecutor, Future, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from ..analysis.outliers import TestVerdict, analyze_test
from ..config import ENGINE_NAMES, CampaignConfig, ConfigError
from ..core.features import ProgramFeatures, extract_features
from ..core.generator import ProgramGenerator
from ..core.inputs import InputGenerator
from ..core.races import find_races
from ..obs import metrics as _obs
from ..obs.spans import span

#: progress callback: (differential tests completed, tests scheduled)
ProgressFn = Callable[[int, int], None]

#: hard ceiling for automatic chunk sizing — past this, batching no
#: longer measurably amortizes overhead but does delay outcome streaming
_MAX_AUTO_CHUNK = 16


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One schedulable slice of the grid: a program and its input batch.

    ``spec`` carries the program's provenance record when the campaign
    uses a non-default :mod:`repro.corpus` source; it is everything a
    worker needs to rematerialize the program (no corpus files travel
    with the unit).  Under the default random source it stays ``None``
    and execution follows the historical ``(config, index)`` path
    unchanged.
    """

    program_index: int
    input_indices: tuple[int, ...]
    spec: "ProgramSpec | None" = None

    @property
    def n_tests(self) -> int:
        return len(self.input_indices)


@dataclass(frozen=True, slots=True)
class ExecutionPlan:
    """Everything a worker needs to execute any unit of one campaign.

    Backends are the config's ``compilers``, resolved by name from the
    registry inside whichever worker executes the unit.
    """

    config: CampaignConfig
    collect_profiles: bool = False


@dataclass(slots=True)
class UnitOutcome:
    """Everything one work unit produced."""

    program_index: int
    program_name: str
    race_filtered: bool = False
    features: ProgramFeatures | None = None
    verdicts: list[TestVerdict] = field(default_factory=list)


def plan_units(config: CampaignConfig) -> list[WorkUnit]:
    """The full campaign grid as an ordered list of work units.

    Planning is a pure function of ``config``: non-random sources plan
    their whole spec sequence here (coverage feedback and all), so a
    resumed checkpoint, a fleet coordinator, and a serial rerun all
    derive the very same units.
    """
    from ..corpus import plan_specs

    with span("plan", source=config.program_source):
        inputs = tuple(range(config.inputs_per_program))
        specs = plan_specs(config)
        if specs is None:
            return [WorkUnit(i, inputs) for i in range(config.n_programs)]
        return [WorkUnit(i, inputs, spec=specs[i])
                for i in range(config.n_programs)]


def resolve_chunk_size(config: CampaignConfig, n_units: int,
                       jobs: int) -> int:
    """Units per pooled-engine submission.

    An explicit :attr:`~repro.config.CampaignConfig.chunk_size` wins;
    otherwise aim for about four chunks per worker — enough batching to
    amortize dispatch overhead, enough chunks that completion streaming
    and work stealing stay responsive — capped so small grids still
    spread across the pool.
    """
    if config.chunk_size is not None:
        return config.chunk_size
    if n_units <= jobs:
        return 1
    return max(1, min(_MAX_AUTO_CHUNK, -(-n_units // (jobs * 4))))


def execute_unit(plan: ExecutionPlan, unit: WorkUnit) -> UnitOutcome:
    """Run one work unit start to finish (generate, filter, compile, run).

    Pure function of ``(plan, unit)``: generators are re-derived from the
    campaign seed, so any worker — same thread, pool thread, or forked
    process — produces bit-identical outcomes for the same unit.
    """
    from ..backends.registry import get_backend
    from ..sim.backend import use_kernel_backend

    cfg = plan.config
    if cfg.kernel_backend is None:
        # leave the process default (env or set_kernel_backend) in charge
        return _execute_unit_body(plan, unit, cfg, get_backend)
    with use_kernel_backend(cfg.kernel_backend):
        return _execute_unit_body(plan, unit, cfg, get_backend)


def _execute_unit_body(plan: ExecutionPlan, unit: WorkUnit,
                       cfg: CampaignConfig, get_backend) -> UnitOutcome:
    inputs = InputGenerator(cfg.generator, seed=cfg.seed + 1)

    with span("materialize"):
        if unit.spec is not None:
            # provenance-carrying unit: rebuild from the spec alone (pure
            # function of (config, spec) — see repro.corpus)
            from ..corpus import materialize_spec

            program = materialize_spec(cfg, unit.spec)
        else:
            program = ProgramGenerator(
                cfg.generator, seed=cfg.seed).generate(unit.program_index)
    outcome = UnitOutcome(program_index=unit.program_index,
                          program_name=program.name)
    if cfg.generator.allow_data_races and find_races(program):
        # the paper "mitigated this by manually filtering out data race
        # cases in the evaluation" — we filter statically
        outcome.race_filtered = True
        _obs.inc("repro_units_total", result="race_filtered")
        return outcome

    outcome.features = extract_features(program)
    backends = [get_backend(name) for name in cfg.compilers]
    with span("compile"):
        executables = [(b, b.compile(program, cfg.opt_level))
                       for b in backends]
    for j in unit.input_indices:
        test_input = inputs.generate(program, j)
        with span("execute"):
            records = [b.execute(exe, test_input, cfg.machine,
                                 collect_profile=plan.collect_profiles)
                       for b, exe in executables]
        with span("verdict"):
            outcome.verdicts.append(analyze_test(records, cfg.outliers))
        _obs.inc("repro_tests_total")
    _obs.inc("repro_units_total", result="ok")
    return outcome


def execute_chunk(plan: ExecutionPlan,
                  units: Sequence[WorkUnit]) -> list[UnitOutcome]:
    """Run a batch of units in order (one pooled-engine submission)."""
    return [execute_unit(plan, unit) for unit in units]


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------

#: called for outcomes that completed but could not be yielded (the
#: consumer abandoned the stream while units were in flight)
SalvageFn = Callable[[UnitOutcome], None]


class ExecutionEngine(ABC):
    """Schedules work units and streams their outcomes."""

    name: str = "abstract"

    @abstractmethod
    def run(self, plan: ExecutionPlan, units: Sequence[WorkUnit], *,
            progress: ProgressFn | None = None,
            progress_every: int | None = None,
            salvage: SalvageFn | None = None) -> Iterator[UnitOutcome]:
        """Yield one :class:`UnitOutcome` per unit as each completes.

        ``progress_every`` throttles the callback to at most one firing
        per that many completed tests (the final total always fires);
        ``None`` keeps the per-test cadence.  ``salvage`` receives
        outcomes that finished while the iterator was being torn down —
        pooled engines wait for in-flight units on interrupt, and
        without a salvage hook that completed work would be silently
        discarded.
        """

    def map_unordered(self, fn: Callable, items: Sequence, *,
                      chunk_size: int = 1,
                      progress: ProgressFn | None = None) -> Iterator:
        """Apply ``fn`` to independent ``items``, yielding as completed.

        The generic sibling of :meth:`run` for work that is not a
        campaign unit — e.g. outlier reductions, which are mutually
        independent and therefore parallelize exactly like work units.
        ``fn`` and each item must be picklable for the process engine
        (module-level function + dataclass items, same contract as
        :func:`execute_unit`).  Serial engines apply in order; pooled
        engines yield in completion order.  ``progress`` fires once per
        completed item with ``(done, total)``.
        """
        if chunk_size < 1:
            raise ConfigError("chunk_size must be >= 1")
        total = len(items)
        for done, item in enumerate(items, 1):
            result = fn(item)
            if progress is not None:
                progress(done, total)
            yield result

    # ------------------------------------------------------------------
    @staticmethod
    def _progress_stepper(units: Sequence[WorkUnit],
                          progress: ProgressFn | None,
                          progress_every: int | None = None):
        """Per-test progress accounting, throttleable.

        With no throttle the callback fires once per (program, input)
        pair, monotonically.  With ``progress_every=N`` it fires when at
        least ``N`` tests accumulated since the last firing (and always
        on the final test), cutting callback overhead on the hot path.
        Race-filtered units still advance the counter by their input
        count so the bar always reaches ``total``.  A ``None`` callback
        costs nothing.
        """
        if progress is None:
            return lambda unit: None
        total = sum(u.n_tests for u in units)
        every = progress_every if progress_every and progress_every > 1 else 1
        done = 0
        unreported = 0

        def step(unit: WorkUnit) -> None:
            nonlocal done, unreported
            if every == 1:
                for _ in range(unit.n_tests):
                    done += 1
                    progress(done, total)
                return
            done += unit.n_tests
            unreported += unit.n_tests
            if unreported >= every or done >= total:
                unreported = 0
                progress(done, total)

        return step


class SerialEngine(ExecutionEngine):
    """In-order execution on the calling thread — the reference engine."""

    name = "serial"

    def run(self, plan: ExecutionPlan, units: Sequence[WorkUnit], *,
            progress: ProgressFn | None = None,
            progress_every: int | None = None,
            salvage: SalvageFn | None = None) -> Iterator[UnitOutcome]:
        # nothing runs between yields, so there is never anything to
        # salvage, and chunking would only delay outcome streaming
        step = self._progress_stepper(units, progress, progress_every)
        for unit in units:
            outcome = execute_unit(plan, unit)
            step(unit)
            yield outcome


def _call_chunk(fn: Callable, items: tuple) -> list:
    """Apply ``fn`` to a batch of items (one pooled-map submission)."""
    return [fn(item) for item in items]


class _PoolEngine(ExecutionEngine):
    """Shared machinery for the two concurrent.futures engines."""

    def __init__(self, jobs: int | None = None):
        if jobs is not None and jobs < 1:
            raise ConfigError("jobs must be >= 1 (or None for auto)")
        #: what was asked for (None = auto); checkpoints persist this so
        #: resuming on a different host re-resolves to *its* CPU count
        self.requested_jobs = jobs
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    def _make_executor(self, plan: ExecutionPlan):
        raise NotImplementedError

    def _make_map_executor(self):
        """Executor for :meth:`map_unordered` (no campaign plan to ship)."""
        raise NotImplementedError

    def _submit(self, executor, plan: ExecutionPlan,
                chunk: tuple[WorkUnit, ...]) -> Future:
        raise NotImplementedError

    def map_unordered(self, fn: Callable, items: Sequence, *,
                      chunk_size: int = 1,
                      progress: ProgressFn | None = None) -> Iterator:
        if chunk_size < 1:
            raise ConfigError("chunk_size must be >= 1")
        total = len(items)
        if not total:
            return
        # (chunk, attempt) pairs still owed results.  A worker death
        # (os._exit, OOM kill) breaks the whole executor and poisons
        # every outstanding future with BrokenExecutor; each poisoned
        # chunk gets ONE retry on a fresh pool — re-executed from its
        # start, which is safe because fn must already be pure for the
        # process transport — before the failure surfaces.
        pending = [(tuple(items[i:i + chunk_size]), 0)
                   for i in range(0, total, chunk_size)]
        done = 0
        while pending:
            executor = self._make_map_executor()
            futures = {executor.submit(_call_chunk, fn, c): (c, a)
                       for c, a in pending}
            pending = []
            try:
                for fut in as_completed(list(futures)):
                    chunk, attempt = futures.pop(fut)
                    try:
                        results = fut.result()
                    except BrokenExecutor:
                        if attempt >= 1:
                            raise
                        pending.append((chunk, attempt + 1))
                        continue  # siblings that finished still yield
                    for result in results:
                        done += 1
                        if progress is not None:
                            progress(done, total)
                        yield result
            finally:
                executor.shutdown(wait=True, cancel_futures=True)

    def run(self, plan: ExecutionPlan, units: Sequence[WorkUnit], *,
            progress: ProgressFn | None = None,
            progress_every: int | None = None,
            salvage: SalvageFn | None = None) -> Iterator[UnitOutcome]:
        step = self._progress_stepper(units, progress, progress_every)
        size = resolve_chunk_size(plan.config, len(units), self.jobs)
        chunks = [tuple(units[i:i + size])
                  for i in range(0, len(units), size)]
        executor = self._make_executor(plan)
        pending = {self._submit(executor, plan, c): c for c in chunks}
        #: completed outcomes of the chunk currently being yielded — an
        #: interrupt can land between two yields of one chunk, and the
        #: rest of that chunk is finished work the salvage hook must see
        unyielded: list[UnitOutcome] = []
        try:
            for fut in as_completed(list(pending)):
                outcomes = fut.result()
                chunk = pending.pop(fut)
                unyielded = list(outcomes)
                for unit, outcome in zip(chunk, outcomes):
                    step(unit)
                    unyielded.pop(0)
                    yield outcome
        finally:
            # also reached via generator .close(): cancel what never
            # started so an interrupted stream() doesn't keep burning CPU,
            # then hand back the units that finished while we waited —
            # they are done work and must not be lost to the interrupt
            executor.shutdown(wait=True, cancel_futures=True)
            if salvage is not None:
                for outcome in unyielded:
                    salvage(outcome)
                for fut in pending:
                    if (fut.done() and not fut.cancelled()
                            and fut.exception() is None):
                        for outcome in fut.result():
                            salvage(outcome)


class ThreadPoolEngine(_PoolEngine):
    """Thread-pooled execution (``jobs`` worker threads)."""

    name = "thread"

    def _make_executor(self, plan: ExecutionPlan):
        from concurrent.futures import ThreadPoolExecutor

        from ..sim.values import silence_fp_warnings

        return ThreadPoolExecutor(max_workers=self.jobs,
                                  thread_name_prefix="repro-engine",
                                  initializer=silence_fp_warnings)

    def _make_map_executor(self):
        from concurrent.futures import ThreadPoolExecutor

        from ..sim.values import silence_fp_warnings

        return ThreadPoolExecutor(max_workers=self.jobs,
                                  thread_name_prefix="repro-map",
                                  initializer=silence_fp_warnings)

    def _submit(self, executor, plan: ExecutionPlan,
                chunk: tuple[WorkUnit, ...]) -> Future:
        return executor.submit(execute_chunk, plan, chunk)


# -- process-pool plumbing ---------------------------------------------
# the plan is shipped once per worker via the initializer instead of
# once per chunk; workers then receive only tuples of
# (program_index, input_indices) pairs

_WORKER_PLAN: ExecutionPlan | None = None


def _process_worker_init(plan: ExecutionPlan) -> None:
    global _WORKER_PLAN
    _WORKER_PLAN = plan


def _process_worker_run(unit: WorkUnit) -> UnitOutcome:
    assert _WORKER_PLAN is not None, "worker used before initialization"
    return execute_unit(_WORKER_PLAN, unit)


def _process_worker_run_chunk(
        chunk: tuple[WorkUnit, ...]) -> list[UnitOutcome]:
    assert _WORKER_PLAN is not None, "worker used before initialization"
    return execute_chunk(_WORKER_PLAN, chunk)


class ProcessPoolEngine(_PoolEngine):
    """Process-pooled execution: real parallelism for the Python pipeline.

    Outcomes (verdicts, records, features) cross the process boundary by
    pickling; profiles survive too, but custom backends must be defined
    at module import time so worker processes can resolve their names
    from the registry.
    """

    name = "process"

    def _make_executor(self, plan: ExecutionPlan):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=self.jobs,
                                   initializer=_process_worker_init,
                                   initargs=(plan,))

    def _make_map_executor(self):
        from concurrent.futures import ProcessPoolExecutor

        # no plan initializer: map tasks carry their own context (the
        # same coordinates-not-objects contract as campaign work units)
        return ProcessPoolExecutor(max_workers=self.jobs)

    def _submit(self, executor, plan: ExecutionPlan,
                chunk: tuple[WorkUnit, ...]) -> Future:
        return executor.submit(_process_worker_run_chunk, chunk)


def create_engine(name: str, jobs: int | None = None) -> ExecutionEngine:
    """Engine factory: ``"serial"``, ``"thread"``, ``"process"``, or
    ``"fleet"`` (lease-queue worker processes, :mod:`repro.fleet`)."""
    if name == "serial":
        if jobs is not None:
            # an explicit worker count is a parallelism request; dropping
            # it silently would mis-size the run with no signal
            raise ConfigError(
                "jobs requires a pooled engine (thread or process); "
                "the serial engine always runs one worker")
        return SerialEngine()
    if name == "thread":
        return ThreadPoolEngine(jobs)
    if name == "process":
        return ProcessPoolEngine(jobs)
    if name == "fleet":
        # imported lazily: the fleet package builds on this module
        from ..fleet.coordinator import FleetEngine

        return FleetEngine(jobs)
    raise ConfigError(
        f"unknown execution engine {name!r}; choose from {ENGINE_NAMES}")
