"""Execution driver (Fig. 1 step (c)) for simulated binaries.

"There is a driver that then runs all the binaries with their
corresponding inputs in the systems.  The driver checks the outputs of the
tests and whether there is a correctness issue with any test."

The driver builds the kernel argument environment from a
:class:`~repro.core.inputs.TestInput`, instantiates the vendor's
:class:`~repro.sim.runtime.RegionExecutor`, executes the lowered kernel,
and classifies the outcome:

* normal return → ``OK`` with the printed ``comp`` and virtual time,
* :class:`~repro.errors.SimulatedCrash` → ``CRASH`` (partial time),
* :class:`~repro.errors.SimulatedHang`, or a virtual time beyond the
  configured timeout → ``HANG`` (the paper SIGINTs after ~3 minutes).
"""

from __future__ import annotations

import gc
import threading

from ..config import MachineConfig
from ..core.inputs import TestInput
from ..errors import ExecutionError, SimulatedCrash, SimulatedHang
from ..rng import hash_fraction
from ..sim.counters import PerfCounters
from ..sim.events import ProfileRecorder
from ..sim.lower import CostState
from ..sim.runtime import RegionExecutor
from ..vendors.binary import Binary
from .records import RunRecord, RunStatus

#: baseline branch misprediction rate folded into the counters
_BASE_MISS_RATE = 0.004


class _GcPause:
    """Reference-counted pause of the cyclic collector.

    ``gc.disable()`` is process-global: with the thread-pool engine,
    naive disable/enable pairs flap — the first kernel to finish would
    re-enable collection under every sibling still executing.  Counting
    overlapping pauses keeps the collector off until the *last* kernel
    leaves, and only restores it if it was enabled when the first
    entered.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._depth = 0
        self._reenable = False

    def __enter__(self) -> None:
        with self._lock:
            if self._depth == 0:
                self._reenable = gc.isenabled()
                if self._reenable:
                    gc.disable()
            self._depth += 1

    def __exit__(self, *exc) -> None:
        with self._lock:
            self._depth -= 1
            if self._depth == 0 and self._reenable:
                gc.enable()


_GC_PAUSE = _GcPause()


def build_args(binary: Binary, test_input: TestInput) -> dict[str, object]:
    """Kernel argument environment: scalars and per-run array images.

    Arrays are materialized as Python lists filled with the input's fill
    value — the same initialization the emitted ``main()`` performs — and
    the lowered kernel copies them, so a ``TestInput`` can be reused
    across binaries without cross-contamination.
    """
    args: dict[str, object] = {}
    for p in binary.program.params:
        try:
            v = test_input.values[p.name]
        except KeyError:
            raise ExecutionError(
                f"input {test_input.index} lacks a value for parameter "
                f"{p.name!r} of {binary.program.name}") from None
        if p.is_int:
            args[p.name] = int(v)
        elif p.is_array:
            args[p.name] = [float(v)] * p.array_size
        else:
            args[p.name] = float(v)
    return args


def _array_page_faults(binary: Binary) -> int:
    """First-touch page faults for the arrays main() allocates."""
    bytes_per = 4 if binary.fp_type.bits == 32 else 8
    total = sum(p.array_size * bytes_per for p in binary.program.array_params)
    return total // 4096 + 8 * len(binary.program.array_params)


def run_binary(binary: Binary, test_input: TestInput,
               machine: MachineConfig | None = None, *,
               collect_profile: bool = False) -> RunRecord:
    """Execute one binary with one input; never raises for test outcomes."""
    machine = machine if machine is not None else MachineConfig()
    cost = CostState()
    counters = PerfCounters()
    profile = ProfileRecorder(binary_name=binary.name)
    counters.page_faults += _array_page_faults(binary) + 60  # process start

    executor = RegionExecutor(
        binary.vendor,
        binary.kernel.regions,
        cost,
        counters,
        profile,
        wrap_fn=binary.wrap_fn,
        crash_active=binary.crash_armed and test_input.extreme_count() >= 2,
        # livelocks are schedule-dependent: an armed binary hangs on some
        # inputs and squeaks through on others (the paper observed exactly
        # one hanging run among the binary's executions)
        hang_active=binary.hang_armed and hash_fraction(
            "hang-input", binary.fingerprint, test_input.index,
            mode="compat") < 0.4,
        slow_armed=binary.slow_armed,
        fingerprint=binary.fingerprint,
    )

    args = build_args(binary, test_input)
    status = RunStatus.OK
    comp: float | None = None
    detail = ""
    thread_states: dict[str, list[int]] | None = None
    # kernels allocate no reference cycles, only floats and flat lists:
    # pausing the cyclic collector for the interpretation hot loop is
    # observable-behaviour-neutral and saves its allocation-count sweeps
    try:
        with _GC_PAUSE:
            comp = binary.entry(args, executor, cost)
    except SimulatedCrash as exc:
        status = RunStatus.CRASH
        detail = str(exc)
    except SimulatedHang as exc:
        status = RunStatus.HANG
        detail = "stopped by SIGINT after timeout (livelock in critical)"
        thread_states = exc.thread_states

    time_us = cost.cy / machine.cycles_per_us
    if status is RunStatus.HANG or time_us > machine.timeout_us:
        if status is RunStatus.OK:
            status = RunStatus.HANG
            detail = "exceeded virtual timeout"
            comp = None
        time_us = machine.timeout_us

    # serial compute shows up under the test binary's own symbol
    serial_cycles = max(0.0, cost.cy - executor.region_cycles_total)
    profile.charge(binary.name, binary.vendor.symbols.serial_compute,
                   serial_cycles)

    counters.cycles = int(cost.cy)
    counters.instructions = int(cost.ins)
    counters.branches = int(cost.br)
    counters.branch_misses += int(cost.br * _BASE_MISS_RATE)

    return RunRecord(
        program_name=binary.program.name,
        vendor=binary.vendor.name,
        input_index=test_input.index,
        status=status,
        comp=comp,
        time_us=time_us,
        counters=counters,
        profile=profile if collect_profile else None,
        detail=detail,
        thread_states=thread_states,
    )


def run_differential(binaries: list[Binary], test_input: TestInput,
                     machine: MachineConfig | None = None, *,
                     collect_profile: bool = False) -> list[RunRecord]:
    """Run every vendor's binary on the same input (one differential test)."""
    return [run_binary(b, test_input, machine, collect_profile=collect_profile)
            for b in binaries]
