"""Test-execution driver (Fig. 1 step (c))."""

from .execution import build_args, run_binary, run_differential
from .records import RunRecord, RunStatus, values_equal

__all__ = [
    "RunRecord",
    "RunStatus",
    "build_args",
    "run_binary",
    "run_differential",
    "values_equal",
]
