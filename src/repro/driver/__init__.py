"""Test-execution driver (Fig. 1 step (c)) and the execution engines."""

from .engine import (
    ENGINE_NAMES,
    ExecutionEngine,
    ExecutionPlan,
    ProcessPoolEngine,
    SerialEngine,
    ThreadPoolEngine,
    UnitOutcome,
    WorkUnit,
    create_engine,
    execute_unit,
    plan_units,
)
from .execution import build_args, run_binary, run_differential
from .records import RunRecord, RunStatus, values_equal

__all__ = [
    "ENGINE_NAMES",
    "ExecutionEngine",
    "ExecutionPlan",
    "ProcessPoolEngine",
    "RunRecord",
    "RunStatus",
    "SerialEngine",
    "ThreadPoolEngine",
    "UnitOutcome",
    "WorkUnit",
    "build_args",
    "create_engine",
    "execute_unit",
    "plan_units",
    "run_binary",
    "run_differential",
    "values_equal",
]
