"""Vendor model specification: what makes an "OpenMP implementation".

The paper tests Intel oneAPI (icpx + libiomp5), GCC (g++ + libgomp) and
Clang (clang++ + libomp).  Each simulated vendor is a
:class:`VendorModel`: a **compiler half** (instruction selection quality,
floating-point transforms applied at -O3) plus a **runtime half**
(:class:`RuntimeParams`: team spawn/reuse, barrier algorithm, critical
lock algorithm, wait policy) plus a **fault model**
(:class:`FaultModel`: deterministic latent-bug triggers).

Every mechanism is documented where it is parameterized, and every
parameter traces to evidence in the paper's case studies (Sections V-C/D/E)
or to the real implementations' known behaviour (libgomp's spin-then-futex
wait vs. KMP's aggressive spinning; libomp's allocation churn on team
re-entry visible as ``calloc``/``mprotect`` in the paper's Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rng import hash_fraction


@dataclass(frozen=True)
class OpCosts:
    """Per-operation (cycles, instructions) charged by lowered code.

    These are *effective* costs of one source-level operation inside a
    memory-touching scientific loop — deliberately larger than raw ALU
    latencies so that generated tests land in the paper's analyzed range
    (> 1,000 µs after the Section V-A filter).
    """

    arith: tuple[float, float] = (14.0, 4.0)
    div: tuple[float, float] = (40.0, 5.0)
    math_call: tuple[float, float] = (110.0, 40.0)
    load: tuple[float, float] = (10.0, 1.0)
    store: tuple[float, float] = (12.0, 1.0)
    branch: tuple[float, float] = (6.0, 2.0)
    loop_iter: tuple[float, float] = (8.0, 3.0)


@dataclass(frozen=True)
class RuntimeParams:
    """Cost model of one OpenMP runtime system."""

    # --- team management ---
    #: cycles to create the team the first time a region is entered
    spawn_cold_cycles: float = 250_000.0
    #: cycles per subsequent entry (hot team reuse)
    spawn_warm_cycles: float = 18_000.0
    #: cycles per entry once a region has been re-entered many times
    #: (libomp's team-resource thrash under region-in-loop patterns; equal
    #: to ``spawn_warm_cycles`` for runtimes that reuse teams cleanly)
    spawn_thrash_cycles: float = 18_000.0
    #: entries after which the thrash cost replaces the warm cost
    spawn_thrash_threshold: int = 8
    #: page faults charged on cold / warm region entry (allocation churn)
    spawn_cold_page_faults: int = 180
    spawn_warm_page_faults: int = 2
    #: instructions executed by the runtime on region entry (allocator and
    #: team bookkeeping — this is what makes libomp's instruction count
    #: explode in Table III when a region sits inside a serial loop)
    spawn_cold_instr: float = 90_000.0
    spawn_warm_instr: float = 2_000.0
    #: fraction of spawn cycles attributed to allocator symbols in
    #: profiles (the calloc/mprotect lines of the paper's Fig. 7)
    spawn_alloc_fraction: float = 0.10
    #: context switches per region entry (worker wakeup)
    spawn_ctx_switches: int = 2

    # --- barriers (implicit at omp-for end and region end) ---
    #: cycles per barrier per participating thread (log-tree algorithms
    #: still pay per-thread wakeup costs at this scale)
    barrier_cycles_per_thread: float = 900.0

    # --- worksharing ---
    omp_for_sched_cycles: float = 400.0
    #: extra cycles per chunk grab under dynamic/guided schedules (the
    #: shared iteration counter is a contended atomic in every runtime)
    omp_for_dispatch_cycles: float = 90.0

    # --- atomics ---
    #: one hardware RMW (lock-prefixed op / LL-SC loop), uncontended
    atomic_rmw_cycles: float = 55.0
    #: extra cycles per waiting thread per atomic update (cache-line
    #: ping-pong on the updated location)
    atomic_contention_cycles: float = 9.0

    # --- single ---
    #: cycles to win/lose the single's "first arrival" election
    single_arrival_cycles: float = 120.0

    # --- sections / explicit tasks (worksharing-graph constructs) ---
    #: cycles per thread to claim/skip the arms of one ``sections``
    #: construct (the shared arm counter is a contended atomic)
    sections_dispatch_cycles: float = 260.0
    #: cycles to allocate, argument-capture, and enqueue one explicit
    #: task (libgomp copies the data environment eagerly; KMP-based
    #: runtimes allocate a task descriptor from a thread-local pool)
    task_spawn_cycles: float = 480.0
    #: cycles for a ``taskwait`` join once the children have finished
    taskwait_cycles: float = 210.0

    # --- critical sections ---
    #: uncontended lock acquire+release
    lock_base_cycles: float = 180.0
    #: extra cycles per *waiting thread* per acquisition (queue management,
    #: cache-line ping-pong); this is the term that separates libgomp's
    #: spin lock from KMP's queuing lock in Case Study 1
    lock_contention_cycles: float = 60.0

    # --- wait policy (threads blocked on locks/barriers) ---
    #: instructions burned per 1,000 wait cycles (spinning executes code)
    wait_spin_instr_per_kcycle: float = 0.0
    #: context switches per 1,000,000 wait cycles (sleep/yield policies)
    wait_ctx_per_mcycle: float = 0.0
    #: cpu migrations per 1,000,000 wait cycles
    wait_migration_per_mcycle: float = 0.0
    #: page faults per 1,000,000 wait cycles (stack/TLB effects of resched)
    wait_pf_per_mcycle: float = 0.0
    #: share of wait time charged to the primary wait symbol in profiles
    #: (rest goes to the secondary symbol — do_spin, __kmp_wait_4, ...)
    wait_primary_share: float = 0.75

    # --- reductions ---
    reduction_combine_cycles_per_thread: float = 220.0
    #: combine partials pairwise as a tree (KMP) instead of linearly in
    #: thread order (libgomp).  Both orders are legal under the OpenMP
    #: spec; floating-point non-associativity makes them print different
    #: values — a genuine, standards-compliant source of the numerical
    #: divergence the paper observes between GCC and the KMP-based
    #: implementations (Section V-B).
    reduction_tree: bool = False


@dataclass(frozen=True)
class FaultModel:
    """Deterministic latent-bug triggers.

    Rates are probabilities over the *program space*: each (source
    fingerprint, vendor) pair hashes to a uniform [0,1) variate compared
    against the rate, so a given binary either always has the latent bug
    or never does — like a real miscompile.
    """

    #: P(binary is miscompiled so that extreme inputs crash it) — models
    #: the paper's three GCC crash outliers
    crash_rate: float = 0.0
    #: P(binary livelocks when a critical section is heavily contended) —
    #: models the paper's Intel hang (Case Study 3: all 32 threads stuck
    #: in __kmpc_critical_with_hint / __kmp_acquire_queuing_lock)
    hang_rate: float = 0.0
    #: minimum critical acquisitions before the livelock engages
    hang_min_acquires: int = 2000
    #: P(binary hits a pathological slow path: x``slow_factor`` on region
    #: costs) — models the residual GCC slow outliers
    slow_rate: float = 0.0
    slow_factor: float = 3.0
    #: P(binary hits a lucky fast path: x``fast_factor`` on compute) —
    #: models the single Intel fast outlier
    fast_rate: float = 0.0
    fast_factor: float = 0.55


@dataclass(frozen=True)
class CompilerTraits:
    """Floating-point and codegen behaviour of the compiler half.

    ``fma_mode`` models ``-ffp-contract`` at ``-O3``:

    * ``"none"`` — no contraction (our -O0/-O1 behaviour),
    * ``"basic"`` — contract only ``a*b + c`` shapes (LLVM's default
      ``on``; icpx inherits it — icpx *is* clang-based, which is why the
      paper sees Intel and Clang numerically agree while GCC diverges),
    * ``"aggressive"`` — additionally contract through subtraction shapes
      (GCC's default ``fast``).

    Contraction changes rounding (the product is not rounded before the
    add), which with extreme inputs flips overflow/NaN behaviour and with
    it branch outcomes — the paper attributes about half of the 115 GCC
    fast outliers to exactly this numerical-exception control-flow
    divergence (Section V-B).
    """

    fma_mode: str = "basic"
    #: flush subnormal results/inputs to zero (Intel's default fast
    #: fp-model sets FTZ/DAZ)
    flush_subnormals: bool = False
    #: multiplier on instruction counts (codegen density)
    instr_scale: float = 1.0
    #: multiplier on compute cycles (scalar code quality)
    cycle_scale: float = 1.0


@dataclass(frozen=True)
class ProfileSymbols:
    """Runtime symbol names used to render Fig. 6/7-style profiles."""

    shared_object: str = "libomp.so"
    compute: str = ".omp_outlined."
    serial_compute: str = "[test binary]"
    spawn: str = "__kmp_fork_call"
    invoke: str = "__kmp_invoke_microtask"
    barrier: str = "__kmpc_barrier"
    wait_primary: str = "__kmp_wait_template"
    wait_secondary: str = "__kmp_wait_4"
    lock: str = "__kmp_acquire_queuing_lock"
    alloc: str = "__calloc (inlined)"
    yield_: str = "sched_yield"


@dataclass(frozen=True)
class VendorModel:
    """One complete simulated OpenMP implementation."""

    name: str
    compiler_binary: str
    version: str
    release: str
    ops: OpCosts = field(default_factory=OpCosts)
    runtime: RuntimeParams = field(default_factory=RuntimeParams)
    faults: FaultModel = field(default_factory=FaultModel)
    traits: CompilerTraits = field(default_factory=CompilerTraits)
    symbols: ProfileSymbols = field(default_factory=ProfileSymbols)

    # ------------------------------------------------------------------
    # deterministic fault decisions (pure functions of binary identity)
    # ------------------------------------------------------------------
    def _roll(self, fingerprint: str, channel: str) -> float:
        # faults belong to the program text, not to the fuzzer's RNG
        # stream: pin the compat derivation so enabling the fast RNG mode
        # never re-rolls which binaries carry latent bugs
        return hash_fraction("fault", self.name, channel, fingerprint,
                             mode="compat")

    def decides_crash(self, fingerprint: str) -> bool:
        return self._roll(fingerprint, "crash") < self.faults.crash_rate

    def decides_hang(self, fingerprint: str) -> bool:
        return self._roll(fingerprint, "hang") < self.faults.hang_rate

    def decides_slow(self, fingerprint: str) -> bool:
        return self._roll(fingerprint, "slow") < self.faults.slow_rate

    def decides_fast(self, fingerprint: str) -> bool:
        return self._roll(fingerprint, "fast") < self.faults.fast_rate
