"""Compiler-half FP lowering — public alias.

The implementation lives in :mod:`repro.sim.fptransforms` (it depends only
on the core AST, and the simulator's lowerer needs it without importing
the vendors package — see the import-cycle note there).  This module keeps
the conceptual home documented in DESIGN.md: FMA contraction *is* vendor
behaviour.
"""

from ..sim.fptransforms import (
    FusedMulAdd,
    effective_fma_mode,
    lower_block,
    lower_expr,
    lower_stmt,
    opt_cycle_scale,
)

__all__ = [
    "FusedMulAdd",
    "effective_fma_mode",
    "lower_block",
    "lower_expr",
    "lower_stmt",
    "opt_cycle_scale",
]
