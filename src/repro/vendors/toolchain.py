"""``compile()`` — turn a generated program into vendor binaries.

This is Fig. 1 step (b): the same source program is compiled by each
available OpenMP implementation.  For a simulated vendor that means:

1. emit the canonical C++ translation unit and fingerprint it (the
   identity a compiler sees),
2. decide the deterministic latent faults for (fingerprint, vendor),
3. apply the vendor's FP lowering (FMA contraction per its
   ``-ffp-contract`` default at the requested ``-O`` level),
4. lower the result to executable Python with the vendor's cost model
   baked into per-site constants.

Step (4) runs through the two-phase pipeline of :mod:`repro.sim.lower`
behind the process-local :class:`~repro.sim.kcache.KernelCache`: the
structural pass is shared by every vendor whose kernel shape coincides,
and recompiling a program the cache has seen (same fingerprint, vendor,
opt level) returns the previously bound kernel outright.  Step (1) now
hashes the translation unit it just emitted instead of re-emitting it,
so one compile performs one C++ emission, not two.
"""

from __future__ import annotations

import hashlib

from ..codegen.emit_main import emit_translation_unit
from ..core.features import extract_features
from ..core.nodes import Program
from ..errors import CompilationError
from ..obs import metrics as _obs
from ..sim.backend import active_kernel_backend
from ..sim.kcache import KernelCache, get_kernel_cache
from ..sim.lower import StructuralLowerer, bind_costs
from .base import VendorModel
from .binary import Binary
from .clang import CLANG
from .gcc import GCC
from .intel import INTEL
from .optimizer import effective_fma_mode, lower_block

#: the three implementations of the paper's evaluation (Section V-A).
#: Kept for backwards compatibility; the campaign pipeline now resolves
#: implementations through :mod:`repro.backends.registry`, which wraps
#: these same vendor models (plus the native toolchain) behind one
#: compile/execute contract.
VENDORS: dict[str, VendorModel] = {v.name: v for v in (GCC, CLANG, INTEL)}


def get_vendor(name: str) -> VendorModel:
    try:
        return VENDORS[name]
    except KeyError:
        raise CompilationError(
            f"unknown OpenMP implementation {name!r}; "
            f"available: {sorted(VENDORS)}") from None


#: fingerprint -> critical-in-omp-for count, for the hang-fault gate.
#: Content-keyed (never stale); cleared wholesale when it outgrows the
#: cap so the common three-vendor compile of one program walks the tree
#: once instead of three times.
_CRIT_MEMO: dict[str, int] = {}
_CRIT_MEMO_CAP = 4096


def _critical_in_omp_for(program: Program, fingerprint: str) -> int:
    count = _CRIT_MEMO.get(fingerprint)
    if count is None:
        count = extract_features(program).critical_in_omp_for
        if len(_CRIT_MEMO) >= _CRIT_MEMO_CAP:
            _CRIT_MEMO.clear()
        _CRIT_MEMO[fingerprint] = count
    return count


def compile_binary(program: Program, vendor: VendorModel | str,
                   opt_level: str = "-O3", *,
                   cache: KernelCache | None = None) -> Binary:
    """Compile ``program`` with one simulated OpenMP implementation.

    ``cache`` overrides the process-default
    :class:`~repro.sim.kcache.KernelCache` (tests pass fresh instances
    to measure cold costs; ``None`` uses :func:`~repro.sim.kcache.
    get_kernel_cache`).
    """
    if isinstance(vendor, str):
        vendor = get_vendor(vendor)
    if opt_level not in ("-O0", "-O1", "-O2", "-O3"):
        raise CompilationError(f"unsupported optimization level {opt_level!r}")
    if cache is None:
        cache = get_kernel_cache()

    cpp = emit_translation_unit(program)
    # identical to codegen.emit_main.source_fingerprint, without paying
    # for a second emission of the translation unit we already hold
    fingerprint = hashlib.sha256(cpp.encode()).hexdigest()

    crash = vendor.decides_crash(fingerprint)
    # the livelock lives in the queuing lock: only programs that actually
    # contend a critical section can expose it (Case Study 3)
    hang = (vendor.decides_hang(fingerprint)
            and _critical_in_omp_for(program, fingerprint) > 0)
    slow = vendor.decides_slow(fingerprint)
    fast = vendor.decides_fast(fingerprint)

    fma = effective_fma_mode(vendor.traits.fma_mode, opt_level)
    ftz = vendor.traits.flush_subnormals

    # telemetry: which lowering phases actually ran (cache misses) —
    # observation only, the cached value is identical either way
    obs_on = _obs.enabled()
    misses: set[str] = set()

    def build_structural():
        misses.add("structural")
        lowered_body = lower_block(program.body, fma)
        return StructuralLowerer(replace_body(program, lowered_body),
                                 ftz=ftz).lower()

    def build_kernel():
        misses.add("kernel")
        return bind_costs(structural, vendor, opt_level,
                          fast_armed=fast, slow_armed=slow)

    structural = cache.get_structural((fingerprint, ftz, fma),
                                      build_structural)
    # key the bound kernel by the vendor *value*, not its name: a custom
    # VendorModel variant (same name, different costs/traits) must never
    # receive another model's constants — frozen dataclasses hash by
    # content, so the key stays correct for replace()-built variants
    kernel = cache.get_kernel(
        (fingerprint, vendor, opt_level, fast, slow), build_kernel)
    if obs_on:
        backend = active_kernel_backend()
        for phase in ("structural", "kernel"):
            _obs.inc("repro_lower_total", phase=phase,
                     result="cold" if phase in misses else "warm",
                     backend=backend)
    return Binary(
        program=program,
        vendor=vendor,
        opt_level=opt_level,
        fingerprint=fingerprint,
        cpp_source=cpp,
        kernel=kernel,
        crash_armed=crash,
        hang_armed=hang,
        slow_armed=slow,
        fast_armed=fast,
    )


def replace_body(program: Program, body) -> Program:
    """Shallow-copy a program with a new (lowered) body."""
    return Program(
        name=program.name,
        seed=program.seed,
        fp_type=program.fp_type,
        comp=program.comp,
        params=program.params,
        body=body,
        num_threads=program.num_threads,
    )


def compile_all(program: Program, compilers: tuple[str, ...] | list[str],
                opt_level: str = "-O3") -> list[Binary]:
    """Compile one program with every requested implementation."""
    return [compile_binary(program, name, opt_level) for name in compilers]
