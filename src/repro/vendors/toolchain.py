"""``compile()`` — turn a generated program into vendor binaries.

This is Fig. 1 step (b): the same source program is compiled by each
available OpenMP implementation.  For a simulated vendor that means:

1. emit the canonical C++ translation unit and fingerprint it (the
   identity a compiler sees),
2. decide the deterministic latent faults for (fingerprint, vendor),
3. apply the vendor's FP lowering (FMA contraction per its
   ``-ffp-contract`` default at the requested ``-O`` level),
4. lower the result to executable Python with the vendor's cost model
   baked into per-block constants.
"""

from __future__ import annotations

from ..codegen.emit_main import emit_translation_unit, source_fingerprint
from ..core.features import extract_features
from ..core.nodes import Program
from ..errors import CompilationError
from ..sim.lower import Lowerer
from .base import VendorModel
from .binary import Binary
from .clang import CLANG
from .gcc import GCC
from .intel import INTEL
from .optimizer import effective_fma_mode, lower_block

#: the three implementations of the paper's evaluation (Section V-A).
#: Kept for backwards compatibility; the campaign pipeline now resolves
#: implementations through :mod:`repro.backends.registry`, which wraps
#: these same vendor models (plus the native toolchain) behind one
#: compile/execute contract.
VENDORS: dict[str, VendorModel] = {v.name: v for v in (GCC, CLANG, INTEL)}


def get_vendor(name: str) -> VendorModel:
    try:
        return VENDORS[name]
    except KeyError:
        raise CompilationError(
            f"unknown OpenMP implementation {name!r}; "
            f"available: {sorted(VENDORS)}") from None


def compile_binary(program: Program, vendor: VendorModel | str,
                   opt_level: str = "-O3") -> Binary:
    """Compile ``program`` with one simulated OpenMP implementation."""
    if isinstance(vendor, str):
        vendor = get_vendor(vendor)
    if opt_level not in ("-O0", "-O1", "-O2", "-O3"):
        raise CompilationError(f"unsupported optimization level {opt_level!r}")

    cpp = emit_translation_unit(program)
    fingerprint = source_fingerprint(program)

    crash = vendor.decides_crash(fingerprint)
    # the livelock lives in the queuing lock: only programs that actually
    # contend a critical section can expose it (Case Study 3)
    feats = extract_features(program)
    hang = vendor.decides_hang(fingerprint) and feats.critical_in_omp_for > 0
    slow = vendor.decides_slow(fingerprint)
    fast = vendor.decides_fast(fingerprint)

    fma = effective_fma_mode(vendor.traits.fma_mode, opt_level)
    lowered_body = lower_block(program.body, fma)
    lowered_program = replace_body(program, lowered_body)

    kernel = Lowerer(lowered_program, vendor, opt_level,
                     fast_armed=fast, slow_armed=slow).lower()
    return Binary(
        program=program,
        vendor=vendor,
        opt_level=opt_level,
        fingerprint=fingerprint,
        cpp_source=cpp,
        kernel=kernel,
        crash_armed=crash,
        hang_armed=hang,
        slow_armed=slow,
        fast_armed=fast,
    )


def replace_body(program: Program, body) -> Program:
    """Shallow-copy a program with a new (lowered) body."""
    return Program(
        name=program.name,
        seed=program.seed,
        fp_type=program.fp_type,
        comp=program.comp,
        params=program.params,
        body=body,
        num_threads=program.num_threads,
    )


def compile_all(program: Program, compilers: tuple[str, ...] | list[str],
                opt_level: str = "-O3") -> list[Binary]:
    """Compile one program with every requested implementation."""
    return [compile_binary(program, name, opt_level) for name in compilers]
