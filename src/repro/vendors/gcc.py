"""SimGCC — the GNU implementation model (g++ 13.1 + libgomp).

Evidence-backed parameter choices:

* **Lock model** — Case Study 1 (Section V-C): on a critical-section-heavy
  test the GCC binary is 80 % faster than Intel/Clang, with *fewer*
  context switches (10 vs 232), migrations (0 vs 96) and instructions
  (60 M vs 85 M).  libgomp's ``gomp_mutex_lock_slow`` does a brief spin
  and then parks on a futex — cheap under contention.  Hence the small
  ``lock_contention_cycles`` and near-zero wait-side counter rates.
* **Compiler half** — GCC at ``-O3`` reassociates long arithmetic chains;
  with extreme inputs this flips overflow/NaN behaviour and with it
  branch outcomes.  The paper attributes about half of the 115 GCC fast
  outliers to exactly this ("numerical exceptions, such as NaN values,
  that impact the control flow … the GCC binaries end up performing
  fewer computations and producing a different numerical result").
* **Fault model** — three GCC crash outliers appeared in 1,800 runs; we
  give GCC a small deterministic miscompile rate whose crash manifests
  only on extreme-category inputs, and a small pathological-slow rate
  matching the four GCC slow outliers.
"""

from __future__ import annotations

from .base import (
    CompilerTraits,
    FaultModel,
    OpCosts,
    ProfileSymbols,
    RuntimeParams,
    VendorModel,
)

GCC = VendorModel(
    name="gcc",
    compiler_binary="g++",
    version="13.1",
    release="04/2023",
    ops=OpCosts(),
    traits=CompilerTraits(
        fma_mode="aggressive",  # -ffp-contract=fast is the g++ -O3 default
        flush_subnormals=False,
        instr_scale=0.85,   # Table II: 60 M instructions vs Intel's 85 M
        cycle_scale=1.0,
    ),
    runtime=RuntimeParams(
        spawn_cold_cycles=220_000.0,
        spawn_warm_cycles=15_000.0,      # hot team reuse
        spawn_cold_page_faults=140,
        spawn_warm_page_faults=2,
        spawn_cold_instr=70_000.0,
        spawn_warm_instr=2_000.0,
        spawn_alloc_fraction=0.08,
        spawn_ctx_switches=2,
        barrier_cycles_per_thread=800.0,
        omp_for_sched_cycles=350.0,
        # libgomp: cheap sections arm counter; eager task-data copy on
        # spawn makes GOMP_task comparatively expensive, joins are cheap
        sections_dispatch_cycles=230.0,
        task_spawn_cycles=520.0,
        taskwait_cycles=170.0,
        lock_base_cycles=120.0,
        lock_contention_cycles=35.0,     # futex park: cheap under contention
        wait_spin_instr_per_kcycle=30.0,  # brief do_spin, then sleep
        wait_ctx_per_mcycle=4.0,          # Table II: 10 ctx switches
        wait_migration_per_mcycle=0.0,    # Table II: 0 migrations
        wait_pf_per_mcycle=2.0,
        wait_primary_share=0.92,          # Fig. 6: do_wait 72.5 %, do_spin 6.6 %
        reduction_combine_cycles_per_thread=200.0,
    ),
    faults=FaultModel(
        crash_rate=0.010,   # -> ~2 miscompiled binaries per 200 programs
        slow_rate=0.0100,   # -> the residual GCC slow outliers (Table I: 4)
        slow_factor=2.6,
    ),
    symbols=ProfileSymbols(
        shared_object="libgomp.so.1.0.0",
        compute=".omp_fn.0",
        serial_compute="[test binary]",
        spawn="GOMP_parallel",
        invoke="gomp_thread_start",
        barrier="gomp_team_barrier_wait_end",
        wait_primary="do_wait",
        wait_secondary="do_spin",
        lock="gomp_mutex_lock_slow",
        alloc="__calloc (inlined)",
        yield_="sched_yield",
    ),
)
