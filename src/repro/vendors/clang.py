"""SimClang — the LLVM implementation model (clang++ 16.0.0 + libomp).

Evidence-backed parameter choices:

* **Team re-entry cost** — Case Study 2 (Section V-D): a test with a
  parallel region inside a serial loop runs 946 % slower under Clang.
  Table III shows the mechanism: 40,483 context switches (vs Intel's
  300), 70,990 page faults (vs 684), 8.2 G instructions (vs 0.9 G), and
  the paper's Fig. 7 profile shows half the time under
  ``__calloc``/``_int_malloc``/``sysmalloc``/``mprotect`` — libomp
  reallocates team resources on every region entry in this pattern.
  We model that as a *high warm* spawn cost with heavy page-fault,
  context-switch and instruction charges per entry.  Programs that enter
  a region once are barely affected; programs that re-enter it hundreds
  of times become the paper's ten Clang slow outliers.
* **Lock model** — libomp shares the KMP lineage with Intel's runtime, so
  its queuing lock and aggressive spin-wait sit close to Intel's numbers;
  this is what makes Clang and Intel mutually "comparable" (Eq. 1) on
  critical-heavy tests while GCC runs away fast.
* **Fault model** — empty: the paper observed no Clang crash/hang
  outliers, and the slow outliers fall out of the spawn mechanism above.
"""

from __future__ import annotations

from .base import (
    CompilerTraits,
    FaultModel,
    OpCosts,
    ProfileSymbols,
    RuntimeParams,
    VendorModel,
)

CLANG = VendorModel(
    name="clang",
    compiler_binary="clang++",
    version="16.0.0",
    release="03/2023",
    ops=OpCosts(),
    traits=CompilerTraits(
        fma_mode="basic",   # LLVM default -ffp-contract=on
        flush_subnormals=False,
        instr_scale=1.0,
        cycle_scale=1.0,
    ),
    runtime=RuntimeParams(
        spawn_cold_cycles=420_000.0,
        spawn_warm_cycles=26_000.0,      # a few re-entries are near-normal
        spawn_thrash_cycles=170_000.0,   # the Case-Study-2 pathology
        spawn_thrash_threshold=8,        # engages for region-in-loop tests
        spawn_cold_page_faults=220,
        spawn_warm_page_faults=45,       # ~70,990 pf over ~1,500 entries
        spawn_cold_instr=160_000.0,
        spawn_warm_instr=90_000.0,       # allocator churn per entry
        spawn_alloc_fraction=0.52,       # Fig. 7: calloc/sysmalloc/mprotect
        spawn_ctx_switches=26,           # ~40,483 ctx over ~1,500 entries
        barrier_cycles_per_thread=1_000.0,
        omp_for_sched_cycles=420.0,
        # KMP task pool: descriptor allocation from a thread-local free
        # list is cheap, but the sections/arm counter and the taskwait
        # steal-check both ride the contended dispatch machinery
        sections_dispatch_cycles=300.0,
        task_spawn_cycles=440.0,
        taskwait_cycles=260.0,
        lock_base_cycles=310.0,
        lock_contention_cycles=92.0,     # KMP queuing lock
        wait_spin_instr_per_kcycle=450.0,  # aggressive spinning burns instrs
        wait_ctx_per_mcycle=60.0,
        wait_migration_per_mcycle=10.0,
        wait_pf_per_mcycle=18.0,
        wait_primary_share=0.80,
        reduction_combine_cycles_per_thread=240.0,
        reduction_tree=True,   # KMP combines partials pairwise
    ),
    faults=FaultModel(),  # no injected faults: Table I shows none for Clang
    symbols=ProfileSymbols(
        shared_object="libomp.so",
        compute=".omp_outlined.",
        serial_compute="[test binary]",
        spawn="__kmp_fork_call",
        invoke="__kmp_invoke_microtask",
        barrier="__kmpc_barrier",
        wait_primary="__kmp_wait_template",
        wait_secondary="__kmp_yield",
        lock="__kmp_acquire_queuing_lock",
        alloc="__calloc (inlined)",
        yield_="sched_yield",
    ),
)
