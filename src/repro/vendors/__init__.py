"""Simulated OpenMP implementations (compiler + runtime + fault models)."""

from .base import (
    CompilerTraits,
    FaultModel,
    OpCosts,
    ProfileSymbols,
    RuntimeParams,
    VendorModel,
)
from .binary import Binary
from .clang import CLANG
from .gcc import GCC
from .intel import INTEL
from .toolchain import VENDORS, compile_all, compile_binary, get_vendor

__all__ = [
    "Binary",
    "CLANG",
    "CompilerTraits",
    "FaultModel",
    "GCC",
    "INTEL",
    "OpCosts",
    "ProfileSymbols",
    "RuntimeParams",
    "VENDORS",
    "VendorModel",
    "compile_all",
    "compile_binary",
    "get_vendor",
]
