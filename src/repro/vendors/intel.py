"""SimIntel — the Intel oneAPI implementation model (icpx 2023.2 + libiomp5).

Evidence-backed parameter choices:

* **Baseline codegen** — Section V-B: "the Intel OpenMP compilers and
  runtime are expected to have the best performance in this platform and
  be the baseline in terms of performance" — hence the < 1 compute cycle
  scale and the *absence* of slow-outlier fault triggers.
* **Lock + wait model** — Case Study 1 (Table II): on a critical-heavy
  test Intel shows 232 context switches, 96 migrations and 85 M
  instructions where GCC shows 10 / 0 / 60 M.  KMP's queuing lock spins
  aggressively (burning instructions) and yields (burning context
  switches and migrations).  Expensive under contention — which is
  exactly what makes GCC a *fast* outlier on such tests.
* **Hang model** — Case Study 3 (Section V-E, Figs. 8-9): one Intel
  binary livelocks with all 32 threads inside
  ``__kmpc_critical_with_hint`` → ``__kmp_acquire_queuing_lock``, split
  between ``__kmp_wait_4``, ``__kmp_eq_4`` and ``sched_yield``.  We give
  Intel a small deterministic livelock rate that engages only once a
  critical section has been acquired heavily (contended queue state).
* **FTZ** — icpx's default fast fp-model sets FTZ/DAZ: subnormal results
  flush to zero.  A real, documented vendor divergence that produces
  small numeric differences on subnormal-heavy inputs.
"""

from __future__ import annotations

from .base import (
    CompilerTraits,
    FaultModel,
    OpCosts,
    ProfileSymbols,
    RuntimeParams,
    VendorModel,
)

INTEL = VendorModel(
    name="intel",
    compiler_binary="icpx",
    version="2023.2.0",
    release="02/2023",
    ops=OpCosts(),
    traits=CompilerTraits(
        fma_mode="basic",        # icpx is clang-based: same FP lowering
        flush_subnormals=True,   # FTZ/DAZ under the default fast fp-model
        instr_scale=1.15,        # Table II: 85 M instructions vs GCC's 60 M
        cycle_scale=0.93,        # platform baseline: best scalar codegen
    ),
    runtime=RuntimeParams(
        spawn_cold_cycles=260_000.0,
        spawn_warm_cycles=16_000.0,      # hot team reuse
        spawn_cold_page_faults=160,
        spawn_warm_page_faults=2,
        spawn_cold_instr=80_000.0,
        spawn_warm_instr=2_200.0,
        spawn_alloc_fraction=0.10,
        spawn_ctx_switches=2,
        barrier_cycles_per_thread=950.0,
        omp_for_sched_cycles=380.0,
        # libiomp5 shares the KMP tasking layer; slightly leaner spawn,
        # pricier joins (the taskwait path spins before sleeping)
        sections_dispatch_cycles=280.0,
        task_spawn_cycles=430.0,
        taskwait_cycles=290.0,
        lock_base_cycles=340.0,
        lock_contention_cycles=100.0,    # queuing lock: costly under contention
        wait_spin_instr_per_kcycle=500.0,  # __kmp_wait_template spins hard
        wait_ctx_per_mcycle=80.0,          # Table II: 232 ctx switches
        wait_migration_per_mcycle=33.0,    # Table II: 96 migrations
        wait_pf_per_mcycle=25.0,
        wait_primary_share=0.72,           # Fig. 6: 30.85 % vs 12.13 %
        reduction_combine_cycles_per_thread=230.0,
        reduction_tree=True,   # KMP combines partials pairwise
    ),
    faults=FaultModel(
        hang_rate=0.065,          # calibrated: ~1 livelock per 200-program campaign
        hang_min_acquires=1_500,  # livelock engages under heavy contention
        fast_rate=0.008,          # -> the rare Intel fast outlier
        fast_factor=0.55,
    ),
    symbols=ProfileSymbols(
        shared_object="libiomp5.so",
        compute=".omp_outlined.",
        serial_compute="[test binary]",
        spawn="__kmp_launch_worker",
        invoke="__kmp_invoke_microtask",
        barrier="_INTERNALf63d6d5f::__kmp_hyper_barrier_release",
        wait_primary="_INTERNALf63d6d5f::__kmp_wait_template",
        wait_secondary="__kmp_wait_4",
        lock="__kmp_acquire_queuing_lock_timed_template",
        alloc="__kmp_allocate",
        yield_="sched_yield",
    ),
)
