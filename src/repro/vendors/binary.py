"""The ``Binary`` artifact a simulated compiler produces (Fig. 1 step (b))."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable

from typing import TYPE_CHECKING

from ..core.nodes import Program
from ..core.types import FPType
from ..sim.values import f32, ftz_d, ftz_f
from .base import VendorModel

if TYPE_CHECKING:  # typing-only: avoids importing sim.lower eagerly
    from ..sim.lower import LoweredKernel


def _identity(x: float) -> float:
    return x


@dataclass
class Binary:
    """One compiled test: vendor-lowered executable plus latent state.

    ``P_i`` in the paper's notation — the product of compiling program
    ``P`` with compiler ``Comp_i``; running it with input ``I`` under the
    driver yields an execution record ``r_i``.
    """

    program: Program
    vendor: VendorModel
    opt_level: str
    fingerprint: str
    cpp_source: str
    kernel: LoweredKernel
    # deterministic latent-fault decisions (functions of fingerprint+vendor)
    crash_armed: bool = False
    hang_armed: bool = False
    slow_armed: bool = False
    fast_armed: bool = False

    @property
    def name(self) -> str:
        return f"{self.program.name}.{self.vendor.name}"

    @property
    def fp_type(self) -> FPType:
        return self.program.fp_type

    @cached_property
    def entry(self) -> Callable:
        """The bound Python callable for this binary's kernel."""
        return self.kernel.bind()

    def reset_entry(self) -> None:
        """Drop the cached :attr:`entry` binding so the next access
        re-binds under the *current* kernel backend.  Binaries cache
        their entry point per backend for speed; tests (and any driver
        that switches backends mid-process) call this instead of poking
        the ``cached_property`` slot out of ``__dict__`` by hand."""
        self.__dict__.pop("entry", None)

    @cached_property
    def wrap_fn(self) -> Callable[[float], float]:
        """Value post-processing the runtime applies to its own FP ops
        (reduction combines): binary32 rounding and/or FTZ."""
        fp32 = self.fp_type is FPType.FLOAT
        ftz = self.vendor.traits.flush_subnormals
        if fp32 and ftz:
            return lambda x: ftz_f(f32(x))
        if fp32:
            return f32
        if ftz:
            return ftz_d
        return _identity

    def fault_summary(self) -> dict[str, bool]:
        return {
            "crash_armed": self.crash_armed,
            "hang_armed": self.hang_armed,
            "slow_armed": self.slow_armed,
            "fast_armed": self.fast_armed,
        }
