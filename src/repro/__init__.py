"""repro — randomized differential testing of OpenMP implementations.

A faithful, laptop-scale reproduction of *"Testing the Unknown: A Framework
for OpenMP Testing via Random Program Generation"* (SC 2024): a Varity-style
random generator of OpenMP C++ test programs, floating-point input
generation, a differential execution pipeline over multiple (simulated or
native) OpenMP implementations, and slow/fast/correctness outlier detection.

Quickstart — one differential test::

    from repro import quick_differential_test

    result = quick_differential_test(seed=42)
    print(result.table())

Quickstart — a campaign through the session API::

    from repro import CampaignConfig, CampaignSession

    cfg = CampaignConfig(n_programs=20, inputs_per_program=3)
    session = CampaignSession(cfg, engine="process", jobs=4)

    for verdict in session.stream():        # verdicts as they complete
        if verdict.outliers:
            print(*verdict.outliers, sep="\\n")

    session.checkpoint("campaign.jsonl")    # ... interrupt any time ...
    session = CampaignSession.resume("campaign.jsonl")
    result = session.run()                  # finishes the remaining grid
    print(result.table.total_outlier_tests(), "outlier tests")

The pipeline is organized in three pluggable layers:

* **backends** (:mod:`repro.backends.registry`) — every OpenMP
  implementation behind one ``compile``/``execute`` contract; register
  your own with :func:`~repro.backends.registry.register_backend`;
* **engines** (:mod:`repro.driver.engine`) — serial, thread-pool, or
  process-pool scheduling of the campaign grid;
* **sessions** (:mod:`repro.harness.session`) — streaming, resumable
  campaign state on top of both.
"""

from .config import (
    DIRECTIVE_MIXES,
    CampaignConfig,
    GeneratorConfig,
    MachineConfig,
    OutlierConfig,
    TriageConfig,
    apply_directive_mix,
    load_campaign,
    save_campaign,
)
from .core import (
    FPCategory,
    FPType,
    InputGenerator,
    Program,
    ProgramGenerator,
    TestInput,
    check_conformance,
    extract_features,
    find_races,
    is_race_free,
)
from .errors import (
    AnalysisError,
    BackendUnavailable,
    CompilationError,
    ConfigError,
    ExecutionError,
    GenerationError,
    GrammarError,
    ReproError,
    UnknownBackendError,
)

__version__ = "1.1.0"

__all__ = [
    "AnalysisError",
    "BackendUnavailable",
    "CampaignConfig",
    "DIRECTIVE_MIXES",
    "CampaignSession",
    "CompilationError",
    "ConfigError",
    "ExecutionError",
    "FPCategory",
    "FPType",
    "GenerationError",
    "GeneratorConfig",
    "apply_directive_mix",
    "GrammarError",
    "InputGenerator",
    "MachineConfig",
    "OutlierConfig",
    "Program",
    "ProgramGenerator",
    "ReproError",
    "TestInput",
    "TriageConfig",
    "UnknownBackendError",
    "reduce_case",
    "available_backends",
    "check_conformance",
    "create_engine",
    "extract_features",
    "find_races",
    "get_backend",
    "is_race_free",
    "load_campaign",
    "register_backend",
    "save_campaign",
    "quick_differential_test",
    "__version__",
]


def __getattr__(name: str):
    """Lazy re-exports of the session/backend/engine layer.

    Importing them eagerly would pull the whole harness (and the
    backends registry) into every ``import repro``; resolving on first
    access keeps ``import repro`` light for generator-only users.
    """
    if name == "CampaignSession":
        from .harness.session import CampaignSession

        return CampaignSession
    if name in ("register_backend", "get_backend", "available_backends"):
        from . import backends

        return getattr(backends, name)
    if name == "create_engine":
        from .driver.engine import create_engine

        return create_engine
    if name == "reduce_case":
        from .reduce import reduce_case

        return reduce_case
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def quick_differential_test(seed: int = 42, program_index: int = 0):
    """Generate one program + input and run it through all three simulated
    OpenMP implementations; returns the differential comparison.

    Convenience entry point used by the quickstart example and docs.
    """
    from .harness.campaign import differential_test_single

    return differential_test_single(seed=seed, program_index=program_index)
