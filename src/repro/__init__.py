"""repro — randomized differential testing of OpenMP implementations.

A faithful, laptop-scale reproduction of *"Testing the Unknown: A Framework
for OpenMP Testing via Random Program Generation"* (SC 2024): a Varity-style
random generator of OpenMP C++ test programs, floating-point input
generation, a differential execution pipeline over multiple (simulated or
native) OpenMP implementations, and slow/fast/correctness outlier detection.

Quickstart::

    from repro import quick_differential_test

    result = quick_differential_test(seed=42)
    print(result.table())

See :mod:`repro.harness.campaign` for the full Figure-1 pipeline.
"""

from .config import (
    CampaignConfig,
    GeneratorConfig,
    MachineConfig,
    OutlierConfig,
    load_campaign,
    save_campaign,
)
from .core import (
    FPCategory,
    FPType,
    InputGenerator,
    Program,
    ProgramGenerator,
    TestInput,
    check_conformance,
    extract_features,
    find_races,
    is_race_free,
)
from .errors import (
    AnalysisError,
    BackendUnavailable,
    CompilationError,
    ConfigError,
    ExecutionError,
    GenerationError,
    GrammarError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BackendUnavailable",
    "CampaignConfig",
    "CompilationError",
    "ConfigError",
    "ExecutionError",
    "FPCategory",
    "FPType",
    "GenerationError",
    "GeneratorConfig",
    "GrammarError",
    "InputGenerator",
    "MachineConfig",
    "OutlierConfig",
    "Program",
    "ProgramGenerator",
    "ReproError",
    "TestInput",
    "check_conformance",
    "extract_features",
    "find_races",
    "is_race_free",
    "load_campaign",
    "save_campaign",
    "quick_differential_test",
    "__version__",
]


def quick_differential_test(seed: int = 42, program_index: int = 0):
    """Generate one program + input and run it through all three simulated
    OpenMP implementations; returns the differential comparison.

    Convenience entry point used by the quickstart example and docs.
    """
    from .harness.campaign import differential_test_single

    return differential_test_single(seed=seed, program_index=program_index)
