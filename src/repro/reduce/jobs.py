"""Picklable triage work items for the execution engines.

Reductions are mutually independent, so a session parallelizes them the
same way it parallelizes campaign work units: a :class:`TriageJob` is
**coordinates, not objects** — the campaign config plus the grid indices
and the flagged (vendor, kind).  Program and input are re-derived inside
whichever worker runs the job (generation is a pure function of
``(config, index)``), which keeps the job pickle small and lets a forked
:class:`~repro.driver.engine.ProcessPoolEngine` worker rebuild the whole
case from a handful of scalars.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.outliers import OutlierKind
from ..config import CampaignConfig
from ..core.generator import ProgramGenerator
from ..core.inputs import InputGenerator
from .reducer import OutlierCase, reduce_case
from .triage import TriagedOutlier, triaged_from_result


@dataclass(frozen=True)
class TriageJob:
    """One outlier reduction, described by campaign coordinates."""

    config: CampaignConfig
    program_index: int
    input_index: int
    vendor: str
    kind: str  # OutlierKind value — kept primitive for clean pickles


def build_case(job: TriageJob) -> OutlierCase:
    """Re-derive the outlier's program and failing input from the config.

    Non-random sources rebuild through their provenance specs (a pure
    function of ``(config, index)`` just like the random stream, one
    indirection richer), so reducers shrink the very program the
    campaign ran regardless of how it was planned.
    """
    cfg = job.config
    if cfg.program_source == "random":
        program = ProgramGenerator(cfg.generator,
                                   seed=cfg.seed).generate(job.program_index)
    else:
        from ..corpus import create_source

        source = create_source(cfg)
        program = source.materialize(source.spec(job.program_index))
    test_input = InputGenerator(cfg.generator, seed=cfg.seed + 1).generate(
        program, job.input_index)
    return OutlierCase.from_campaign(cfg, program, test_input, job.vendor,
                                     OutlierKind(job.kind))


def run_triage_job(job: TriageJob) -> TriagedOutlier:
    """Execute one reduction start to finish (pure function of the job)."""
    case = build_case(job)
    result = reduce_case(case, job.config.triage)
    return triaged_from_result(job.program_index, job.input_index,
                               job.vendor, OutlierKind(job.kind), result)
