"""Reproducer bundles: self-contained directories for one reduced outlier.

A bundle is what gets attached to a bug report — everything needed to
see the failure without the fuzzer in the loop:

* ``reduced.cpp`` / ``original.cpp`` — the minimal and the as-generated
  C++ translation units (both emit through the canonical code
  generator, so they compile with any ``-fopenmp`` toolchain),
* ``input.json`` — the failing input vector, both as named values and
  as the ``argv`` the emitted ``main()`` expects,
* ``verdict.json`` — the expected-vs-actual differential verdict: which
  backend was flagged, with which outlier kind, and every backend's
  status/output/time on the reduced test,
* ``config.json`` + ``repro.sh`` — the exact campaign configuration and
  the commands that re-derive, re-reduce, and natively replay the test,
* ``provenance.json`` — the program's :class:`~repro.corpus.ProgramSpec`
  provenance record: which source planned it, its seed coordinates, and
  (for mutants) the parent chain and parent shape fingerprint.

:func:`write_triage_artifacts` lays a whole report out as one directory:
``summary.json`` plus one bundle per bug bucket exemplar.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..codegen.emit_main import emit_translation_unit
from ..config import CampaignConfig, campaign_to_json
from .triage import TriagedOutlier, TriageReport


def _input_payload(triaged: TriagedOutlier) -> dict:
    return triaged.result.reduced_input.to_payload(
        triaged.result.reduced_program)


def _verdict_payload(triaged: TriagedOutlier) -> dict:
    result = triaged.result
    payload: dict = {
        "expected": {
            "vendor": triaged.vendor,
            "kind": triaged.kind.value,
        },
        "signature": triaged.signature,
        "confirmed": result.confirmed,
        "original_statements": result.original_statements,
        "reduced_statements": result.reduced_statements,
        "reduction_factor": round(result.reduction_factor, 3),
        "candidates_tried": result.candidates_tried,
        "candidates_kept": result.candidates_kept,
        "history": list(result.history),
    }
    if result.verdict is not None:
        payload["actual"] = {
            "outliers": [str(o) for o in result.verdict.outliers],
            "output_divergent": result.verdict.output_divergent,
            "records": [r.to_dict() for r in result.verdict.records],
        }
    return payload


def _provenance_payload(triaged: TriagedOutlier,
                        config: CampaignConfig) -> dict:
    from ..corpus import create_source

    source = create_source(config)
    return {
        "program_source": config.program_source,
        "spec": source.spec(triaged.program_index).to_dict(),
    }


#: backends always present in a fresh process (registered at import
#: time by repro.backends.registry); anything else in a bundle's
#: compiler list was registered at runtime by the campaign driver
_BUILTIN_BACKENDS = frozenset({"gcc", "clang", "intel", "gcc-native"})


def _repro_script(triaged: TriagedOutlier, config: CampaignConfig) -> str:
    result = triaged.result
    argv = " ".join(f"'{a}'" for a in
                    result.reduced_input.argv(result.reduced_program))
    custom = [c for c in config.compilers if c not in _BUILTIN_BACKENDS]
    caveat = ""
    if custom:
        caveat = (
            "# NOTE: this campaign used runtime-registered backend(s) "
            f"{', '.join(custom)};\n"
            "# re-deriving requires your driver to register_backend() "
            "them first\n"
            "# (the native replay below needs no such setup).\n"
        )
    return (
        "#!/bin/sh\n"
        f"# {triaged.kind.value} outlier on {triaged.vendor}: "
        f"{triaged.program_name}#in{triaged.input_index}\n"
        f"# bug signature: {triaged.signature}\n"
        "#\n"
        "# Re-derive and re-reduce from the campaign configuration\n"
        "# (requires the repro package on PYTHONPATH):\n"
        f"#   repro-omp reduce --config config.json "
        f"--index {triaged.program_index} --input {triaged.input_index} "
        f"--vendor {triaged.vendor} --out .\n"
        f"{caveat}"
        "#\n"
        "# Replay the reduced test with a real OpenMP toolchain:\n"
        "set -e\n"
        "g++ -O3 -fopenmp reduced.cpp -o reduced\n"
        f"./reduced {argv}\n"
    )


def write_bundle(out_dir: str | Path, triaged: TriagedOutlier,
                 config: CampaignConfig) -> Path:
    """Write one reproducer bundle; returns the bundle directory."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    result = triaged.result
    (out / "reduced.cpp").write_text(
        emit_translation_unit(result.reduced_program))
    (out / "original.cpp").write_text(
        emit_translation_unit(result.case.program))
    (out / "input.json").write_text(
        json.dumps(_input_payload(triaged), indent=2, sort_keys=True))
    (out / "verdict.json").write_text(
        json.dumps(_verdict_payload(triaged), indent=2, sort_keys=True))
    (out / "config.json").write_text(campaign_to_json(config))
    (out / "provenance.json").write_text(
        json.dumps(_provenance_payload(triaged, config), indent=2,
                   sort_keys=True))
    script = out / "repro.sh"
    script.write_text(_repro_script(triaged, config))
    script.chmod(0o755)
    return out


def _bucket_dirname(index: int, signature: str) -> str:
    safe = signature.replace("|", "_").replace("+", "-")
    return f"bucket-{index:02d}-{safe}"


def write_triage_artifacts(report: TriageReport, config: CampaignConfig,
                           out_dir: str | Path) -> Path:
    """Lay a triage report out on disk: summary + per-bucket bundles."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    summary = {
        "n_outliers": report.n_outliers,
        "n_confirmed": report.n_confirmed,
        "mean_reduction_factor": round(report.mean_reduction_factor(), 3),
        "buckets": [
            {
                "signature": b.signature,
                "kind": b.kind,
                "vendor": b.vendor,
                "n_tests": len(b),
                "exemplar": {
                    "program": b.exemplar.program_name,
                    "program_index": b.exemplar.program_index,
                    "input_index": b.exemplar.input_index,
                    "reduced_statements":
                        b.exemplar.result.reduced_statements,
                    "original_statements":
                        b.exemplar.result.original_statements,
                },
                "members": [
                    {"program": t.program_name,
                     "program_index": t.program_index,
                     "input_index": t.input_index}
                    for t in b.members
                ],
                "directory": _bucket_dirname(i, b.signature),
            }
            for i, b in enumerate(report.buckets)
        ],
    }
    (out / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True))
    for i, bucket in enumerate(report.buckets):
        write_bundle(out / _bucket_dirname(i, bucket.signature),
                     bucket.exemplar, config)
    return out
