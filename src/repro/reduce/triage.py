"""Triage orchestration: reduced outliers -> bug buckets -> report.

One :class:`TriagedOutlier` is the unit a reduction job returns: the
outlier's grid coordinates, its :class:`~repro.reduce.reducer.
ReductionResult`, and the bug signature computed from the *reduced*
program's directive features (see :mod:`repro.analysis.buckets` for why
reduced, not original).  :func:`assemble_report` sorts job results into
a deterministic order — whatever engine ran them, in whatever completion
order — and groups them into buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.buckets import BugBucket, bug_signature, build_buckets
from ..analysis.outliers import OutlierKind
from ..core.features import extract_features
from .reducer import ReductionResult


@dataclass
class TriagedOutlier:
    """One outlier after reduction, ready for bucketing."""

    program_index: int
    input_index: int
    vendor: str
    kind: OutlierKind
    signature: str
    result: ReductionResult

    @property
    def program_name(self) -> str:
        return self.result.case.program.name

    def sort_key(self) -> tuple:
        return (self.program_index, self.input_index, self.vendor,
                self.kind.value)


def triaged_from_result(program_index: int, input_index: int, vendor: str,
                        kind: OutlierKind,
                        result: ReductionResult) -> TriagedOutlier:
    """Tag a reduction result with its bug signature."""
    features = extract_features(result.reduced_program)
    return TriagedOutlier(
        program_index=program_index, input_index=input_index, vendor=vendor,
        kind=kind, signature=bug_signature(kind, vendor, features),
        result=result)


@dataclass
class TriageReport:
    """Everything one triage run produced.

    Only *confirmed* reductions are bucketed — an outlier whose original
    test did not reproduce under re-execution (flaky timing on a native
    backend, state-keyed latent triggers) has no reduced program to
    fingerprint, and a bucket exemplar must be a working reproducer.
    The unconfirmed cases stay listed in :attr:`triaged` (and in
    :meth:`unconfirmed`) so they are reported, not silently dropped.
    """

    triaged: list[TriagedOutlier] = field(default_factory=list)
    buckets: list[BugBucket] = field(default_factory=list)

    @property
    def n_outliers(self) -> int:
        return len(self.triaged)

    @property
    def n_confirmed(self) -> int:
        return sum(t.result.confirmed for t in self.triaged)

    def unconfirmed(self) -> list[TriagedOutlier]:
        return [t for t in self.triaged if not t.result.confirmed]

    def mean_reduction_factor(self) -> float:
        confirmed = [t.result.reduction_factor for t in self.triaged
                     if t.result.confirmed]
        if not confirmed:
            return 1.0
        return sum(confirmed) / len(confirmed)

    def render(self) -> str:
        """Human-readable bucket table."""
        lines = [f"triage: {self.n_outliers} outliers "
                 f"({self.n_confirmed} confirmed) -> "
                 f"{len(self.buckets)} bug bucket(s), "
                 f"mean reduction x{self.mean_reduction_factor():.1f}"]
        for t in self.unconfirmed():
            lines.append(f"  unconfirmed (not bucketed): "
                         f"{t.program_name}#in{t.input_index} "
                         f"{t.kind.value} on {t.vendor}")
        if not self.buckets:
            return "\n".join(lines)
        lines.append(f"{'bucket':<42} {'kind':<6} {'backend':<12} "
                     f"{'tests':>5} {'stmts':>11}")
        for b in self.buckets:
            ex: TriagedOutlier = b.exemplar
            stmts = (f"{ex.result.original_statements}->"
                     f"{ex.result.reduced_statements}")
            lines.append(f"{b.vector:<42} {b.kind:<6} {b.vendor:<12} "
                         f"{len(b):>5} {stmts:>11}")
            lines.append(f"  exemplar: {ex.program_name}#in{ex.input_index}")
        return "\n".join(lines)


def assemble_report(triaged: list[TriagedOutlier]) -> TriageReport:
    """Deterministic report from job results in any completion order."""
    ordered = sorted(triaged, key=TriagedOutlier.sort_key)
    entries = [(t.signature, t) for t in ordered if t.result.confirmed]
    buckets = build_buckets(
        entries, size_of=lambda t: t.result.reduced_statements)
    return TriageReport(triaged=ordered, buckets=buckets)
