"""Outlier triage: test-case reduction, bug bucketing, reproducer bundles.

The campaign pipeline ends where a differential test flags an outlier; at
production scale that is where the real work *starts* — a 60-statement
random program tells a vendor nothing about which 3 statements trip the
bug, and a thousand outliers from one latent fault are one bug report,
not a thousand.  This package adds the triage stage:

* :mod:`repro.reduce.reducer` — a delta-debugging reducer over the typed
  AST: candidate passes drop statements, strip directive clauses,
  simplify expressions, and shrink loop bounds and inputs; every
  candidate is revalidated through grammar conformance, the race oracle,
  and a fresh differential run, and kept only if it still reproduces the
  *same* outlier kind on the *same* backend.
* :mod:`repro.reduce.triage` — fingerprints reduced outliers into bug
  buckets (outlier kind x directive-feature vector x faulting backend)
  with one exemplar reproducer per bucket.
* :mod:`repro.reduce.bundle` — self-contained reproducer directories
  (emitted C++, failing input, expected-vs-actual verdict JSON, re-run
  command).
* :mod:`repro.reduce.jobs` — picklable per-outlier work items so
  sessions can parallelize reductions across the execution engines
  exactly like campaign work units.

Entry points: :meth:`repro.harness.session.CampaignSession.triage`, the
``repro-omp reduce`` CLI subcommand, and ``repro-omp campaign --triage``.
"""

from .reducer import OutlierCase, ReductionOracle, ReductionResult, reduce_case
from .triage import TriagedOutlier, TriageReport, assemble_report

__all__ = [
    "OutlierCase",
    "ReductionOracle",
    "ReductionResult",
    "TriagedOutlier",
    "TriageReport",
    "assemble_report",
    "reduce_case",
]
