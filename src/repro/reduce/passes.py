"""Candidate-producing reduction passes over the typed AST.

Each pass enumerates *candidate* programs — clones of the current best
with one structural edit applied — in a deterministic order.  Passes
only propose; the :class:`~repro.reduce.reducer.ReductionOracle`
disposes: a candidate survives only if it is grammar-conformant, still
race-free, and still reproduces the original outlier.  That split keeps
the passes simple (they may propose semantically invalid edits; the
gates reject them) and makes reduction deterministic (no randomness
anywhere — a fixed case reduces to a fixed program).

Every candidate strictly shrinks the program under a well-founded
measure (statement count, expression node count, clause count, or loop
bound magnitude), so greedy first-accept iteration terminates without a
fuel counter; the reducer still carries one as a safety valve.

Passes, in the order the reducer runs them:

1. :class:`DropStatements` — ddmin-style contiguous-span removal per
   block, large spans first (one accepted candidate can delete half a
   block), then single statements.
2. :class:`UnwrapConstructs` — splice a construct's body into its
   parent: ``critical``/``single``/``if``/``task`` bodies hoisted,
   ``atomic`` updates bared, ``sections`` arms dropped.
3. :class:`StripClauses` — remove ``schedule(...)``, lower
   ``collapse(2)``, demote ``omp for`` to a serial loop, drop
   ``reduction``/``private``/``firstprivate`` entries.
4. :class:`NeutralizeAccumulator` — rewrite ``comp`` updates as
   tid-indexed stores so stuck ``reduction`` clauses unblock.
5. :class:`ShrinkLoopBounds` — constant bounds shrink toward 2;
   parameter bounds become small constants.
6. :class:`SimplifyExpressions` — non-leaf expressions collapse to a
   referenced variable or a numeral.
"""

from __future__ import annotations

from typing import Iterator

from ..core.nodes import (
    ArrayRef,
    Assignment,
    Block,
    DeclAssign,
    ForLoop,
    IfBlock,
    IntNumeral,
    OmpAtomic,
    OmpCritical,
    OmpParallel,
    OmpSections,
    OmpSingle,
    OmpTask,
    Program,
    ThreadIdx,
    VarRef,
    walk,
)
from ..core.types import AssignOpKind, VarKind
from ..core.surgery import (
    clone_program,
    index_blocks,
    index_statements,
    is_leaf_expr,
    simplest_expr,
)

#: a (description, candidate program) proposal
Candidate = tuple[str, Program]

#: the loop-bound floor candidates shrink toward — 2 keeps the loop a
#: loop (bound 1 or 0 often optimizes the construct away entirely and
#: loses scheduling-dependent faults)
_MIN_BOUND = 2


class ReductionPass:
    """One family of candidate edits."""

    name: str = "abstract"

    def candidates(self, program: Program) -> Iterator[Candidate]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# 1. statement removal (ddmin-style spans)
# ----------------------------------------------------------------------

class DropStatements(ReductionPass):
    """Remove contiguous statement spans, largest first, per block."""

    name = "drop-statements"

    def candidates(self, program: Program) -> Iterator[Candidate]:
        for bi, block in enumerate(index_blocks(program)):
            n = len(block.stmts)
            span = n  # a whole-block drop is rejected by conformance,
            # but dropping all-but-nothing of an *optional* block (e.g. a
            # parallel region that is itself one statement of its parent)
            # is proposed at the parent level, so start at full size
            while span >= 1:
                for start in range(0, n - span + 1):
                    yield (f"drop stmts[{start}:{start + span}] of block {bi}",
                           _drop_span(program, bi, start, span))
                span //= 2


def _drop_span(program: Program, block_index: int, start: int,
               count: int) -> Program:
    cand = clone_program(program)
    block = index_blocks(cand)[block_index]
    del block.stmts[start:start + count]
    return cand


# ----------------------------------------------------------------------
# 2. construct unwrapping
# ----------------------------------------------------------------------

class UnwrapConstructs(ReductionPass):
    """Hoist construct bodies into their parents; drop section arms."""

    name = "unwrap-constructs"

    def candidates(self, program: Program) -> Iterator[Candidate]:
        for bi, block in enumerate(index_blocks(program)):
            for si, stmt in enumerate(block.stmts):
                if isinstance(stmt, (OmpCritical, OmpSingle, IfBlock,
                                     OmpTask)):
                    kind = type(stmt).__name__
                    yield (f"unwrap {kind} at block {bi} stmt {si}",
                           _splice_body(program, bi, si))
                elif isinstance(stmt, OmpAtomic):
                    yield (f"bare atomic at block {bi} stmt {si}",
                           _bare_atomic(program, bi, si))
                elif isinstance(stmt, OmpSections) and len(stmt.sections) > 1:
                    for ai in range(len(stmt.sections)):
                        yield (f"drop section arm {ai} at block {bi} "
                               f"stmt {si}",
                               _drop_arm(program, bi, si, ai))


def _splice_body(program: Program, block_index: int,
                 stmt_index: int) -> Program:
    cand = clone_program(program)
    block = index_blocks(cand)[block_index]
    stmt = block.stmts[stmt_index]
    body: Block = stmt.body  # type: ignore[union-attr]
    block.stmts[stmt_index:stmt_index + 1] = list(body.stmts)
    return cand


def _bare_atomic(program: Program, block_index: int,
                 stmt_index: int) -> Program:
    cand = clone_program(program)
    block = index_blocks(cand)[block_index]
    atomic = block.stmts[stmt_index]
    assert isinstance(atomic, OmpAtomic)
    block.stmts[stmt_index] = atomic.update
    return cand


def _drop_arm(program: Program, block_index: int, stmt_index: int,
              arm_index: int) -> Program:
    cand = clone_program(program)
    sections = index_blocks(cand)[block_index].stmts[stmt_index]
    assert isinstance(sections, OmpSections)
    del sections.sections[arm_index]
    return cand


# ----------------------------------------------------------------------
# 3. clause stripping
# ----------------------------------------------------------------------

class StripClauses(ReductionPass):
    """Remove directive clauses one at a time."""

    name = "strip-clauses"

    def candidates(self, program: Program) -> Iterator[Candidate]:
        for idx, stmt in enumerate(index_statements(program)):
            if isinstance(stmt, ForLoop):
                if stmt.schedule is not None:
                    yield (f"strip schedule clause at stmt {idx}",
                           _edit_stmt(program, idx, _strip_schedule))
                if stmt.collapse > 1:
                    yield (f"lower collapse at stmt {idx}",
                           _edit_stmt(program, idx, _lower_collapse))
                if stmt.omp_for:
                    # demote the worksharing loop to a serial loop —
                    # canonicalizes outliers whose fault does not need
                    # worksharing, so same-fault reductions converge on
                    # one directive vector (rejected where the region is
                    # combined or the fault lives in the worksharing)
                    yield (f"strip omp for at stmt {idx}",
                           _edit_stmt(program, idx, _strip_omp_for))
            elif isinstance(stmt, OmpParallel):
                if stmt.clauses.reduction is not None:
                    yield (f"drop reduction clause at stmt {idx}",
                           _edit_stmt(program, idx, _drop_reduction))
                for vi in range(len(stmt.clauses.private)):
                    yield (f"drop private #{vi} at stmt {idx}",
                           _edit_stmt(program, idx,
                                      _drop_listed("private", vi)))
                for vi in range(len(stmt.clauses.firstprivate)):
                    yield (f"drop firstprivate #{vi} at stmt {idx}",
                           _edit_stmt(program, idx,
                                      _drop_listed("firstprivate", vi)))


def _edit_stmt(program: Program, stmt_index: int, edit) -> Program:
    cand = clone_program(program)
    edit(index_statements(cand)[stmt_index])
    return cand


def _strip_schedule(stmt: ForLoop) -> None:
    stmt.schedule = None
    stmt.schedule_chunk = 0


def _strip_omp_for(stmt: ForLoop) -> None:
    stmt.omp_for = False
    stmt.schedule = None
    stmt.schedule_chunk = 0
    stmt.collapse = 1


def _lower_collapse(stmt: ForLoop) -> None:
    stmt.collapse = 1


def _drop_reduction(stmt: OmpParallel) -> None:
    stmt.clauses.reduction = None


def _drop_listed(clause: str, index: int):
    def edit(stmt: OmpParallel) -> None:
        del getattr(stmt.clauses, clause)[index]
    return edit


# ----------------------------------------------------------------------
# 4. accumulator neutralization
# ----------------------------------------------------------------------

class NeutralizeAccumulator(ReductionPass):
    """Rewrite writes to ``comp`` as tid-indexed array stores.

    A ``reduction(... : comp)`` clause cannot be stripped while the loop
    body still updates ``comp`` — the drop candidate introduces a race
    and the oracle rejects it.  When the fault under reduction does not
    *need* the accumulator, replacing ``comp op= expr`` with
    ``arr[omp_get_thread_num()] = 1.0`` (race-free by index disjointness,
    Section III-G) unblocks the clause strip on the next round, so
    same-fault outliers converge on one canonical directive vector
    whether or not their original programs carried a reduction.
    """

    name = "neutralize-accumulator"

    def candidates(self, program: Program) -> Iterator[Candidate]:
        arrays = program.array_params
        if not arrays:
            return
        target = arrays[0]
        for idx, stmt in enumerate(index_statements(program)):
            if not isinstance(stmt, Assignment):
                continue
            if not isinstance(stmt.target, VarRef):
                continue
            if stmt.target.var.kind is not VarKind.COMP:
                continue
            yield (f"neutralize comp write at stmt {idx}",
                   _edit_stmt(program, idx, _to_tid_store(target)))


def _to_tid_store(array):
    def edit(stmt: Assignment) -> None:
        stmt.target = ArrayRef(array, ThreadIdx())
        stmt.op = AssignOpKind.ASSIGN
        stmt.expr = simplest_expr()
    return edit


# ----------------------------------------------------------------------
# 5. loop-bound shrinking
# ----------------------------------------------------------------------

class ShrinkLoopBounds(ReductionPass):
    """Shrink trip counts: halve-ish steps, then the floor of 2.

    A parameter-supplied bound is replaced by a small constant — that
    also decouples the loop from the input vector, which lets the input
    shrinker simplify the now-unused integer afterwards.
    """

    name = "shrink-loop-bounds"

    def candidates(self, program: Program) -> Iterator[Candidate]:
        for idx, stmt in enumerate(index_statements(program)):
            if not isinstance(stmt, ForLoop):
                continue
            if isinstance(stmt.bound, IntNumeral):
                value = stmt.bound.value
                if value > _MIN_BOUND:
                    mid = max(_MIN_BOUND, value // 8)
                    if mid < value and mid != _MIN_BOUND:
                        yield (f"shrink bound {value} -> {mid} at stmt {idx}",
                               _edit_stmt(program, idx, _set_bound(mid)))
                    yield (f"shrink bound {value} -> {_MIN_BOUND} "
                           f"at stmt {idx}",
                           _edit_stmt(program, idx, _set_bound(_MIN_BOUND)))
            else:  # VarRef — an int kernel parameter
                yield (f"constant bound at stmt {idx}",
                       _edit_stmt(program, idx, _set_bound(_MIN_BOUND)))


def _set_bound(value: int):
    def edit(stmt: ForLoop) -> None:
        stmt.bound = IntNumeral(value)
    return edit


# ----------------------------------------------------------------------
# 5. expression simplification
# ----------------------------------------------------------------------

class SimplifyExpressions(ReductionPass):
    """Collapse non-leaf expressions to a leaf.

    Two variants per site, tried in order: the first variable the
    expression already reads (preserves data flow — more likely to keep
    value-dependent faults alive) and the canonical numeral ``1.0``.
    """

    name = "simplify-expressions"

    def candidates(self, program: Program) -> Iterator[Candidate]:
        for idx, stmt in enumerate(index_statements(program)):
            if isinstance(stmt, (Assignment, DeclAssign)):
                expr = stmt.expr
            else:
                continue
            if is_leaf_expr(expr):
                continue
            ref = next((n for n in walk(expr) if isinstance(n, VarRef)
                        and n.var.is_fp), None)
            if ref is not None:
                yield (f"collapse expr to {ref.var.name} at stmt {idx}",
                       _edit_stmt(program, idx, _set_expr(VarRef(ref.var))))
            yield (f"collapse expr to numeral at stmt {idx}",
                   _edit_stmt(program, idx, _set_expr(simplest_expr())))


def _set_expr(expr):
    def edit(stmt) -> None:
        stmt.expr = expr
    return edit


#: the reducer's fixed pass pipeline, in execution order
DEFAULT_PASSES: tuple[ReductionPass, ...] = (
    DropStatements(),
    UnwrapConstructs(),
    StripClauses(),
    NeutralizeAccumulator(),
    ShrinkLoopBounds(),
    SimplifyExpressions(),
)
