"""Delta-debugging reduction of one flagged outlier test.

The unit of reduction is an :class:`OutlierCase` — one (program, input)
pair plus the outlier it produced (kind + faulting backend) and the
campaign parameters needed to re-run the differential test.  The
:class:`ReductionOracle` is the single arbiter of candidate survival; a
candidate program/input pair is **kept only if all three gates pass**:

1. **Grammar conformance** — :func:`repro.core.grammar.check_conformance`
   accepts the candidate exactly as it accepts generator output.
2. **Race freedom** — :func:`repro.core.races.find_races` (which
   dispatches to the :mod:`repro.core.taskgraph` rule for graph-shaped
   regions) reports no races: reduction must never "simplify" a
   correctness outlier into an undefined-behaviour program.
3. **Same-outlier reproduction** — the differential test is re-run
   through the backend registry and the verdict must still flag the
   *same kind* of outlier on the *same backend*.  A crash that turns
   into a hang, or migrates to another vendor, is a different bug — the
   candidate is rejected.

Greedy first-accept iteration over the deterministic pass pipeline
(:data:`repro.reduce.passes.DEFAULT_PASSES`) makes the whole reduction a
pure function of the case: reducing twice yields byte-identical
programs, which the property suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.outliers import OutlierKind, TestVerdict, analyze_test
from ..config import CampaignConfig, MachineConfig, OutlierConfig, TriageConfig
from ..core.grammar import check_conformance
from ..core.inputs import TestInput, classify
from ..core.nodes import Program
from ..core.races import find_races
from ..core.surgery import count_statements, reads_undeclared_locals
from ..driver.records import RunRecord
from ..errors import GrammarError, ReproError
from ..obs.spans import span
from .passes import DEFAULT_PASSES, ReductionPass


@dataclass(frozen=True)
class OutlierCase:
    """One outlier to reduce: the test, the flag, and how to re-run it."""

    program: Program
    test_input: TestInput
    vendor: str
    kind: OutlierKind
    compilers: tuple[str, ...]
    opt_level: str = "-O3"
    machine: MachineConfig = field(default_factory=MachineConfig)
    outliers: OutlierConfig = field(default_factory=OutlierConfig)

    @classmethod
    def from_campaign(cls, config: CampaignConfig, program: Program,
                      test_input: TestInput, vendor: str,
                      kind: OutlierKind) -> "OutlierCase":
        return cls(program=program, test_input=test_input, vendor=vendor,
                   kind=kind, compilers=config.compilers,
                   opt_level=config.opt_level, machine=config.machine,
                   outliers=config.outliers)


def run_differential_test(program: Program, test_input: TestInput,
                          compilers: tuple[str, ...], opt_level: str,
                          machine: MachineConfig,
                          outliers: OutlierConfig) -> TestVerdict:
    """One differential test through the backend registry.

    The single re-execution primitive of the triage stage — the oracle
    and the CLI's inline mode both run candidates through here.
    """
    from ..backends.registry import get_backend

    records: list[RunRecord] = []
    for name in compilers:
        backend = get_backend(name)
        exe = backend.compile(program, opt_level)
        records.append(backend.execute(exe, test_input, machine))
    return analyze_test(records, outliers)


class ReductionOracle:
    """Validates reduction candidates; counts what it evaluated."""

    def __init__(self, case: OutlierCase):
        self.case = case
        self.evaluated = 0
        self.accepted = 0
        #: every (program, input) the oracle accepted, in order — the
        #: property tests re-assert the gate invariants over this trail
        self.accepted_trail: list[tuple[Program, TestInput]] = []

    # -- gates ---------------------------------------------------------
    def gates_pass(self, program: Program) -> bool:
        """The static gates: conformance + scope validity + race freedom."""
        try:
            check_conformance(program)
        except GrammarError:
            return False
        if reads_undeclared_locals(program):
            # statement removal orphaned a temporary/loop-variable use;
            # the tree is no longer valid C++ (grammar conformance does
            # not cover this — the generator cannot produce it)
            return False
        return not find_races(program)

    def run_differential(self, program: Program,
                         test_input: TestInput) -> TestVerdict:
        """Re-run the differential test through the backend registry."""
        case = self.case
        return run_differential_test(program, test_input, case.compilers,
                                     case.opt_level, case.machine,
                                     case.outliers)

    def still_fails(self, verdict: TestVerdict) -> bool:
        return any(o.vendor == self.case.vendor and o.kind is self.case.kind
                   for o in verdict.outliers)

    def reproduces(self, program: Program,
                   test_input: TestInput) -> TestVerdict | None:
        """Full candidate check; the verdict if all three gates pass."""
        self.evaluated += 1
        if not self.gates_pass(program):
            return None
        try:
            verdict = self.run_differential(program, test_input)
        except ReproError:
            # a backend refused the candidate (compilation/execution
            # error) — not a reproduction, just a rejected edit
            return None
        if not self.still_fails(verdict):
            return None
        self.accepted += 1
        self.accepted_trail.append((program, test_input))
        return verdict


@dataclass
class ReductionResult:
    """What one reduction produced."""

    case: OutlierCase
    reduced_program: Program
    reduced_input: TestInput
    verdict: TestVerdict | None
    #: False when the original case did not reproduce under re-execution
    #: (e.g. a latent-fault trigger keyed to state the case no longer
    #: has); the "reduced" program is then the untouched original
    confirmed: bool = True
    original_statements: int = 0
    reduced_statements: int = 0
    rounds: int = 0
    candidates_tried: int = 0
    candidates_kept: int = 0
    history: list[str] = field(default_factory=list)

    @property
    def reduction_factor(self) -> float:
        if self.reduced_statements <= 0:
            return 1.0
        return self.original_statements / self.reduced_statements


def _shrunk_inputs(program: Program,
                   test_input: TestInput) -> list[tuple[str, TestInput]]:
    """Input-vector candidates: one simplified parameter per candidate."""
    out: list[tuple[str, TestInput]] = []
    for p in program.params:
        current = test_input.values[p.name]
        target: float | int = 2 if p.is_int else 1.0
        if current == target:
            continue
        values = dict(test_input.values)
        values[p.name] = target
        categories = dict(test_input.categories)
        if not p.is_int:
            categories[p.name] = classify(1.0, program.fp_type)
        out.append((f"simplify input {p.name} -> {target!r}",
                    TestInput(program_name=test_input.program_name,
                              index=test_input.index, values=values,
                              categories=categories)))
    return out


def reduce_case(case: OutlierCase, triage: TriageConfig | None = None, *,
                passes: tuple[ReductionPass, ...] = DEFAULT_PASSES,
                oracle: ReductionOracle | None = None) -> ReductionResult:
    """Reduce one outlier case to a minimal reproducing test.

    Deterministic: the passes enumerate candidates in a fixed order and
    the first accepted candidate replaces the current best, so the
    result is a pure function of ``(case, triage config)``.
    """
    cfg = triage if triage is not None else TriageConfig()
    oracle = oracle if oracle is not None else ReductionOracle(case)
    best_program = case.program
    best_input = case.test_input
    result = ReductionResult(
        case=case, reduced_program=best_program, reduced_input=best_input,
        verdict=None, original_statements=count_statements(case.program),
        reduced_statements=count_statements(case.program))

    verdict = oracle.reproduces(best_program, best_input)
    if verdict is None:
        result.confirmed = False
        result.candidates_tried = oracle.evaluated
        return result
    result.verdict = verdict

    enabled = [p for p in passes if _pass_enabled(p, cfg)]
    budget = cfg.max_candidates
    progressed = True
    while progressed and result.rounds < cfg.max_rounds:
        progressed = False
        result.rounds += 1
        for pass_ in enabled:
            # greedy fixpoint per pass: re-enumerate from the new best
            # after every accepted edit
            with span("reduce_pass", pass_name=pass_.name):
                accepted = True
                while accepted and oracle.evaluated < budget:
                    accepted = False
                    for desc, cand in pass_.candidates(best_program):
                        if oracle.evaluated >= budget:
                            break
                        v = oracle.reproduces(cand, best_input)
                        if v is not None:
                            best_program = cand
                            result.verdict = v
                            result.history.append(f"{pass_.name}: {desc}")
                            accepted = progressed = True
                            break
        if cfg.shrink_inputs:
            accepted = True
            while accepted and oracle.evaluated < budget:
                accepted = False
                for desc, cand_input in _shrunk_inputs(best_program,
                                                       best_input):
                    if oracle.evaluated >= budget:
                        break
                    v = oracle.reproduces(best_program, cand_input)
                    if v is not None:
                        best_input = cand_input
                        result.verdict = v
                        result.history.append(f"shrink-inputs: {desc}")
                        accepted = progressed = True
                        break

    result.reduced_program = best_program
    result.reduced_input = best_input
    result.reduced_statements = count_statements(best_program)
    result.candidates_tried = oracle.evaluated
    result.candidates_kept = oracle.accepted
    return result


def _pass_enabled(pass_: ReductionPass, cfg: TriageConfig) -> bool:
    if pass_.name == "strip-clauses":
        return cfg.strip_clauses
    if pass_.name == "shrink-loop-bounds":
        return cfg.shrink_loop_bounds
    if pass_.name == "simplify-expressions":
        return cfg.simplify_expressions
    return True
