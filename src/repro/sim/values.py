"""IEEE-754 value semantics for the simulated backend.

Python ``float`` *is* IEEE binary64, so double-precision programs evaluate
exactly as a C++ compiler without fast-math would evaluate them — with two
exceptions this module papers over:

* Python raises ``ZeroDivisionError`` where IEEE defines ``±inf`` / ``nan``
  (:func:`fdiv`),
* ``math.*`` raise ``ValueError`` / ``OverflowError`` on domain/range
  violations where C's ``<cmath>`` returns ``nan`` / ``±inf``
  (:data:`MATH_IMPLS`).

Single-precision programs round every intermediate to binary32 via
:func:`f32` (``ctypes.c_float`` round-trip — ~4x faster than
``numpy.float32`` construction, measured on CPython 3.11), matching the
all-``float`` arithmetic the C++ emitter guarantees (``f`` literal
suffixes and ``sinf``-family calls).
"""

from __future__ import annotations

import ctypes
import math
from typing import Callable

import numpy as _np

_c_float = ctypes.c_float
_longdouble = _np.longdouble

# inf/nan propagate through longdouble FMA exactly as IEEE wants; numpy's
# invalid-operation warnings are just noise for us


def silence_fp_warnings() -> None:
    """Apply the simulator's FP error state to the calling thread.

    ``numpy.seterr`` is thread-local: the module-level call below covers
    the importing thread only, so every worker thread that executes
    lowered kernels (e.g. the thread-pool engine's) must call this.
    """
    _np.seterr(invalid="ignore", over="ignore")


silence_fp_warnings()


def f32(x: float) -> float:
    """Round a binary64 value to binary32 (overflow becomes ±inf)."""
    return _c_float(x).value


def fdiv(a: float, b: float) -> float:
    """IEEE division: x/0 -> ±inf, 0/0 and nan operands -> nan."""
    if b != 0.0:
        return a / b
    if a != a or b != b:  # nan operand with a ±0 divisor is still nan
        return math.nan
    if a == 0.0:
        return math.nan
    # sign of the zero divisor matters: 1/-0.0 == -inf
    neg = math.copysign(1.0, a) * math.copysign(1.0, b) < 0
    return -math.inf if neg else math.inf


def _total(fn: Callable[[float], float]) -> Callable[[float], float]:
    """Wrap a math function so domain/range errors follow IEEE."""

    def wrapped(x: float) -> float:
        if x != x:
            return math.nan
        try:
            return fn(x)
        except ValueError:  # domain error, e.g. sqrt(-1), log(-3), sin(inf)
            return math.nan
        except OverflowError:  # range error, e.g. exp(1000)
            return math.inf

    return wrapped


def _log_ieee(x: float) -> float:
    if x == 0.0:
        return -math.inf  # C log(±0) is -inf; Python raises
    return math.log(x)


def _exp_ieee(x: float) -> float:
    if x == -math.inf:
        return 0.0
    return math.exp(x)


#: name -> IEEE-behaved unary implementation (mirrors repro.core.types.MATH_FUNCS)
MATH_IMPLS: dict[str, Callable[[float], float]] = {
    "sin": _total(math.sin),
    "cos": _total(math.cos),
    "tan": _total(math.tan),
    "exp": _total(_exp_ieee),
    "log": _total(_log_ieee),
    "sqrt": _total(math.sqrt),
    "fabs": _total(math.fabs),
    "tanh": _total(math.tanh),
    "atan": _total(math.atan),
}


def is_finite(x: float) -> bool:
    return math.isfinite(x)


def fma_d(a: float, b: float, c: float) -> float:
    """Double-precision fused multiply-add: ``round(a*b + c)``.

    CPython 3.11 lacks ``math.fma``; x86-64 ``long double`` (80-bit, 64-bit
    mantissa) recovers most of the unrounded product, which is what a
    contracted FMA differs by.  The result is deterministic and — crucially
    for the differential-testing mechanism — *differs* from the two-rounding
    ``a*b + c`` in exactly the cases where real FMA contraction does.
    """
    if a != a or b != b or c != c:
        return math.nan
    return float(_longdouble(a) * _longdouble(b) + _longdouble(c))


def fma_f(a: float, b: float, c: float) -> float:
    """Single-precision fused multiply-add — exact, because a binary32
    product and add fit losslessly inside binary64 before the final
    rounding to binary32."""
    return f32(a * b + c)


_MIN_NORMAL_D = 2.2250738585072014e-308
_MIN_NORMAL_F = 1.1754943508222875e-38


def ftz_d(x: float) -> float:
    """Flush a subnormal binary64 result to (signed) zero — Intel FTZ."""
    if x != 0.0 and -_MIN_NORMAL_D < x < _MIN_NORMAL_D:
        return math.copysign(0.0, x)
    return x


def ftz_f(x: float) -> float:
    """Flush a subnormal binary32 result to (signed) zero — Intel FTZ."""
    if x != 0.0 and -_MIN_NORMAL_F < x < _MIN_NORMAL_F:
        return math.copysign(0.0, x)
    return x
