"""IEEE-754 value semantics for the simulated backend.

Python ``float`` *is* IEEE binary64, so double-precision programs evaluate
exactly as a C++ compiler without fast-math would evaluate them — with two
exceptions this module papers over:

* Python raises ``ZeroDivisionError`` where IEEE defines ``±inf`` / ``nan``
  (:func:`fdiv`),
* ``math.*`` raise ``ValueError`` / ``OverflowError`` on domain/range
  violations where C's ``<cmath>`` returns ``nan`` / ``±inf``
  (:data:`MATH_IMPLS`).

Single-precision programs round every intermediate to binary32 via
:func:`f32`; Intel's FTZ additionally flushes subnormal results
(:func:`ftz_d` / :func:`ftz_f`), and :func:`f32z` fuses the two
operations the binary32 Intel path chains on every expression.

Two interchangeable implementations back these helpers:

* the **pure-Python reference** (``_py_*`` names, always importable):
  ``ctypes.c_float`` round-trips for rounding, ``numpy.longdouble`` for
  the contracted FMA,
* an optional **compiled accelerator** (:mod:`repro.sim._native`): the
  same operations as single C calls, ~10-30x faster per call, verified
  bit-identical at load time and silently absent when no toolchain is
  available (or when ``REPRO_NATIVE_VALUES=0``).

Campaign verdicts are byte-identical either way — the equivalence is
enforced both by the loader's verification battery and by
``tests/test_sim_values.py``.
"""

from __future__ import annotations

import ctypes
import math
from typing import Callable

import numpy as _np

_c_float = ctypes.c_float
_longdouble = _np.longdouble

# inf/nan propagate through longdouble FMA exactly as IEEE wants; numpy's
# invalid-operation warnings are just noise for us


def silence_fp_warnings() -> None:
    """Apply the simulator's FP error state to the calling thread.

    ``numpy.seterr`` is thread-local: the module-level call below covers
    the importing thread only, so every worker thread that executes
    lowered kernels (e.g. the thread-pool engine's) must call this.
    """
    _np.seterr(invalid="ignore", over="ignore")


silence_fp_warnings()


def _py_f32(x: float) -> float:
    """Round a binary64 value to binary32 (overflow becomes ±inf)."""
    return _c_float(x).value


def _py_fdiv(a: float, b: float) -> float:
    """IEEE division: x/0 -> ±inf, 0/0 and nan operands -> nan."""
    if b != 0.0:
        return a / b
    if a != a or b != b:  # nan operand with a ±0 divisor is still nan
        return math.nan
    if a == 0.0:
        return math.nan
    # sign of the zero divisor matters: 1/-0.0 == -inf
    neg = math.copysign(1.0, a) * math.copysign(1.0, b) < 0
    return -math.inf if neg else math.inf


def _total(fn: Callable[[float], float]) -> Callable[[float], float]:
    """Wrap a math function so domain/range errors follow IEEE."""

    def wrapped(x: float) -> float:
        if x != x:
            return math.nan
        try:
            return fn(x)
        except ValueError:  # domain error, e.g. sqrt(-1), log(-3), sin(inf)
            return math.nan
        except OverflowError:  # range error, e.g. exp(1000)
            return math.inf

    return wrapped


def _log_ieee(x: float) -> float:
    if x == 0.0:
        return -math.inf  # C log(±0) is -inf; Python raises
    return math.log(x)


def _exp_ieee(x: float) -> float:
    if x == -math.inf:
        return 0.0
    return math.exp(x)


#: name -> IEEE-behaved unary implementation (mirrors repro.core.types.MATH_FUNCS)
MATH_IMPLS: dict[str, Callable[[float], float]] = {
    "sin": _total(math.sin),
    "cos": _total(math.cos),
    "tan": _total(math.tan),
    "exp": _total(_exp_ieee),
    "log": _total(_log_ieee),
    "sqrt": _total(math.sqrt),
    "fabs": _total(math.fabs),
    "tanh": _total(math.tanh),
    "atan": _total(math.atan),
}


def is_finite(x: float) -> bool:
    return math.isfinite(x)


def _py_fma_d(a: float, b: float, c: float) -> float:
    """Double-precision fused multiply-add: ``round(a*b + c)``.

    CPython 3.11 lacks ``math.fma``; x86-64 ``long double`` (80-bit, 64-bit
    mantissa) recovers most of the unrounded product, which is what a
    contracted FMA differs by.  The result is deterministic and — crucially
    for the differential-testing mechanism — *differs* from the two-rounding
    ``a*b + c`` in exactly the cases where real FMA contraction does.
    """
    if a != a or b != b or c != c:
        return math.nan
    return float(_longdouble(a) * _longdouble(b) + _longdouble(c))


def _py_fma_f(a: float, b: float, c: float) -> float:
    """Single-precision fused multiply-add — exact, because a binary32
    product and add fit losslessly inside binary64 before the final
    rounding to binary32."""
    return _py_f32(a * b + c)


_MIN_NORMAL_D = 2.2250738585072014e-308
_MIN_NORMAL_F = 1.1754943508222875e-38


def _py_ftz_d(x: float) -> float:
    """Flush a subnormal binary64 result to (signed) zero — Intel FTZ."""
    if x != 0.0 and -_MIN_NORMAL_D < x < _MIN_NORMAL_D:
        return math.copysign(0.0, x)
    return x


def _py_ftz_f(x: float) -> float:
    """Flush a subnormal binary32 result to (signed) zero — Intel FTZ."""
    if x != 0.0 and -_MIN_NORMAL_F < x < _MIN_NORMAL_F:
        return math.copysign(0.0, x)
    return x


def _py_f32z(x: float) -> float:
    """Fused :func:`f32` + :func:`ftz_f` — the Intel binary32 wrap."""
    return _py_ftz_f(_py_f32(x))


# ----------------------------------------------------------------------
# public bindings: the compiled accelerator when available, else the
# pure-Python reference.  Lowered kernels capture whichever is bound at
# compile time; both produce bit-identical values.
# ----------------------------------------------------------------------

from . import _native as _native_loader  # noqa: E402  (needs _py_* above)

_NATIVE = _native_loader.load()

#: the pure-Python math table, always available for equivalence tests
_PY_MATH_IMPLS = dict(MATH_IMPLS)

if _NATIVE is not None:
    f32 = _NATIVE.f32
    fdiv = _NATIVE.fdiv
    fma_d = _NATIVE.fma_d
    fma_f = _NATIVE.fma_f
    ftz_d = _NATIVE.ftz_d
    ftz_f = _NATIVE.ftz_f
    f32z = _NATIVE.f32z
    # C libm *is* the library the math module wraps: same symbols, same
    # bits, none of the exception-translation frames
    MATH_IMPLS = {name: getattr(_NATIVE, f"m_{name}")
                  for name in _PY_MATH_IMPLS}
else:
    f32 = _py_f32
    fdiv = _py_fdiv
    fma_d = _py_fma_d
    fma_f = _py_fma_f
    ftz_d = _py_ftz_d
    ftz_f = _py_ftz_f
    f32z = _py_f32z


def native_values_active() -> bool:
    """True when the compiled helper module is in use."""
    return _NATIVE is not None


def native_values_info() -> dict:
    """Active flag + human-readable reason from the loader (see
    :func:`repro.sim._native.load_info`)."""
    return _native_loader.load_info()
