"""The simulated OpenMP runtime: team, worksharing, locks, faults.

One :class:`RegionExecutor` instance drives a single execution of a
lowered binary.  The lowered code calls into it at every OpenMP event
(region enter/exit, per-thread begin/end, ``omp for`` chunking, critical
enter/exit); the executor converts those events into

* **virtual time** — a region's elapsed cycles are
  ``spawn + sched + max(per-thread compute) + serialized critical time +
  lock overhead + barriers`` (threads run concurrently, critical sections
  serialize),
* **perf counters** — wait time generates context switches / migrations /
  page faults / spin instructions at vendor-specific rates,
* **profile samples** — cycles are charged to the vendor's runtime symbol
  names so Fig. 6/7 listings can be rendered,
* **fault behaviour** — deterministic crash (miscompile) and livelock
  (queuing-lock hang, Fig. 9) triggers.

Hook classification (the lowered code mirrors the :class:`CostState`
lanes in fast locals and synchronizes them only where required):

* **cost-observing/mutating** — ``prologue``, ``region_enter``,
  ``thread_begin``/``thread_end``, ``region_exit``, and ``crit_enter``
  (it can abort with a partial cost): lowered code flushes its local
  accumulators before the call and reloads after the ones that mutate;
* **cost-transparent** — ``chunk``, ``assign``, ``omp_for_done``,
  ``barrier``, ``crit_exit``, ``atomic_update``, ``single_done``,
  ``sections_done``, ``task_spawn``, ``taskwait``: these must never read
  or write ``CostState`` (their per-event cycle charges are baked into
  the kernel's ``_K`` constants by the cost pass).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from typing import TYPE_CHECKING

from ..errors import SimulatedCrash, SimulatedHang
from ..rng import stable_hash
from .counters import PerfCounters
from .events import ProfileRecorder
from .lower import CostState, RegionMeta

if TYPE_CHECKING:  # typing-only: breaks the sim <-> vendors import cycle
    from ..vendors.base import VendorModel


#: memo of worksharing assignments: (kind, chunk, n, t) -> (per-tid
#: iteration tuples, per-tid owned-chunk counts).  Every thread of every
#: run recomputed the identical chunk walk before this cache; the mapping
#: is a pure function of its key, so entries never go stale — the LRU
#: bound only caps memory (an entry holds at most ``n`` indices).
_ASSIGN_CACHE: OrderedDict = OrderedDict()
_ASSIGN_CACHE_CAP = 128
_ASSIGN_LOCK = threading.Lock()


def _assigned_iterations(kind: str, chunk: int, n: int, t: int):
    key = (kind, chunk, n, t)
    with _ASSIGN_LOCK:
        hit = _ASSIGN_CACHE.get(key)
        if hit is not None:
            _ASSIGN_CACHE.move_to_end(key)
            return hit
    per: list[list[int]] = [[] for _ in range(t)]
    owned = [0] * t
    if kind == "static":  # schedule(static, chunk): round-robin chunks
        for tid in range(t):
            for start in range(tid * chunk, n, chunk * t):
                per[tid].extend(range(start, min(start + chunk, n)))
    else:
        if kind == "dynamic":
            c = chunk if chunk > 0 else 1
            sizes = [min(c, n - s) for s in range(0, n, c)]
        else:  # guided
            c_min = chunk if chunk > 0 else 1
            sizes = []
            remaining = n
            while remaining > 0:
                size = min(remaining, max(c_min, -(-remaining // (2 * t))))
                sizes.append(size)
                remaining -= size
        start = 0
        for i, size in enumerate(sizes):
            tid = i % t
            per[tid].extend(range(start, start + size))
            owned[tid] += 1
            start += size
    entry = (tuple(tuple(p) for p in per), tuple(owned))
    with _ASSIGN_LOCK:
        _ASSIGN_CACHE[key] = entry
        _ASSIGN_CACHE.move_to_end(key)
        while len(_ASSIGN_CACHE) > _ASSIGN_CACHE_CAP:
            _ASSIGN_CACHE.popitem(last=False)
    return entry


@dataclass(slots=True)
class _RegionAccounting:
    """Scratch state while executing one region entry."""

    rid: int
    snap_cy: float
    snap_ccy: float
    spawn_cycles: float = 0.0
    sched_cycles: float = 0.0
    omp_for_rounds: int = 0
    single_rounds: int = 0
    barrier_rounds: int = 0
    sections_rounds: int = 0
    tasks_spawned: int = 0
    taskwaits: int = 0
    atomics: int = 0
    acquires: int = 0
    compute: list[float] = field(default_factory=list)
    critical: list[float] = field(default_factory=list)
    _t_cy: float = 0.0
    _t_ccy: float = 0.0


class RegionExecutor:
    """Vendor runtime model bound to one run of one binary."""

    def __init__(
        self,
        vendor: VendorModel,
        regions: list[RegionMeta],
        cost: CostState,
        counters: PerfCounters,
        profile: ProfileRecorder,
        *,
        wrap_fn: Callable[[float], float],
        crash_active: bool = False,
        hang_active: bool = False,
        slow_armed: bool = False,
        fingerprint: str = "",
    ):
        self.vendor = vendor
        self.regions = regions
        self.c = cost
        self.counters = counters
        self.profile = profile
        self.wrap = wrap_fn
        self.crash_active = crash_active
        self.hang_active = hang_active
        self.slow_armed = slow_armed
        self.fingerprint = fingerprint

        self._entries = 0
        self._acq_total = 0
        self._cur: _RegionAccounting | None = None
        #: cycles attributed to parallel regions (driver derives serial time)
        self.region_cycles_total = 0.0

    # ------------------------------------------------------------------
    # kernel prologue
    # ------------------------------------------------------------------
    def prologue(self) -> None:
        """Called at kernel entry; hosts the no-region crash fallback."""
        if self.crash_active and not self.regions:
            self._crash()

    def _crash(self) -> None:
        # a miscompiled store: charge a little work, then "segfault"
        self.c.cy += 5_000.0
        raise SimulatedCrash("SIGSEGV", "latent miscompile store out of bounds")

    # ------------------------------------------------------------------
    # region lifecycle
    # ------------------------------------------------------------------
    def region_enter(self, rid: int) -> None:
        if self._cur is not None:
            raise RuntimeError("nested parallel regions are not supported")
        if self.crash_active:
            self._crash()
        rt = self.vendor.runtime
        sym = self.vendor.symbols
        self._entries += 1

        acc = _RegionAccounting(rid=rid, snap_cy=self.c.cy, snap_ccy=self.c.ccy)
        if self._entries == 1:
            acc.spawn_cycles = rt.spawn_cold_cycles
            self.counters.page_faults += rt.spawn_cold_page_faults
            spawn_instr = rt.spawn_cold_instr
        elif self._entries > rt.spawn_thrash_threshold:
            # repeated re-entry (region inside a serial loop): runtimes that
            # do not reuse team resources cleanly pay per-entry allocation
            acc.spawn_cycles = rt.spawn_thrash_cycles
            self.counters.page_faults += rt.spawn_warm_page_faults
            spawn_instr = rt.spawn_warm_instr
        else:
            acc.spawn_cycles = rt.spawn_warm_cycles
            self.counters.page_faults += rt.spawn_warm_page_faults
            spawn_instr = rt.spawn_warm_instr
        self.c.ins += spawn_instr
        # allocator/bookkeeping code is branch-heavy (Table III shows the
        # clang binary's branches scaling with its instruction explosion)
        self.c.br += spawn_instr * 0.25
        self.counters.branch_misses += int(spawn_instr * 0.25 * 0.02)
        self.counters.context_switches += rt.spawn_ctx_switches
        alloc = acc.spawn_cycles * rt.spawn_alloc_fraction
        self.profile.charge(sym.shared_object, sym.spawn,
                            acc.spawn_cycles - alloc)
        self.profile.charge("libc-2.28.so", sym.alloc, alloc)
        self._cur = acc

    def thread_begin(self, tid: int) -> None:
        acc = self._require_region()
        acc._t_cy = self.c.cy
        acc._t_ccy = self.c.ccy

    def thread_end(self, tid: int) -> None:
        acc = self._require_region()
        acc.compute.append(self.c.cy - acc._t_cy)
        acc.critical.append(self.c.ccy - acc._t_ccy)

    @staticmethod
    def _static_span(tid: int, n: int, t: int) -> tuple[int, int]:
        """The default-schedule contiguous block of thread ``tid`` —
        the same split every major runtime uses (first ``n % t`` threads
        take one extra iteration)."""
        base, rem = divmod(n, t)
        lo = tid * base + min(tid, rem)
        hi = lo + base + (1 if tid < rem else 0)
        return lo, hi

    def chunk(self, tid: int, n: int) -> tuple[int, int]:
        """Static contiguous chunking of an ``omp for`` with no explicit
        schedule clause (static is every implementation's default)."""
        acc = self._require_region()
        acc.sched_cycles += self.vendor.runtime.omp_for_sched_cycles
        meta = self.regions[acc.rid]
        n = max(0, int(n))
        return self._static_span(tid, n, meta.n_threads)

    def assign(self, tid: int, n: int, kind: str, chunk: int):
        """Iterations of an explicitly scheduled ``omp for`` executed by
        thread ``tid``.

        ``schedule(static, c)`` follows the specified round-robin chunk
        mapping exactly, so the simulation matches a real runtime
        bit-for-bit.  ``dynamic``/``guided`` hand chunks out
        first-come-first-served in reality; the simulator models them
        with a deterministic round-robin over the same chunk sequence —
        every simulated vendor uses the identical model, so verdicts
        stay reproducible while the *costs* (per-chunk dispatch on a
        contended counter) remain schedule-specific.
        """
        acc = self._require_region()
        rt = self.vendor.runtime
        meta = self.regions[acc.rid]
        t = meta.n_threads
        n = max(0, int(n))
        if kind == "static":
            acc.sched_cycles += rt.omp_for_sched_cycles
            if chunk <= 0:
                lo, hi = self._static_span(tid, n, t)
                return range(lo, hi)
            per, _owned = _assigned_iterations(kind, chunk, n, t)
            return per[tid]
        if kind not in ("dynamic", "guided"):
            raise ValueError(f"unknown schedule kind {kind!r}")
        per, owned = _assigned_iterations(kind, chunk, n, t)
        # one contended-counter dispatch per chunk this thread grabbed;
        # repeated += (not a single multiply) keeps the exact FP
        # accumulation the per-chunk loop performed
        d = rt.omp_for_dispatch_cycles
        for _ in range(owned[tid]):
            acc.sched_cycles += d
        return per[tid]

    def omp_for_done(self, tid: int) -> None:
        """Implicit barrier bookkeeping at the end of an ``omp for``."""
        acc = self._require_region()
        acc.omp_for_rounds += 1

    # ------------------------------------------------------------------
    # atomics / single / explicit barriers
    # ------------------------------------------------------------------
    def atomic_update(self) -> None:
        """One ``#pragma omp atomic`` RMW (cost-transparent hook).

        The uncontended RMW cost (``atomic_rmw_cycles``) is charged by
        the lowered code on the executing thread's lane; this hook only
        counts the event — contention is folded in at region exit where
        the team size is known."""
        acc = self._cur  # hot hook: _require_region() inlined
        if acc is None:
            raise RuntimeError("OpenMP event outside a parallel region")
        acc.atomics += 1
        self.counters.atomic_updates += 1

    def single_done(self, tid: int) -> None:
        """Implicit barrier bookkeeping at the end of a ``single``; every
        thread calls this once per encounter (cost-transparent hook —
        the arrival-election cycles are charged by the lowered code)."""
        acc = self._require_region()
        acc.single_rounds += 1

    def sections_done(self, tid: int) -> None:
        """Implicit barrier bookkeeping at the end of a ``sections``
        construct; every thread calls this once per encounter
        (cost-transparent — the dispatch cycles are charged inline)."""
        acc = self._require_region()
        acc.sections_rounds += 1

    def task_spawn(self, tid: int) -> None:
        """One explicit task deferred onto the encountering thread's
        queue (cost-transparent — spawn cycles are charged inline)."""
        acc = self._require_region()
        acc.tasks_spawned += 1

    def taskwait(self, tid: int) -> None:
        """``taskwait`` join point; called by the encountering thread
        only, right before its queue drains (cost-transparent — the
        join cycles are charged inline)."""
        acc = self._require_region()
        acc.taskwaits += 1

    def barrier(self, tid: int) -> None:
        """Explicit ``#pragma omp barrier``; called once per thread."""
        acc = self._cur  # hot hook: _require_region() inlined
        if acc is None:
            raise RuntimeError("OpenMP event outside a parallel region")
        acc.barrier_rounds += 1

    # ------------------------------------------------------------------
    # critical sections
    # ------------------------------------------------------------------
    def crit_enter(self) -> None:
        # the hottest hook (once per critical-section entry, inside
        # loops): region-local counting only; the perf counter and the
        # run-wide acquire total are derived at region exit / only when
        # the livelock fault is armed
        acc = self._cur
        if acc is None:
            raise RuntimeError("OpenMP event outside a parallel region")
        acc.acquires += 1
        if self.hang_active:
            self._acq_total += 1
            if self._acq_total >= self.vendor.faults.hang_min_acquires:
                self._hang()

    def crit_exit(self) -> None:
        pass  # lane switching is static in the lowered code

    def _hang(self) -> None:
        """The Case-Study-3 livelock: every thread stuck acquiring the
        queuing lock, split across the three states of the paper's Fig. 9."""
        if self._cur is not None:
            # the abort skips region_exit's derivation of this counter
            self.counters.critical_acquires += self._cur.acquires
        meta = self.regions[self._cur.rid] if self._cur else RegionMeta()
        t = meta.n_threads
        sym = self.vendor.symbols
        # faults are functions of the program text, never of the fuzzer's
        # RNG mode: pin the compat derivation explicitly
        h = stable_hash("hang-split", self.fingerprint, mode="compat")
        g1 = max(1, t // 2 + (h % 3) - 1)
        g2 = max(1, (t - g1) // 2)
        g3 = max(0, t - g1 - g2)
        states = {
            sym.wait_secondary: list(range(g1)),
            "__kmp_eq_4": list(range(g1, g1 + g2)),
            sym.yield_: list(range(g1 + g2, g1 + g2 + g3)),
        }
        raise SimulatedHang(elapsed_us=float("inf"), thread_states=states)

    # ------------------------------------------------------------------
    # region exit: fold per-thread lanes into elapsed time + counters
    # ------------------------------------------------------------------
    def region_exit(self, rid: int, comp: float, partials: list[float] | None,
                    op: str | None) -> float:
        acc = self._require_region()
        rt = self.vendor.runtime
        sym = self.vendor.symbols
        meta = self.regions[rid]
        t = meta.n_threads
        self.counters.critical_acquires += acc.acquires

        compute_max = max(acc.compute, default=0.0)
        compute_sum = sum(acc.compute)
        crit_total = sum(acc.critical)

        lock_cost = acc.acquires * (rt.lock_base_cycles
                                    + (t - 1) * rt.lock_contention_cycles)
        # cache-line ping-pong of contended atomic RMWs, serialized like
        # lock traffic (each update invalidates every other core's copy)
        atomic_cost = acc.atomics * (t - 1) * rt.atomic_contention_cycles
        # implicit barriers: region end, each omp-for end, each single
        # end, each sections end, plus the explicit barrier rounds
        sync_rounds = (acc.omp_for_rounds + acc.single_rounds
                       + acc.barrier_rounds + acc.sections_rounds)
        barrier_events = 1 + sync_rounds // max(1, t)
        barrier_cost = barrier_events * rt.barrier_cycles_per_thread * t

        # reduction combine — the combine *order* is implementation-defined
        # (libgomp: linear in thread order; KMP: pairwise tree), and FP
        # non-associativity makes the orders print different values
        combine_cost = 0.0
        if partials is not None and op is not None:
            comp = self._combine_reduction(comp, partials, op,
                                           tree=rt.reduction_tree)
            combine_cost = rt.reduction_combine_cycles_per_thread * t

        # waiting splits into two regimes:
        #  - lock waiting: long queues make KMP sleep -> context switches,
        #    migrations, page faults (the Table II mechanism)
        #  - barrier/imbalance waiting: within the runtime's blocktime the
        #    threads pure-spin -> instructions only
        imbalance = sum(compute_max - x for x in acc.compute)
        lock_wait = (t - 1) * crit_total + lock_cost + atomic_cost
        barrier_wait = imbalance + barrier_cost
        self._apply_wait_side_effects(lock_wait, reschedules=True)
        self._apply_wait_side_effects(barrier_wait, reschedules=False)
        wait = lock_wait + barrier_wait

        elapsed = (acc.spawn_cycles + acc.sched_cycles + compute_max
                   + crit_total + lock_cost + atomic_cost + barrier_cost
                   + combine_cost)
        if self.slow_armed:
            # the pathological path also inflates the runtime-side costs
            # (per-thread compute is already scaled at lowering time)
            elapsed += (acc.spawn_cycles + lock_cost + barrier_cost) \
                * (self.vendor.faults.slow_factor - 1.0)

        # replace the summed per-thread cycles with the concurrent elapsed
        self.c.cy = acc.snap_cy + elapsed
        self.c.ccy = acc.snap_ccy
        self.region_cycles_total += elapsed

        # profile: thread-time view (sums, like perf across 32 threads)
        self.profile.charge(self.profile.binary_name, sym.compute,
                            compute_sum + crit_total)
        self.profile.charge(sym.shared_object, sym.invoke,
                            0.06 * (compute_sum + crit_total))
        self.profile.charge(sym.shared_object, sym.lock, lock_cost)
        self.profile.charge(sym.shared_object, sym.wait_primary,
                            wait * rt.wait_primary_share)
        self.profile.charge(sym.shared_object, sym.wait_secondary,
                            wait * (1.0 - rt.wait_primary_share) * 0.8)
        self.profile.charge("[kernel]", sym.yield_,
                            wait * (1.0 - rt.wait_primary_share) * 0.2)
        self.profile.charge(sym.shared_object, sym.barrier, barrier_cost)

        self._cur = None
        return comp

    def _combine_reduction(self, comp: float, partials: list[float],
                           op: str, *, tree: bool) -> float:
        if not partials:
            return comp
        if op in ("min", "max"):
            # min/max select one of their operands: no rounding, and the
            # combine order cannot change the value (unlike +/*), so the
            # linear and tree strategies coincide
            pick = min if op == "min" else max
            for p in partials:
                comp = pick(comp, p)
            return comp
        apply = ((lambda a, b: self.wrap(a + b)) if op == "+"
                 else (lambda a, b: self.wrap(a * b)))
        if not tree:
            for p in partials:  # linear, thread order (libgomp)
                comp = apply(comp, p)
            return comp
        level = list(partials)  # pairwise tree (KMP lineage)
        while len(level) > 1:
            nxt = [apply(level[i], level[i + 1])
                   for i in range(0, len(level) - 1, 2)]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return apply(comp, level[0])

    def _apply_wait_side_effects(self, wait_cycles: float, *,
                                 reschedules: bool) -> None:
        rt = self.vendor.runtime
        spin_instr = wait_cycles / 1_000.0 * rt.wait_spin_instr_per_kcycle
        self.c.ins += spin_instr
        # spin loops are branch-heavy and mispredict on their exit path
        self.c.br += spin_instr * 0.4
        self.counters.branch_misses += int(spin_instr * 0.02)
        if reschedules:
            m = wait_cycles / 1_000_000.0
            self.counters.context_switches += int(m * rt.wait_ctx_per_mcycle)
            self.counters.cpu_migrations += int(m * rt.wait_migration_per_mcycle)
            self.counters.page_faults += int(m * rt.wait_pf_per_mcycle)

    # ------------------------------------------------------------------
    def _require_region(self) -> _RegionAccounting:
        if self._cur is None:
            raise RuntimeError("OpenMP event outside a parallel region")
        return self._cur
