"""C backend: compile whole kernel bodies from :mod:`repro.sim.ir`.

One kernel shape becomes one CPython extension exporting ``run(args, rt,
cost, K)``: FP scalars are C ``double`` locals, int scalars are ``long``,
arrays are malloc'd ``double*`` copies of the input lists, and the four
cost-accumulator lanes live in registers between the Flush/Reload points
— the Python interpreter is only re-entered at runtime hooks, which is
what buys the order-of-magnitude throughput over the exec'd template.

Bit-exactness contract (the reason the C backend requires
:func:`repro.sim.values.native_values_active`):

* every wrap/FMA/libm helper is the *same C code* as the battery-verified
  ``_repro_native_values`` module, so the compiled kernel and the
  interpreted reference (whose helpers are bound to that module) compute
  identical bits — ``(double)(float)x`` rounding, subnormal flushes at
  the exact thresholds, x87 ``long double`` FMA recovery with the NaN
  guard, direct libm calls into the same in-process ``libm``;
* builds pass ``-ffp-contract=off`` (no surprise FMA contraction of the
  two-rounding ``(double)(float)(a*b+c)``) and ``-fno-builtin`` (no
  compile-time MPFR folding of libm calls that could differ from the
  runtime library);
* FP literals are emitted as hexadecimal float constants
  (``float.hex()``), which round-trip exactly;
* int arithmetic uses Python's floored ``%``/``//`` semantics and array
  indexing wraps negative indices / raises ``IndexError`` exactly like
  the template's list accesses.

Shared objects are content-addressed by source hash in the same
per-uid, trust-checked cache directory as the value helpers (one build
per kernel shape per machine, ever); the module *name* is fixed
(``_repro_kernel``) while filenames differ, which CPython's extension
loader supports (its cache key is ``(filename, name)``).  Build or
import failure falls back to the interpreted entry, recording the
reason (see :func:`build_info`) and warning once — never silently.
"""

from __future__ import annotations

import os
import sysconfig
import warnings
from hashlib import sha256

from . import _native, ir as _ir

#: per-source-hash imported modules (one per kernel shape, process-wide)
_MODULES: dict[str, object] = {}

#: last failure reason (None when every bind so far succeeded)
_LAST_FAILURE: str | None = None

#: count of shapes that fell back to interp
_N_FAILED = 0

_warned: set = set()

_CFLAGS = ("-O1", "-ffp-contract=off", "-fno-builtin")

_WRAPC = {_ir.W_NONE: None, _ir.W_F32: "w_f32", _ir.W_F32Z: "w_f32z",
          _ir.W_FTZ: "w_ftzd"}

_PRELUDE = r"""
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>
#include <stdlib.h>

static const double min_normal_d = 2.2250738585072014e-308;
static const double min_normal_f = 1.1754943508222875e-38;

static inline double w_f32(double x) { return (double)(float)x; }
static inline double w_ftzd(double x) {
    if (x != 0.0 && x < min_normal_d && x > -min_normal_d)
        return copysign(0.0, x);
    return x;
}
static inline double w_ftzf(double x) {
    if (x != 0.0 && x < min_normal_f && x > -min_normal_f)
        return copysign(0.0, x);
    return x;
}
static inline double w_f32z(double x) { return w_ftzf((double)(float)x); }

/* long-double FMA recovery with the NaN guard of the reference helper */
static inline double h_fmad(double a, double b, double c) {
    long double r;
    if (a != a || b != b || c != c) return (double)NAN;
    r = (long double)a * (long double)b + (long double)c;
    return (double)r;
}
/* two-rounding binary32 FMA: exact product+add in binary64, one final
   round (NOT a hardware fma: -ffp-contract=off keeps it that way) */
static inline double h_fmaf(double a, double b, double c) {
    return (double)(float)(a * b + c);
}

/* Python's floored % and // (operands may be negative) */
static inline long py_mod(long a, long b) {
    long r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
static inline long py_fdv(long a, long b) {
    long q = a / b;
    if ((a % b) != 0 && ((a < 0) != (b < 0))) q--;
    return q;
}
/* Python list indexing: one negative wrap, sticky error flag OOB */
static inline long idx_fix(long i, Py_ssize_t n, int *ierr) {
    if (i < 0) i += (long)n;
    if (i < 0 || i >= (long)n) { *ierr = 1; return 0; }
    return i;
}

static int set_attr_d(PyObject *o, const char *name, double v) {
    PyObject *f = PyFloat_FromDouble(v);
    int r;
    if (!f) return -1;
    r = PyObject_SetAttrString(o, name, f);
    Py_DECREF(f);
    return r;
}
static int get_attr_d(PyObject *o, const char *name, double *out) {
    PyObject *f = PyObject_GetAttrString(o, name);
    double v;
    if (!f) return -1;
    v = PyFloat_AsDouble(f);
    Py_DECREF(f);
    if (v == -1.0 && PyErr_Occurred()) return -1;
    *out = v;
    return 0;
}

#define CALL0(H) do { \
    PyObject *_r = PyObject_CallNoArgs(H); \
    if (!_r) goto fail; Py_DECREF(_r); } while (0)
#define CALL_L(H, A) do { \
    PyObject *_r = PyObject_CallFunction((H), "l", (long)(A)); \
    if (!_r) goto fail; Py_DECREF(_r); } while (0)
"""

_POSTLUDE = """
static PyMethodDef k_methods[] = {
    {"run", krun, METH_VARARGS, "run(args, rt, cost, K) -> comp"},
    {NULL, NULL, 0, NULL}};

static struct PyModuleDef k_module = {
    PyModuleDef_HEAD_INIT, "_repro_kernel",
    "compiled lowered kernel", -1, k_methods};

PyMODINIT_FUNC PyInit__repro_kernel(void) {
    return PyModule_Create(&k_module);
}
"""


def _clit(v: float) -> str:
    """Exact C literal for a Python float (hexfloat round-trips)."""
    if v != v:
        return "(double)NAN"
    if v == float("inf"):
        return "HUGE_VAL"
    if v == float("-inf"):
        return "(-HUGE_VAL)"
    return v.hex()


class _Emitter:
    """IR -> C source for one kernel shape."""

    def __init__(self, kir: _ir.KernelIR) -> None:
        self.kir = kir
        self.lines: list[str] = []
        self.depth = 1
        self.uniq = 0
        self.hooks: dict[str, str] = {}   # hook name -> C var
        self.iters: list[str] = []        # ForAssign iterator temps
        self._ierr = False                # statement touched an array

    # -- plumbing ------------------------------------------------------
    def w(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def uid(self) -> int:
        self.uniq += 1
        return self.uniq

    def hook(self, name: str) -> str:
        var = self.hooks.get(name)
        if var is None:
            var = f"h_{name}"
            self.hooks[name] = var
        return var

    def chk(self) -> None:
        """Raise the template's IndexError after a statement whose
        expressions indexed an array (the flag is sticky per statement;
        expressions themselves are pure, so deferring the check to the
        statement boundary cannot change observable behaviour)."""
        if self._ierr:
            self.w('if (ierr) { PyErr_SetString(PyExc_IndexError, '
                   '"list index out of range"); goto fail; }')
            self._ierr = False

    # -- expressions ---------------------------------------------------
    def fexpr(self, e) -> str:
        t = type(e)
        if t is _ir.FLit:
            return _clit(e.v)
        if t is _ir.FVar:
            return f"v_{e.name}"
        if t is _ir.ALoad:
            self._ierr = True
            return (f"a_{e.arr}[idx_fix({self.iexpr(e.idx)}, "
                    f"an_{e.arr}, &ierr)]")
        if t is _ir.IToF:
            return f"(double)({self.iexpr(e.ix)})"
        if t is _ir.FNeg:
            return f"(-({self.fexpr(e.x)}))"
        if t is _ir.FBin:
            raw = f"({self.fexpr(e.a)} {e.op} {self.fexpr(e.b)})"
            wrap = _WRAPC[e.wrap]
            return raw if wrap is None else f"{wrap}{raw}"
        if t is _ir.FFma:
            fn = "h_fmaf" if e.fp32 else "h_fmad"
            text = (f"{fn}({self.fexpr(e.a)}, {self.fexpr(e.b)}, "
                    f"{self.fexpr(e.c)})")
            if e.ftz:
                text = f"{'w_ftzf' if e.fp32 else 'w_ftzd'}({text})"
            return text
        if t is _ir.FCall:
            raw = f"{e.func}({self.fexpr(e.arg)})"
            wrap = _WRAPC[e.wrap]
            return raw if wrap is None else f"{wrap}({raw})"
        raise TypeError(f"unknown FP expr {t.__name__}")

    def iexpr(self, e) -> str:
        t = type(e)
        if t is _ir.ILit:
            return str(e.v)
        if t is _ir.IVar:
            return f"i_{e.name}"
        if t is _ir.IMax0:
            return f"(i_{e.name} > 0 ? i_{e.name} : 0)"
        if t is _ir.IMod:
            return f"py_mod({self.iexpr(e.base)}, {e.modulus})"
        if t is _ir.IMul:
            return f"({self.iexpr(e.a)} * {self.iexpr(e.b)})"
        if t is _ir.IFloorDiv:
            return f"py_fdv({self.iexpr(e.a)}, {self.iexpr(e.b)})"
        if t is _ir.IModV:
            return f"py_mod({self.iexpr(e.a)}, {self.iexpr(e.b)})"
        raise TypeError(f"unknown int expr {t.__name__}")

    # -- statements ----------------------------------------------------
    def block(self, ops: list) -> None:
        for op in ops:
            self.stmt(op)

    def stmt(self, op) -> None:  # noqa: C901 - one arm per IR op
        t = type(op)
        if t is _ir.Charge:
            lane = "cy" if op.lane == 0 else "ccy"
            parts = []
            if op.k_cy is not None:
                parts.append(f"{lane} += K[{op.k_cy}];")
            if op.k_ins is not None:
                parts.append(f"ins += K[{op.k_ins}];")
            if op.br:
                parts.append(f"br += {_clit(op.br)};")
            self.w(" ".join(parts))
            return
        if t is _ir.SetVar:
            self.w(f"v_{op.name} = {self.fexpr(op.e)};")
            self.chk()
            return
        if t is _ir.SetIVar:
            self.w(f"i_{op.name} = {self.iexpr(op.e)};")
            return
        if t is _ir.AStore:
            self._ierr = True
            rhs = self.fexpr(op.e)
            self.w(f"a_{op.arr}[idx_fix({self.iexpr(op.idx)}, "
                   f"an_{op.arr}, &ierr)] = {rhs};")
            self.chk()
            return
        if t is _ir.Flush:
            self.w('if (set_attr_d(c_obj, "cy", cy) < 0) goto fail;')
            self.w('if (set_attr_d(c_obj, "ccy", ccy) < 0) goto fail;')
            self.w('if (set_attr_d(c_obj, "ins", ins) < 0) goto fail;')
            self.w('if (set_attr_d(c_obj, "br", br) < 0) goto fail;')
            return
        if t is _ir.Reload:
            self.w('if (get_attr_d(c_obj, "cy", &cy) < 0) goto fail;')
            self.w('if (get_attr_d(c_obj, "ccy", &ccy) < 0) goto fail;')
            self.w('if (get_attr_d(c_obj, "ins", &ins) < 0) goto fail;')
            self.w('if (get_attr_d(c_obj, "br", &br) < 0) goto fail;')
            return
        if t is _ir.Hook:
            h = self.hook(op.name)
            if op.tid:
                self.w(f"CALL_L({h}, i__tid);")
            else:
                self.w(f"CALL0({h});")
            return
        if t is _ir.RegionEnter:
            self.w(f"CALL_L({self.hook('region_enter')}, {op.rid});")
            return
        if t is _ir.RegionExit:
            self._region_exit(op)
            return
        if t is _ir.InitPartials:
            self.w("part_n = 0;")
            return
        if t is _ir.AppendPartial:
            self.w("if (part_n == part_cap) {")
            self.w("    long _nc = part_cap ? part_cap * 2 : 32;")
            self.w("    double *_np = (double *)realloc(part, "
                   "(size_t)_nc * sizeof(double));")
            self.w("    if (!_np) { PyErr_NoMemory(); goto fail; }")
            self.w("    part = _np; part_cap = _nc;")
            self.w("}")
            self.w(f"part[part_n++] = v_{op.name};")
            return
        if t is _ir.Chunk:
            h = self.hook("chunk")
            self.w("{")
            self.w(f"    PyObject *_r = PyObject_CallFunction({h}, "
                   f'"ll", i__tid, (long)({self.iexpr(op.n)}));')
            self.w("    if (!_r) goto fail;")
            self.w(f'    if (!PyArg_ParseTuple(_r, "ll", '
                   f"&i__lo_{op.label}, &i__hi_{op.label})) "
                   "{ Py_DECREF(_r); goto fail; }")
            self.w("    Py_DECREF(_r);")
            self.w("}")
            return
        if t is _ir.ForRange:
            u = self.uid()
            self.w("{")
            self.w(f"    long _lo{u} = {self.iexpr(op.lo)}, "
                   f"_hi{u} = {self.iexpr(op.hi)};")
            # C for-increment would leave var==hi where Python leaves the
            # last value; generated code never reads a loop var after its
            # loop, but keep the exact final value anyway
            self.w(f"    for (long _k{u} = _lo{u}; _k{u} < _hi{u}; "
                   f"_k{u}++) {{")
            self.depth += 2
            self.w(f"i_{op.var} = _k{u};")
            self.block(op.body)
            self.depth -= 2
            self.w("    }")
            self.w("}")
            return
        if t is _ir.ForAssign:
            self._for_assign(op)
            return
        if t is _ir.ForList:
            u = self.uid()
            # live length recheck every iteration == Python's list
            # iteration visiting appends made during the loop
            self.w(f"for (long _qi{u} = 0; _qi{u} < qn_{op.queue}; "
                   f"_qi{u}++) {{")
            self.depth += 1
            self.w(f"i_{op.var} = q_{op.queue}[_qi{u}];")
            self.block(op.body)
            self.depth -= 1
            self.w("}")
            return
        if t is _ir.QNew:
            self.w(f"qn_{op.queue} = 0;")
            return
        if t is _ir.QPush:
            q = op.queue
            self.w(f"if (qn_{q} == qc_{q}) {{")
            self.w(f"    long _nc = qc_{q} ? qc_{q} * 2 : 8;")
            self.w(f"    long *_np = (long *)realloc(q_{q}, "
                   "(size_t)_nc * sizeof(long));")
            self.w("    if (!_np) { PyErr_NoMemory(); goto fail; }")
            self.w(f"    q_{q} = _np; qc_{q} = _nc;")
            self.w("}")
            self.w(f"q_{q}[qn_{q}++] = {op.k};")
            return
        if t is _ir.QClear:
            self.w(f"qn_{op.queue} = 0;")
            return
        if t is _ir.If:
            u = self.uid()
            cond = (f"({self.fexpr(op.cond.lhs)}) {op.cond.op} "
                    f"({self.fexpr(op.cond.rhs)})")
            self.w("{")
            self.w(f"    int _b{u} = {cond};")
            self.depth += 1
            self.chk()  # index check before entering the branch
            self.depth -= 1
            self.w(f"    if (_b{u}) {{")
            self.depth += 2
            self.block(op.body)
            self.depth -= 2
            self.w("    }")
            self.w("}")
            return
        if t is _ir.IfIntEq:
            self.w(f"if (i_{op.var} == {op.k}) {{")
            self.depth += 1
            self.block(op.body)
            self.depth -= 1
            self.w("}")
            return
        if t is _ir.LoadInt:
            self.w("{")
            self.w(f'    PyObject *_o = PyMapping_GetItemString(args_obj, '
                   f'"{op.name}");')
            self.w("    if (!_o) goto fail;")
            self.w(f"    i_{op.name} = PyLong_AsLong(_o); Py_DECREF(_o);")
            self.w(f"    if (i_{op.name} == -1 && PyErr_Occurred()) "
                   "goto fail;")
            self.w("}")
            return
        if t is _ir.LoadScalar:
            wrap = _WRAPC[op.wrap]
            conv = "_x" if wrap is None else f"{wrap}(_x)"
            self.w("{")
            self.w(f'    PyObject *_o = PyMapping_GetItemString(args_obj, '
                   f'"{op.name}");')
            self.w("    if (!_o) goto fail;")
            self.w("    double _x = PyFloat_AsDouble(_o); Py_DECREF(_o);")
            self.w("    if (_x == -1.0 && PyErr_Occurred()) goto fail;")
            self.w(f"    v_{op.name} = {conv};")
            self.w("}")
            return
        if t is _ir.LoadArray:
            flush = {_ir.A_COPY: "_x", _ir.A_FTZ_D: "w_ftzd(_x)",
                     _ir.A_FTZ_F: "w_ftzf(_x)"}[op.mode]
            n = op.name
            self.w("{")
            self.w(f'    PyObject *_o = PyMapping_GetItemString(args_obj, '
                   f'"{n}");')
            self.w("    if (!_o) goto fail;")
            self.w('    PyObject *_seq = PySequence_Fast(_o, "array '
                   'argument is not a sequence");')
            self.w("    Py_DECREF(_o);")
            self.w("    if (!_seq) goto fail;")
            self.w(f"    an_{n} = PySequence_Fast_GET_SIZE(_seq);")
            self.w(f"    a_{n} = (double *)malloc((size_t)(an_{n} > 0 ? "
                   f"an_{n} : 1) * sizeof(double));")
            self.w(f"    if (!a_{n}) {{ Py_DECREF(_seq); PyErr_NoMemory(); "
                   "goto fail; }")
            self.w("    {")
            self.w("        PyObject **_items = PySequence_Fast_ITEMS(_seq);")
            self.w(f"        for (Py_ssize_t _i = 0; _i < an_{n}; _i++) {{")
            self.w("            double _x = PyFloat_AsDouble(_items[_i]);")
            self.w("            if (_x == -1.0 && PyErr_Occurred()) "
                   "{ Py_DECREF(_seq); goto fail; }")
            self.w(f"            a_{n}[_i] = {flush};")
            self.w("        }")
            self.w("    }")
            self.w("    Py_DECREF(_seq);")
            self.w("}")
            return
        if t is _ir.Return:
            self.w(f"retval = PyFloat_FromDouble(v_{op.name});")
            self.w("goto done;")
            return
        raise TypeError(f"unknown IR op {t.__name__}")

    def _for_assign(self, op: _ir.ForAssign) -> None:
        u = self.uid()
        it = f"it{u}"
        self.iters.append(it)
        h = self.hook("assign")
        self.w("{")
        self.w(f"    PyObject *_r = PyObject_CallFunction({h}, "
               f'"llsl", i__tid, (long)({self.iexpr(op.n)}), '
               f'"{op.kind}", (long){op.chunk});')
        self.w("    if (!_r) goto fail;")
        self.w(f"    {it} = PyObject_GetIter(_r); Py_DECREF(_r);")
        self.w(f"    if (!{it}) goto fail;")
        self.w("}")
        self.w("while (1) {")
        self.depth += 1
        self.w(f"PyObject *_item = PyIter_Next({it});")
        self.w("if (!_item) break;")
        self.w(f"i_{op.var} = PyLong_AsLong(_item); Py_DECREF(_item);")
        self.w(f"if (i_{op.var} == -1 && PyErr_Occurred()) goto fail;")
        self.block(op.body)
        self.depth -= 1
        self.w("}")
        self.w("if (PyErr_Occurred()) goto fail;")
        self.w(f"Py_CLEAR({it});")

    def _region_exit(self, op: _ir.RegionExit) -> None:
        h = self.hook("region_exit")
        self.w("{")
        self.w("    PyObject *_r;")
        if op.has_partials:
            self.w("    PyObject *_pl = PyList_New(part_n);")
            self.w("    if (!_pl) goto fail;")
            self.w("    for (long _i = 0; _i < part_n; _i++) {")
            self.w("        PyObject *_f = PyFloat_FromDouble(part[_i]);")
            self.w("        if (!_f) { Py_DECREF(_pl); goto fail; }")
            self.w("        PyList_SET_ITEM(_pl, _i, _f);")
            self.w("    }")
            self.w(f'    _r = PyObject_CallFunction({h}, "ldOs", '
                   f"(long){op.rid}, v_{op.comp}, _pl, \"{op.op}\");")
            self.w("    Py_DECREF(_pl);")
        else:
            self.w(f'    _r = PyObject_CallFunction({h}, "ldOO", '
                   f"(long){op.rid}, v_{op.comp}, Py_None, Py_None);")
        self.w("    if (!_r) goto fail;")
        self.w(f"    v_{op.comp} = PyFloat_AsDouble(_r); Py_DECREF(_r);")
        self.w(f"    if (v_{op.comp} == -1.0 && PyErr_Occurred()) "
               "goto fail;")
        self.w("}")

    # -- whole module --------------------------------------------------
    def emit(self) -> str:
        kir = self.kir
        self.block(kir.ops)
        body = self.lines
        nk = max(kir.n_constants, 1)

        head: list[str] = [_PRELUDE]
        w = head.append
        w("static PyObject *krun(PyObject *self, PyObject *call_args) {")
        w("    PyObject *args_obj, *rt_obj, *c_obj, *K_obj;")
        w("    PyObject *retval = NULL;")
        w(f"    double K[{nk}];")
        w("    double cy = 0.0, ccy = 0.0, ins = 0.0, br = 0.0;")
        w("    int ierr = 0;")
        w("    double *part = NULL; long part_n = 0, part_cap = 0;")
        ints = dict.fromkeys((*kir.int_vars, "_tid"))
        for name in ints:
            w(f"    long i_{name} = 0;")
        for name in kir.fp_vars:
            w(f"    double v_{name} = 0.0;")
        for name in kir.arrays:
            w(f"    double *a_{name} = NULL; Py_ssize_t an_{name} = 0;")
        for name in kir.queues:
            w(f"    long *q_{name} = NULL; "
              f"long qn_{name} = 0, qc_{name} = 0;")
        for var in self.hooks.values():
            w(f"    PyObject *{var} = NULL;")
        for it in self.iters:
            w(f"    PyObject *{it} = NULL;")
        w("    (void)ierr; (void)i__tid; (void)part;")
        w('    if (!PyArg_ParseTuple(call_args, "OOOO", &args_obj, '
          "&rt_obj, &c_obj, &K_obj)) return NULL;")
        w(f"    if (!PyTuple_Check(K_obj) || PyTuple_GET_SIZE(K_obj) != "
          f"{kir.n_constants}) {{")
        w('        PyErr_SetString(PyExc_TypeError, '
          '"constants tuple has wrong arity");')
        w("        return NULL;")
        w("    }")
        if kir.n_constants:
            w(f"    for (int _i = 0; _i < {kir.n_constants}; _i++) {{")
            w("        K[_i] = PyFloat_AsDouble("
              "PyTuple_GET_ITEM(K_obj, _i));")
            w("        if (K[_i] == -1.0 && PyErr_Occurred()) return NULL;")
            w("    }")
        w("    (void)K;")
        for name, var in self.hooks.items():
            w(f'    {var} = PyObject_GetAttrString(rt_obj, "{name}");')
            w(f"    if (!{var}) goto fail;")

        tail: list[str] = []
        w = tail.append
        w("fail:")
        w("    Py_CLEAR(retval);")
        w("done:")
        for name in kir.arrays:
            w(f"    free(a_{name});")
        for name in kir.queues:
            w(f"    free(q_{name});")
        w("    free(part);")
        for var in self.hooks.values():
            w(f"    Py_XDECREF({var});")
        for it in self.iters:
            w(f"    Py_XDECREF({it});")
        w("    return retval;")
        w("}")
        w(_POSTLUDE)
        return "\n".join(head + body + tail)


def emit_c(kir: _ir.KernelIR) -> str:
    """The full C source for one kernel shape."""
    return _Emitter(kir).emit()


def build_info() -> dict:
    """How C-kernel builds have gone this process: shapes compiled,
    shapes fallen back, and the last failure reason (if any)."""
    return {"compiled": len(_MODULES), "failed": _N_FAILED,
            "last_failure": _LAST_FAILURE}


def _fail(reason: str) -> None:
    global _LAST_FAILURE, _N_FAILED
    _LAST_FAILURE = reason
    _N_FAILED += 1
    if reason not in _warned:
        _warned.add(reason)
        warnings.warn(
            f"C kernel backend unavailable for this kernel, using the "
            f"interpreted entry: {reason}", RuntimeWarning, stacklevel=4)


def _load_module(source: str):
    """Build-or-reuse the content-addressed extension for one source."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    key = sha256((source + suffix).encode()).hexdigest()[:20]
    mod = _MODULES.get(key)
    if mod is not None:
        return mod
    cache_dir = _native._cache_dir()
    if not _native._cache_dir_trusted(cache_dir):
        _fail(f"untrusted cache dir {cache_dir}")
        return None
    out = cache_dir / f"_repro_kernel-{key}{suffix}"
    if not out.exists():
        cc = _native._find_cc()
        if cc is None:
            _fail("no C compiler found (CC/cc/gcc/clang)")
            return None
        ok, why = _native.build_shared_object(cc, source, out,
                                              extra_flags=_CFLAGS)
        if not ok:
            _fail(f"build failed: {why}")
            return None
    try:
        mod = _native.import_shared_object(out, name="_repro_kernel")
    except Exception as exc:
        _fail(f"import failed: {type(exc).__name__}: {exc}")
        return None
    if mod is None or not hasattr(mod, "run"):
        _fail(f"import failed: no run() in {os.fspath(out)}")
        return None
    _MODULES[key] = mod
    return mod


def bind_c(structural, constants: tuple[float, ...]):
    """The compiled entry for one vendor's binding of a kernel shape, or
    ``None`` (caller falls back to interp) when the build is impossible —
    with the reason recorded and warned once, never silently."""
    mod = structural.backend_cache.get("c")
    if mod is None:
        if "c_failed" in structural.backend_cache:
            return None
        mod = _load_module(emit_c(structural.ir))
        if mod is None:
            structural.backend_cache["c_failed"] = _LAST_FAILURE
            return None
        structural.backend_cache["c"] = mod

    def _kernel(_args, _rt, _c, run=mod.run, constants=constants):
        return run(_args, _rt, _c, constants)
    return _kernel
