"""Compiler-half floating-point lowering (FMA contraction, -O3 effects).

The three vendors lower the *same* source expression trees differently:

* ``fma_mode="basic"`` (SimClang, SimIntel — both LLVM-based) contracts
  only addition shapes ``a*b + c`` / ``c + a*b``,
* ``fma_mode="aggressive"`` (SimGCC, whose ``-O3`` implies
  ``-ffp-contract=fast``) additionally contracts subtraction shapes
  ``a*b - c`` and ``c - a*b``,
* ``fma_mode="none"`` (all vendors below ``-O2``) leaves trees untouched.

A contracted multiply-add rounds once instead of twice; on extreme inputs
the difference cascades into overflow/NaN divergence and branch flips —
the numerical-exception control-flow mechanism of Section V-B.

The transform is pure: it returns a **new** body tree, leaving the
original program untouched (all vendors must compile identical source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Block,
    BoolExpr,
    DeclAssign,
    Expr,
    ForLoop,
    FPNumeral,
    IfBlock,
    IntNumeral,
    MathCall,
    OmpAtomic,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSection,
    OmpSections,
    OmpSingle,
    OmpTask,
    OmpTaskwait,
    Paren,
    ThreadIdx,
    UnaryOp,
    VarRef,
)
from ..core.types import BinOpKind


@dataclass(slots=True)
class FusedMulAdd:
    """Internal lowered node: ``round(a*b + c)`` with a single rounding.

    Only ever appears in vendor-lowered trees, never in generated source
    (the grammar checker runs before lowering).  ``negate_product`` covers
    the ``c - a*b`` contraction.
    """

    a: Expr
    b: Expr
    c: Expr
    negate_product: bool = False

    def children(self) -> Iterator[Expr]:
        yield self.a
        yield self.b
        yield self.c


def _strip_paren(e: Expr) -> Expr:
    """Contraction looks through parentheses, as real compilers do: parens
    affect parse grouping, not whether a product feeds an add."""
    while isinstance(e, Paren):
        e = e.inner
    return e


def _as_product(e: Expr) -> BinOp | None:
    inner = _strip_paren(e)
    if isinstance(inner, BinOp) and inner.op is BinOpKind.MUL:
        return inner
    return None


def lower_expr(e: Expr, fma_mode: str) -> Expr:
    """Recursively lower one expression tree under the given fma mode."""
    if isinstance(e, (FPNumeral, IntNumeral, VarRef, ThreadIdx)):
        return e
    if isinstance(e, ArrayRef):
        return e  # index sub-language contains no fp arithmetic
    if isinstance(e, Paren):
        return Paren(lower_expr(e.inner, fma_mode))
    if isinstance(e, UnaryOp):
        return UnaryOp(e.op, lower_expr(e.operand, fma_mode))
    if isinstance(e, MathCall):
        return MathCall(e.func, lower_expr(e.arg, fma_mode))
    if isinstance(e, FusedMulAdd):  # already lowered (idempotence)
        return e
    if isinstance(e, BinOp):
        lhs = lower_expr(e.lhs, fma_mode)
        rhs = lower_expr(e.rhs, fma_mode)
        if fma_mode != "none":
            fused = _try_contract(e.op, lhs, rhs, fma_mode)
            if fused is not None:
                return fused
        return BinOp(e.op, lhs, rhs)
    raise TypeError(f"cannot lower {type(e).__name__}")


def _try_contract(op: BinOpKind, lhs: Expr, rhs: Expr,
                  fma_mode: str) -> FusedMulAdd | None:
    if op is BinOpKind.ADD:
        prod = _as_product(lhs)
        if prod is not None:
            return FusedMulAdd(prod.lhs, prod.rhs, rhs)
        prod = _as_product(rhs)
        if prod is not None:
            return FusedMulAdd(prod.lhs, prod.rhs, lhs)
        return None
    if op is BinOpKind.SUB and fma_mode == "aggressive":
        prod = _as_product(lhs)
        if prod is not None:
            # a*b - c  ==  fma(a, b, -c)
            return FusedMulAdd(prod.lhs, prod.rhs, UnaryOp("-", rhs))
        prod = _as_product(rhs)
        if prod is not None:
            # c - a*b  ==  fma(-a, b, c)
            return FusedMulAdd(prod.lhs, prod.rhs, lhs, negate_product=True)
    return None


def lower_stmt(s, fma_mode: str):
    """Lower one statement, returning a new node (children rebuilt)."""
    if isinstance(s, Assignment):
        return Assignment(s.target, s.op, lower_expr(s.expr, fma_mode))
    if isinstance(s, DeclAssign):
        return DeclAssign(s.var, lower_expr(s.expr, fma_mode))
    if isinstance(s, IfBlock):
        cond = BoolExpr(s.cond.lhs, s.cond.op, lower_expr(s.cond.rhs, fma_mode))
        return IfBlock(cond, lower_block(s.body, fma_mode))
    if isinstance(s, ForLoop):
        return ForLoop(s.loop_var, s.bound, lower_block(s.body, fma_mode),
                       omp_for=s.omp_for, schedule=s.schedule,
                       schedule_chunk=s.schedule_chunk, collapse=s.collapse)
    if isinstance(s, OmpCritical):
        return OmpCritical(lower_block(s.body, fma_mode))
    if isinstance(s, OmpAtomic):
        # the RMW applies the compound op itself; only the expression side
        # is eligible for contraction
        return OmpAtomic(Assignment(s.update.target, s.update.op,
                                    lower_expr(s.update.expr, fma_mode)))
    if isinstance(s, OmpSingle):
        return OmpSingle(lower_block(s.body, fma_mode))
    if isinstance(s, OmpBarrier):
        return OmpBarrier()
    if isinstance(s, OmpSections):
        return OmpSections([OmpSection(lower_block(sec.body, fma_mode))
                            for sec in s.sections])
    if isinstance(s, OmpTask):
        return OmpTask(lower_block(s.body, fma_mode))
    if isinstance(s, OmpTaskwait):
        return OmpTaskwait()
    if isinstance(s, OmpParallel):
        return OmpParallel(s.clauses, lower_block(s.body, fma_mode),
                           combined_for=s.combined_for)
    raise TypeError(f"cannot lower statement {type(s).__name__}")


def lower_block(b: Block, fma_mode: str) -> Block:
    return Block([lower_stmt(s, fma_mode) for s in b.stmts])


def effective_fma_mode(fma_mode: str, opt_level: str) -> str:
    """FMA contraction only engages at -O2 and above."""
    if opt_level in ("-O0", "-O1"):
        return "none"
    return fma_mode


def opt_cycle_scale(opt_level: str) -> float:
    """Compute-cycle multiplier for the optimization level (unoptimized
    scalar code is ~3x slower; used by the opt-level ablation bench)."""
    return {"-O0": 3.2, "-O1": 1.6, "-O2": 1.08, "-O3": 1.0}[opt_level]
