"""Simulated ``perf``-style hardware counters (Tables II and III).

The paper compares vendors using ``perf_events`` counter statistics:
context-switches, cpu-migrations, page-faults, cycles, instructions,
branches, branch-misses.  The simulated runtime produces the same seven
counters mechanistically:

* instructions / branches accrue per executed block (static per-block
  costs computed at lowering time),
* cycles follow the virtual clock,
* context-switches / migrations come from the vendor's wait policy
  (sleeping waits reschedule; spinning ones do not),
* page-faults come from memory events (array allocation, team spawn).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(slots=True)
class PerfCounters:
    """The seven counters the paper reports, plus lock statistics."""

    context_switches: int = 0
    cpu_migrations: int = 0
    page_faults: int = 0
    cycles: int = 0
    instructions: int = 0
    branches: int = 0
    branch_misses: int = 0
    # extra visibility into the lock model (not in perf, used by analyses)
    critical_acquires: int = 0
    # atomic RMW updates executed (`#pragma omp atomic`)
    atomic_updates: int = 0

    PERF_FIELDS = ("context_switches", "cpu_migrations", "page_faults",
                   "cycles", "instructions", "branches", "branch_misses")

    def add(self, other: "PerfCounters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict[str, int]:
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    def perf_row(self) -> dict[str, int]:
        """Only the seven counters the paper's tables show."""
        return {k: int(getattr(self, k)) for k in self.PERF_FIELDS}

    def copy(self) -> "PerfCounters":
        return PerfCounters(**self.as_dict())
