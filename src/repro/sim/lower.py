"""AST -> Python lowering: the execution half of a simulated compiler.

A vendor "compiles" a generated program by (1) applying its FP transforms
(:mod:`repro.vendors.optimizer`) and (2) lowering the result to a Python
function via this module.  The lowered code:

* evaluates with exact IEEE semantics (``float`` is binary64; binary32
  programs wrap each operation in :func:`repro.sim.values.f32`; division
  and math calls go through IEEE-behaved helpers; Intel's FTZ wraps every
  result),
* charges **statically pre-computed** cost constants per straight-line
  segment into local accumulators (``_cy``/``_ins``/``_br``; blocks
  inside critical sections charge the ``_ccy`` lane instead) that are
  synchronized with the shared :class:`CostState` around every runtime
  hook that observes or mutates it,
* drives the simulated OpenMP runtime through ``_rt`` hooks
  (:class:`repro.sim.runtime.RegionExecutor`): region enter/exit, static
  chunking of ``omp for``, critical enter/exit, per-thread accounting.

Per-thread semantics follow the sequential-serialization argument: for
race-free programs (the generator's guarantee), executing team members
one after another is a legal OpenMP schedule, so results are exact and
deterministic; reduction partials are combined in thread order, the same
for every vendor, so numeric divergence comes only from *compiler*
transforms — as in the paper.

Two-phase lowering
------------------

Lowering is split into two passes so the three simulated vendors stop
re-walking identical trees:

1. a **structural pass** (:class:`StructuralLowerer`) — expression and
   statement emission, region metadata, charge-site discovery — runs once
   per *kernel shape* ``(program, ftz, fma_mode)`` and produces a
   :class:`StructuralKernel`: compiled template code whose cost constants
   are a tuple parameter ``_K``;
2. a **cost pass** (:func:`bind_costs`) — pure arithmetic over the
   vendor's :class:`~repro.vendors.base.OpCosts` and scale factors —
   fills in the per-vendor ``_K`` values without touching the AST or the
   compiler, yielding a :class:`LoweredKernel`.

The cost pass reproduces the exact floating-point evaluation order of the
classic single-pass lowerer (including its ``%.1f`` constant rounding),
so two-phase kernels are byte-identical in behaviour to the seed
reproduction.  :class:`Lowerer` remains as the one-shot facade running
both passes; campaign compiles go through
:class:`repro.sim.kcache.KernelCache` instead, which caches both phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isfinite

from ..core.nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Block,
    BoolExpr,
    DeclAssign,
    Expr,
    ForLoop,
    FPNumeral,
    IfBlock,
    IntNumeral,
    MathCall,
    ModIdx,
    OmpAtomic,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSections,
    OmpSingle,
    OmpTask,
    OmpTaskwait,
    Paren,
    Program,
    ThreadIdx,
    UnaryOp,
    VarRef,
)
from typing import TYPE_CHECKING

from ..core.types import AssignOpKind, BinOpKind, FPType
from . import ir as _ir
from .fptransforms import FusedMulAdd, opt_cycle_scale
from .values import MATH_IMPLS, f32, f32z, fdiv, fma_d, fma_f, ftz_d, ftz_f
from .writer_util import PyWriter

if TYPE_CHECKING:  # typing-only: breaks the sim <-> vendors import cycle
    from ..vendors.base import VendorModel


class CostState:
    """Mutable cost accumulator shared between lowered code and runtime.

    ``cy``  — compute cycles on the current lane (serial or thread),
    ``ccy`` — cycles spent inside critical sections,
    ``ins`` — instructions, ``br`` — branches (both lane-independent).
    """

    __slots__ = ("cy", "ccy", "ins", "br")

    def __init__(self) -> None:
        self.cy = 0.0
        self.ccy = 0.0
        self.ins = 0.0
        self.br = 0.0


@dataclass
class RegionMeta:
    """Static facts about one parallel region, indexed by region id."""

    has_omp_for: bool = False
    has_critical: bool = False
    reduction_op: str | None = None
    n_threads: int = 32
    combined_for: bool = False
    has_atomic: bool = False
    has_single: bool = False
    has_barrier: bool = False
    has_collapse: bool = False
    #: worksharing-graph constructs (round-robin arm assignment / the
    #: deterministic cost-accounted task queue)
    has_sections: bool = False
    has_tasks: bool = False
    n_section_arms: int = 0
    n_tasks: int = 0
    #: explicit schedule kinds appearing on the region's worksharing loops
    schedules: tuple[str, ...] = ()


_HELPERS = {
    "_div": fdiv,
    "_f32": f32,
    "_f32z": f32z,
    "_fma": fma_d,
    "_fmaf": fma_f,
    "_ftz": ftz_d,
    "_ftzf": ftz_f,
    "_MATH": MATH_IMPLS,
}

#: helper parameter defaults appended to the kernel signature so every
#: hot-loop helper reference is a LOAD_FAST instead of a LOAD_GLOBAL
_HELPER_PARAMS = ("_f32", "_f32z", "_ftz", "_ftzf", "_div", "_fma",
                  "_fmaf", "_MATH")

_OPSYM = {BinOpKind.ADD: "+", BinOpKind.SUB: "-", BinOpKind.MUL: "*",
          BinOpKind.DIV: "/"}

#: accumulator synchronization snippets: lowered code mirrors the four
#: CostState lanes in fast locals and exchanges them with the shared
#: object only around runtime hooks that read, mutate, or may abort with
#: a partial cost (see RegionExecutor's hook classification)
_FLUSH = "_c.cy = _cy; _c.ccy = _ccy; _c.ins = _ins; _c.br = _br"
_RELOAD = "_cy = _c.cy; _ccy = _c.ccy; _ins = _c.ins; _br = _c.br"


# ======================================================================
# cost model (phase 2 arithmetic, also used structurally in phase 1)
# ======================================================================

class _RefOps:
    """Positivity reference mirroring the OpCosts defaults.

    The structural pass only needs to know whether a charge site has
    *any* cost contribution (all vendor per-op costs are strictly
    positive, so zero cost is a structural property, not a vendor one);
    using a local mirror avoids importing :mod:`repro.vendors.base` at
    module scope, which would recreate the sim <-> vendors import cycle.
    """

    arith = (14.0, 4.0)
    div = (40.0, 5.0)
    math_call = (110.0, 40.0)
    load = (10.0, 1.0)
    store = (12.0, 1.0)
    branch = (6.0, 2.0)
    loop_iter = (8.0, 3.0)


class CostModel:
    """Vendor-parameterized static cost functions.

    The bodies replicate the classic lowerer's recursion *exactly* —
    including association order of the floating-point sums — so the
    two-phase pipeline produces bit-identical cost constants.
    """

    __slots__ = ("ops",)

    def __init__(self, ops) -> None:
        self.ops = ops

    def expr_cost(self, e: Expr) -> tuple[float, float]:
        ops = self.ops
        if isinstance(e, (FPNumeral, IntNumeral, ThreadIdx)):
            return (0.0, 0.0)
        if isinstance(e, VarRef):
            return ops.load if e.var.is_fp else (ops.load[0] * 0.5, 1.0)
        if isinstance(e, ArrayRef):
            cy, ins = ops.load
            return (cy * 1.4, ins + 1.0)  # index arithmetic + indirection
        if isinstance(e, (Paren, UnaryOp)):
            inner = e.inner if isinstance(e, Paren) else e.operand
            cy, ins = self.expr_cost(inner)
            return (cy + 0.5, ins + 0.5)
        if isinstance(e, BinOp):
            lc, li = self.expr_cost(e.lhs)
            rc, ri = self.expr_cost(e.rhs)
            oc, oi = ops.div if e.op is BinOpKind.DIV else ops.arith
            return (lc + rc + oc, li + ri + oi)
        if isinstance(e, FusedMulAdd):
            ac, ai = self.expr_cost(e.a)
            bc, bi = self.expr_cost(e.b)
            cc, ci = self.expr_cost(e.c)
            oc, oi = ops.arith
            return (ac + bc + cc + oc * 1.3, ai + bi + ci + oi * 1.1)
        if isinstance(e, MathCall):
            ic, ii = self.expr_cost(e.arg)
            mc, mi = ops.math_call
            return (ic + mc, ii + mi)
        raise TypeError(f"no cost for {type(e).__name__}")

    def stmt_cost(self, s) -> tuple[float, float]:
        ops = self.ops
        if isinstance(s, Assignment):
            cy, ins = self.expr_cost(s.expr)
            sc, si = ops.store
            if isinstance(s.target, ArrayRef):
                sc, si = sc * 1.4, si + 1.0
            if s.op.binop is not None:  # compound: extra read + op
                lc, li = ops.load
                oc, oi = (ops.div if s.op is AssignOpKind.DIV_ASSIGN
                          else ops.arith)
                cy, ins = cy + lc + oc, ins + li + oi
            return (cy + sc, ins + si)
        if isinstance(s, DeclAssign):
            cy, ins = self.expr_cost(s.expr)
            sc, si = ops.store
            return (cy + sc, ins + si)
        raise TypeError(f"not a simple statement: {type(s).__name__}")

    def extra_cost(self, extra: tuple) -> tuple[float, float]:
        """Cost of a charge site's non-statement contribution."""
        kind = extra[0]
        if kind == "loop":  # one (or, collapsed, two) loop-head iterations
            mult = extra[1]
            cy, ins = self.ops.loop_iter
            return (cy, ins) if mult == 1 else (cy * mult, ins * mult)
        if kind == "if":  # condition eval + compare + branch
            cc, ci = self.expr_cost(extra[1])
            bc, bi = self.ops.branch
            return (cc + bc + self.ops.load[0], ci + bi + 1.0)
        if kind == "branch":  # bare branch (single's arrival election)
            return self.ops.branch
        raise ValueError(f"unknown extra kind {kind!r}")  # pragma: no cover

    def site_cost(self, site: "ChargeSite") -> tuple[float, float]:
        """Raw (cycles, instructions) of one charge site, pre-scaling."""
        cy = sum(self.stmt_cost(s)[0] for s in site.stmts)
        ins = sum(self.stmt_cost(s)[1] for s in site.stmts)
        if site.extra is not None:
            ecy, eins = self.extra_cost(site.extra)
            cy, ins = cy + ecy, ins + eins
        return cy, ins


_REF_MODEL = CostModel(_RefOps)


# ======================================================================
# charge sites: what the cost pass fills in per vendor
# ======================================================================

class ChargeSite:
    """One fused cost charge: statements plus an optional head term.

    ``k_cy``/``k_ins`` are indices into the kernel's ``_K`` constants
    tuple (``None`` when that component is structurally zero); ``br`` is
    vendor-independent and baked into the template as a literal.
    """

    __slots__ = ("stmts", "extra", "br", "in_crit", "k_cy", "k_ins")

    def __init__(self, stmts: tuple, extra: tuple | None, br: float,
                 in_crit: bool):
        self.stmts = stmts
        self.extra = extra
        self.br = br
        self.in_crit = in_crit
        self.k_cy: int | None = None
        self.k_ins: int | None = None


class RuntimeConstSite:
    """An unscaled runtime-parameter constant (e.g. one atomic RMW).

    The classic lowerer charged these from inside the runtime hook; the
    two-phase kernel charges them inline (same accumulator, same order)
    so the hook stays cost-transparent and needs no local/shared
    synchronization.
    """

    __slots__ = ("param", "k")

    def __init__(self, param: str, k: int):
        self.param = param
        self.k = k


@dataclass
class StructuralKernel:
    """Phase-1 output: vendor-shape template plus charge-site metadata."""

    template: str
    code: object  # types.CodeType, shared by every vendor of this shape
    sites: tuple[object, ...]  # ChargeSite | RuntimeConstSite, in _K order
    n_constants: int
    regions: list[RegionMeta]
    uses_math: tuple[str, ...]
    #: the backend-neutral typed IR built during the same walk that
    #: emitted the template (see :mod:`repro.sim.ir`)
    ir: object = field(default=None, repr=False, compare=False)
    #: per-shape compiled artifacts (VM bytecode, C extension module),
    #: lazily populated by the backends and shared across vendors
    backend_cache: dict = field(default_factory=dict, repr=False,
                                compare=False)


@dataclass
class LoweredKernel:
    """Output of lowering: template code bound to one vendor's constants."""

    source: str
    code: object  # types.CodeType (shared across same-shape kernels)
    constants: tuple[float, ...] = ()
    regions: list[RegionMeta] = field(default_factory=list)
    uses_math: tuple[str, ...] = ()
    #: the shape this kernel was bound from (the compiled backends need
    #: its IR; ``None`` only for hand-built kernels in tests)
    structural: object = field(default=None, repr=False, compare=False)
    _entries: dict = field(default_factory=dict, repr=False, compare=False)

    def bind(self, backend: str | None = None) -> object:
        """The ``_kernel`` callable for ``backend`` (default: the
        process-active :func:`repro.sim.backend.active_kernel_backend`).

        Entries are memoized per backend, so repeated binds (every
        execution site, every input) reuse one callable instead of
        re-exec'ing / re-compiling.  The compiled backends fall back to
        the interpreted entry — recording why — when unavailable.
        """
        if backend is None:
            from .backend import active_kernel_backend
            backend = active_kernel_backend()
        entry = self._entries.get(backend)
        if entry is None:
            entry = self._make_entry(backend)
            self._entries[backend] = entry
        return entry

    def _make_entry(self, backend: str) -> object:
        if backend != "interp" and self.structural is not None \
                and getattr(self.structural, "ir", None) is not None:
            if backend == "vm":
                from .vm import bind_vm
                return bind_vm(self.structural, self.constants)
            if backend == "c":
                from .ckernel import bind_c
                entry = bind_c(self.structural, self.constants)
                if entry is not None:
                    return entry
                # unavailable (no toolchain / untrusted cache / build
                # failure): sim.backend recorded the reason and warned
        ns = dict(_HELPERS)
        ns["_K"] = self.constants
        exec(self.code, ns)  # noqa: S102 - our own generated code
        return ns["_kernel"]


# ======================================================================
# phase 1: the structural pass
# ======================================================================

class StructuralLowerer:
    """Lowers one (FP-transformed) program to a vendor-shape template.

    ``ftz`` is the only vendor trait that changes emitted *code* (the
    FMA mode changed the input tree before this pass); everything else a
    vendor contributes — per-op costs, cycle/instruction scales, fault
    scaling — lives in the ``_K`` constants tuple that
    :func:`bind_costs` computes in phase 2.
    """

    def __init__(self, program: Program, *, ftz: bool):
        self.program = program
        self.fp32 = program.fp_type is FPType.FLOAT
        self.ftz = ftz
        self.w = PyWriter()
        #: IR built in lockstep with the template (same walk, same order)
        self.b = _ir.IrBuilder()
        self._wrapc = _ir.wrap_code(self.fp32, ftz)
        self.regions: list[RegionMeta] = []
        self.math_used: set[str] = set()
        self.sites: list[object] = []
        self._n_constants = 0
        #: name substitution (comp -> reduction private copy inside regions)
        self._subst: dict[str, str] = {}
        self._in_crit = False
        #: team size of the region being emitted (section-arm assignment)
        self._region_threads = 1
        #: per-arm task-queue emission state (no nesting: one at a time)
        self._arm: dict | None = None
        self._uniq = 0

    # ==================================================================
    # expression emission
    # ==================================================================
    def _wrap(self, text: str) -> str:
        """Apply binary32 rounding and/or FTZ to one operation result."""
        if self.fp32:
            if self.ftz:
                return f"_f32z({text})"  # fused f32 + binary32 FTZ
            return f"_f32({text})"
        if self.ftz:
            return f"_ftz({text})"
        return text

    def _wrap_value(self, v: float) -> float:
        """The value :meth:`_wrap` would produce at runtime — same helper
        functions, so folded constants are bit-identical to executing the
        operation in the kernel."""
        if self.fp32:
            return f32z(v) if self.ftz else f32(v)
        if self.ftz:
            return ftz_d(v)
        return v

    def expr(self, e: Expr) -> str:
        return self._expr(e)[0]

    def _expr(self, e: Expr) -> tuple[str, float | None, object]:
        """(source text, folded constant value or None, IR expression).

        Subtrees whose leaves are all numerals are evaluated once at
        lowering time — with the very helper functions the emitted code
        would call — and emitted as a single ``repr`` literal (``repr``
        round-trips floats exactly).  Folding changes only the executed
        bytecode: the static cost model still charges the full tree, so
        costs, counters, and results match unfolded execution exactly.
        The IR mirrors the emitted text op for op (folded subtrees
        become :class:`~repro.sim.ir.FLit` of the same float), so every
        backend evaluates exactly what the template evaluates.
        """
        if isinstance(e, FPNumeral):
            v = f32(e.value) if self.fp32 else e.value
            return repr(v), v, _ir.FLit(v)
        if isinstance(e, IntNumeral):
            v = float(e.value)
            return repr(v), v, _ir.FLit(v)
        if isinstance(e, VarRef):
            name = self._subst.get(e.var.name, e.var.name)
            if e.var.is_fp:
                return name, None, _ir.FVar(self.b.fvar(name))
            return (f"float({name})", None,
                    _ir.IToF(_ir.IVar(self.b.ivar(name))))
        if isinstance(e, ArrayRef):
            idx, idx_ir = self._index(e.index)
            return (f"{e.var.name}[{idx}]", None,
                    _ir.ALoad(self.b.array(e.var.name), idx_ir))
        if isinstance(e, ThreadIdx):
            return "float(_tid)", None, _ir.IToF(_ir.IVar("_tid"))
        if isinstance(e, Paren):
            return self._expr(e.inner)  # grouping is explicit in our output
        if isinstance(e, UnaryOp):
            inner, v, iv = self._expr(e.operand)
            if e.op == "+":
                return inner, v, iv
            if v is not None:
                folded = -v
                return repr(folded), folded, _ir.FLit(folded)
            return f"(-({inner}))", None, _ir.FNeg(iv)
        if isinstance(e, BinOp):
            (lhs, lv, li), (rhs, rv, ri) = self._expr(e.lhs), self._expr(e.rhs)
            if e.op is BinOpKind.DIV:
                if lv is not None and rv is not None:
                    folded = self._wrap_value(fdiv(lv, rv))
                    if isfinite(folded):  # inf/nan have no source literal
                        return repr(folded), folded, _ir.FLit(folded)
                div_ir = _ir.FBin("/", li, ri, self._wrapc)
                if rv is not None and rv != 0.0:
                    # nonzero (or nan) constant divisor: Python's own `/`
                    # is IEEE-identical and never raises — skip the
                    # ZeroDivisionError-translating helper call
                    return self._wrap(f"({lhs} / {rhs})"), None, div_ir
                return self._wrap(f"_div({lhs}, {rhs})"), None, div_ir
            if lv is not None and rv is not None:
                op = e.op
                raw = (lv + rv if op is BinOpKind.ADD else
                       lv - rv if op is BinOpKind.SUB else lv * rv)
                folded = self._wrap_value(raw)
                if isfinite(folded):
                    return repr(folded), folded, _ir.FLit(folded)
            sym = _OPSYM[e.op]
            return (self._wrap(f"({lhs} {sym} {rhs})"), None,
                    _ir.FBin(sym, li, ri, self._wrapc))
        if isinstance(e, FusedMulAdd):
            a, av, ai = self._expr(e.a)
            b, bv, bi = self._expr(e.b)
            c, cv, ci = self._expr(e.c)
            if av is not None and e.negate_product:
                av, a = -av, repr(-av)
                ai = _ir.FLit(av)
            elif e.negate_product:
                a, ai = f"(-({a}))", _ir.FNeg(ai)
            if av is not None and bv is not None and cv is not None:
                folded = fma_f(av, bv, cv) if self.fp32 else fma_d(av, bv, cv)
                if self.ftz:
                    folded = ftz_f(folded) if self.fp32 else ftz_d(folded)
                if isfinite(folded):
                    return repr(folded), folded, _ir.FLit(folded)
            fn = "_fmaf" if self.fp32 else "_fma"
            text = f"{fn}({a}, {b}, {c})"
            if self.ftz:
                text = f"_ftzf({text})" if self.fp32 else f"_ftz({text})"
            return text, None, _ir.FFma(ai, bi, ci, self.fp32, self.ftz)
        if isinstance(e, MathCall):
            self.math_used.add(e.func)
            arg, av, argi = self._expr(e.arg)
            if av is not None:
                folded = self._wrap_value(MATH_IMPLS[e.func](av))
                if isfinite(folded):
                    return repr(folded), folded, _ir.FLit(folded)
            return (self._wrap(f"_m_{e.func}({arg})"), None,
                    _ir.FCall(e.func, argi, self._wrapc))
        raise TypeError(f"cannot lower expression {type(e).__name__}")

    def index(self, idx) -> str:
        return self._index(idx)[0]

    def _index(self, idx) -> tuple[str, object]:
        if isinstance(idx, IntNumeral):
            return str(idx.value), _ir.ILit(idx.value)
        if isinstance(idx, VarRef):
            name = self._subst.get(idx.var.name, idx.var.name)
            return name, _ir.IVar(self.b.ivar(name))
        if isinstance(idx, ThreadIdx):
            return "_tid", _ir.IVar("_tid")
        if isinstance(idx, ModIdx):
            base, base_ir = self._index(idx.base)
            return (f"({base}) % {idx.modulus}",
                    _ir.IMod(base_ir, idx.modulus))
        raise TypeError(f"cannot lower index {type(idx).__name__}")

    def bool_expr(self, b: BoolExpr) -> str:
        return self._bool(b)[0]

    def _bool(self, b: BoolExpr) -> tuple[str, object]:
        if isinstance(b.lhs, VarRef):
            lhs, _, lhs_ir = self._expr(b.lhs)
        else:
            idx, idx_ir = self._index(b.lhs.index)
            lhs = f"{b.lhs.var.name}[{idx}]"
            lhs_ir = _ir.ALoad(self.b.array(b.lhs.var.name), idx_ir)
        rhs, _, rhs_ir = self._expr(b.rhs)
        return (f"({lhs}) {b.op.value} ({rhs})",
                _ir.Cmp(lhs_ir, b.op.value, rhs_ir))

    # ==================================================================
    # charge-site emission
    # ==================================================================
    def _alloc(self) -> int:
        k = self._n_constants
        self._n_constants += 1
        return k

    def _charge(self, stmts: tuple = (), extra: tuple | None = None,
                br: float = 0.0) -> None:
        """Emit one accumulator update for a fused segment.

        Which components appear is decided structurally (every vendor
        per-op cost is strictly positive, so a site's cost is zero for
        one vendor exactly when it is zero for all); the *values* are
        ``_K`` slots the cost pass fills per vendor.
        """
        site = ChargeSite(stmts, extra, br, self._in_crit)
        ref_cy, ref_ins = _REF_MODEL.site_cost(site)
        lane = "_ccy" if self._in_crit else "_cy"
        parts = []
        if ref_cy:
            site.k_cy = self._alloc()
            parts.append(f"{lane} += _K{site.k_cy}")
        if ref_ins:
            site.k_ins = self._alloc()
            parts.append(f"_ins += _K{site.k_ins}")
        if br:
            parts.append(f"_br += {br:.0f}")
        if site.k_cy is not None or site.k_ins is not None:
            self.sites.append(site)
        if parts:
            self.w.line("; ".join(parts))
            self.b.emit(_ir.Charge(1 if self._in_crit else 0, site.k_cy,
                                   site.k_ins, float(br)))

    def _runtime_const(self, param: str) -> None:
        """Charge one unscaled runtime-parameter constant on the cycle
        lane (always ``_cy`` — the classic runtime charged ``c.cy``
        regardless of the critical lane)."""
        k = self._alloc()
        self.sites.append(RuntimeConstSite(param, k))
        self.w.line(f"_cy += _K{k}")
        self.b.emit(_ir.Charge(0, k, None, 0.0))

    # ==================================================================
    # statement emission
    # ==================================================================
    def _emit_assignment(self, s: Assignment) -> None:
        rhs, rv, rhs_ir = self._expr(s.expr)
        if isinstance(s.target, VarRef):
            name = self._subst.get(s.target.var.name, s.target.var.name)
            idx_ir = None
            load_ir: object = _ir.FVar(self.b.fvar(name))
        else:
            idx, idx_ir = self._index(s.target.index)
            name = f"{s.target.var.name}[{idx}]"
            load_ir = _ir.ALoad(self.b.array(s.target.var.name), idx_ir)

        def store(e_ir: object) -> None:
            if idx_ir is None:
                self.b.emit(_ir.SetVar(name, e_ir))
            else:
                self.b.emit(_ir.AStore(s.target.var.name, idx_ir, e_ir))

        if s.op is AssignOpKind.ASSIGN:
            self.w.line(f"{name} = {rhs}")
            store(rhs_ir)
            return
        binop = s.op.binop
        assert binop is not None
        if binop is BinOpKind.DIV:
            if rv is not None and rv != 0.0:  # see the BinOp DIV fast path
                self.w.line(f"{name} = {self._wrap(f'({name} / {rhs})')}")
            else:
                self.w.line(f"{name} = {self._wrap(f'_div({name}, {rhs})')}")
            store(_ir.FBin("/", load_ir, rhs_ir, self._wrapc))
        else:
            self.w.line(
                f"{name} = {self._wrap(f'({name} {_OPSYM[binop]} {rhs})')}")
            store(_ir.FBin(_OPSYM[binop], load_ir, rhs_ir, self._wrapc))

    def _emit_simple(self, s) -> None:
        if isinstance(s, Assignment):
            self._emit_assignment(s)
        elif isinstance(s, DeclAssign):
            text, _, e_ir = self._expr(s.expr)
            self.w.line(f"{s.var.name} = {text}")
            self.b.emit(_ir.SetVar(self.b.fvar(s.var.name), e_ir))
        else:  # pragma: no cover
            raise TypeError(type(s).__name__)

    def block(self, b: Block, *, extra: tuple | None = None,
              tid_var: str | None = None) -> None:
        """Emit a block: segments of simple statements get one fused charge."""
        pending: list = []
        first = True

        def flush() -> None:
            nonlocal first
            if not pending and not (first and extra is not None):
                return
            if first:
                self._charge(tuple(pending), extra,
                             extra[2] if extra is not None else 0.0)
                first = False
            else:
                self._charge(tuple(pending))
            for s in pending:
                self._emit_simple(s)
            pending.clear()

        for s in b.stmts:
            if isinstance(s, (Assignment, DeclAssign)):
                pending.append(s)
                continue
            flush()
            if first:  # control statement heads the block: standalone charge
                if extra is not None:
                    self._charge((), extra, extra[2])
                first = False
            self.stmt(s, tid_var=tid_var)
        flush()

    def stmt(self, s, *, tid_var: str | None = None) -> None:
        if isinstance(s, IfBlock):
            self._charge((), ("if", s.cond.rhs), 1.0)
            cond, cond_ir = self._bool(s.cond)
            self.w.open(f"if {cond}:")
            self.b.push()
            self.block(s.body, tid_var=tid_var)
            self.w.close()
            self.b.emit(_ir.If(cond_ir, self.b.pop()))
            return
        if isinstance(s, ForLoop):
            self._emit_for(s, tid_var=tid_var)
            return
        if isinstance(s, OmpCritical):
            # crit_enter may abort with the livelock fault: the shared
            # cost state must be current when the driver reads it
            self.w.line(_FLUSH)
            self.b.emit(_ir.Flush())
            self.w.line("_rt.crit_enter()")
            self.b.emit(_ir.Hook("crit_enter", False))
            was = self._in_crit
            self._in_crit = True
            self.block(s.body, tid_var=tid_var)
            self._in_crit = was
            self.w.line("_rt.crit_exit()")
            self.b.emit(_ir.Hook("crit_exit", False))
            return
        if isinstance(s, OmpAtomic):
            assert tid_var is not None, "atomic outside a parallel region"
            # the update itself costs like the plain statement; the RMW
            # premium is the runtime's uncontended atomic cost, charged
            # inline so the hook stays cost-transparent
            self._charge((s.update,))
            self._runtime_const("atomic_rmw_cycles")
            self.w.line("_rt.atomic_update()")
            self.b.emit(_ir.Hook("atomic_update", False))
            self._emit_assignment(s.update)
            return
        if isinstance(s, OmpSingle):
            assert tid_var is not None, "single outside a parallel region"
            # the simulator serializes threads, so "the first thread to
            # arrive" is deterministically thread 0; the body's effects
            # are restricted to team-uniform values, making any choice of
            # executor equivalent (and the native run deterministic)
            self._charge((), ("branch",), 1.0)
            self.w.open(f"if {tid_var} == 0:")
            self.b.push()
            self.block(s.body, tid_var=tid_var)
            self.w.close()
            self.b.emit(_ir.IfIntEq(tid_var, 0, self.b.pop()))
            self._runtime_const("single_arrival_cycles")
            self.w.line(f"_rt.single_done({tid_var})")
            self.b.emit(_ir.Hook("single_done", True))
            return
        if isinstance(s, OmpBarrier):
            assert tid_var is not None, "barrier outside a parallel region"
            self.w.line(f"_rt.barrier({tid_var})")
            self.b.emit(_ir.Hook("barrier", True))
            return
        if isinstance(s, OmpSections):
            assert tid_var is not None, "sections outside a parallel region"
            self._emit_sections(s, tid_var)
            return
        if isinstance(s, OmpTask):
            self._emit_task_spawn(s)
            return
        if isinstance(s, OmpTaskwait):
            assert tid_var is not None, "taskwait outside a parallel region"
            self._emit_taskwait(tid_var)
            return
        if isinstance(s, OmpParallel):
            self._emit_region(s)
            return
        raise TypeError(f"cannot lower statement {type(s).__name__}")

    def _bound_text(self, bound) -> str:
        return self._bound(bound)[0]

    def _bound(self, bound) -> tuple[str, object]:
        if isinstance(bound, IntNumeral):
            return str(bound.value), _ir.ILit(bound.value)
        return (f"max(0, {bound.var.name})",
                _ir.IMax0(self.b.ivar(bound.var.name)))

    def _iter_source(self, s: ForLoop, tid_var: str, n_text: str,
                     n_ir: object, lv: str) -> tuple[str, tuple]:
        """Python iterable expression assigning ``n_text`` iterations of a
        worksharing loop to ``tid_var`` under the loop's schedule clause,
        plus the IR iteration plan (``('range', lo, hi)`` after emitting
        the :class:`~repro.sim.ir.Chunk` op, or ``('assign', ...)``)."""
        if s.schedule is None or (s.schedule.value == "static"
                                  and not s.schedule_chunk):
            # the default schedule: static contiguous blocks — keep the
            # cheap two-endpoint form on this hot path
            self.w.line(f"_lo_{lv}, _hi_{lv} = _rt.chunk({tid_var}, {n_text})")
            self.b.emit(_ir.Chunk(lv, n_ir))
            self.b.ivar(f"_lo_{lv}")
            self.b.ivar(f"_hi_{lv}")
            return (f"range(_lo_{lv}, _hi_{lv})",
                    ("range", _ir.IVar(f"_lo_{lv}"), _ir.IVar(f"_hi_{lv}")))
        return ((f"_rt.assign({tid_var}, {n_text}, "
                 f"{s.schedule.value!r}, {s.schedule_chunk})"),
                ("assign", n_ir, s.schedule.value, s.schedule_chunk))

    def _emit_for(self, s: ForLoop, *, tid_var: str | None) -> None:
        lv = s.loop_var.name
        if s.omp_for and s.collapse == 2:
            self._emit_collapsed_for(s, tid_var=tid_var)
            return
        if s.omp_for:
            assert tid_var is not None, "omp for outside region"
            n, n_ir = self._bound(s.bound)
            src, plan = self._iter_source(s, tid_var, n, n_ir, lv)
            self.w.open(f"for {lv} in {src}:")
        else:
            n, n_ir = self._bound(s.bound)
            plan = ("range", _ir.ILit(0), n_ir)
            self.w.open(f"for {lv} in range({n}):")
        self.b.ivar(lv)
        self.b.push()
        self.block(s.body, extra=("loop", 1, 1.0), tid_var=tid_var)
        self.w.close()
        self._emit_loop_ir(lv, plan, self.b.pop())
        if s.omp_for:
            self.w.line(f"_rt.omp_for_done({tid_var})")
            self.b.emit(_ir.Hook("omp_for_done", True))

    def _emit_loop_ir(self, lv: str, plan: tuple, body: list) -> None:
        if plan[0] == "range":
            self.b.emit(_ir.ForRange(lv, plan[1], plan[2], body))
        else:
            self.b.emit(_ir.ForAssign(lv, plan[1], plan[2], plan[3], body))

    def _emit_collapsed_for(self, s: ForLoop, *, tid_var: str | None) -> None:
        """``collapse(2)``: iterate the flattened n1*n2 space and derive
        both induction variables — exactly how a conforming runtime
        schedules a collapsed nest (row-major logical iteration space)."""
        assert tid_var is not None, "omp for outside region"
        inner = s.body.stmts[0]
        assert isinstance(inner, ForLoop) and not inner.omp_for
        lv, ilv = s.loop_var.name, inner.loop_var.name
        n1, n1_ir = self._bound(s.bound)
        n2, n2_ir = self._bound(inner.bound)
        self.w.line(f"_n2_{lv} = {n2}")
        self.b.emit(_ir.SetIVar(self.b.ivar(f"_n2_{lv}"), n2_ir))
        self.w.line(f"_n_{lv} = ({n1}) * _n2_{lv}")
        self.b.emit(_ir.SetIVar(self.b.ivar(f"_n_{lv}"),
                                _ir.IMul(n1_ir, _ir.IVar(f"_n2_{lv}"))))
        src, plan = self._iter_source(s, tid_var, f"_n_{lv}",
                                      _ir.IVar(f"_n_{lv}"), lv)
        kv = f"_k_{lv}"
        self.w.open(f"for {kv} in {src}:")
        self.b.ivar(kv)
        self.b.push()
        self.w.line(f"{lv} = {kv} // _n2_{lv}")
        self.b.emit(_ir.SetIVar(self.b.ivar(lv),
                                _ir.IFloorDiv(_ir.IVar(kv),
                                              _ir.IVar(f"_n2_{lv}"))))
        self.w.line(f"{ilv} = {kv} % _n2_{lv}")
        self.b.emit(_ir.SetIVar(self.b.ivar(ilv),
                                _ir.IModV(_ir.IVar(kv),
                                          _ir.IVar(f"_n2_{lv}"))))
        # two loop heads' worth of bookkeeping per flattened iteration
        self.block(inner.body, extra=("loop", 2, 2.0), tid_var=tid_var)
        self.w.close()
        self._emit_loop_ir(kv, plan, self.b.pop())
        self.w.line(f"_rt.omp_for_done({tid_var})")
        self.b.emit(_ir.Hook("omp_for_done", True))

    # ==================================================================
    # worksharing-graph constructs: sections arms + task queue
    # ==================================================================
    def _emit_sections(self, s: OmpSections, tid_var: str) -> None:
        """``omp sections``: deterministic round-robin arm assignment.

        Arm ``i`` executes on thread ``i % team``.  The serialized-team
        argument still holds because nothing outside an arm may read what
        it writes until the region-exit barrier (the generator's
        exclusive-ownership rule), so executing each arm at its thread's
        turn is a legal schedule.  Every thread charges the construct's
        dispatch cost and one guard branch per arm; the implicit barrier
        at the construct's end is a sync round counted by the runtime.
        """
        t = self._region_threads
        self._runtime_const("sections_dispatch_cycles")
        for i, sec in enumerate(s.sections):
            self._charge((), ("branch",), 1.0)
            self.w.open(f"if {tid_var} == {i % t}:")
            self.b.push()
            self._emit_arm_body(sec.body, tid_var)
            self.w.close()
            self.b.emit(_ir.IfIntEq(tid_var, i % t, self.b.pop()))
        self.w.line(f"_rt.sections_done({tid_var})")
        self.b.emit(_ir.Hook("sections_done", True))

    def _emit_arm_body(self, body: Block, tid_var: str) -> None:
        """One section arm; hosts the arm's deterministic task queue."""
        uid = self._uniq
        self._uniq += 1
        qn = f"_tq{uid}"
        has_tasks = any(isinstance(st, OmpTask) for st in body.stmts)
        if has_tasks:
            self.w.line(f"{qn} = []")
            self.b.emit(_ir.QNew(self.b.queue(qn)))
        prev = self._arm
        self._arm = {"qn": qn, "uid": uid, "tasks": [], "pending": False,
                     "tid_var": tid_var}
        try:
            self.block(body, tid_var=tid_var)
            if self._arm["pending"]:
                # unjoined tasks complete at the construct's implicit
                # barrier: drain them at arm end, in spawn order
                self._emit_task_drain()
        finally:
            self._arm = prev

    def _emit_task_spawn(self, s: OmpTask) -> None:
        arm = self._arm
        assert arm is not None, "task outside a section arm"
        k = len(arm["tasks"])
        arm["tasks"].append(s)
        arm["pending"] = True
        # deferral is bookkeeping, not execution: charge the runtime's
        # spawn cost now, run the body when the queue drains
        self._runtime_const("task_spawn_cycles")
        self.w.line(f"{arm['qn']}.append({k})")
        self.b.emit(_ir.QPush(arm["qn"], k))
        self.w.line(f"_rt.task_spawn({arm['tid_var']})")
        self.b.emit(_ir.Hook("task_spawn", True))

    def _emit_taskwait(self, tid_var: str) -> None:
        arm = self._arm
        assert arm is not None, "taskwait outside a section arm"
        self._runtime_const("taskwait_cycles")
        self.w.line(f"_rt.taskwait({tid_var})")
        self.b.emit(_ir.Hook("taskwait", True))
        if arm["tasks"]:
            self._emit_task_drain()

    def _emit_task_drain(self) -> None:
        """Execute the queue's deferred tasks in spawn order (the
        deterministic model of a runtime's task pool: the encountering
        thread drains its own queue at the join point)."""
        arm = self._arm
        assert arm is not None and arm["tasks"]
        qn, uid = arm["qn"], arm["uid"]
        tk = f"_tk{uid}"
        self.w.open(f"for {tk} in {qn}:")
        self.b.ivar(tk)
        self.b.push()
        for k, task in enumerate(arm["tasks"]):
            self._charge((), ("branch",), 1.0)
            self.w.open(f"if {tk} == {k}:")
            self.b.push()
            self.block(task.body, tid_var=arm["tid_var"])
            self.w.close()
            self.b.emit(_ir.IfIntEq(tk, k, self.b.pop()))
        self.w.close()
        self.b.emit(_ir.ForList(qn, tk, self.b.pop()))
        self.w.line(f"del {qn}[:]")
        self.b.emit(_ir.QClear(qn))
        arm["pending"] = False

    # ==================================================================
    # parallel regions
    # ==================================================================
    def _region_meta(self, s: OmpParallel) -> RegionMeta:
        from ..core.nodes import walk

        meta = RegionMeta(n_threads=s.clauses.num_threads,
                          combined_for=s.combined_for)
        schedules: list[str] = []
        for n in walk(s):
            if isinstance(n, ForLoop) and n.omp_for:
                meta.has_omp_for = True
                if n.schedule is not None:
                    schedules.append(n.schedule.value)
                if n.collapse > 1:
                    meta.has_collapse = True
            elif isinstance(n, OmpCritical):
                meta.has_critical = True
            elif isinstance(n, OmpAtomic):
                meta.has_atomic = True
            elif isinstance(n, OmpSingle):
                meta.has_single = True
            elif isinstance(n, OmpBarrier):
                meta.has_barrier = True
            elif isinstance(n, OmpSections):
                meta.has_sections = True
                meta.n_section_arms += len(n.sections)
            elif isinstance(n, OmpTask):
                meta.has_tasks = True
                meta.n_tasks += 1
        meta.schedules = tuple(schedules)
        if s.clauses.reduction is not None:
            meta.reduction_op = s.clauses.reduction.value
        return meta

    def _emit_region(self, s: OmpParallel) -> None:
        rid = len(self.regions)
        meta = self._region_meta(s)
        self.regions.append(meta)
        self._region_threads = meta.n_threads
        w = self.w
        privs = list(s.clauses.private)
        fprivs = list(s.clauses.firstprivate)
        reduction = s.clauses.reduction

        # region_enter charges spawn instructions/branches and may abort
        # with the miscompile fault: synchronize both directions
        b = self.b
        w.line(_FLUSH)
        b.emit(_ir.Flush())
        w.line(f"_rt.region_enter({rid})")
        b.emit(_ir.RegionEnter(rid))
        w.line(_RELOAD)
        b.emit(_ir.Reload())
        for v in privs + fprivs:
            w.line(f"_save_{v.name} = {v.name}")
            b.emit(_ir.SetVar(b.fvar(f"_save_{v.name}"),
                              _ir.FVar(b.fvar(v.name))))
        if reduction is not None:
            w.line("_partials = []")
            b.emit(_ir.InitPartials())
        w.open(f"for _tid in range({meta.n_threads}):")
        b.ivar("_tid")
        b.push()
        # thread_begin snapshots the shared lanes; they are current here
        # because the previous thread's charges were flushed at its
        # thread_end and nothing in between charges
        w.line("_rt.thread_begin(_tid)")
        b.emit(_ir.Hook("thread_begin", True))
        for v in fprivs:
            w.line(f"{v.name} = _save_{v.name}")
            b.emit(_ir.SetVar(v.name, _ir.FVar(f"_save_{v.name}")))
        if reduction is not None:
            # the OpenMP-specified initializer: 0 / 1 / largest / smallest
            # representable value of the program's fp type
            ident = reduction.identity(self.program.fp_type)
            w.line(f"_rcomp = {ident!r}")
            b.emit(_ir.SetVar(b.fvar("_rcomp"), _ir.FLit(ident)))
            self._subst[self.program.comp.name] = "_rcomp"
        try:
            self.block(s.body, tid_var="_tid")
        finally:
            self._subst.pop(self.program.comp.name, None)
        if reduction is not None:
            w.line("_partials.append(_rcomp)")
            b.emit(_ir.AppendPartial("_rcomp"))
        w.line(_FLUSH)
        b.emit(_ir.Flush())
        w.line("_rt.thread_end(_tid)")
        b.emit(_ir.Hook("thread_end", True))
        w.close()
        b.emit(_ir.ForRange("_tid", _ir.ILit(0), _ir.ILit(meta.n_threads),
                            b.pop()))
        comp = self.program.comp.name
        if reduction is not None:
            w.line(f"{comp} = _rt.region_exit({rid}, {comp}, _partials, "
                   f"{reduction.value!r})")
            b.emit(_ir.RegionExit(rid, b.fvar(comp), True, reduction.value))
        else:
            w.line(f"{comp} = _rt.region_exit({rid}, {comp}, None, None)")
            b.emit(_ir.RegionExit(rid, b.fvar(comp), False, None))
        w.line(_RELOAD)  # region_exit rewrote the shared lanes
        b.emit(_ir.Reload())
        for v in privs + fprivs:
            w.line(f"{v.name} = _save_{v.name}")
            b.emit(_ir.SetVar(v.name, _ir.FVar(f"_save_{v.name}")))

    # ==================================================================
    # whole kernel
    # ==================================================================
    def lower(self) -> StructuralKernel:
        w, b = self.w, self.b
        helpers = ", ".join(f"{h}={h}" for h in _HELPER_PARAMS)
        w.open(f"def _kernel(_args, _rt, _c, _K=_K, {helpers}):")
        w.line("_rt.prologue()")
        b.emit(_ir.Hook("prologue", False))
        for name in sorted(self._collect_math()):
            w.line(f"_m_{name} = _MATH[{name!r}]")
        for p in self.program.params:
            if p.is_int:
                w.line(f"{p.name} = _args[{p.name!r}]")
                b.emit(_ir.LoadInt(b.ivar(p.name)))
            elif p.is_array:
                if self.ftz:  # DAZ: inputs flushed on load; also copy
                    fn = "_ftzf" if self.fp32 else "_ftz"
                    w.line(f"{p.name} = [{fn}(_x) for _x in _args[{p.name!r}]]")
                    mode = _ir.A_FTZ_F if self.fp32 else _ir.A_FTZ_D
                else:
                    w.line(f"{p.name} = list(_args[{p.name!r}])")
                    mode = _ir.A_COPY
                b.emit(_ir.LoadArray(b.array(p.name), mode))
            else:
                val = f"_args[{p.name!r}]"
                if self.fp32:
                    val = f"_f32z({val})" if self.ftz else f"_f32({val})"
                elif self.ftz:
                    val = f"_ftz({val})"
                w.line(f"{p.name} = {val}")
                b.emit(_ir.LoadScalar(b.fvar(p.name), self._wrapc))
        w.line(_RELOAD)  # seed the local accumulator mirror
        b.emit(_ir.Reload())
        self.block(self.program.body)
        w.line(_FLUSH)  # the driver reads the shared state after return
        b.emit(_ir.Flush())
        w.line(f"return {self.program.comp.name}")
        b.emit(_ir.Return(b.fvar(self.program.comp.name)))
        w.close()
        body = w.text()
        # unpack the constants tuple into fast locals once per invocation
        if self._n_constants:
            names = ", ".join(f"_K{i}" for i in range(self._n_constants))
            unpack = f"    {names}{',' if self._n_constants == 1 else ''} = _K\n"
            head, _, rest = body.partition("\n")
            body = head + "\n" + unpack + rest
        source = body
        code = compile(
            source,
            f"<lowered:{self.program.name}:"
            f"{'f32' if self.fp32 else 'f64'}{'+ftz' if self.ftz else ''}>",
            "exec")
        kernel_ir = b.finish(n_constants=self._n_constants,
                             comp=self.program.comp.name,
                             math_funcs=tuple(sorted(self.math_used)),
                             fp32=self.fp32, ftz=self.ftz)
        return StructuralKernel(template=source, code=code,
                                sites=tuple(self.sites),
                                n_constants=self._n_constants,
                                regions=self.regions,
                                uses_math=tuple(sorted(self.math_used)),
                                ir=kernel_ir)

    def _collect_math(self) -> set[str]:
        from ..core.nodes import walk

        return {n.func for n in walk(self.program)
                if isinstance(n, (MathCall, FusedMulAdd)) and
                isinstance(n, MathCall)}


# ======================================================================
# phase 2: the vendor cost pass
# ======================================================================

def bind_costs(structural: StructuralKernel, vendor: "VendorModel",
               opt_level: str, *, fast_armed: bool = False,
               slow_armed: bool = False) -> LoweredKernel:
    """Fill a structural kernel's ``_K`` slots with one vendor's costs.

    Pure arithmetic — no AST walk, no string emission, no ``compile()``;
    the constants reproduce the classic lowerer's values exactly,
    including its ``%.1f`` source-literal rounding.
    """
    # bake all static scales into the per-site constants; the latent
    # fast/slow paths are whole-binary codegen effects
    cy_scale = (vendor.traits.cycle_scale * opt_cycle_scale(opt_level)
                * (vendor.faults.fast_factor if fast_armed else 1.0)
                * (vendor.faults.slow_factor if slow_armed else 1.0))
    ins_scale = vendor.traits.instr_scale
    model = CostModel(vendor.ops)
    constants = [0.0] * structural.n_constants
    for site in structural.sites:
        if isinstance(site, RuntimeConstSite):
            constants[site.k] = float(getattr(vendor.runtime, site.param))
            continue
        cy, ins = model.site_cost(site)
        if site.k_cy is not None:
            constants[site.k_cy] = float(f"{cy * cy_scale:.1f}")
        if site.k_ins is not None:
            constants[site.k_ins] = float(f"{ins * ins_scale:.1f}")
    ktuple = tuple(constants)
    source = (f"# {vendor.name} {opt_level} constants: _K = {ktuple!r}\n"
              + structural.template)
    return LoweredKernel(source=source, code=structural.code,
                         constants=ktuple, regions=structural.regions,
                         uses_math=structural.uses_math,
                         structural=structural)


# ======================================================================
# one-shot facade
# ======================================================================

class Lowerer:
    """Classic single-call interface: both phases, no caching.

    Campaign compiles go through :class:`repro.sim.kcache.KernelCache`
    (see :func:`repro.vendors.toolchain.compile_binary`), which shares
    the structural pass across vendors and the bound kernel across
    repeated compiles; this facade exists for direct/diagnostic use and
    keeps the seed API (``Lowerer(program, vendor, opt).lower()``).
    """

    def __init__(self, program: Program, vendor: "VendorModel",
                 opt_level: str, *, fast_armed: bool = False,
                 slow_armed: bool = False):
        self.program = program
        self.vendor = vendor
        self.opt_level = opt_level
        self.fast_armed = fast_armed
        self.slow_armed = slow_armed

    def lower(self) -> LoweredKernel:
        structural = StructuralLowerer(
            self.program, ftz=self.vendor.traits.flush_subnormals).lower()
        return bind_costs(structural, self.vendor, self.opt_level,
                          fast_armed=self.fast_armed,
                          slow_armed=self.slow_armed)
