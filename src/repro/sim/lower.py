"""AST -> Python lowering: the execution half of a simulated compiler.

A vendor "compiles" a generated program by (1) applying its FP transforms
(:mod:`repro.vendors.optimizer`) and (2) lowering the result to a Python
function via this module.  The lowered code:

* evaluates with exact IEEE semantics (``float`` is binary64; binary32
  programs wrap each operation in :func:`repro.sim.values.f32`; division
  and math calls go through IEEE-behaved helpers; Intel's FTZ wraps every
  result),
* charges **statically pre-computed** cost constants per straight-line
  segment to a :class:`CostState` (``_c.cy``/``_c.ins``/``_c.br``; blocks
  inside critical sections charge the ``_c.ccy`` lane instead),
* drives the simulated OpenMP runtime through ``_rt`` hooks
  (:class:`repro.sim.runtime.RegionExecutor`): region enter/exit, static
  chunking of ``omp for``, critical enter/exit, per-thread accounting.

Per-thread semantics follow the sequential-serialization argument: for
race-free programs (the generator's guarantee), executing team members
one after another is a legal OpenMP schedule, so results are exact and
deterministic; reduction partials are combined in thread order, the same
for every vendor, so numeric divergence comes only from *compiler*
transforms — as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Block,
    BoolExpr,
    DeclAssign,
    Expr,
    ForLoop,
    FPNumeral,
    IfBlock,
    IntNumeral,
    MathCall,
    ModIdx,
    OmpAtomic,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSingle,
    Paren,
    Program,
    ThreadIdx,
    UnaryOp,
    VarRef,
)
from typing import TYPE_CHECKING

from ..core.types import AssignOpKind, BinOpKind, FPType
from .fptransforms import FusedMulAdd, opt_cycle_scale
from .values import MATH_IMPLS, f32, fdiv, fma_d, fma_f, ftz_d, ftz_f
from .writer_util import PyWriter

if TYPE_CHECKING:  # typing-only: breaks the sim <-> vendors import cycle
    from ..vendors.base import VendorModel


class CostState:
    """Mutable cost accumulator shared between lowered code and runtime.

    ``cy``  — compute cycles on the current lane (serial or thread),
    ``ccy`` — cycles spent inside critical sections,
    ``ins`` — instructions, ``br`` — branches (both lane-independent).
    """

    __slots__ = ("cy", "ccy", "ins", "br")

    def __init__(self) -> None:
        self.cy = 0.0
        self.ccy = 0.0
        self.ins = 0.0
        self.br = 0.0


@dataclass
class RegionMeta:
    """Static facts about one parallel region, indexed by region id."""

    has_omp_for: bool = False
    has_critical: bool = False
    reduction_op: str | None = None
    n_threads: int = 32
    combined_for: bool = False
    has_atomic: bool = False
    has_single: bool = False
    has_barrier: bool = False
    has_collapse: bool = False
    #: explicit schedule kinds appearing on the region's worksharing loops
    schedules: tuple[str, ...] = ()


@dataclass
class LoweredKernel:
    """Output of lowering: source + compiled code + region metadata."""

    source: str
    code: object  # types.CodeType
    regions: list[RegionMeta] = field(default_factory=list)
    uses_math: tuple[str, ...] = ()

    def bind(self) -> object:
        """Exec the module code and return the ``_kernel`` callable."""
        ns = dict(_HELPERS)
        exec(self.code, ns)  # noqa: S102 - our own generated code
        return ns["_kernel"]


_HELPERS = {
    "_div": fdiv,
    "_f32": f32,
    "_fma": fma_d,
    "_fmaf": fma_f,
    "_ftz": ftz_d,
    "_ftzf": ftz_f,
    "_MATH": MATH_IMPLS,
}

_OPSYM = {BinOpKind.ADD: "+", BinOpKind.SUB: "-", BinOpKind.MUL: "*",
          BinOpKind.DIV: "/"}


class Lowerer:
    """Lowers one (vendor-transformed) program to Python source."""

    def __init__(self, program: Program, vendor: VendorModel, opt_level: str,
                 *, fast_armed: bool = False, slow_armed: bool = False):
        self.program = program
        self.vendor = vendor
        self.fp32 = program.fp_type is FPType.FLOAT
        self.ftz = vendor.traits.flush_subnormals
        # bake all static scales into the per-block constants; the latent
        # fast/slow paths are whole-binary codegen effects
        self.cy_scale = (vendor.traits.cycle_scale * opt_cycle_scale(opt_level)
                         * (vendor.faults.fast_factor if fast_armed else 1.0)
                         * (vendor.faults.slow_factor if slow_armed else 1.0))
        self.ins_scale = vendor.traits.instr_scale
        self.w = PyWriter()
        self.regions: list[RegionMeta] = []
        self.math_used: set[str] = set()
        #: name substitution (comp -> reduction private copy inside regions)
        self._subst: dict[str, str] = {}
        self._in_crit = False

    # ==================================================================
    # expression emission
    # ==================================================================
    def _wrap(self, text: str) -> str:
        """Apply binary32 rounding and/or FTZ to one operation result."""
        if self.fp32:
            text = f"_f32({text})"
            if self.ftz:
                text = f"_ftzf({text})"
        elif self.ftz:
            text = f"_ftz({text})"
        return text

    def expr(self, e: Expr) -> str:
        if isinstance(e, FPNumeral):
            v = f32(e.value) if self.fp32 else e.value
            return repr(v)
        if isinstance(e, IntNumeral):
            return repr(float(e.value))
        if isinstance(e, VarRef):
            name = self._subst.get(e.var.name, e.var.name)
            return name if e.var.is_fp else f"float({name})"
        if isinstance(e, ArrayRef):
            return f"{e.var.name}[{self.index(e.index)}]"
        if isinstance(e, ThreadIdx):
            return "float(_tid)"
        if isinstance(e, Paren):
            return self.expr(e.inner)  # grouping is explicit in our output
        if isinstance(e, UnaryOp):
            inner = self.expr(e.operand)
            return inner if e.op == "+" else f"(-({inner}))"
        if isinstance(e, BinOp):
            lhs, rhs = self.expr(e.lhs), self.expr(e.rhs)
            if e.op is BinOpKind.DIV:
                return self._wrap(f"_div({lhs}, {rhs})")
            return self._wrap(f"({lhs} {_OPSYM[e.op]} {rhs})")
        if isinstance(e, FusedMulAdd):
            a = self.expr(e.a)
            if e.negate_product:
                a = f"(-({a}))"
            fn = "_fmaf" if self.fp32 else "_fma"
            text = f"{fn}({a}, {self.expr(e.b)}, {self.expr(e.c)})"
            if self.ftz:
                text = f"_ftzf({text})" if self.fp32 else f"_ftz({text})"
            return text
        if isinstance(e, MathCall):
            self.math_used.add(e.func)
            return self._wrap(f"_m_{e.func}({self.expr(e.arg)})")
        raise TypeError(f"cannot lower expression {type(e).__name__}")

    def index(self, idx) -> str:
        if isinstance(idx, IntNumeral):
            return str(idx.value)
        if isinstance(idx, VarRef):
            return self._subst.get(idx.var.name, idx.var.name)
        if isinstance(idx, ThreadIdx):
            return "_tid"
        if isinstance(idx, ModIdx):
            return f"({self.index(idx.base)}) % {idx.modulus}"
        raise TypeError(f"cannot lower index {type(idx).__name__}")

    def bool_expr(self, b: BoolExpr) -> str:
        lhs = (self.expr(b.lhs) if isinstance(b.lhs, VarRef)
               else f"{b.lhs.var.name}[{self.index(b.lhs.index)}]")
        return f"({lhs}) {b.op.value} ({self.expr(b.rhs)})"

    # ==================================================================
    # static cost model
    # ==================================================================
    def _expr_cost(self, e: Expr) -> tuple[float, float]:
        ops = self.vendor.ops
        if isinstance(e, (FPNumeral, IntNumeral, ThreadIdx)):
            return (0.0, 0.0)
        if isinstance(e, VarRef):
            return ops.load if e.var.is_fp else (ops.load[0] * 0.5, 1.0)
        if isinstance(e, ArrayRef):
            cy, ins = ops.load
            return (cy * 1.4, ins + 1.0)  # index arithmetic + indirection
        if isinstance(e, (Paren, UnaryOp)):
            inner = e.inner if isinstance(e, Paren) else e.operand
            cy, ins = self._expr_cost(inner)
            return (cy + 0.5, ins + 0.5)
        if isinstance(e, BinOp):
            lc, li = self._expr_cost(e.lhs)
            rc, ri = self._expr_cost(e.rhs)
            oc, oi = ops.div if e.op is BinOpKind.DIV else ops.arith
            return (lc + rc + oc, li + ri + oi)
        if isinstance(e, FusedMulAdd):
            ac, ai = self._expr_cost(e.a)
            bc, bi = self._expr_cost(e.b)
            cc, ci = self._expr_cost(e.c)
            oc, oi = ops.arith
            return (ac + bc + cc + oc * 1.3, ai + bi + ci + oi * 1.1)
        if isinstance(e, MathCall):
            ic, ii = self._expr_cost(e.arg)
            mc, mi = ops.math_call
            return (ic + mc, ii + mi)
        raise TypeError(f"no cost for {type(e).__name__}")

    def _stmt_cost(self, s) -> tuple[float, float]:
        ops = self.vendor.ops
        if isinstance(s, Assignment):
            cy, ins = self._expr_cost(s.expr)
            sc, si = ops.store
            if isinstance(s.target, ArrayRef):
                sc, si = sc * 1.4, si + 1.0
            if s.op.binop is not None:  # compound: extra read + op
                lc, li = ops.load
                oc, oi = (ops.div if s.op is AssignOpKind.DIV_ASSIGN
                          else ops.arith)
                cy, ins = cy + lc + oc, ins + li + oi
            return (cy + sc, ins + si)
        if isinstance(s, DeclAssign):
            cy, ins = self._expr_cost(s.expr)
            sc, si = ops.store
            return (cy + sc, ins + si)
        raise TypeError(f"not a simple statement: {type(s).__name__}")

    def _charge(self, cy: float, ins: float, br: float = 0.0) -> None:
        """Emit one accumulator update (current lane)."""
        cy *= self.cy_scale
        ins *= self.ins_scale
        lane = "ccy" if self._in_crit else "cy"
        parts = []
        if cy:
            parts.append(f"_c.{lane} += {cy:.1f}")
        if ins:
            parts.append(f"_c.ins += {ins:.1f}")
        if br:
            parts.append(f"_c.br += {br:.0f}")
        if parts:
            self.w.line("; ".join(parts))

    # ==================================================================
    # statement emission
    # ==================================================================
    def _emit_assignment(self, s: Assignment) -> None:
        rhs = self.expr(s.expr)
        if isinstance(s.target, VarRef):
            name = self._subst.get(s.target.var.name, s.target.var.name)
        else:
            name = f"{s.target.var.name}[{self.index(s.target.index)}]"
        if s.op is AssignOpKind.ASSIGN:
            self.w.line(f"{name} = {rhs}")
            return
        binop = s.op.binop
        assert binop is not None
        if binop is BinOpKind.DIV:
            self.w.line(f"{name} = {self._wrap(f'_div({name}, {rhs})')}")
        else:
            self.w.line(
                f"{name} = {self._wrap(f'({name} {_OPSYM[binop]} {rhs})')}")

    def _emit_simple(self, s) -> None:
        if isinstance(s, Assignment):
            self._emit_assignment(s)
        elif isinstance(s, DeclAssign):
            self.w.line(f"{s.var.name} = {self.expr(s.expr)}")
        else:  # pragma: no cover
            raise TypeError(type(s).__name__)

    def block(self, b: Block, *, extra: tuple[float, float, float] = (0, 0, 0),
              tid_var: str | None = None) -> None:
        """Emit a block: segments of simple statements get one fused charge."""
        pending: list = []
        extra_cy, extra_ins, extra_br = extra
        first = True

        def flush() -> None:
            nonlocal first, extra_cy, extra_ins, extra_br
            if not pending and not (first and (extra_cy or extra_br)):
                return
            cy = sum(self._stmt_cost(s)[0] for s in pending)
            ins = sum(self._stmt_cost(s)[1] for s in pending)
            br = 0.0
            if first:
                cy, ins, br = cy + extra_cy, ins + extra_ins, br + extra_br
                first = False
            self._charge(cy, ins, br)
            for s in pending:
                self._emit_simple(s)
            pending.clear()

        for s in b.stmts:
            if isinstance(s, (Assignment, DeclAssign)):
                pending.append(s)
                continue
            flush()
            if first:  # control statement heads the block: standalone charge
                self._charge(extra_cy, extra_ins, extra_br)
                first = False
            self.stmt(s, tid_var=tid_var)
        flush()

    def stmt(self, s, *, tid_var: str | None = None) -> None:
        ops = self.vendor.ops
        if isinstance(s, IfBlock):
            cc, ci = self._expr_cost(s.cond.rhs)
            bc, bi = ops.branch
            self._charge(cc + bc + ops.load[0], ci + bi + 1.0, 1.0)
            self.w.open(f"if {self.bool_expr(s.cond)}:")
            self.block(s.body, tid_var=tid_var)
            self.w.close()
            return
        if isinstance(s, ForLoop):
            self._emit_for(s, tid_var=tid_var)
            return
        if isinstance(s, OmpCritical):
            self.w.line("_rt.crit_enter()")
            was = self._in_crit
            self._in_crit = True
            self.block(s.body, tid_var=tid_var)
            self._in_crit = was
            self.w.line("_rt.crit_exit()")
            return
        if isinstance(s, OmpAtomic):
            assert tid_var is not None, "atomic outside a parallel region"
            # the update itself costs like the plain statement; the RMW
            # premium and the counter bump live in the runtime hook
            self._charge(*self._stmt_cost(s.update))
            self.w.line("_rt.atomic_update()")
            self._emit_assignment(s.update)
            return
        if isinstance(s, OmpSingle):
            assert tid_var is not None, "single outside a parallel region"
            # the simulator serializes threads, so "the first thread to
            # arrive" is deterministically thread 0; the body's effects
            # are restricted to team-uniform values, making any choice of
            # executor equivalent (and the native run deterministic)
            bc, bi = self.vendor.ops.branch
            self._charge(bc, bi, 1.0)
            self.w.open(f"if {tid_var} == 0:")
            self.block(s.body, tid_var=tid_var)
            self.w.close()
            self.w.line(f"_rt.single_done({tid_var})")
            return
        if isinstance(s, OmpBarrier):
            assert tid_var is not None, "barrier outside a parallel region"
            self.w.line(f"_rt.barrier({tid_var})")
            return
        if isinstance(s, OmpParallel):
            self._emit_region(s)
            return
        raise TypeError(f"cannot lower statement {type(s).__name__}")

    def _bound_text(self, bound) -> str:
        if isinstance(bound, IntNumeral):
            return str(bound.value)
        return f"max(0, {bound.var.name})"

    def _iter_source(self, s: ForLoop, tid_var: str, n_text: str,
                     lv: str) -> str:
        """Python iterable expression assigning ``n_text`` iterations of a
        worksharing loop to ``tid_var`` under the loop's schedule clause."""
        if s.schedule is None or (s.schedule.value == "static"
                                  and not s.schedule_chunk):
            # the default schedule: static contiguous blocks — keep the
            # cheap two-endpoint form on this hot path
            self.w.line(f"_lo_{lv}, _hi_{lv} = _rt.chunk({tid_var}, {n_text})")
            return f"range(_lo_{lv}, _hi_{lv})"
        return (f"_rt.assign({tid_var}, {n_text}, "
                f"{s.schedule.value!r}, {s.schedule_chunk})")

    def _emit_for(self, s: ForLoop, *, tid_var: str | None) -> None:
        ops = self.vendor.ops
        lv = s.loop_var.name
        iter_cost = (ops.loop_iter[0], ops.loop_iter[1], 1.0)
        if s.omp_for and s.collapse == 2:
            self._emit_collapsed_for(s, tid_var=tid_var)
            return
        if s.omp_for:
            assert tid_var is not None, "omp for outside region"
            n = self._bound_text(s.bound)
            src = self._iter_source(s, tid_var, n, lv)
            self.w.open(f"for {lv} in {src}:")
        else:
            self.w.open(f"for {lv} in range({self._bound_text(s.bound)}):")
        self.block(s.body, extra=iter_cost, tid_var=tid_var)
        self.w.close()
        if s.omp_for:
            self.w.line(f"_rt.omp_for_done({tid_var})")

    def _emit_collapsed_for(self, s: ForLoop, *, tid_var: str | None) -> None:
        """``collapse(2)``: iterate the flattened n1*n2 space and derive
        both induction variables — exactly how a conforming runtime
        schedules a collapsed nest (row-major logical iteration space)."""
        assert tid_var is not None, "omp for outside region"
        ops = self.vendor.ops
        inner = s.body.stmts[0]
        assert isinstance(inner, ForLoop) and not inner.omp_for
        lv, ilv = s.loop_var.name, inner.loop_var.name
        n1 = self._bound_text(s.bound)
        n2 = self._bound_text(inner.bound)
        self.w.line(f"_n2_{lv} = {n2}")
        self.w.line(f"_n_{lv} = ({n1}) * _n2_{lv}")
        src = self._iter_source(s, tid_var, f"_n_{lv}", lv)
        self.w.open(f"for _k_{lv} in {src}:")
        # two loop heads' worth of bookkeeping per flattened iteration
        iter_cost = (ops.loop_iter[0] * 2, ops.loop_iter[1] * 2, 2.0)
        self.w.line(f"{lv} = _k_{lv} // _n2_{lv}")
        self.w.line(f"{ilv} = _k_{lv} % _n2_{lv}")
        self.block(inner.body, extra=iter_cost, tid_var=tid_var)
        self.w.close()
        self.w.line(f"_rt.omp_for_done({tid_var})")

    # ==================================================================
    # parallel regions
    # ==================================================================
    def _region_meta(self, s: OmpParallel) -> RegionMeta:
        from ..core.nodes import walk

        meta = RegionMeta(n_threads=s.clauses.num_threads,
                          combined_for=s.combined_for)
        schedules: list[str] = []
        for n in walk(s):
            if isinstance(n, ForLoop) and n.omp_for:
                meta.has_omp_for = True
                if n.schedule is not None:
                    schedules.append(n.schedule.value)
                if n.collapse > 1:
                    meta.has_collapse = True
            elif isinstance(n, OmpCritical):
                meta.has_critical = True
            elif isinstance(n, OmpAtomic):
                meta.has_atomic = True
            elif isinstance(n, OmpSingle):
                meta.has_single = True
            elif isinstance(n, OmpBarrier):
                meta.has_barrier = True
        meta.schedules = tuple(schedules)
        if s.clauses.reduction is not None:
            meta.reduction_op = s.clauses.reduction.value
        return meta

    def _emit_region(self, s: OmpParallel) -> None:
        rid = len(self.regions)
        meta = self._region_meta(s)
        self.regions.append(meta)
        w = self.w
        privs = list(s.clauses.private)
        fprivs = list(s.clauses.firstprivate)
        reduction = s.clauses.reduction

        w.line(f"_rt.region_enter({rid})")
        for v in privs + fprivs:
            w.line(f"_save_{v.name} = {v.name}")
        if reduction is not None:
            w.line("_partials = []")
        w.open(f"for _tid in range({meta.n_threads}):")
        w.line("_rt.thread_begin(_tid)")
        for v in fprivs:
            w.line(f"{v.name} = _save_{v.name}")
        if reduction is not None:
            # the OpenMP-specified initializer: 0 / 1 / largest / smallest
            # representable value of the program's fp type
            w.line(f"_rcomp = {reduction.identity(self.program.fp_type)!r}")
            self._subst[self.program.comp.name] = "_rcomp"
        try:
            self.block(s.body, tid_var="_tid")
        finally:
            self._subst.pop(self.program.comp.name, None)
        if reduction is not None:
            w.line("_partials.append(_rcomp)")
        w.line("_rt.thread_end(_tid)")
        w.close()
        comp = self.program.comp.name
        if reduction is not None:
            w.line(f"{comp} = _rt.region_exit({rid}, {comp}, _partials, "
                   f"{reduction.value!r})")
        else:
            w.line(f"{comp} = _rt.region_exit({rid}, {comp}, None, None)")
        for v in privs + fprivs:
            w.line(f"{v.name} = _save_{v.name}")

    # ==================================================================
    # whole kernel
    # ==================================================================
    def lower(self) -> LoweredKernel:
        w = self.w
        w.open("def _kernel(_args, _rt, _c):")
        w.line("_rt.prologue()")
        for name in sorted(self._collect_math()):
            w.line(f"_m_{name} = _MATH[{name!r}]")
        for p in self.program.params:
            if p.is_int:
                w.line(f"{p.name} = _args[{p.name!r}]")
            elif p.is_array:
                if self.ftz:  # DAZ: inputs flushed on load; also copy
                    fn = "_ftzf" if self.fp32 else "_ftz"
                    w.line(f"{p.name} = [{fn}(_x) for _x in _args[{p.name!r}]]")
                else:
                    w.line(f"{p.name} = list(_args[{p.name!r}])")
            else:
                val = f"_args[{p.name!r}]"
                if self.fp32:
                    val = f"_f32({val})"
                if self.ftz:
                    val = (f"_ftzf({val})" if self.fp32 else f"_ftz({val})")
                w.line(f"{p.name} = {val}")
        self.block(self.program.body)
        w.line(f"return {self.program.comp.name}")
        w.close()
        source = w.text()
        code = compile(source, f"<lowered:{self.program.name}:{self.vendor.name}>",
                       "exec")
        return LoweredKernel(source=source, code=code, regions=self.regions,
                             uses_math=tuple(sorted(self.math_used)))

    def _collect_math(self) -> set[str]:
        from ..core.nodes import walk

        return {n.func for n in walk(self.program)
                if isinstance(n, (MathCall, FusedMulAdd)) and
                isinstance(n, MathCall)}
