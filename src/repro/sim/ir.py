"""Typed register IR for lowered kernels — the backend-neutral middle layer.

The structural pass (:class:`repro.sim.lower.StructuralLowerer`) emits two
artifacts from one AST walk: the Python template that the interpreted
backend ``exec``'s, and a :class:`KernelIR` — a small typed IR whose ops
mirror the template line for line.  Building both from the same walk is
what makes the compiled backends (:mod:`repro.sim.vm`,
:mod:`repro.sim.ckernel`) byte-identical to the interpreter by
construction: every operation the template performs — each FP op with its
f32/FTZ/FMA/libm wrap, each fused cost charge against the ``_K``
constants tuple, each runtime hook in order — has exactly one IR op, and
the backends only differ in how they *execute* that op.

Value semantics carried by the IR:

* **FP expressions** evaluate in binary64; each op result carries a wrap
  code (:data:`W_NONE`/:data:`W_F32`/:data:`W_F32Z`/:data:`W_FTZ`)
  selecting the same rounding/flush helpers of :mod:`repro.sim.values`
  the template calls.  :class:`FFma` keeps the long-double contraction
  model; :class:`FCall` names a :data:`repro.sim.values.MATH_IMPLS`
  entry.  Division is IEEE-total (``x/0 -> ±inf``, ``0/0 -> nan``).
* **Index expressions** are exact Python ``int`` arithmetic, including
  Python's floored ``%``/``//`` and negative-index wrap-around on array
  access (out-of-range raises ``IndexError``, as the template would).
* **Cost charges** add ``_K``-slot constants (and branch literals) to
  the four local accumulator lanes; :class:`Flush`/:class:`Reload`
  exchange the lanes with the shared
  :class:`~repro.sim.lower.CostState` exactly where the template does.
* **Hooks** call the :class:`~repro.sim.runtime.RegionExecutor` by
  method name, with or without the ``_tid`` argument.

The IR is deliberately structured (loops and ifs nest, like the
template) rather than a flat CFG: the backends are a tree-walking
bytecode compiler and a C emitter, and neither needs more.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# wrap codes: what happens to one FP op's binary64 result
# ----------------------------------------------------------------------

W_NONE = 0  #: double program, no FTZ: the raw binary64 result
W_F32 = 1   #: float program: round to binary32 (values.f32)
W_F32Z = 2  #: float program under FTZ: round + flush (values.f32z)
W_FTZ = 3   #: double program under FTZ: flush subnormals (values.ftz_d)


def wrap_code(fp32: bool, ftz: bool) -> int:
    """The wrap every arithmetic result gets for one kernel shape."""
    if fp32:
        return W_F32Z if ftz else W_F32
    return W_FTZ if ftz else W_NONE


# ----------------------------------------------------------------------
# FP expressions (evaluate to a Python float / C double)
# ----------------------------------------------------------------------

@dataclass(slots=True)
class FLit:
    """A folded constant — bit-exact: the lowerer already applied the
    helper functions, so backends just load the value."""

    v: float


@dataclass(slots=True)
class FVar:
    name: str


@dataclass(slots=True)
class ALoad:
    """``arr[idx]`` with Python list semantics (negative wrap,
    ``IndexError`` out of range)."""

    arr: str
    idx: "IExpr"


@dataclass(slots=True)
class IToF:
    """``float(<int expr>)`` — int params and ``_tid`` used as values."""

    ix: "IExpr"


@dataclass(slots=True)
class FNeg:
    """Sign flip, no wrap (negation is exact)."""

    x: "FExpr"


@dataclass(slots=True)
class FBin:
    """One arithmetic op; ``op`` in ``'+-*/'``; result gets ``wrap``.

    Division is IEEE-total (:func:`repro.sim.values.fdiv` semantics);
    the template's plain-``/`` fast path only triggers for nonzero
    constant divisors, where the two are bit-identical.
    """

    op: str
    a: "FExpr"
    b: "FExpr"
    wrap: int


@dataclass(slots=True)
class FFma:
    """Contracted multiply-add ``round(a*b + c)``.

    ``fp32`` selects :func:`~repro.sim.values.fma_f` (exact inside
    binary64, final round to binary32) versus
    :func:`~repro.sim.values.fma_d` (x87 long-double recovery, NaN
    operands propagate); ``ftz`` applies the matching flush *after* the
    contraction, exactly as the template chains ``_ftzf(_fmaf(...))``.
    """

    a: "FExpr"
    b: "FExpr"
    c: "FExpr"
    fp32: bool
    ftz: bool


@dataclass(slots=True)
class FCall:
    """IEEE-total libm call (a :data:`repro.sim.values.MATH_IMPLS` name);
    the result gets ``wrap`` like any other op."""

    func: str
    arg: "FExpr"
    wrap: int


FExpr = FLit | FVar | ALoad | IToF | FNeg | FBin | FFma | FCall


@dataclass(slots=True)
class Cmp:
    """``(lhs) op (rhs)`` over floats; ``op`` is the C/Python symbol."""

    lhs: FExpr
    op: str
    rhs: FExpr


# ----------------------------------------------------------------------
# index (int) expressions — exact Python int arithmetic
# ----------------------------------------------------------------------

@dataclass(slots=True)
class ILit:
    v: int


@dataclass(slots=True)
class IVar:
    name: str


@dataclass(slots=True)
class IMax0:
    """``max(0, var)`` — the loop-bound clamp on int parameters."""

    name: str


@dataclass(slots=True)
class IMod:
    """``(base) % modulus`` with a positive constant modulus (Python's
    floored ``%``, so the result is always in range)."""

    base: "IExpr"
    modulus: int


@dataclass(slots=True)
class IMul:
    a: "IExpr"
    b: "IExpr"


@dataclass(slots=True)
class IFloorDiv:
    """Python ``//`` (operands are non-negative in generated code, but
    backends implement the floored semantics anyway)."""

    a: "IExpr"
    b: "IExpr"


@dataclass(slots=True)
class IModV:
    """Python ``%`` with a variable modulus (collapse(2) remainder)."""

    a: "IExpr"
    b: "IExpr"


IExpr = ILit | IVar | IMax0 | IMod | IMul | IFloorDiv | IModV


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------

@dataclass(slots=True)
class SetVar:
    """FP scalar assignment (also covers declare-and-init and the
    private save/restore copies)."""

    name: str
    e: FExpr


@dataclass(slots=True)
class SetIVar:
    """Int scalar assignment (collapse bookkeeping: ``_n2``/``_n``,
    derived induction variables)."""

    name: str
    e: IExpr


@dataclass(slots=True)
class AStore:
    arr: str
    idx: IExpr
    e: FExpr


@dataclass(slots=True)
class Charge:
    """One fused accumulator update.

    ``lane`` is 0 for ``_cy``, 1 for ``_ccy`` (inside critical
    sections); ``k_cy``/``k_ins`` index the ``_K`` constants tuple
    (``None`` when that component is structurally zero); ``br`` is the
    vendor-independent branch literal.  Runtime-parameter constants
    (atomic RMW, single arrival, ...) are a ``Charge`` with only
    ``k_cy`` set — always on lane 0, like the template.
    """

    lane: int
    k_cy: int | None
    k_ins: int | None
    br: float


@dataclass(slots=True)
class Flush:
    """Write the four local lanes to the shared ``CostState``."""


@dataclass(slots=True)
class Reload:
    """Read the four local lanes back from the shared ``CostState``."""


@dataclass(slots=True)
class Hook:
    """``_rt.<name>()`` — a cost-transparent or flushed-around runtime
    hook; ``tid`` appends the current ``_tid`` argument."""

    name: str
    tid: bool


@dataclass(slots=True)
class RegionEnter:
    rid: int


@dataclass(slots=True)
class RegionExit:
    """``comp = _rt.region_exit(rid, comp, partials|None, op)``."""

    rid: int
    comp: str
    has_partials: bool
    op: str | None


@dataclass(slots=True)
class InitPartials:
    """``_partials = []`` at region start (reduction regions only)."""


@dataclass(slots=True)
class AppendPartial:
    """``_partials.append(<var>)`` at each thread's end."""

    name: str


@dataclass(slots=True)
class Chunk:
    """``_lo_<label>, _hi_<label> = _rt.chunk(_tid, n)`` — the default
    static schedule's two-endpoint form."""

    label: str
    n: IExpr


@dataclass(slots=True)
class ForRange:
    """``for var in range(lo, hi)`` (bounds evaluated once, at entry)."""

    var: str
    lo: IExpr
    hi: IExpr
    body: list


@dataclass(slots=True)
class ForAssign:
    """``for var in _rt.assign(_tid, n, kind, chunk)`` — explicitly
    scheduled worksharing iterations."""

    var: str
    n: IExpr
    kind: str
    chunk: int
    body: list


@dataclass(slots=True)
class ForList:
    """``for var in <queue>`` over a live task queue: appends made by
    the body are picked up by the iteration, exactly like Python list
    iteration (task bodies may spawn further tasks)."""

    queue: str
    var: str
    body: list


@dataclass(slots=True)
class QNew:
    """``<queue> = []`` — a section arm's deterministic task queue."""

    queue: str


@dataclass(slots=True)
class QPush:
    """``<queue>.append(k)`` — defer task ``k`` in spawn order."""

    queue: str
    k: int


@dataclass(slots=True)
class QClear:
    """``del <queue>[:]`` after the drain."""

    queue: str


@dataclass(slots=True)
class If:
    cond: Cmp
    body: list


@dataclass(slots=True)
class IfIntEq:
    """``if <var> == k:`` — single's thread-0 guard, sections' round-
    robin arm guards, the task drain's dispatch compare chain."""

    var: str
    k: int
    body: list


@dataclass(slots=True)
class LoadInt:
    """``name = _args[name]`` for an int parameter."""

    name: str


@dataclass(slots=True)
class LoadScalar:
    """FP scalar parameter load; ``wrap`` applies the program's
    binary32/FTZ conversion on entry."""

    name: str
    wrap: int


#: LoadArray modes: plain copy, or DAZ flush per element on load
A_COPY = 0
A_FTZ_D = 1
A_FTZ_F = 2


@dataclass(slots=True)
class LoadArray:
    name: str
    mode: int


@dataclass(slots=True)
class Return:
    name: str


Stmt = (SetVar | SetIVar | AStore | Charge | Flush | Reload | Hook
        | RegionEnter | RegionExit | InitPartials | AppendPartial | Chunk
        | ForRange | ForAssign | ForList | QNew | QPush | QClear | If
        | IfIntEq | LoadInt | LoadScalar | LoadArray | Return)


# ----------------------------------------------------------------------
# the kernel container + the builder the structural pass drives
# ----------------------------------------------------------------------

@dataclass(slots=True)
class KernelIR:
    """One kernel shape's complete IR plus its symbol registries.

    ``n_constants`` sizes the ``_K`` tuple; the registries list every
    local the backends must declare, partitioned by type (names are
    globally unique within a kernel, so one namespace suffices for
    slots while C gets typed declarations).
    """

    ops: list = field(default_factory=list)
    n_constants: int = 0
    comp: str = ""
    fp_vars: tuple[str, ...] = ()
    int_vars: tuple[str, ...] = ()
    arrays: tuple[str, ...] = ()
    queues: tuple[str, ...] = ()
    math_funcs: tuple[str, ...] = ()
    fp32: bool = False
    ftz: bool = False


class IrBuilder:
    """Block-structured emission helper for :class:`StructuralLowerer`.

    ``emit`` appends to the innermost open block; ``push``/``pop``
    bracket loop and branch bodies around the existing ``block()``
    recursion, so the op order inside each block is exactly the
    template's line order.
    """

    def __init__(self) -> None:
        self.ops: list = []
        self._stack: list[list] = [self.ops]
        # ordered sets (dict keys) so declarations are deterministic
        self._fp: dict[str, None] = {}
        self._int: dict[str, None] = {}
        self._arr: dict[str, None] = {}
        self._q: dict[str, None] = {}

    def emit(self, op: Stmt) -> None:
        self._stack[-1].append(op)

    def push(self) -> None:
        self._stack.append([])

    def pop(self) -> list:
        if len(self._stack) <= 1:
            raise ValueError("unbalanced IR pop")
        return self._stack.pop()

    # -- symbol registries ---------------------------------------------
    def fvar(self, name: str) -> str:
        self._fp[name] = None
        return name

    def ivar(self, name: str) -> str:
        self._int[name] = None
        return name

    def array(self, name: str) -> str:
        self._arr[name] = None
        return name

    def queue(self, name: str) -> str:
        self._q[name] = None
        return name

    def finish(self, *, n_constants: int, comp: str,
               math_funcs: tuple[str, ...], fp32: bool,
               ftz: bool) -> KernelIR:
        if len(self._stack) != 1:
            raise ValueError("unbalanced IR builder at finish")
        return KernelIR(ops=self.ops, n_constants=n_constants, comp=comp,
                        fp_vars=tuple(self._fp), int_vars=tuple(self._int),
                        arrays=tuple(self._arr), queues=tuple(self._q),
                        math_funcs=math_funcs, fp32=fp32, ftz=ftz)
