"""Kernel-backend selection for lowered kernels.

Every lowered kernel shape now carries three executable forms, all built
from the same :class:`repro.sim.ir.KernelIR` (or, for ``interp``, from
the Python template emitted in lockstep with it):

``interp``
    the original exec'd Python template — always available, the
    reference semantics,
``vm``
    the fused-op bytecode VM of :mod:`repro.sim.vm` — portable, no
    toolchain needed, mostly useful as an executable cross-check of the
    IR (it is not faster than the exec'd template),
``c``
    whole-kernel C emitted by :mod:`repro.sim.ckernel` and built through
    the :mod:`repro.sim._native` machinery — the fast path.

Selection is process-global: ``REPRO_KERNEL_BACKEND`` picks
``auto``/``c``/``vm``/``interp`` (default ``auto`` = ``c`` when the
toolchain and native value helpers are available, else ``interp``), and
:func:`set_kernel_backend` / :func:`use_kernel_backend` override it in
process (the campaign engines apply ``CampaignConfig.kernel_backend``
through this).  Like the ``REPRO_NATIVE_VALUES`` loader, an explicit
request that cannot be honoured never silently changes semantics — it
warns once and records the reason, visible via
:func:`kernel_backend_info`.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

BACKENDS = ("auto", "c", "vm", "interp")

#: process-level override (set_kernel_backend); None → environment
_OVERRIDE: str | None = None

#: resolution record for introspection; reset on every re-resolution
_INFO: dict = {
    "requested": None,
    "active": None,
    "reason": "not resolved yet",
}

#: cached toolchain probe (compiler lookup + cache-dir stat don't change
#: mid-process; the env/override *can*, so those are re-read every call)
_C_AVAIL: tuple[bool, str] | None = None

_warned: set = set()


def _c_available() -> tuple[bool, str]:
    """The C kernel backend needs the same things as the native value
    helpers (compiler + trusted cache dir) *plus* the helpers themselves
    active, since bit-exactness of libm/fma between the compiled kernel
    and the interpreted reference is only battery-verified through
    them."""
    global _C_AVAIL
    if _C_AVAIL is not None:
        return _C_AVAIL
    from . import _native, values

    if not values.native_values_active():
        info = values.native_values_info()
        _C_AVAIL = (False,
                    f"native value helpers inactive ({info['reason']})")
    elif _native._find_cc() is None:
        _C_AVAIL = (False, "no C compiler found (CC/cc/gcc/clang)")
    elif not _native._cache_dir_trusted(_native._cache_dir()):
        _C_AVAIL = (False, f"untrusted cache dir {_native._cache_dir()}")
    else:
        _C_AVAIL = (True, "toolchain and native value helpers available")
    return _C_AVAIL


def _resolve() -> str:
    requested = _OVERRIDE
    if requested is None:
        requested = os.environ.get("REPRO_KERNEL_BACKEND", "auto")
    requested = requested.lower()
    if requested not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {requested!r}; "
            f"expected one of {', '.join(BACKENDS)}")
    _INFO["requested"] = requested
    if requested == "interp" or requested == "vm":
        _INFO["active"] = requested
        _INFO["reason"] = "explicitly selected"
        return requested
    ok, why = _c_available()
    if ok:
        _INFO["active"] = "c"
        _INFO["reason"] = ("auto-selected compiled backend"
                           if requested == "auto" else "explicitly selected")
        return "c"
    # c requested (directly or via auto) but unavailable → interp, with
    # a one-time warning only for the explicit request
    _INFO["active"] = "interp"
    _INFO["reason"] = f"c backend unavailable: {why}"
    if requested == "c" and why not in _warned:
        _warned.add(why)
        warnings.warn(
            f"REPRO_KERNEL_BACKEND=c requested but unavailable, "
            f"falling back to interpreted kernels: {why}",
            RuntimeWarning, stacklevel=3)
    return "interp"


def active_kernel_backend() -> str:
    """The backend ``LoweredKernel.bind()`` uses right now — one of
    ``c``/``vm``/``interp`` (``auto`` is resolved, never returned)."""
    return _resolve()


def kernel_backend_info() -> dict:
    """``requested``/``active``/``reason`` for the current selection."""
    active_kernel_backend()
    return dict(_INFO)


def set_kernel_backend(backend: str | None) -> None:
    """Process-global override; ``None`` restores environment control.

    Validates eagerly so a typo in ``CampaignConfig.kernel_backend``
    fails at configuration time, not mid-campaign.
    """
    global _OVERRIDE
    if backend is not None and backend.lower() not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; "
            f"expected one of {', '.join(BACKENDS)}")
    _OVERRIDE = None if backend is None else backend.lower()


@contextmanager
def use_kernel_backend(backend: str | None):
    """Temporarily select a kernel backend (tests, benchmarks)."""
    global _OVERRIDE
    prev = _OVERRIDE
    set_kernel_backend(backend)
    try:
        yield
    finally:
        _OVERRIDE = prev
