"""Optional C accelerator for the FP value helpers of :mod:`repro.sim.values`.

The lowered kernels call :func:`~repro.sim.values.f32` /
:func:`~repro.sim.values.fdiv` / the FTZ and FMA helpers tens of millions
of times per campaign; on CPython each call pays a full Python frame plus
a ctypes/numpy round-trip.  The same operations are one machine
instruction each in C, so this module compiles a tiny extension on first
use (cached per interpreter ABI) and :mod:`repro.sim.values` rebinds its
helpers to the compiled versions.

Absolute requirements, enforced here:

* **bit-identical results** — every compiled helper is verified against
  its pure-Python reference on a battery of edge cases (signed zeros,
  subnormals, overflow boundary, inf/nan) at load time; any mismatch
  rejects the module and the pure-Python implementations stay in force,
* **zero hard dependencies** — no compiler, no headers, sandboxed build
  failure, non-CPython interpreter: all silently fall back to Python
  (``REPRO_NATIVE_VALUES=0`` forces the fallback, e.g. for the
  equivalence tests),
* **no fast-math** — the build uses plain ``-O2``; IEEE semantics of
  division and rounding are exactly CPython's.

The FMA keeps the x87 ``long double`` trick of the Python implementation
(``(double)((long double)a * b + c)``): on every platform C ``long
double`` is precisely the type ``numpy.longdouble`` wraps, so the
contraction model agrees bit-for-bit with the fallback.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
import sysconfig
import tempfile
import warnings
from contextlib import contextmanager
from hashlib import sha256
from pathlib import Path

_C_SOURCE = r"""
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>

static const double min_normal_d = 2.2250738585072014e-308;
static const double min_normal_f = 1.1754943508222875e-38;

static PyObject *nv_f32(PyObject *self, PyObject *arg) {
    double x = PyFloat_AsDouble(arg);
    if (x == -1.0 && PyErr_Occurred()) return NULL;
    return PyFloat_FromDouble((double)(float)x);
}

static PyObject *nv_ftz_d(PyObject *self, PyObject *arg) {
    double x = PyFloat_AsDouble(arg);
    if (x == -1.0 && PyErr_Occurred()) return NULL;
    if (x != 0.0 && x < min_normal_d && x > -min_normal_d)
        x = copysign(0.0, x);
    return PyFloat_FromDouble(x);
}

static PyObject *nv_ftz_f(PyObject *self, PyObject *arg) {
    double x = PyFloat_AsDouble(arg);
    if (x == -1.0 && PyErr_Occurred()) return NULL;
    if (x != 0.0 && x < min_normal_f && x > -min_normal_f)
        x = copysign(0.0, x);
    return PyFloat_FromDouble(x);
}

/* fused f32 + ftz_f: one call instead of two on the Intel binary32 path */
static PyObject *nv_f32z(PyObject *self, PyObject *arg) {
    double x = PyFloat_AsDouble(arg);
    if (x == -1.0 && PyErr_Occurred()) return NULL;
    x = (double)(float)x;
    if (x != 0.0 && x < min_normal_f && x > -min_normal_f)
        x = copysign(0.0, x);
    return PyFloat_FromDouble(x);
}

static PyObject *nv_fdiv(PyObject *self, PyObject *const *args,
                         Py_ssize_t n) {
    double a, b;
    if (n != 2) {
        PyErr_SetString(PyExc_TypeError, "fdiv expects 2 arguments");
        return NULL;
    }
    a = PyFloat_AsDouble(args[0]);
    b = PyFloat_AsDouble(args[1]);
    if (PyErr_Occurred()) return NULL;
    /* IEEE-754 division: x/0 -> +-inf, 0/0 and nan operands -> nan */
    return PyFloat_FromDouble(a / b);
}

static PyObject *nv_fma_d(PyObject *self, PyObject *const *args,
                          Py_ssize_t n) {
    double a, b, c;
    long double r;
    if (n != 3) {
        PyErr_SetString(PyExc_TypeError, "fma_d expects 3 arguments");
        return NULL;
    }
    a = PyFloat_AsDouble(args[0]);
    b = PyFloat_AsDouble(args[1]);
    c = PyFloat_AsDouble(args[2]);
    if (PyErr_Occurred()) return NULL;
    if (a != a || b != b || c != c) return PyFloat_FromDouble(NAN);
    r = (long double)a * (long double)b + (long double)c;
    return PyFloat_FromDouble((double)r);
}

static PyObject *nv_fma_f(PyObject *self, PyObject *const *args,
                          Py_ssize_t n) {
    double a, b, c;
    if (n != 3) {
        PyErr_SetString(PyExc_TypeError, "fma_f expects 3 arguments");
        return NULL;
    }
    a = PyFloat_AsDouble(args[0]);
    b = PyFloat_AsDouble(args[1]);
    c = PyFloat_AsDouble(args[2]);
    if (PyErr_Occurred()) return NULL;
    return PyFloat_FromDouble((double)(float)(a * b + c));
}

/* IEEE-total math wrappers: C libm already returns nan/inf where
   Python's math module raises, which is exactly the behaviour the
   Python-side _total() wrappers reconstruct — same libm, same bits. */
#define NV_MATH1(NAME, EXPR)                                      \
    static PyObject *nv_m_##NAME(PyObject *self, PyObject *arg) { \
        double x = PyFloat_AsDouble(arg);                         \
        if (x == -1.0 && PyErr_Occurred()) return NULL;           \
        return PyFloat_FromDouble(EXPR);                          \
    }

NV_MATH1(sin, sin(x))
NV_MATH1(cos, cos(x))
NV_MATH1(tan, tan(x))
NV_MATH1(exp, exp(x))
NV_MATH1(log, log(x))
NV_MATH1(sqrt, sqrt(x))
NV_MATH1(fabs, fabs(x))
NV_MATH1(tanh, tanh(x))
NV_MATH1(atan, atan(x))

static PyMethodDef nv_methods[] = {
    {"f32", nv_f32, METH_O, "round binary64 to binary32 and back"},
    {"ftz_d", nv_ftz_d, METH_O, "flush subnormal binary64 to signed zero"},
    {"ftz_f", nv_ftz_f, METH_O, "flush subnormal binary32 to signed zero"},
    {"f32z", nv_f32z, METH_O, "f32 rounding followed by binary32 FTZ"},
    {"fdiv", (PyCFunction)nv_fdiv, METH_FASTCALL, "IEEE division"},
    {"fma_d", (PyCFunction)nv_fma_d, METH_FASTCALL,
     "long-double contracted multiply-add"},
    {"fma_f", (PyCFunction)nv_fma_f, METH_FASTCALL,
     "binary32 fused multiply-add (exact in binary64)"},
    {"m_sin", nv_m_sin, METH_O, NULL},
    {"m_cos", nv_m_cos, METH_O, NULL},
    {"m_tan", nv_m_tan, METH_O, NULL},
    {"m_exp", nv_m_exp, METH_O, NULL},
    {"m_log", nv_m_log, METH_O, NULL},
    {"m_sqrt", nv_m_sqrt, METH_O, NULL},
    {"m_fabs", nv_m_fabs, METH_O, NULL},
    {"m_tanh", nv_m_tanh, METH_O, NULL},
    {"m_atan", nv_m_atan, METH_O, NULL},
    {NULL, NULL, 0, NULL}};

static struct PyModuleDef nv_module = {
    PyModuleDef_HEAD_INIT, "_repro_native_values",
    "compiled FP value helpers", -1, nv_methods};

PyMODINIT_FUNC PyInit__repro_native_values(void) {
    return PyModule_Create(&nv_module);
}
"""


#: why the last :func:`load` attempt succeeded or fell back — the
#: anti-silent-fallback record (see :func:`load_info`)
_LOAD_INFO: dict = {
    "active": False,
    "requested": False,
    "reason": "load() not called yet",
}


def load_info() -> dict:
    """How the native-values load went: ``active`` (compiled helpers in
    use), ``requested`` (``REPRO_NATIVE_VALUES`` explicitly enabled it),
    and the human-readable ``reason`` for the current state."""
    return dict(_LOAD_INFO)


def reset_load_info() -> None:
    """Restore the load record to its pristine never-called state.

    :func:`load` and its fallback path mutate the module-global record
    in place; anything that calls them (tests, probes) should reset —
    or better, use :func:`scoped_load_info` — so later readers of
    :func:`load_info` see the process's real state, not the probe's.
    """
    _LOAD_INFO.clear()
    _LOAD_INFO.update(active=False, requested=False,
                      reason="load() not called yet")


@contextmanager
def scoped_load_info():
    """Context manager: any :func:`load` calls inside leave the
    module-global load record exactly as it was on entry."""
    saved = dict(_LOAD_INFO)
    try:
        yield
    finally:
        _LOAD_INFO.clear()
        _LOAD_INFO.update(saved)


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    # per-uid so shared /tmp hosts cannot poison each other's cache
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-native-{uid}"


def _cache_dir_trusted(path: Path) -> bool:
    """Only import shared objects from a directory we own and control.

    The directory name under a world-writable temp dir is predictable,
    so another local user could pre-create it and plant a .so with the
    deterministic cache name; importing an extension runs its module
    init before any verification can happen.  Owned-by-us plus no
    group/other write is the same trust test ssh applies to key files.
    """
    try:
        path.mkdir(parents=True, exist_ok=True)
        os.chmod(path, 0o700)  # best effort; the stat below decides
        st = path.stat()
    except OSError:
        return False
    if hasattr(os, "getuid") and st.st_uid != os.getuid():
        return False
    return not (st.st_mode & 0o022)


def _find_cc() -> str | None:
    from shutil import which

    cc_var = (sysconfig.get_config_var("CC") or "").split()
    candidates = ([cc_var[0]] if cc_var else []) + ["cc", "gcc", "clang"]
    for cand in candidates:
        path = which(cand)
        if path:
            return path
    return None


def build_shared_object(cc: str, c_source: str, out: Path,
                        extra_flags: tuple[str, ...] = ()) -> tuple[bool, str]:
    """Compile ``c_source`` into the shared object ``out``.

    Shared by the value-helper module and the kernel backend
    (:mod:`repro.sim.ckernel`).  Returns ``(ok, reason)`` — the reason
    is a short diagnostic (including a stderr snippet on compiler
    errors) instead of the old silent ``False``.  The final rename is
    atomic, so concurrent builders race harmlessly.
    """
    include = sysconfig.get_paths()["include"]
    try:
        out.parent.mkdir(parents=True, exist_ok=True)
        src = out.with_suffix(".c")
        src.write_text(c_source)
    except OSError as exc:
        return False, f"cannot write build inputs: {exc}"
    tmp = out.with_name(out.name + f".tmp{os.getpid()}")
    cmd = [cc, "-O2", "-fPIC", "-shared", *extra_flags, f"-I{include}",
           str(src), "-o", str(tmp)]
    if sys.platform == "darwin":
        cmd[4:4] = ["-undefined", "dynamic_lookup"]
    try:
        proc = subprocess.run(cmd, capture_output=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired) as exc:
        return False, f"compiler did not run: {type(exc).__name__}: {exc}"
    if proc.returncode != 0:
        tail = proc.stderr.decode(errors="replace").strip().splitlines()
        snippet = "; ".join(tail[-3:]) if tail else "no compiler output"
        return False, f"compiler exited {proc.returncode}: {snippet}"
    try:
        os.replace(tmp, out)
    except OSError as exc:
        return False, f"cannot install built object: {exc}"
    return True, ""


def _build(cc: str, out: Path) -> bool:
    return build_shared_object(cc, _C_SOURCE, out)[0]


def import_shared_object(path: Path, name: str = "_repro_native_values"):
    """Import an extension module from an explicit path (the module's
    ``PyInit_<name>`` must match ``name``)."""
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _import_from(path: Path):
    return import_shared_object(path)


def _verify(native) -> bool:
    """Reject the compiled module unless it matches the Python helpers
    bit-for-bit on the values where the semantics live."""
    from math import copysign, inf, isnan, nan

    from . import values

    def same(a: float, b: float) -> bool:
        if isnan(a) or isnan(b):
            return isnan(a) and isnan(b)
        return a == b and copysign(1.0, a) == copysign(1.0, b)

    edge = [0.0, -0.0, 1.5, -2.75, 5e-324, -5e-324, 1e-310, -1e-310,
            2.2250738585072014e-308, 1.1754943508222875e-38, 1e-39,
            -1e-39, 3.4028234663852886e+38, 3.4028235677973366e+38,
            1e39, -1e39, 1e308, -1e308, inf, -inf, nan, 0.1, 1 / 3]
    try:
        for x in edge:
            if not same(native.f32(x), values._py_f32(x)):
                return False
            if not same(native.ftz_d(x), values._py_ftz_d(x)):
                return False
            if not same(native.ftz_f(x), values._py_ftz_f(x)):
                return False
            if not same(native.f32z(x), values._py_f32z(x)):
                return False
        for a in edge:
            for b in (0.0, -0.0, 3.0, -0.25, inf, nan, 1e-308):
                if not same(native.fdiv(a, b), values._py_fdiv(a, b)):
                    return False
        for t in ((0.1, 0.2, 0.3), (1e308, 1e308, -inf), (nan, 1.0, 1.0),
                  (1.0, nan, 1.0), (1.0, 1.0, nan), (inf, 0.0, 1.0),
                  (1 / 3, 3.0, -1.0), (1.0000001, 1.0000001, -1.0)):
            if not same(native.fma_d(*t), values._py_fma_d(*t)):
                return False
            if not same(native.fma_f(*t), values._py_fma_f(*t)):
                return False
        math_args = [0.0, -0.0, 0.5, -0.5, 1.0, -1.0, 2.75, 100.0, 710.0,
                     -710.0, 1e-300, 1e308, -1e308, inf, -inf, nan, -3.0]
        for name, ref in values.MATH_IMPLS.items():
            cfn = getattr(native, f"m_{name}", None)
            if cfn is None:
                return False
            for x in math_args:
                if not same(cfn(x), ref(x)):
                    return False
    except Exception:
        return False
    return True


def _fall_back(reason: str):
    _LOAD_INFO["active"] = False
    _LOAD_INFO["reason"] = reason
    if _LOAD_INFO["requested"]:
        # Explicitly asked for and not delivered: one warning (warnings
        # dedupes by message+location), not a silent mode switch that
        # makes benchmarks compare different implementations.
        warnings.warn(
            f"REPRO_NATIVE_VALUES requested but native helpers are "
            f"unavailable, using pure-Python fallback: {reason}",
            RuntimeWarning, stacklevel=3)
    return None


def load():
    """Return the verified native module, or ``None`` (pure-Python mode).

    Never raises: any failure — disabled via ``REPRO_NATIVE_VALUES=0``,
    no compiler, sandboxed build, verification mismatch — degrades to the
    Python helpers.  Unlike the original silent fallback, every outcome
    is recorded in :func:`load_info`, and an explicit
    ``REPRO_NATIVE_VALUES=1`` request that cannot be honoured emits a
    one-time :class:`RuntimeWarning`.
    """
    env = os.environ.get("REPRO_NATIVE_VALUES")
    _LOAD_INFO["requested"] = (env is not None
                               and env.lower() not in ("0", "no", "off"))
    if env is not None and env.lower() in ("0", "no", "off"):
        _LOAD_INFO["active"] = False
        _LOAD_INFO["reason"] = "disabled via REPRO_NATIVE_VALUES"
        return None
    if sys.implementation.name != "cpython":
        return _fall_back(
            f"non-CPython interpreter ({sys.implementation.name})")
    try:
        suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
        key = sha256((_C_SOURCE + suffix).encode()).hexdigest()[:16]
        cache_dir = _cache_dir()
        if not _cache_dir_trusted(cache_dir):
            return _fall_back(f"untrusted cache dir {cache_dir} (not "
                              f"uid-owned 0700)")
        out = cache_dir / f"_repro_native_values-{key}{suffix}"
        if not out.exists():
            cc = _find_cc()
            if cc is None:
                return _fall_back("no C compiler found (CC/cc/gcc/clang)")
            ok, why = build_shared_object(cc, _C_SOURCE, out)
            if not ok:
                return _fall_back(f"build failed: {why}")
        native = _import_from(out)
        if native is None:
            return _fall_back(f"cannot import built module {out}")
        if not _verify(native):
            return _fall_back("verification mismatch: compiled helpers "
                              "disagree with Python reference bits")
        _LOAD_INFO["active"] = True
        _LOAD_INFO["reason"] = "compiled helpers verified and active"
        return native
    except Exception as exc:
        return _fall_back(f"loader exception: {type(exc).__name__}: {exc}")
