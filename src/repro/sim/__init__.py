"""Deterministic execution substrate: interpreter, runtime, counters.

The simulated backend executes generated programs with exact IEEE
semantics on a virtual clock.  A vendor's "compiler" lowers the AST to
Python (:mod:`repro.sim.lower`); its "runtime" is a
:class:`~repro.sim.runtime.RegionExecutor` cost model driven by hooks in
the lowered code.  The lowered template is also lowered to a typed
register IR (:mod:`repro.sim.ir`), from which a compiled C kernel
(:mod:`repro.sim.ckernel`) or a bytecode VM (:mod:`repro.sim.vm`) can
execute the same program byte-identically — see :mod:`repro.sim.backend`
for selection and :func:`backend_info` for what is active and why.
"""

from .backend import (active_kernel_backend, kernel_backend_info,
                      set_kernel_backend, use_kernel_backend)
from .counters import PerfCounters
from .events import ProfileRecorder
from .lower import CostState, Lowerer, LoweredKernel, RegionMeta
from .runtime import RegionExecutor
from .values import (MATH_IMPLS, f32, fdiv, fma_d, fma_f, ftz_d, ftz_f,
                     native_values_active, native_values_info)


def backend_info() -> dict:
    """One dict answering "what is actually executing kernels, and why":
    the native value helpers' load record, the kernel-backend selection
    record, and the compiled-kernel build counters."""
    from . import ckernel

    return {
        "native_values": native_values_info(),
        "kernel_backend": kernel_backend_info(),
        "ckernel": ckernel.build_info(),
    }


__all__ = [
    "CostState",
    "Lowerer",
    "LoweredKernel",
    "MATH_IMPLS",
    "PerfCounters",
    "ProfileRecorder",
    "RegionExecutor",
    "RegionMeta",
    "active_kernel_backend",
    "backend_info",
    "f32",
    "fdiv",
    "fma_d",
    "fma_f",
    "ftz_d",
    "ftz_f",
    "kernel_backend_info",
    "native_values_active",
    "native_values_info",
    "set_kernel_backend",
    "use_kernel_backend",
]
