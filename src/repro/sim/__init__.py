"""Deterministic execution substrate: interpreter, runtime, counters.

The simulated backend executes generated programs with exact IEEE
semantics on a virtual clock.  A vendor's "compiler" lowers the AST to
Python (:mod:`repro.sim.lower`); its "runtime" is a
:class:`~repro.sim.runtime.RegionExecutor` cost model driven by hooks in
the lowered code.
"""

from .counters import PerfCounters
from .events import ProfileRecorder
from .lower import CostState, Lowerer, LoweredKernel, RegionMeta
from .runtime import RegionExecutor
from .values import MATH_IMPLS, f32, fdiv, fma_d, fma_f, ftz_d, ftz_f

__all__ = [
    "CostState",
    "Lowerer",
    "LoweredKernel",
    "MATH_IMPLS",
    "PerfCounters",
    "ProfileRecorder",
    "RegionExecutor",
    "RegionMeta",
    "f32",
    "fdiv",
    "fma_d",
    "fma_f",
    "ftz_d",
    "ftz_f",
]
