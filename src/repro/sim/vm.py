"""Fused-op bytecode VM over :mod:`repro.sim.ir` — the portable backend.

The IR of one kernel shape is compiled once into *threaded code*: every
statement becomes a Python closure over a flat register frame (a plain
list), with FP/int expressions pre-composed into nested single-call
closures.  Running a kernel is then a loop of closure calls — no
dispatch table, no AST, no name lookups — against per-invocation slots
for ``_args``/``_rt``/``_c``/``_K``.

Fidelity, not speed, is the point: the VM calls the very same
:mod:`repro.sim.values` helpers (native or pure-Python — whichever is
bound) as the interpreted template, iterates genuine Python lists for
the live task-queue semantics, and raises the same ``IndexError`` /
``SimulatedCrash`` / ``SimulatedHang`` out of the same ops.  It needs no
toolchain, so it serves as an executable cross-check of the IR itself
(and of the C backend, when both are available) on hosts where
:mod:`repro.sim.ckernel` cannot build.

Compiled programs are cached per kernel *shape* in
``StructuralKernel.backend_cache["vm"]``; the vendor's ``_K`` constants
are bound per call through a frame slot, so the three vendors share one
compilation.
"""

from __future__ import annotations

from . import ir as _ir
from .values import MATH_IMPLS, f32, f32z, fdiv, fma_d, fma_f, ftz_d, ftz_f

#: fixed frame layout: the four accumulator lanes first (Charge indexes
#: lane 0/1 directly), then the per-invocation objects, then registers
_CY, _CCY, _INS, _BR = 0, 1, 2, 3
_ARGS, _RT, _C, _K, _PART, _RET = 4, 5, 6, 7, 8, 9
_N_FIXED = 10

_WRAPS = {_ir.W_NONE: None, _ir.W_F32: f32, _ir.W_F32Z: f32z,
          _ir.W_FTZ: ftz_d}

_CMP = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class _Compiler:
    """One kernel shape's IR -> threaded code."""

    def __init__(self, kir: _ir.KernelIR) -> None:
        self.kir = kir
        self.slot: dict[str, int] = {}
        n = _N_FIXED
        for name in (*kir.int_vars, *kir.fp_vars, *kir.arrays,
                     *kir.queues, "_tid"):
            if name not in self.slot:
                self.slot[name] = n
                n += 1
        self.n_slots = n
        #: (slot, hook name) pairs prefetched as bound methods per run
        self._hooks: dict[str, int] = {}

    def hook(self, name: str) -> int:
        i = self._hooks.get(name)
        if i is None:
            i = self.n_slots
            self.n_slots += 1
            self._hooks[name] = i
        return i

    # -- expressions ---------------------------------------------------
    def fexpr(self, e):
        """FP expression -> ``f(frame) -> float``."""
        if type(e) is _ir.FLit:
            v = e.v
            return lambda s: v
        if type(e) is _ir.FVar:
            i = self.slot[e.name]
            return lambda s: s[i]
        if type(e) is _ir.ALoad:
            a = self.slot[e.arr]
            ix = self.iexpr(e.idx)
            return lambda s: s[a][ix(s)]
        if type(e) is _ir.IToF:
            ix = self.iexpr(e.ix)
            return lambda s: float(ix(s))
        if type(e) is _ir.FNeg:
            x = self.fexpr(e.x)
            return lambda s: -x(s)
        if type(e) is _ir.FBin:
            a, b = self.fexpr(e.a), self.fexpr(e.b)
            wrap = _WRAPS[e.wrap]
            op = e.op
            if op == "/":
                if wrap is None:
                    return lambda s: fdiv(a(s), b(s))
                return lambda s: wrap(fdiv(a(s), b(s)))
            if op == "+":
                raw = lambda s: a(s) + b(s)  # noqa: E731
            elif op == "-":
                raw = lambda s: a(s) - b(s)  # noqa: E731
            else:
                raw = lambda s: a(s) * b(s)  # noqa: E731
            if wrap is None:
                return raw
            return lambda s: wrap(raw(s))
        if type(e) is _ir.FFma:
            a, b, c = self.fexpr(e.a), self.fexpr(e.b), self.fexpr(e.c)
            fma = fma_f if e.fp32 else fma_d
            if not e.ftz:
                return lambda s: fma(a(s), b(s), c(s))
            flush = ftz_f if e.fp32 else ftz_d
            return lambda s: flush(fma(a(s), b(s), c(s)))
        if type(e) is _ir.FCall:
            fn = MATH_IMPLS[e.func]
            arg = self.fexpr(e.arg)
            wrap = _WRAPS[e.wrap]
            if wrap is None:
                return lambda s: fn(arg(s))
            return lambda s: wrap(fn(arg(s)))
        raise TypeError(f"unknown FP expr {type(e).__name__}")

    def iexpr(self, e):
        """Int expression -> ``f(frame) -> int``."""
        if type(e) is _ir.ILit:
            v = e.v
            return lambda s: v
        if type(e) is _ir.IVar:
            i = self.slot[e.name]
            return lambda s: s[i]
        if type(e) is _ir.IMax0:
            i = self.slot[e.name]
            return lambda s: max(0, s[i])
        if type(e) is _ir.IMod:
            base, m = self.iexpr(e.base), e.modulus
            return lambda s: base(s) % m
        if type(e) is _ir.IMul:
            a, b = self.iexpr(e.a), self.iexpr(e.b)
            return lambda s: a(s) * b(s)
        if type(e) is _ir.IFloorDiv:
            a, b = self.iexpr(e.a), self.iexpr(e.b)
            return lambda s: a(s) // b(s)
        if type(e) is _ir.IModV:
            a, b = self.iexpr(e.a), self.iexpr(e.b)
            return lambda s: a(s) % b(s)
        raise TypeError(f"unknown int expr {type(e).__name__}")

    def cmp(self, c: _ir.Cmp):
        lhs, rhs = self.fexpr(c.lhs), self.fexpr(c.rhs)
        op = _CMP[c.op]
        return lambda s: op(lhs(s), rhs(s))

    # -- statements ----------------------------------------------------
    def block(self, ops: list) -> tuple:
        return tuple(self.stmt(op) for op in ops)

    def stmt(self, op):  # noqa: C901 - one arm per IR op, flat by design
        t = type(op)
        if t is _ir.Charge:
            lane = _CY if op.lane == 0 else _CCY
            kc, ki, br = op.k_cy, op.k_ins, op.br

            def st(s, lane=lane, kc=kc, ki=ki, br=br):
                K = s[_K]
                if kc is not None:
                    s[lane] += K[kc]
                if ki is not None:
                    s[_INS] += K[ki]
                if br:
                    s[_BR] += br
            return st
        if t is _ir.SetVar:
            i = self.slot[op.name]
            e = self.fexpr(op.e)
            return lambda s: s.__setitem__(i, e(s))
        if t is _ir.SetIVar:
            i = self.slot[op.name]
            e = self.iexpr(op.e)
            return lambda s: s.__setitem__(i, e(s))
        if t is _ir.AStore:
            a = self.slot[op.arr]
            ix = self.iexpr(op.idx)
            e = self.fexpr(op.e)

            def st(s, a=a, ix=ix, e=e):
                s[a][ix(s)] = e(s)
            return st
        if t is _ir.Flush:
            def st(s):
                c = s[_C]
                c.cy = s[_CY]
                c.ccy = s[_CCY]
                c.ins = s[_INS]
                c.br = s[_BR]
            return st
        if t is _ir.Reload:
            def st(s):
                c = s[_C]
                s[_CY] = c.cy
                s[_CCY] = c.ccy
                s[_INS] = c.ins
                s[_BR] = c.br
            return st
        if t is _ir.Hook:
            h = self.hook(op.name)
            if op.tid:
                tid = self.slot["_tid"]
                return lambda s: s[h](s[tid])
            return lambda s: s[h]()
        if t is _ir.RegionEnter:
            h = self.hook("region_enter")
            rid = op.rid
            return lambda s: s[h](rid)
        if t is _ir.RegionExit:
            h = self.hook("region_exit")
            rid, comp = op.rid, self.slot[op.comp]
            if op.has_partials:
                red = op.op

                def st(s, h=h, rid=rid, comp=comp, red=red):
                    s[comp] = s[h](rid, s[comp], s[_PART], red)
                return st

            def st(s, h=h, rid=rid, comp=comp):
                s[comp] = s[h](rid, s[comp], None, None)
            return st
        if t is _ir.InitPartials:
            return lambda s: s.__setitem__(_PART, [])
        if t is _ir.AppendPartial:
            i = self.slot[op.name]
            return lambda s: s[_PART].append(s[i])
        if t is _ir.Chunk:
            h = self.hook("chunk")
            tid = self.slot["_tid"]
            lo = self.slot[f"_lo_{op.label}"]
            hi = self.slot[f"_hi_{op.label}"]
            n = self.iexpr(op.n)

            def st(s, h=h, tid=tid, lo=lo, hi=hi, n=n):
                s[lo], s[hi] = s[h](s[tid], n(s))
            return st
        if t is _ir.ForRange:
            v = self.slot[op.var]
            lo, hi = self.iexpr(op.lo), self.iexpr(op.hi)
            body = self.block(op.body)

            def st(s, v=v, lo=lo, hi=hi, body=body):
                for k in range(lo(s), hi(s)):
                    s[v] = k
                    for b in body:
                        b(s)
            return st
        if t is _ir.ForAssign:
            h = self.hook("assign")
            tid = self.slot["_tid"]
            v = self.slot[op.var]
            n = self.iexpr(op.n)
            kind, chunk = op.kind, op.chunk
            body = self.block(op.body)

            def st(s, h=h, tid=tid, v=v, n=n, kind=kind, chunk=chunk,
                   body=body):
                for k in s[h](s[tid], n(s), kind, chunk):
                    s[v] = k
                    for b in body:
                        b(s)
            return st
        if t is _ir.ForList:
            q = self.slot[op.queue]
            v = self.slot[op.var]
            body = self.block(op.body)

            def st(s, q=q, v=v, body=body):
                # a real list, iterated live: appends made by the body
                # are visited, exactly like the template's for-over-list
                for k in s[q]:
                    s[v] = k
                    for b in body:
                        b(s)
            return st
        if t is _ir.QNew:
            q = self.slot[op.queue]
            return lambda s: s.__setitem__(q, [])
        if t is _ir.QPush:
            q, k = self.slot[op.queue], op.k
            return lambda s: s[q].append(k)
        if t is _ir.QClear:
            q = self.slot[op.queue]
            return lambda s: s[q].__delitem__(slice(None))
        if t is _ir.If:
            cond = self.cmp(op.cond)
            body = self.block(op.body)

            def st(s, cond=cond, body=body):
                if cond(s):
                    for b in body:
                        b(s)
            return st
        if t is _ir.IfIntEq:
            v, k = self.slot[op.var], op.k
            body = self.block(op.body)

            def st(s, v=v, k=k, body=body):
                if s[v] == k:
                    for b in body:
                        b(s)
            return st
        if t is _ir.LoadInt:
            i = self.slot[op.name]
            name = op.name
            return lambda s: s.__setitem__(i, s[_ARGS][name])
        if t is _ir.LoadScalar:
            i = self.slot[op.name]
            name = op.name
            wrap = _WRAPS[op.wrap]
            if wrap is None:
                return lambda s: s.__setitem__(i, s[_ARGS][name])
            return lambda s: s.__setitem__(i, wrap(s[_ARGS][name]))
        if t is _ir.LoadArray:
            a = self.slot[op.name]
            name = op.name
            if op.mode == _ir.A_COPY:
                return lambda s: s.__setitem__(a, list(s[_ARGS][name]))
            flush = ftz_f if op.mode == _ir.A_FTZ_F else ftz_d
            return lambda s: s.__setitem__(
                a, [flush(x) for x in s[_ARGS][name]])
        if t is _ir.Return:
            i = self.slot[op.name]
            return lambda s: s.__setitem__(_RET, s[i])
        raise TypeError(f"unknown IR op {type(op).__name__}")


class VmProgram:
    """Threaded code for one kernel shape (shared across vendors)."""

    __slots__ = ("ops", "n_slots", "hooks")

    def __init__(self, kir: _ir.KernelIR) -> None:
        comp = _Compiler(kir)
        self.ops = comp.block(kir.ops)
        self.hooks = tuple(comp._hooks.items())
        self.n_slots = comp.n_slots

    def run(self, args, rt, c, constants):
        s = [None] * self.n_slots
        s[_CY] = s[_CCY] = s[_INS] = s[_BR] = 0.0
        s[_ARGS], s[_RT], s[_C], s[_K] = args, rt, c, constants
        for name, i in self.hooks:
            s[i] = getattr(rt, name)
        for op in self.ops:
            op(s)
        return s[_RET]


def bind_vm(structural, constants: tuple[float, ...]):
    """The VM entry for one vendor's binding of a kernel shape.

    Compilation is per shape (cached on the structural kernel); only the
    constants tuple differs between vendors.
    """
    prog = structural.backend_cache.get("vm")
    if prog is None:
        prog = VmProgram(structural.ir)
        structural.backend_cache["vm"] = prog

    def _kernel(_args, _rt, _c, prog=prog, constants=constants):
        return prog.run(_args, _rt, _c, constants)
    return _kernel
