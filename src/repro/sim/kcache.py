"""Process-local kernel cache for the two-phase lowering pipeline.

A campaign compiles every generated program once per simulated vendor;
sessions, benchmarks, resumed runs, and test suites re-compile the same
programs again and again.  :class:`KernelCache` memoizes both lowering
phases behind bounded LRU maps:

* **structural entries** — keyed by ``(fingerprint, ftz, fma_mode)``:
  the expensive pass (AST walk, source emission, ``compile()``).  The
  key is the *kernel shape*: the program text plus the only two vendor
  traits that change emitted code, so vendors whose shapes coincide
  (e.g. every vendor at ``-O0``/``-O1``, where contraction is off) share
  one compiled template;
* **kernel entries** — keyed by ``(fingerprint, vendor, opt_level,
  fast_armed, slow_armed)``: the bound
  :class:`~repro.sim.lower.LoweredKernel` (template + that vendor's
  ``_K`` constants).  Bound kernels also memoize their exec'd callable
  (:meth:`~repro.sim.lower.LoweredKernel.bind`), so a cache hit skips
  the module exec as well.

Invalidation is purely capacity-based (LRU eviction): every component of
a key is content-derived — the fingerprint hashes the emitted C++
translation unit, and the fault arms are deterministic functions of
``(fingerprint, vendor)`` — so an entry can never go stale, only cold.
Capacities bound worst-case memory (a compiled template plus metadata is
a few tens of KB); the defaults hold a full 200-program campaign with
room to spare.

The cache is **process-local** by design: worker processes of a
:class:`~repro.driver.engine.ProcessPoolEngine` each warm their own copy
(work units arrive as indices, so cached objects never cross the pickle
boundary), and thread-pool workers share this one under its lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class CacheStats:
    """Counters for one :class:`KernelCache` (totals since creation)."""

    structural_hits: int = 0
    structural_misses: int = 0
    kernel_hits: int = 0
    kernel_misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = (self.structural_hits + self.structural_misses
                 + self.kernel_hits + self.kernel_misses)
        if total == 0:
            return 0.0
        return (self.structural_hits + self.kernel_hits) / total

    def as_dict(self) -> dict[str, float]:
        return {
            "structural_hits": self.structural_hits,
            "structural_misses": self.structural_misses,
            "kernel_hits": self.kernel_hits,
            "kernel_misses": self.kernel_misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta between this snapshot and an ``earlier`` one —
        per-phase/per-campaign counters instead of totals-since-creation
        (meaningless in a long-lived fleet worker)."""
        return CacheStats(
            structural_hits=self.structural_hits - earlier.structural_hits,
            structural_misses=(self.structural_misses
                               - earlier.structural_misses),
            kernel_hits=self.kernel_hits - earlier.kernel_hits,
            kernel_misses=self.kernel_misses - earlier.kernel_misses,
            evictions=self.evictions - earlier.evictions,
        )


class _LruMap:
    """A tiny bounded LRU over OrderedDict (thread-safety lives above)."""

    __slots__ = ("capacity", "data", "evictions")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.data: OrderedDict = OrderedDict()
        self.evictions = 0

    def get(self, key):
        try:
            value = self.data[key]
        except KeyError:
            return None
        self.data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self.data[key] = value
        self.data.move_to_end(key)
        while len(self.data) > self.capacity:
            self.data.popitem(last=False)
            self.evictions += 1


class KernelCache:
    """Bounded, thread-safe memoization of both lowering phases."""

    def __init__(self, structural_capacity: int = 512,
                 kernel_capacity: int = 2048):
        self._structural = _LruMap(structural_capacity)
        self._kernels = _LruMap(kernel_capacity)
        self._lock = threading.Lock()
        self._shits = 0
        self._smisses = 0
        self._khits = 0
        self._kmisses = 0

    # ------------------------------------------------------------------
    def get_structural(self, key: Hashable, build: Callable[[], T]) -> T:
        """The structural kernel for ``key``, building on first use."""
        with self._lock:
            hit = self._structural.get(key)
            if hit is not None:
                self._shits += 1
                return hit
            self._smisses += 1
        value = build()  # built outside the lock: compile() can be slow
        with self._lock:
            self._structural.put(key, value)
        return value

    def get_kernel(self, key: Hashable, build: Callable[[], T]) -> T:
        """The vendor-bound kernel for ``key``, building on first use."""
        with self._lock:
            hit = self._kernels.get(key)
            if hit is not None:
                self._khits += 1
                return hit
            self._kmisses += 1
        value = build()
        with self._lock:
            self._kernels.put(key, value)
        return value

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                structural_hits=self._shits,
                structural_misses=self._smisses,
                kernel_hits=self._khits,
                kernel_misses=self._kmisses,
                evictions=(self._structural.evictions
                           + self._kernels.evictions),
            )

    def snapshot(self) -> CacheStats:
        """An immutable snapshot of the counters, for later delta-ing
        with :meth:`CacheStats.since` (per-campaign accounting)."""
        return self.stats()

    def reset(self) -> None:
        """Zero every counter (entries stay cached).

        A long-lived worker serves many campaigns from one cache; after
        ``reset()`` the next :meth:`stats` reads as if the cache were
        freshly created, without losing its warm entries.
        """
        with self._lock:
            self._shits = 0
            self._smisses = 0
            self._khits = 0
            self._kmisses = 0
            self._structural.evictions = 0
            self._kernels.evictions = 0

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._structural.data.clear()
            self._kernels.data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._structural.data) + len(self._kernels.data)


# ----------------------------------------------------------------------
# the process-default cache
# ----------------------------------------------------------------------

_DEFAULT_CACHE = KernelCache()


def get_kernel_cache() -> KernelCache:
    """The process-wide cache :func:`repro.vendors.toolchain.compile_binary`
    uses when no explicit cache is passed."""
    return _DEFAULT_CACHE


def set_kernel_cache(cache: KernelCache) -> KernelCache:
    """Replace the process-default cache (returns the new one); useful
    for tests and for sizing experiments."""
    global _DEFAULT_CACHE
    if not isinstance(cache, KernelCache):
        raise TypeError("set_kernel_cache expects a KernelCache")
    _DEFAULT_CACHE = cache
    return cache
