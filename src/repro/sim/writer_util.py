"""Python-source writer for the lowerer (indentation-based blocks)."""

from __future__ import annotations


class PyWriter:
    """Like :class:`repro.codegen.writer.SourceWriter`, but for Python:
    ``open`` takes a header already ending in ``:`` and ``close`` only
    dedents."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._depth = 0

    def line(self, text: str) -> None:
        self._lines.append("    " * self._depth + text)

    def open(self, header: str) -> None:
        if not header.rstrip().endswith(":"):
            raise ValueError(f"block header must end with ':', got {header!r}")
        self.line(header)
        self._depth += 1

    def close(self) -> None:
        if self._depth <= 0:
            raise ValueError("unbalanced close()")
        # guard against syntactically empty suites before dedenting
        if self._lines and self._lines[-1].rstrip().endswith(":"):
            self.line("pass")
        self._depth -= 1

    def text(self) -> str:
        if self._depth != 0:
            raise ValueError(f"unbalanced writer: depth={self._depth}")
        return "\n".join(self._lines) + "\n"
