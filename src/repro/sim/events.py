"""Per-symbol time profile, the substrate for Fig. 6/7-style listings.

The simulated runtime charges virtual cycles to runtime symbol names
(``__kmp_wait_template``, ``do_wait``, ...) exactly where the mechanisms
fire; :mod:`repro.analysis.profiles` renders them like ``perf report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class ProfileRecorder:
    """Flat self-time per (shared object, symbol)."""

    binary_name: str = "_test"
    samples: dict[tuple[str, str], float] = field(default_factory=dict)

    def charge(self, shared_object: str, symbol: str, cycles: float) -> None:
        if cycles <= 0:
            return
        key = (shared_object, symbol)
        self.samples[key] = self.samples.get(key, 0.0) + cycles

    def total(self) -> float:
        return sum(self.samples.values())

    def rows(self) -> list[tuple[float, str, str]]:
        """(overhead fraction, shared object, symbol), descending."""
        tot = self.total()
        if tot <= 0:
            return []
        return sorted(((cy / tot, so, sym)
                       for (so, sym), cy in self.samples.items()),
                      reverse=True)

    def merge(self, other: "ProfileRecorder") -> None:
        for (so, sym), cy in other.samples.items():
            self.charge(so, sym, cy)
