"""Per-symbol time profile, the substrate for Fig. 6/7-style listings.

The simulated runtime charges virtual cycles to runtime symbol names
(``__kmp_wait_template``, ``do_wait``, ...) exactly where the mechanisms
fire; :mod:`repro.analysis.profiles` renders them like ``perf report``.

Charges accumulate into Shewchuk-style exact partial sums rather than a
running float: every charge is representable exactly, so merging two
recorders — or many, in any order or grouping — yields bit-identical
totals.  That associativity is what lets the fleet aggregate per-unit
profiles worker-by-worker without the merge order leaking into reports
(and is the contract the span aggregator in :mod:`repro.obs` relies on).
"""

from __future__ import annotations

import math


def _accumulate(partials: list[float], x: float) -> None:
    """Fold ``x`` into a list of exact non-overlapping partials in place.

    The classic Shewchuk two-sum cascade (same algorithm as
    ``math.fsum``): after the call, ``sum(partials)`` in exact
    arithmetic equals the old exact sum plus ``x``.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class ProfileRecorder:
    """Flat self-time per (shared object, symbol)."""

    __slots__ = ("binary_name", "_partials")

    def __init__(self, binary_name: str = "_test"):
        self.binary_name = binary_name
        self._partials: dict[tuple[str, str], list[float]] = {}

    def __repr__(self) -> str:
        return (f"ProfileRecorder(binary_name={self.binary_name!r}, "
                f"samples={self.samples!r})")

    def charge(self, shared_object: str, symbol: str, cycles: float) -> None:
        if cycles <= 0:
            return
        _accumulate(self._partials.setdefault((shared_object, symbol), []),
                    cycles)

    @property
    def samples(self) -> dict[tuple[str, str], float]:
        """Correctly-rounded per-symbol totals (a fresh plain dict)."""
        return {key: math.fsum(parts)
                for key, parts in self._partials.items()}

    def total(self) -> float:
        return math.fsum(cy for parts in self._partials.values()
                         for cy in parts)

    def rows(self) -> list[tuple[float, str, str]]:
        """(overhead fraction, shared object, symbol), descending."""
        tot = self.total()
        if tot <= 0:
            return []
        return sorted(((cy / tot, so, sym)
                       for (so, sym), cy in self.samples.items()),
                      reverse=True)

    def merge(self, other: "ProfileRecorder") -> None:
        """Fold ``other`` in exactly: partials concatenate, so any merge
        tree over the same recorders reads back identical samples."""
        for key, parts in other._partials.items():
            mine = self._partials.setdefault(key, [])
            for cy in parts:
                _accumulate(mine, cy)

    # __slots__ without __dict__: make pickling explicit so profiles
    # survive the fleet's process pools.
    def __getstate__(self):
        return (self.binary_name, self._partials)

    def __setstate__(self, state) -> None:
        self.binary_name, self._partials = state
