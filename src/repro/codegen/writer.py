"""Small indented-source writer used by the C++ emitter."""

from __future__ import annotations


class SourceWriter:
    """Accumulates source lines with block indentation."""

    def __init__(self, indent_unit: str = "  "):
        self._lines: list[str] = []
        self._depth = 0
        self._indent_unit = indent_unit

    def line(self, text: str = "") -> None:
        if text:
            self._lines.append(self._indent_unit * self._depth + text)
        else:
            self._lines.append("")

    def raw(self, text: str) -> None:
        """Append a line without indentation (e.g. preprocessor directives)."""
        self._lines.append(text)

    def pragma(self, directive: str, *clauses: str) -> None:
        """Emit ``#pragma <directive> <clauses...>`` at block indentation.

        OpenMP pragmas attach to the following statement, so unlike
        classic preprocessor directives they read best indented with the
        code they govern; empty clause strings are skipped, letting
        callers pass optional clauses unconditionally.
        """
        parts = [f"#pragma {directive}"]
        parts.extend(c for c in clauses if c)
        self.line(" ".join(parts))

    def open(self, header: str) -> None:
        """Emit ``header {`` (or a bare ``{``) and indent."""
        self.line(f"{header} {{" if header else "{")
        self._depth += 1

    def close(self, suffix: str = "") -> None:
        """Dedent and emit ``}``."""
        if self._depth <= 0:
            raise ValueError("unbalanced close()")
        self._depth -= 1
        self.line("}" + suffix)

    @property
    def depth(self) -> int:
        return self._depth

    def text(self) -> str:
        if self._depth != 0:
            raise ValueError(f"unbalanced writer: depth={self._depth}")
        return "\n".join(self._lines) + "\n"
