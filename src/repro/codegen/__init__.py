"""C++ source emission for generated OpenMP test programs."""

from .cpp import CppEmitter, fp_literal
from .emit_main import emit_translation_unit, source_fingerprint
from .writer import SourceWriter

__all__ = [
    "CppEmitter",
    "SourceWriter",
    "emit_translation_unit",
    "fp_literal",
    "source_fingerprint",
]
