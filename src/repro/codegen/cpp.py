"""C++ emission of generated programs (kernel side).

Emits the ``compute`` kernel exactly in the paper's shape (Listings 1/2,
Fig. 4): OpenMP pragmas, chrono microsecond timers at kernel entry/exit
(Section III-H), and the final ``printf`` of ``comp`` (Section III-B).

Precision discipline
--------------------
The printed expression text must parse back (under C precedence) to the
same evaluation tree the interpreter executes, otherwise the native and
simulated backends would round differently:

* binary operands are parenthesized precedence-aware, including the
  right operand of same-precedence ``-``/``/`` chains (FP arithmetic is
  not associative);
* loop variables and other ``int`` identifiers used as arithmetic *terms*
  are explicitly cast to the program's fp type, so no integer arithmetic
  (with C's truncating division) ever occurs inside expressions — ints
  appear bare only in index/bound positions;
* ``float`` programs suffix literals with ``f`` and call ``sinf``-style
  math functions, so every intermediate stays binary32, matching the
  interpreter's per-operation rounding.
"""

from __future__ import annotations

from ..core.nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Block,
    BoolExpr,
    DeclAssign,
    Expr,
    ForLoop,
    FPNumeral,
    IfBlock,
    IntNumeral,
    MathCall,
    ModIdx,
    OmpAtomic,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSections,
    OmpSingle,
    OmpTask,
    OmpTaskwait,
    Paren,
    Program,
    ThreadIdx,
    UnaryOp,
    VarRef,
)
from ..core.types import BinOpKind, FPType, OmpClauses
from .writer import SourceWriter

_PREC = {BinOpKind.ADD: 1, BinOpKind.SUB: 1, BinOpKind.MUL: 2, BinOpKind.DIV: 2}
#: operators whose right operand must keep explicit grouping at equal
#: precedence: a - (b + c) != a - b + c, a / (b * c) != a / b * c
_RIGHT_STRICT = {BinOpKind.SUB, BinOpKind.ADD, BinOpKind.MUL, BinOpKind.DIV}


def fp_literal(value: float, fp_type: FPType) -> str:
    """Emit a C++ literal for ``value`` in the given precision."""
    if value != value:  # NaN never appears in generated literals
        raise ValueError("cannot emit NaN literal")
    text = repr(float(value))
    if text in ("inf", "-inf"):
        raise ValueError("cannot emit infinite literal")
    # ensure the token is lexically a floating literal, not an integer
    if "e" not in text and "." not in text:
        text += ".0"
    return text + ("f" if fp_type is FPType.FLOAT else "")


class CppEmitter:
    """Emits the kernel (``compute``) of one program."""

    def __init__(self, program: Program):
        self.program = program
        self.fp = program.fp_type

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def expr(self, e: Expr) -> str:
        if isinstance(e, FPNumeral):
            return fp_literal(e.value, self.fp)
        if isinstance(e, IntNumeral):
            return str(e.value)
        if isinstance(e, VarRef):
            if e.var.is_int:
                # int identifier in an arithmetic term: force fp semantics
                return f"({self.fp.cpp_name}){e.var.name}"
            return e.var.name
        if isinstance(e, ArrayRef):
            return f"{e.var.name}[{self.index(e.index)}]"
        if isinstance(e, ThreadIdx):
            return "omp_get_thread_num()"
        if isinstance(e, UnaryOp):
            inner = self.expr(e.operand)
            if isinstance(e.operand, (BinOp, UnaryOp)) or inner.startswith(("-", "+")):
                inner = f"({inner})"
            return f"{e.op}{inner}"
        if isinstance(e, Paren):
            return f"({self.expr(e.inner)})"
        if isinstance(e, BinOp):
            return self._binop(e)
        if isinstance(e, MathCall):
            fname = e.func + ("f" if self.fp is FPType.FLOAT else "")
            return f"{fname}({self.expr(e.arg)})"
        raise TypeError(f"cannot emit expression {type(e).__name__}")

    def _binop(self, e: BinOp) -> str:
        prec = _PREC[e.op]
        lhs = self.expr(e.lhs)
        if isinstance(e.lhs, BinOp) and _PREC[e.lhs.op] < prec:
            lhs = f"({lhs})"
        rhs = self.expr(e.rhs)
        if isinstance(e.rhs, BinOp):
            rp = _PREC[e.rhs.op]
            if rp < prec or (rp == prec and e.op in _RIGHT_STRICT):
                rhs = f"({rhs})"
        elif isinstance(e.rhs, UnaryOp):
            rhs = f"({rhs})"  # avoid 'a - -1.0' mis-lexing as decrement
        return f"{lhs} {e.op.value} {rhs}"

    def index(self, idx) -> str:
        if isinstance(idx, IntNumeral):
            return str(idx.value)
        if isinstance(idx, VarRef):
            return idx.var.name
        if isinstance(idx, ThreadIdx):
            return "omp_get_thread_num()"
        if isinstance(idx, ModIdx):
            return f"{self.index(idx.base)} % {idx.modulus}"
        raise TypeError(f"cannot emit index {type(idx).__name__}")

    def bool_expr(self, b: BoolExpr) -> str:
        lhs = (b.lhs.var.name if isinstance(b.lhs, VarRef)
               else f"{b.lhs.var.name}[{self.index(b.lhs.index)}]")
        return f"{lhs} {b.op.value} {self.expr(b.rhs)}"

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _clauses_text(self, clauses: OmpClauses, *,
                      with_private: bool = True) -> list[str]:
        parts = ["default(shared)"]
        if with_private and clauses.private:
            parts.append(f"private({', '.join(v.name for v in clauses.private)})")
        if clauses.firstprivate:
            parts.append(
                f"firstprivate({', '.join(v.name for v in clauses.firstprivate)})")
        if clauses.reduction is not None:
            parts.append(f"reduction({clauses.reduction.value} : comp)")
        parts.append(f"num_threads({clauses.num_threads})")
        return parts

    @staticmethod
    def _loop_clauses(loop: ForLoop) -> list[str]:
        """``schedule``/``collapse`` clause text of a worksharing loop."""
        parts: list[str] = []
        if loop.schedule is not None:
            if loop.schedule_chunk:
                parts.append(
                    f"schedule({loop.schedule.value}, {loop.schedule_chunk})")
            else:
                parts.append(f"schedule({loop.schedule.value})")
        if loop.collapse > 1:
            parts.append(f"collapse({loop.collapse})")
        return parts

    def _assignment_text(self, s: Assignment) -> str:
        target = (s.target.var.name if isinstance(s.target, VarRef)
                  else f"{s.target.var.name}[{self.index(s.target.index)}]")
        return f"{target} {s.op.value} {self.expr(s.expr)};"

    def _emit_for(self, s: ForLoop, w: SourceWriter, *,
                  suppress_pragma: bool = False) -> None:
        if s.omp_for and not suppress_pragma:
            w.pragma("omp for", *self._loop_clauses(s))
        bound = (str(s.bound.value) if isinstance(s.bound, IntNumeral)
                 else s.bound.var.name)
        lv = s.loop_var.name
        w.open(f"for (int {lv} = 0; {lv} < {bound}; ++{lv})")
        self.block(s.body, w)
        w.close()

    def stmt(self, s, w: SourceWriter) -> None:
        if isinstance(s, Assignment):
            w.line(self._assignment_text(s))
            return
        if isinstance(s, DeclAssign):
            w.line(f"{self.fp.cpp_name} {s.var.name} = {self.expr(s.expr)};")
            return
        if isinstance(s, IfBlock):
            w.open(f"if ({self.bool_expr(s.cond)})")
            self.block(s.body, w)
            w.close()
            return
        if isinstance(s, ForLoop):
            self._emit_for(s, w)
            return
        if isinstance(s, OmpCritical):
            w.pragma("omp critical")
            w.open("")
            self.block(s.body, w)
            w.close()
            return
        if isinstance(s, OmpAtomic):
            w.pragma("omp atomic")
            w.line(self._assignment_text(s.update))
            return
        if isinstance(s, OmpSingle):
            w.pragma("omp single")
            w.open("")
            self.block(s.body, w)
            w.close()
            return
        if isinstance(s, OmpBarrier):
            w.pragma("omp barrier")
            return
        if isinstance(s, OmpSections):
            w.pragma("omp sections")
            w.open("")
            for sec in s.sections:
                w.pragma("omp section")
                w.open("")
                self.block(sec.body, w)
                w.close()
            w.close()
            return
        if isinstance(s, OmpTask):
            # owned scalars are shared in the enclosing region and the
            # task reads nothing thread-dependent, so the implicit
            # data-sharing rules need no explicit clauses
            w.pragma("omp task")
            w.open("")
            self.block(s.body, w)
            w.close()
            return
        if isinstance(s, OmpTaskwait):
            w.pragma("omp taskwait")
            return
        if isinstance(s, OmpParallel):
            if s.combined_for:
                loop = s.body.stmts[0]
                assert isinstance(loop, ForLoop)
                w.pragma("omp parallel for",
                         *self._clauses_text(s.clauses, with_private=False),
                         *self._loop_clauses(loop))
                self._emit_for(loop, w, suppress_pragma=True)
                return
            w.pragma("omp parallel", *self._clauses_text(s.clauses))
            w.open("")
            self.block(s.body, w)
            w.close()
            return
        raise TypeError(f"cannot emit statement {type(s).__name__}")

    def block(self, b: Block, w: SourceWriter) -> None:
        for s in b.stmts:
            self.stmt(s, w)

    # ------------------------------------------------------------------
    # kernel
    # ------------------------------------------------------------------
    def signature(self) -> str:
        params = ", ".join(f"{p.cpp_decl_type()} {p.name}"
                           for p in self.program.params)
        return f"void compute({params})"

    def kernel(self, w: SourceWriter) -> None:
        """The compute kernel with entry/exit timers (Section III-H)."""
        w.open(self.signature())
        w.line("auto t_start_ = std::chrono::high_resolution_clock::now();")
        w.line()
        self.block(self.program.body, w)
        w.line()
        w.line("auto t_end_ = std::chrono::high_resolution_clock::now();")
        w.line("long long elapsed_us_ = std::chrono::duration_cast<"
               "std::chrono::microseconds>(t_end_ - t_start_).count();")
        w.line('printf("comp=%.17g\\n", (double)comp);')
        w.line('printf("time_us=%lld\\n", elapsed_us_);')
        w.close()
