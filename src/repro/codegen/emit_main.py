"""Full translation-unit emission: headers, kernel, and ``main()``.

Section III-B: "the generator produces a main() function and code to
allocate and initialize arrays (if arrays are used in the test program).
The main() function reads the program inputs and copies them to the comp
kernel function parameters before calling the kernel function."

Input contract (shared with :class:`repro.core.inputs.TestInput`): one
argv token per kernel parameter, in signature order; array parameters
receive a fill value applied to every element.
"""

from __future__ import annotations

import hashlib

from ..core.nodes import Program
from ..core.types import FPType
from .cpp import CppEmitter
from .writer import SourceWriter

_HEADERS = (
    "#include <cstdio>",
    "#include <cstdlib>",
    "#include <cmath>",
    "#include <chrono>",
    "#include <omp.h>",
)


def emit_main(program: Program, w: SourceWriter) -> None:
    """Emit ``main()``: parse argv, allocate/init arrays, call the kernel."""
    fp = program.fp_type
    parse = "strtof" if fp is FPType.FLOAT else "strtod"
    n = len(program.params)
    w.open("int main(int argc, char* argv[])")
    w.open(f"if (argc != {n + 1})")
    w.line(f'fprintf(stderr, "usage: %s <{n} kernel inputs>\\n", argv[0]);')
    w.line("return 2;")
    w.close()
    args: list[str] = []
    for i, p in enumerate(program.params, start=1):
        if p.is_int:
            w.line(f"int {p.name} = atoi(argv[{i}]);")
        elif p.is_array:
            t = fp.cpp_name
            w.line(f"{t} fill_{p.name} = {parse}(argv[{i}], 0);")
            w.line(f"{t}* {p.name} = ({t}*)malloc(sizeof({t}) * {p.array_size});")
            w.line(f"for (int i_ = 0; i_ < {p.array_size}; ++i_) "
                   f"{p.name}[i_] = fill_{p.name};")
        else:
            w.line(f"{fp.cpp_name} {p.name} = {parse}(argv[{i}], 0);")
        args.append(p.name)
    w.line(f"compute({', '.join(args)});")
    for p in program.array_params:
        w.line(f"free({p.name});")
    w.line("return 0;")
    w.close()


def emit_translation_unit(program: Program) -> str:
    """Emit the complete C++ source of a generated test program."""
    w = SourceWriter()
    w.raw(f"// {program.name} — generated OpenMP differential test")
    w.raw(f"// fp type: {program.fp_type.cpp_name}; "
          f"num_threads: {program.num_threads}")
    for h in _HEADERS:
        w.raw(h)
    w.line()
    CppEmitter(program).kernel(w)
    w.line()
    emit_main(program, w)
    return w.text()


def source_fingerprint(program: Program) -> str:
    """Content hash of the canonical source — the identity a *compiler*
    sees.  Deterministic vendor fault triggers key off this, mirroring how
    a real miscompilation is a function of the program text."""
    return hashlib.sha256(emit_translation_unit(program).encode()).hexdigest()
