"""Top-level random program generation — the Varity OpenMP extension.

:class:`ProgramGenerator` assembles the sub-generators (expressions, blocks,
OpenMP regions) and produces whole :class:`~repro.core.nodes.Program` trees:

* a kernel signature (``comp`` + fp scalars + arrays + int loop bounds),
* a top-level block that may contain nested serial loops, conditionals,
  and OpenMP parallel regions,
* a closing accumulation into ``comp`` so array-side work is observable in
  the single printed output (Section III-B).

Every program is generated from an explicit seed; the same
(config, seed) pair always yields a structurally identical program.
"""

from __future__ import annotations

from typing import Iterator

from ..config import GeneratorConfig
from ..errors import GenerationError
from ..rng import Rng
from .blockgen import BlockGen
from .exprgen import ExprGen
from .genctx import GenContext
from .grammar import check_conformance
from .nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Block,
    Expr,
    OmpParallel,
    Program,
    VarRef,
    walk,
)
from .ompgen import OmpGen
from .types import AssignOpKind, BinOpKind, FPType, Variable, VarKind


class ProgramGenerator:
    """Generates a reproducible stream of random OpenMP test programs."""

    def __init__(self, cfg: GeneratorConfig | None = None, seed: int = 0):
        self.cfg = cfg if cfg is not None else GeneratorConfig()
        self.seed = seed
        self._root = Rng(seed, mode=self.cfg.rng_mode)

    # ------------------------------------------------------------------
    def generate(self, index: int = 0) -> Program:
        """Generate the ``index``-th program of this generator's stream."""
        rng = self._root.child(f"program:{index}")
        return generate_program(self.cfg, rng, name=f"test_{self.seed}_{index}",
                                seed=self.seed)

    def stream(self, n: int, start: int = 0) -> Iterator[Program]:
        """Yield ``n`` programs starting at stream position ``start``."""
        for i in range(start, start + n):
            yield self.generate(i)


def _make_signature(ctx: GenContext, rng: Rng) -> None:
    """Create the kernel parameter list: comp first (Section III-B), then
    fp scalars, arrays, and int loop-bound parameters."""
    cfg = ctx.cfg
    comp = Variable("comp", ctx.fp_type, VarKind.COMP)
    ctx.comp = comp
    ctx.params.append(comp)
    for _ in range(rng.randint(cfg.min_fp_scalar_params, cfg.max_fp_scalar_params)):
        ctx.params.append(Variable(ctx.fresh_param_name(), ctx.fp_type,
                                   VarKind.PARAM))
    for _ in range(rng.randint(cfg.min_array_params, cfg.max_array_params)):
        ctx.params.append(Variable(ctx.fresh_param_name(), ctx.fp_type,
                                   VarKind.PARAM, is_array=True,
                                   array_size=cfg.array_size))
    for _ in range(rng.randint(cfg.min_int_params, cfg.max_int_params)):
        ctx.params.append(Variable(ctx.fresh_param_name(), None, VarKind.PARAM))


def _closing_accumulation(ctx: GenContext, exprs: ExprGen) -> Assignment:
    """``comp += <arrays and scalars>`` — ties array-side work into the
    printed output so parallel-region stores are not dead."""
    rng = ctx.rng
    terms: list[Expr] = []
    for arr in ctx.array_params[:2]:
        terms.append(ArrayRef(arr, exprs.small_int(arr.array_size)))
    if ctx.fp_scalar_params:
        terms.append(VarRef(rng.choice(ctx.fp_scalar_params)))
    if not terms:
        terms.append(exprs.fp_numeral())
    expr: Expr = terms[0]
    for t in terms[1:]:
        expr = BinOp(BinOpKind.ADD, expr, t)
    assert ctx.comp is not None
    return Assignment(VarRef(ctx.comp), AssignOpKind.ADD_ASSIGN, expr)


def generate_program(cfg: GeneratorConfig, rng: Rng, *, name: str,
                     seed: int) -> Program:
    """Generate one program under ``cfg`` from the given random stream.

    The result is guaranteed to conform to the grammar (Listing 2); with
    ``allow_data_races=False`` it additionally satisfies the Section III-G
    race-avoidance rules (validated separately by :mod:`repro.core.races`).
    """
    fp_type = (FPType.DOUBLE if rng.coin(cfg.fp_double_probability)
               else FPType.FLOAT)
    ctx = GenContext(cfg, rng, fp_type)
    _make_signature(ctx, rng)

    exprs = ExprGen(ctx)
    blocks = BlockGen(ctx, exprs)
    ompg = OmpGen(ctx, exprs, blocks)
    blocks.omp_factory = ompg.parallel_region

    body = blocks.block(allow_omp=True)
    if body is None:
        raise GenerationError(f"{name}: could not generate a top-level block")

    # Most tests should exercise OpenMP; if the random walk produced a
    # purely serial program, append a region when the budget still allows.
    if not any(isinstance(n, OmpParallel) for n in walk(body)):
        region = ompg.parallel_region()
        if region is not None:
            body.stmts.append(region)

    body.stmts.append(_closing_accumulation(ctx, exprs))

    program = Program(
        name=name,
        seed=seed,
        fp_type=fp_type,
        comp=ctx.comp,  # type: ignore[arg-type]
        params=ctx.params,
        body=body,
        num_threads=cfg.num_threads,
    )
    check_conformance(program)
    return program
