"""Static feature extraction over generated programs.

Features serve three consumers:

* the **vendor models** — cost and fault triggers key off structural
  features (e.g. "a parallel region inside a serial loop" drives the
  Clang slow-outlier mechanism of Case Study 2),
* the **campaign reports** — feature frequencies describe what the fuzzer
  actually explored,
* the **tests** — property tests assert generation limits are respected.

All estimates are *worst-case static* numbers: loop bounds that come from
int parameters are assumed to take the configured maximum trip count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .nodes import (
    Assignment,
    BinOp,
    Block,
    BoolExpr,
    DeclAssign,
    ForLoop,
    IfBlock,
    IntNumeral,
    MathCall,
    OmpAtomic,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSections,
    OmpSingle,
    OmpTask,
    OmpTaskwait,
    Program,
    Stmt,
    walk,
)


@dataclass
class ProgramFeatures:
    """Structural summary of one generated program."""

    # --- directive counts ---
    n_parallel_regions: int = 0
    n_omp_for: int = 0
    n_critical: int = 0
    n_reductions: int = 0
    # --- directive-diversity counts ---
    n_parallel_for: int = 0       # combined `omp parallel for` regions
    n_atomic: int = 0             # `omp atomic` updates
    n_single: int = 0             # `omp single` blocks
    n_barrier: int = 0            # explicit `omp barrier`s
    n_collapse: int = 0           # collapse(2) worksharing loops
    n_scheduled: int = 0          # explicit schedule(...) clauses
    n_minmax_reductions: int = 0  # reduction(min|max : comp) clauses
    # --- worksharing-graph counts (sections / tasks) ---
    n_sections: int = 0           # `omp sections` constructs
    n_section_arms: int = 0       # `omp section` arms across constructs
    n_tasks: int = 0              # explicit `omp task` directives
    n_taskwait: int = 0           # `omp taskwait` join points
    #: dynamic/guided schedules: a real runtime assigns their iterations
    #: nondeterministically, so tid-indexed stores and FP accumulation
    #: orders vary run-to-run even in race-free programs
    n_nondet_schedules: int = 0

    # --- the patterns the paper's case studies hinge on ---
    #: parallel regions whose enclosing chain includes a serial loop;
    #: the region is re-entered on every iteration (Case Study 2 / Listing 1)
    parallel_in_serial_loop: int = 0
    #: critical sections nested inside an ``omp for`` loop (Case Studies 1, 3)
    critical_in_omp_for: int = 0
    #: estimated number of parallel-region entries at run time
    est_region_entries: int = 0
    #: estimated critical-section acquisitions across all threads
    est_critical_acquires: int = 0

    # --- general structure ---
    n_loops: int = 0
    n_if_blocks: int = 0
    n_assignments: int = 0
    n_math_calls: int = 0
    n_binops: int = 0
    max_loop_depth: int = 0
    est_total_iters: int = 0
    writes_tid_arrays: bool = False
    uses_double: bool = True

    def as_dict(self) -> dict[str, int | bool]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def fingerprint(self) -> str:
        """Stable textual digest used by deterministic fault triggers."""
        return ";".join(f"{k}={v}" for k, v in sorted(self.as_dict().items()))


def _bound_of(loop: ForLoop, param_bound_guess: int) -> int:
    if isinstance(loop.bound, IntNumeral):
        return max(0, loop.bound.value)
    return param_bound_guess


def extract_features(program: Program, *, param_bound_guess: int = 400,
                     num_threads: int | None = None) -> ProgramFeatures:
    """Compute :class:`ProgramFeatures` for ``program``.

    ``param_bound_guess`` substitutes for loop bounds supplied by int
    parameters; ``num_threads`` defaults to the program's own setting and
    scales the critical-acquisition estimate for ``omp for`` loops (each
    thread acquires for its share of iterations; a critical in a *serial*
    loop inside a region is acquired by every thread for every iteration).
    """
    feats = ProgramFeatures(uses_double=program.fp_type.name == "DOUBLE")
    threads = num_threads if num_threads is not None else program.num_threads

    def visit_stmt(s: Stmt, *, iters: int, depth: int, in_region: bool,
                   in_omp_for: bool, serial_loop_above: bool) -> None:
        if isinstance(s, (Assignment, DeclAssign)):
            feats.n_assignments += 1
            return
        if isinstance(s, IfBlock):
            feats.n_if_blocks += 1
            visit_block(s.body, iters=iters, depth=depth, in_region=in_region,
                        in_omp_for=in_omp_for,
                        serial_loop_above=serial_loop_above)
            return
        if isinstance(s, ForLoop):
            feats.n_loops += 1
            if s.omp_for:
                feats.n_omp_for += 1
                if s.collapse > 1:
                    feats.n_collapse += 1
                if s.schedule is not None:
                    feats.n_scheduled += 1
                    if not s.schedule.deterministic_native:
                        feats.n_nondet_schedules += 1
            bound = _bound_of(s, param_bound_guess)
            new_depth = depth + 1
            feats.max_loop_depth = max(feats.max_loop_depth, new_depth)
            visit_block(s.body, iters=iters * max(1, bound), depth=new_depth,
                        in_region=in_region,
                        in_omp_for=in_omp_for or s.omp_for,
                        serial_loop_above=serial_loop_above or not s.omp_for)
            return
        if isinstance(s, OmpCritical):
            feats.n_critical += 1
            if in_omp_for:
                feats.critical_in_omp_for += 1
                # iterations are split across the team: total acquisitions
                # equal the loop's total trip count
                feats.est_critical_acquires += iters
            else:
                # every thread executes the enclosing serial iterations
                feats.est_critical_acquires += iters * threads
            visit_block(s.body, iters=iters, depth=depth, in_region=in_region,
                        in_omp_for=in_omp_for,
                        serial_loop_above=serial_loop_above)
            return
        if isinstance(s, OmpAtomic):
            feats.n_atomic += 1
            feats.n_assignments += 1
            return
        if isinstance(s, OmpSingle):
            feats.n_single += 1
            visit_block(s.body, iters=iters, depth=depth, in_region=in_region,
                        in_omp_for=in_omp_for,
                        serial_loop_above=serial_loop_above)
            return
        if isinstance(s, OmpBarrier):
            feats.n_barrier += 1
            return
        if isinstance(s, OmpSections):
            feats.n_sections += 1
            for sec in s.sections:
                feats.n_section_arms += 1
                # an arm runs once, not once per thread or per iteration
                visit_block(sec.body, iters=1, depth=depth,
                            in_region=in_region, in_omp_for=False,
                            serial_loop_above=False)
            return
        if isinstance(s, OmpTask):
            feats.n_tasks += 1
            visit_block(s.body, iters=iters, depth=depth,
                        in_region=in_region, in_omp_for=False,
                        serial_loop_above=False)
            return
        if isinstance(s, OmpTaskwait):
            feats.n_taskwait += 1
            return
        if isinstance(s, OmpParallel):
            feats.n_parallel_regions += 1
            if s.combined_for:
                feats.n_parallel_for += 1
            if s.clauses.reduction is not None:
                feats.n_reductions += 1
                if s.clauses.reduction.is_minmax:
                    feats.n_minmax_reductions += 1
            if serial_loop_above:
                feats.parallel_in_serial_loop += 1
            feats.est_region_entries += max(1, iters)
            visit_block(s.body, iters=iters, depth=depth + 1, in_region=True,
                        in_omp_for=False, serial_loop_above=False)
            return
        raise TypeError(f"unexpected statement {type(s).__name__}")

    def visit_block(b: Block, **kw) -> None:
        for s in b.stmts:
            visit_stmt(s, **kw)

    visit_block(program.body, iters=1, depth=0, in_region=False,
                in_omp_for=False, serial_loop_above=False)

    # expression-level counts and whole-program iteration estimate
    for n in walk(program):
        if isinstance(n, BinOp):
            feats.n_binops += 1
        elif isinstance(n, MathCall):
            feats.n_math_calls += 1

    feats.est_total_iters = _est_iters(program.body, param_bound_guess)
    feats.writes_tid_arrays = _writes_tid_arrays(program)
    return feats


def _est_iters(block: Block, guess: int) -> int:
    total = 0
    for s in block.stmts:
        if isinstance(s, ForLoop):
            total += max(1, _bound_of(s, guess)) * max(1, _est_iters(s.body, guess))
        elif isinstance(s, (IfBlock, OmpCritical, OmpSingle, OmpTask)):
            total += _est_iters(s.body, guess)
        elif isinstance(s, OmpSections):
            total += sum(_est_iters(sec.body, guess) for sec in s.sections)
        elif isinstance(s, OmpParallel):
            total += _est_iters(s.body, guess)
        else:
            total += 1
    return total


def _writes_tid_arrays(program: Program) -> bool:
    from .nodes import ArrayRef, ThreadIdx  # local to avoid wide import

    for n in walk(program):
        if isinstance(n, Assignment) and isinstance(n.target, ArrayRef) \
                and isinstance(n.target.index, ThreadIdx):
            return True
    return False
