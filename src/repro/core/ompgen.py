"""OpenMP parallel-region generation (Sections III-E/F/G + diversity).

Builds ``<openmp-block>`` subtrees:

* the directive head with ``default(shared)``, randomized ``private`` /
  ``firstprivate`` lists, ``num_threads``, and an optional
  ``reduction(+|*|min|max : comp)`` clause (the reduction variable is
  always ``comp`` — Section III-F),
* one or more leading assignments that initialize every private copy
  (Listing 1, line 9), optionally interleaved with ``single`` blocks and
  explicit ``barrier``\\ s at team-uniform positions,
* the mandatory trailing for-loop block, usually an ``#pragma omp for``
  (optionally with ``schedule``/``collapse`` clauses), whose body may
  contain critical sections and atomic updates,
* the **combined** ``#pragma omp parallel for`` variant: one worksharing
  loop under a single directive (no leading assignments, so no
  ``private`` clause — privatized scalars become ``firstprivate``),
* the race-avoidance bookkeeping: which arrays may be written (only at
  ``omp_get_thread_num()``), and which shared scalars become
  critical-only, atomic-only, or single-only.
"""

from __future__ import annotations

from .blockgen import BlockGen
from .exprgen import ExprGen
from .genctx import GenContext, RegionState
from .nodes import (
    Assignment,
    Block,
    DeclAssign,
    Expr,
    ForLoop,
    FPNumeral,
    OmpAtomic,
    OmpCritical,
    OmpParallel,
    OmpSection,
    OmpSections,
    OmpTask,
    OmpTaskwait,
    Stmt,
    VarRef,
    walk,
)
from .types import AssignOpKind, OmpClauses, ReductionOp, Sharing, Variable

#: one section arm/task kicks off its owned scalar with any assignment
#: operator (compound ops read the scalar's uniform pre-region input
#: value); harvest statements fold task results with arithmetic updates
_HARVEST_OPS = (AssignOpKind.ADD_ASSIGN, AssignOpKind.SUB_ASSIGN,
                AssignOpKind.MUL_ASSIGN)


class OmpGen:
    """Generates parallel regions for one program."""

    def __init__(self, ctx: GenContext, exprs: ExprGen, blocks: BlockGen):
        self.ctx = ctx
        self.rng = ctx.rng
        self.cfg = ctx.cfg
        self.exprs = exprs
        self.blocks = blocks

    # ------------------------------------------------------------------
    def _assign_sharing(self, region: RegionState, *,
                        combined: bool) -> None:
        """Randomly partition the kernel's variables into data-sharing
        classes (Section III-E: "Program variables are assigned to
        data-sharing clauses randomly except for the comp variable and any
        parallel loop-binding variable").

        A combined ``parallel for`` has no leading assignments to
        initialize private copies, so its would-be privates are made
        ``firstprivate`` instead.
        """
        cfg, rng, ctx = self.cfg, self.rng, self.ctx
        for v in ctx.fp_scalar_params:
            roll = rng.random()
            if roll < cfg.private_probability and not combined:
                region.sharing[id(v)] = Sharing.PRIVATE
                region.clauses.private.append(v)
            elif roll < cfg.private_probability + cfg.firstprivate_probability:
                region.sharing[id(v)] = Sharing.FIRSTPRIVATE
                region.clauses.firstprivate.append(v)
            else:
                region.sharing[id(v)] = Sharing.SHARED
        # arrays and int loop-bound parameters stay shared (default(shared));
        # privatizing a pointer would not privatize the storage anyway
        for v in ctx.array_params + ctx.int_params:
            region.sharing[id(v)] = Sharing.SHARED
        comp = ctx.comp
        assert comp is not None
        region.sharing[id(comp)] = (
            Sharing.REDUCTION if region.reduction is not None else Sharing.SHARED)

    def _choose_reduction(self) -> ReductionOp | None:
        cfg, rng = self.cfg, self.rng
        if not rng.coin(cfg.reduction_probability):
            return None
        ops = [ReductionOp.SUM, ReductionOp.PROD]
        if cfg.enable_minmax_reduction:
            ops += [ReductionOp.MIN, ReductionOp.MAX]
        return rng.choice(ops)

    def _plan_protection(self, region: RegionState, *,
                         plan_critical: bool, plan_atomic: bool,
                         plan_single: bool) -> None:
        """Partition comp and the shared scalars into protection classes.

        Every scalar lands in at most one class: critical-only,
        atomic-only, or single-only (the classes pairwise race against
        each other, so mixing protections on one variable is never safe).

        RNG discipline: with the diversity families disabled (the "paper"
        mix) this draws exactly the seed generator's sequence, so paper-mix
        streams are byte-identical to the original reproduction's.
        """
        ctx, rng = self.ctx, self.rng
        comp = ctx.comp
        assert comp is not None

        def shared_pool() -> list[Variable]:
            return [v for v in ctx.fp_scalar_params
                    if region.sharing_of(v) is Sharing.SHARED
                    and id(v) not in region.critical_scalars
                    and id(v) not in region.atomic_scalars
                    and id(v) not in region.single_scalars]

        if plan_critical:
            if region.reduction is None:
                region.critical_scalars.add(id(comp))
            # occasionally a plain shared scalar becomes critical-only too
            pool = shared_pool()
            if pool and rng.coin(0.4):
                region.critical_scalars.add(id(rng.choice(pool)))
        if plan_atomic:
            if region.reduction is None and not plan_critical:
                region.atomic_scalars.add(id(comp))
            pool = shared_pool()
            if pool and rng.coin(0.5):
                region.atomic_scalars.add(id(rng.choice(pool)))
        if plan_single:
            pool = shared_pool()
            if pool:
                region.single_scalars.add(id(rng.choice(pool)))

    def _init_expr_for_private(self, region: RegionState,
                               inited: list[Variable]) -> Expr:
        """An initializer legal *at region start*: only firstprivate vars,
        safely-readable shared scalars, already-initialized privates, or a
        numeral may appear."""
        rng, ctx = self.rng, self.ctx
        pool: list[Variable] = list(region.clauses.firstprivate)
        pool += [v for v in ctx.fp_scalar_params
                 if region.sharing_of(v) is Sharing.SHARED
                 and id(v) not in region.critical_scalars
                 and id(v) not in region.atomic_scalars
                 and id(v) not in region.single_scalars
                 and id(v) not in region.owned_scalars]
        pool += inited
        if pool and rng.coin(0.5):
            return VarRef(rng.choice(pool))
        return FPNumeral(float(rng.randint(0, 3)))

    # ------------------------------------------------------------------
    def parallel_region(self) -> OmpParallel | None:
        """Generate one ``<openmp-block>`` (plain or combined parallel
        for), or None if no loop fits the remaining iteration budget (the
        grammar requires a trailing loop)."""
        ctx, cfg, rng = self.ctx, self.cfg, self.rng
        assert ctx.region is None, "nested parallel regions are not generated"
        if ctx.loop_bound_headroom() < cfg.loop_trip_min:
            return None
        # an OpenMP block consumes two nesting levels: the region itself and
        # its mandatory trailing for-loop (Fig. 2 counts both)
        if ctx.depth + 2 > cfg.max_nesting_levels:
            return None

        combined = (cfg.enable_parallel_for
                    and rng.coin(cfg.parallel_for_probability))
        reduction = self._choose_reduction()
        clauses = OmpClauses(num_threads=cfg.num_threads, reduction=reduction)
        region = RegionState(clauses=clauses, reduction=reduction)
        self._assign_sharing(region, combined=combined)

        plan_critical = rng.coin(cfg.critical_probability)
        plan_atomic = cfg.enable_atomic and rng.coin(cfg.atomic_probability)
        plan_single = (not combined and cfg.enable_single
                       and rng.coin(cfg.single_probability))
        self._plan_protection(region, plan_critical=plan_critical,
                              plan_atomic=plan_atomic,
                              plan_single=plan_single)
        # worksharing-graph construct: reserve exclusively-owned scalars
        # now, so nothing generated later in the region can touch them
        # (RNG discipline: with enable_sections off — every loop-shaped
        # mix — no draw happens and pinned streams stay byte-identical)
        plan_sections = (not combined and cfg.enable_sections
                         and rng.coin(cfg.sections_probability))
        graph_layout = (self._plan_graph_layout(region) if plan_sections
                        else None)

        # choose which shared arrays the region writes (at [thread_id] only)
        if ctx.array_params:
            for arr in ctx.array_params:
                if rng.coin(0.5):
                    region.write_arrays.add(id(arr))
        # keep the region observable: without a reduction, a protected comp
        # update, or a written array, the region could be dead code
        if reduction is None and not plan_critical and not plan_atomic \
                and ctx.array_params and not region.write_arrays:
            region.write_arrays.add(id(rng.choice(ctx.array_params)))

        ctx.region = region
        ctx.depth += 1  # the region block itself is one nesting level (Fig. 2)
        ctx.uniform = True  # control flow is uniform until the team splits
        # every statement in the region body runs once per team member; the
        # per-thread chunking discount for omp-for loops is applied where
        # the loop bound is chosen (BlockGen.for_loop)
        ctx.iter_product *= cfg.num_threads
        ctx.push_scope()
        try:
            if combined:
                return self._combined_parallel_for(clauses, plan_critical,
                                                   plan_atomic)
            return self._classic_region(clauses, region, plan_critical,
                                        plan_atomic,
                                        graph_layout=graph_layout)
        finally:
            ctx.pop_scope()
            ctx.depth -= 1
            ctx.iter_product //= cfg.num_threads
            ctx.region = None
            ctx.in_critical = False
            ctx.in_single = False
            ctx.uniform = False
            ctx.owner = None
            ctx.owner_temps = set()

    # ------------------------------------------------------------------
    def _classic_region(self, clauses: OmpClauses, region: RegionState,
                        plan_critical: bool, plan_atomic: bool, *,
                        graph_layout: list | None = None
                        ) -> OmpParallel | None:
        ctx, cfg, rng = self.ctx, self.cfg, self.rng
        lead: list[Stmt] = []
        inited: list[Variable] = []
        for v in clauses.private:
            lead.append(Assignment(VarRef(v), AssignOpKind.ASSIGN,
                                   self._init_expr_for_private(region, inited)))
            inited.append(v)
        # a few extra leading assignments, as the grammar's
        # {<assignment>}+ allows (Listing 1 shows exactly this shape);
        # bounded so the region body stays within the line limit plus
        # the mandatory private initializations
        extras = min(rng.randint(0, 2),
                     max(0, cfg.max_lines_in_block - 1))
        for _ in range(extras):
            s = self.blocks.assignment()
            if isinstance(s, (Assignment, DeclAssign)):
                lead.append(s)
        if not lead:
            # grammar requires at least one leading assignment; fall
            # back to a thread-local temporary declaration (initializer
            # generated before the temp enters scope)
            init = self.exprs.expression()
            lead.append(DeclAssign(ctx.fresh_tmp(), init))
        # singles, barriers, and sections are legal at these team-uniform
        # positions
        if region.single_scalars and rng.coin(0.6):
            single = self.blocks.single()
            if single is not None:
                lead.append(single)
        if cfg.enable_barrier and rng.coin(cfg.barrier_probability):
            barrier = self.blocks.barrier()
            if barrier is not None:
                lead.append(barrier)
        if graph_layout is not None:
            lead.append(self._sections_construct(graph_layout))

        omp_for = rng.coin(cfg.omp_for_probability)
        loop = self.blocks.for_loop(omp_for=omp_for,
                                    allow_critical=plan_critical)
        if loop is None:
            return None
        self._ensure_protected_updates(loop, plan_critical, plan_atomic)
        return OmpParallel(clauses, Block([*lead, loop]))

    # ------------------------------------------------------------------
    # worksharing-graph constructs (sections / tasks)
    # ------------------------------------------------------------------
    def _plan_graph_layout(self, region: RegionState) -> list | None:
        """Reserve exclusively-owned scalars for one ``sections`` construct.

        Each section arm owns one shared scalar, and each explicit task it
        spawns owns another; ownership makes the arm/task the *only* code
        in the region touching that scalar, which is exactly what makes
        the worksharing graph's concurrency race-free (two arms never
        share state, a task's result is read only after its ``taskwait``).
        Returns ``[(arm_index, arm_scalar, [(task_index, task_scalar),
        ...]), ...]`` or None when too few unclaimed shared scalars exist.
        """
        ctx, cfg, rng = self.ctx, self.cfg, self.rng
        pool = [v for v in ctx.fp_scalar_params
                if region.sharing_of(v) is Sharing.SHARED
                and id(v) not in region.critical_scalars
                and id(v) not in region.atomic_scalars
                and id(v) not in region.single_scalars
                and id(v) not in region.owned_scalars]
        if len(pool) < 2:
            return None
        ci = region.n_graph_constructs
        region.n_graph_constructs += 1
        n_arms = min(rng.randint(2, 3), len(pool))
        layout: list = []
        for i in range(n_arms):
            if not pool:  # task reservations may have drained the pool
                break
            owner = f"s{ci}.{i}"
            svar = pool.pop(rng.randint(0, len(pool) - 1))
            region.owned_scalars[id(svar)] = owner
            tasks: list[tuple[str, Variable]] = []
            if cfg.enable_tasks and pool and rng.coin(cfg.task_probability):
                n_tasks = 2 if len(pool) > 1 and rng.coin(0.3) else 1
                for k in range(n_tasks):
                    tvar = pool.pop(rng.randint(0, len(pool) - 1))
                    towner = f"{owner}/t{k}"
                    region.owned_scalars[id(tvar)] = towner
                    tasks.append((towner, tvar))
            layout.append((owner, svar, tasks))
        return layout

    def _sections_construct(self, layout: list) -> OmpSections:
        return OmpSections([OmpSection(self._section_body(owner, svar, tasks))
                            for owner, svar, tasks in layout])

    def _enter_owner(self, owner: str) -> tuple[str | None, set[int]]:
        ctx = self.ctx
        saved = (ctx.owner, ctx.owner_temps)
        ctx.owner, ctx.owner_temps = owner, set()
        ctx.push_scope()
        return saved

    def _exit_owner(self, saved: tuple[str | None, set[int]]) -> None:
        ctx = self.ctx
        ctx.pop_scope()
        ctx.owner, ctx.owner_temps = saved

    def _section_body(self, owner: str, svar: Variable,
                      tasks: list[tuple[str, "Variable"]]) -> Block:
        """One section arm: seed the owned scalar, optionally compute via
        a node-local temporary, spawn the arm's tasks, join them with
        ``taskwait``, and harvest their results into the arm's scalar."""
        ctx, rng = self.ctx, self.rng
        saved = self._enter_owner(owner)
        try:
            stmts: list[Stmt] = [Assignment(
                VarRef(svar), rng.choice(list(AssignOpKind)),
                self.exprs.expression())]
            if rng.coin(0.35):
                # initializer first: the temp must not see itself in scope
                init = self.exprs.expression()
                stmts.append(DeclAssign(ctx.fresh_tmp(), init))
            if rng.coin(0.5):
                stmts.append(Assignment(VarRef(svar),
                                        rng.choice(list(AssignOpKind)),
                                        self.exprs.expression()))
            for towner, tvar in tasks:
                stmts.append(self._task(towner, tvar))
            if tasks:
                # join, then fold the task results into the arm's scalar:
                # the taskwait edge is what makes these reads race-free
                stmts.append(OmpTaskwait())
                for _towner, tvar in tasks:
                    stmts.append(Assignment(VarRef(svar),
                                            rng.choice(_HARVEST_OPS),
                                            VarRef(tvar)))
            return Block(stmts)
        finally:
            self._exit_owner(saved)

    def _task(self, owner: str, tvar: Variable) -> OmpTask:
        """One explicit task: computes into its owned scalar; it may read
        the spawning arm's scalar (ordered by the spawn edge — the arm
        does not write it again before the taskwait)."""
        rng = self.rng
        saved = self._enter_owner(owner)
        try:
            stmts: list[Stmt] = [Assignment(VarRef(tvar),
                                            AssignOpKind.ASSIGN,
                                            self.exprs.expression())]
            if rng.coin(0.4):
                stmts.append(Assignment(VarRef(tvar),
                                        rng.choice(_HARVEST_OPS),
                                        self.exprs.expression()))
            return OmpTask(Block(stmts))
        finally:
            self._exit_owner(saved)

    def _combined_parallel_for(self, clauses: OmpClauses, plan_critical: bool,
                               plan_atomic: bool) -> OmpParallel | None:
        loop = self.blocks.for_loop(omp_for=True,
                                    allow_critical=plan_critical)
        if loop is None:
            return None
        self._ensure_protected_updates(loop, plan_critical, plan_atomic)
        return OmpParallel(clauses, Block([loop]), combined_for=True)

    def _ensure_protected_updates(self, loop: ForLoop, plan_critical: bool,
                                  plan_atomic: bool) -> None:
        """A planned critical/atomic comp channel must actually appear —
        otherwise the region's only observable effect may be dead."""
        # a collapse(2) outer body must stay perfectly nested: extend the
        # inner loop's body instead
        target = loop.body.stmts[0].body if loop.collapse == 2 else loop.body
        assert isinstance(target, Block)
        if plan_critical and not self._has_critical(loop):
            crit = self.blocks.critical()
            if crit is not None:
                target.stmts.append(crit)
        if plan_atomic and not self._has_atomic(loop):
            atom = self.blocks.atomic()
            if atom is not None:
                target.stmts.append(atom)

    @staticmethod
    def _has_critical(loop: ForLoop) -> bool:
        return any(isinstance(n, OmpCritical) for n in walk(loop))

    @staticmethod
    def _has_atomic(loop: ForLoop) -> bool:
        return any(isinstance(n, OmpAtomic) for n in walk(loop))
