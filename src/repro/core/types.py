"""Scalar types, operators, and variable descriptors for the generated language.

The generated programs are C++ translation units restricted to the paper's
grammar (Listing 2):

* floating-point scalars and arrays of one precision per test
  (``<fp-type>`` supports ``float`` and ``double``),
* ``int`` parameters used as loop bounds,
* arithmetic operators ``{+, -, *, /}``, assignment operators
  ``{=, +=, -=, *=, /=}``, boolean operators ``{<, >, ==, !=, >=, <=}``,
* C math-library calls,
* OpenMP data-sharing attributes (shared / private / firstprivate /
  reduction) on variables referenced inside parallel regions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FPType(enum.Enum):
    """Floating-point precision of a test program (``<fp-type>``)."""

    FLOAT = "float"
    DOUBLE = "double"

    @property
    def cpp_name(self) -> str:
        return self.value

    @property
    def bits(self) -> int:
        return 32 if self is FPType.FLOAT else 64

    @property
    def suffix(self) -> str:
        """Literal suffix used when emitting C++ numerals."""
        return "f" if self is FPType.FLOAT else ""


class BinOpKind(enum.Enum):
    """Arithmetic operators allowed in ``<expression>``."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


class AssignOpKind(enum.Enum):
    """Assignment operators allowed in ``<assignment>``."""

    ASSIGN = "="
    ADD_ASSIGN = "+="
    SUB_ASSIGN = "-="
    MUL_ASSIGN = "*="
    DIV_ASSIGN = "/="

    @property
    def binop(self) -> BinOpKind | None:
        """The arithmetic operator a compound assignment applies."""
        return {
            AssignOpKind.ADD_ASSIGN: BinOpKind.ADD,
            AssignOpKind.SUB_ASSIGN: BinOpKind.SUB,
            AssignOpKind.MUL_ASSIGN: BinOpKind.MUL,
            AssignOpKind.DIV_ASSIGN: BinOpKind.DIV,
        }.get(self)


class BoolOpKind(enum.Enum):
    """Comparison operators allowed in ``<bool-expression>``."""

    LT = "<"
    GT = ">"
    EQ = "=="
    NE = "!="
    GE = ">="
    LE = "<="


class ReductionOp(enum.Enum):
    """``<reduction-op>``: the paper's {+, *} (Section III-F) plus the
    OpenMP 3.1 ``min``/``max`` operators (directive-diversity expansion)."""

    SUM = "+"
    PROD = "*"
    MIN = "min"
    MAX = "max"

    @property
    def is_minmax(self) -> bool:
        return self in (ReductionOp.MIN, ReductionOp.MAX)

    def identity(self, fp_type: "FPType") -> float:
        """The OpenMP-specified initializer of the private reduction copy.

        ``min``/``max`` initialize to the largest/smallest representable
        value of the variable's type (OpenMP 5.x Table 5.10) — *not*
        infinity — so the simulator matches what libgomp/libomp binaries
        actually compute.
        """
        if self is ReductionOp.SUM:
            return 0.0
        if self is ReductionOp.PROD:
            return 1.0
        largest = 3.4028234663852886e38 if fp_type is FPType.FLOAT \
            else 1.7976931348623157e308
        return largest if self is ReductionOp.MIN else -largest


class ScheduleKind(enum.Enum):
    """``schedule(...)`` clause kinds supported on worksharing loops."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"

    @property
    def deterministic_native(self) -> bool:
        """Does a real runtime assign iterations deterministically?

        ``static`` (with or without a chunk size) has a specified
        iteration-to-thread mapping; ``dynamic``/``guided`` hand out
        chunks first-come-first-served, so the mapping — and with it any
        tid-indexed store or FP accumulation order — varies run to run.
        """
        return self is ScheduleKind.STATIC


class Sharing(enum.Enum):
    """OpenMP data-sharing attribute of a variable in a parallel region."""

    SHARED = "shared"
    PRIVATE = "private"
    FIRSTPRIVATE = "firstprivate"
    REDUCTION = "reduction"


class VarKind(enum.Enum):
    """Where a variable lives in the generated program."""

    PARAM = "param"          # kernel parameter, value supplied by the input
    TEMP = "temp"            # temporary declared inside the kernel body
    LOOP = "loop"            # for-loop induction variable (int)
    COMP = "comp"            # the single output accumulator


#: Math functions eligible when MATH_FUNC_ALLOWED is set.  All are
#: unary, total on the reals except where IEEE defines NaN results,
#: and present both in <cmath> and in Python's math module.
MATH_FUNCS: tuple[str, ...] = (
    "sin", "cos", "tan", "exp", "log", "sqrt", "fabs", "tanh", "atan",
)


@dataclass(eq=False)
class Variable:
    """A named variable of the generated program.

    Identity (not name) equality is intentional: the generator may scope
    two distinct temporaries with the same name in disjoint blocks.
    """

    name: str
    fp_type: FPType | None   # None => int variable
    kind: VarKind
    is_array: bool = False
    array_size: int = 0
    sharing: Sharing | None = None  # set when referenced in a parallel region

    @property
    def is_int(self) -> bool:
        return self.fp_type is None

    @property
    def is_fp(self) -> bool:
        return self.fp_type is not None

    def cpp_decl_type(self) -> str:
        """The C++ type of this variable as a kernel parameter."""
        if self.is_int:
            return "int"
        assert self.fp_type is not None
        return f"{self.fp_type.cpp_name}*" if self.is_array else self.fp_type.cpp_name

    def __repr__(self) -> str:
        t = "int" if self.is_int else self.cpp_decl_type()
        return f"Variable({self.name}:{t}:{self.kind.value})"


@dataclass
class OmpClauses:
    """Clause set of an ``omp parallel`` directive (``<openmp-head>``).

    ``default(shared)`` is always emitted (grammar line 16); the variable
    lists are populated by the data-sharing assignment pass, and
    ``reduction`` is only ever over ``comp`` (Section III-F).
    """

    private: list[Variable] = field(default_factory=list)
    firstprivate: list[Variable] = field(default_factory=list)
    shared: list[Variable] = field(default_factory=list)
    reduction: ReductionOp | None = None
    num_threads: int = 32

    def all_listed(self) -> list[Variable]:
        return [*self.private, *self.firstprivate, *self.shared]
