"""The worksharing graph: a DAG of work nodes per parallel region.

The paper's Listing-2 language is *loop-shaped*: every statement of a
parallel region is executed by every team member, so the race oracle
(:mod:`repro.core.races`) can classify accesses against one uniform
context.  ``#pragma omp sections`` and ``#pragma omp task`` break that
assumption — a section arm or an explicit task executes exactly **once**,
on one unspecified thread, concurrently with its sibling arms and with
the spawning code — so race verdicts need an explicit happens-before
structure (the approach LLOV takes for these constructs) rather than
per-construct protection classes.

This module models one parallel region as a DAG of :class:`WorkNode`\\ s:

* **implicit** nodes — team-uniform code segments (executed by every
  thread; ``once=False``),
* **section** nodes — one per section arm, plus one per arm *segment*
  when task spawns / ``taskwait`` split the arm (``once=True``),
* **task** nodes — one per explicit task directive (``once=True``; legal
  only in execute-once contexts, so one directive is one instance),
* **barrier** nodes — synchronization points carrying no accesses.

Edges are exactly the orderings OpenMP guarantees for *every* pair of
executions of the connected nodes:

* program order within one execute-once node chain (section segments),
* **barrier** edges: an explicit ``barrier`` or the implicit barrier at
  the end of a ``sections`` construct orders everything before it (on
  all threads, including unjoined tasks, which barriers complete)
  before everything after it,
* **task spawn** edges: code preceding a spawn happens before the task,
* **taskwait** edges: spawned tasks happen before the code following the
  encountering task region's ``taskwait``,
* **region exit**: every node reaches the exit barrier.

No edge is drawn from an implicit segment *into* a section arm other
than through the last team-wide synchronization point: there is no
barrier on entry to a ``sections`` construct, so a lagging thread's
pre-construct code is genuinely concurrent with another thread's arm.

The race oracle then applies the graph rule: two conflicting accesses
race iff neither node reaches the other **and** no mutual-exclusion
class (critical / atomic / single) protects both.  Regions without
sections or tasks produce the degenerate one-implicit-node graph, and
:mod:`repro.core.races` keeps its seed-exact uniform-context
classification for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .nodes import (
    Assignment,
    Block,
    DeclAssign,
    ForLoop,
    IfBlock,
    OmpAtomic,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSection,
    OmpSections,
    OmpSingle,
    OmpTask,
    OmpTaskwait,
)

#: node kinds (``WorkNode.kind``)
ENTRY = "entry"
EXIT = "exit"
IMPLICIT = "implicit"
SECTION = "section"
TASK = "task"
BARRIER = "barrier"


@dataclass(frozen=True)
class WorkNode:
    """One work node of a region's worksharing graph.

    ``once`` distinguishes execute-once nodes (section segments, tasks —
    internally sequential on one thread) from team nodes (executed by
    every thread concurrently).
    """

    nid: int
    kind: str
    once: bool
    label: str = ""


@dataclass
class RegionGraph:
    """The worksharing DAG of one parallel region."""

    nodes: list[WorkNode] = field(default_factory=list)
    #: adjacency: node id -> successor node ids
    succ: dict[int, set[int]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 0
    _reach: dict[int, frozenset[int]] = field(default_factory=dict,
                                              repr=False)

    def node(self, nid: int) -> WorkNode:
        return self.nodes[nid]

    def edges(self) -> list[tuple[int, int]]:
        return sorted((u, v) for u, vs in self.succ.items() for v in vs)

    def reaches(self, a: int, b: int) -> bool:
        """True when every execution of node ``a`` happens before every
        execution of node ``b`` (a path of guaranteed orderings)."""
        if a == b:
            return False
        return b in self._reachable_from(a)

    def ordered(self, a: int, b: int) -> bool:
        """True when the two nodes are ordered either way."""
        return self.reaches(a, b) or self.reaches(b, a)

    def concurrent(self, a: int, b: int) -> bool:
        """True when some executions of the two distinct nodes may overlap."""
        return a != b and not self.ordered(a, b)

    def _reachable_from(self, a: int) -> frozenset[int]:
        hit = self._reach.get(a)
        if hit is not None:
            return hit
        seen: set[int] = set()
        stack = list(self.succ.get(a, ()))
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.extend(self.succ.get(n, ()))
        out = frozenset(seen)
        self._reach[a] = out
        return out


class GraphBuilder:
    """Incremental builder driven by a linear walk of a region body.

    Callers (the race oracle's access collector, or
    :func:`build_region_graph`) announce synchronization-relevant events
    in source order; ``current`` is the node id that accesses between
    events belong to.  The builder enforces the structural invariants the
    grammar guarantees (sections are not nested, tasks appear only inside
    section arms).
    """

    def __init__(self) -> None:
        self.g = RegionGraph()
        self._entry = self._new(ENTRY, once=False, label="entry")
        self.g.entry = self._entry
        #: last team-wide synchronization point (entry or a barrier)
        self._last_sync = self._entry
        self._cur = self._new(IMPLICIT, once=False, label="seg0")
        self._edge(self._entry, self._cur)
        self._nseg = 1
        # sections-construct state
        self._end_barrier: int | None = None
        self._sec_cur: int | None = None
        self._sec_index = -1
        self._task_ordinal = 0
        self._pending_tasks: list[int] = []

    # -- graph primitives ----------------------------------------------
    def _new(self, kind: str, *, once: bool, label: str = "") -> int:
        nid = len(self.g.nodes)
        self.g.nodes.append(WorkNode(nid, kind, once, label))
        self.g.succ[nid] = set()
        return nid

    def _edge(self, u: int, v: int) -> None:
        self.g.succ[u].add(v)

    # -- the node accesses attach to -----------------------------------
    @property
    def current(self) -> int:
        """Node id for accesses at the walk's current position."""
        return self._sec_cur if self._sec_cur is not None else self._cur

    @property
    def in_section(self) -> bool:
        return self._sec_cur is not None

    # -- synchronization events ----------------------------------------
    def barrier(self) -> int:
        """An explicit team barrier at a team-uniform position."""
        assert self._sec_cur is None, "barrier inside a section arm"
        b = self._new(BARRIER, once=False, label="barrier")
        self._edge(self._cur, b)
        self._cur = self._new(IMPLICIT, once=False,
                              label=f"seg{self._nseg}")
        self._nseg += 1
        self._edge(b, self._cur)
        self._last_sync = b
        return b

    def begin_sections(self) -> int:
        """Open a ``sections`` construct; returns its end-barrier node."""
        assert self._end_barrier is None, "sections constructs do not nest"
        self._end_barrier = self._new(BARRIER, once=False,
                                      label="sections-end")
        # the encountering team flows through the construct's end barrier
        self._edge(self._cur, self._end_barrier)
        return self._end_barrier

    def begin_section(self, index: int) -> int:
        assert self._end_barrier is not None, "section outside sections"
        assert self._sec_cur is None, "section arms do not nest"
        s = self._new(SECTION, once=True, label=f"section{index}")
        # there is no barrier on entry to a sections construct: the only
        # guaranteed predecessor of an arm is the last team-wide sync
        self._edge(self._last_sync, s)
        self._sec_cur = s
        self._sec_index = index
        self._task_ordinal = 0
        self._pending_tasks = []
        return s

    def task(self) -> int:
        """An explicit task spawned at the walk's current position;
        labelled ``task<arm>.<ordinal>`` so race reports map back to the
        source's task directives."""
        assert self._sec_cur is not None, \
            "tasks are only spawned from section arms"
        t = self._new(TASK, once=True,
                      label=f"task{self._sec_index}.{self._task_ordinal}")
        self._task_ordinal += 1
        self._edge(self._sec_cur, t)
        self._pending_tasks.append(t)
        # post-spawn arm code is a fresh segment, concurrent with the task
        nxt = self._new(SECTION, once=True,
                        label=self.g.node(self._sec_cur).label + "'")
        self._edge(self._sec_cur, nxt)
        self._sec_cur = nxt
        return t

    def taskwait(self) -> int:
        """``taskwait``: joins the arm's spawned-and-unjoined tasks."""
        assert self._sec_cur is not None, "taskwait outside a section arm"
        nxt = self._new(SECTION, once=True,
                        label=self.g.node(self._sec_cur).label + "|wait")
        self._edge(self._sec_cur, nxt)
        for t in self._pending_tasks:
            self._edge(t, nxt)
        self._pending_tasks = []
        self._sec_cur = nxt
        return nxt

    def end_section(self) -> None:
        assert self._sec_cur is not None and self._end_barrier is not None
        self._edge(self._sec_cur, self._end_barrier)
        # the construct's implicit barrier completes unjoined tasks
        for t in self._pending_tasks:
            self._edge(t, self._end_barrier)
        self._pending_tasks = []
        self._sec_cur = None

    def end_sections(self) -> None:
        assert self._end_barrier is not None and self._sec_cur is None
        self._cur = self._new(IMPLICIT, once=False,
                              label=f"seg{self._nseg}")
        self._nseg += 1
        self._edge(self._end_barrier, self._cur)
        self._last_sync = self._end_barrier
        self._end_barrier = None

    def finish(self) -> RegionGraph:
        """Close the region: everything reaches the exit barrier."""
        assert self._end_barrier is None and self._sec_cur is None
        ex = self._new(EXIT, once=False, label="exit")
        self.g.exit = ex
        for n in self.g.nodes:
            if n.nid != ex and not self.g.succ[n.nid]:
                self._edge(n.nid, ex)
        self._edge(self._cur, ex)
        return self.g


def has_graph_constructs(region: OmpParallel) -> bool:
    """Does the region contain any construct whose scheduling is
    graph-shaped (``sections`` / ``task``)?"""
    from .nodes import walk

    return any(isinstance(n, (OmpSections, OmpTask)) for n in walk(region))


def build_region_graph(region: OmpParallel) -> RegionGraph:
    """Build the worksharing graph of one parallel region.

    ``barrier`` splits the implicit timeline; ``sections`` opens arm and
    task nodes.  Serial loops and conditionals do not split segments: a
    barrier *inside* a loop re-executes per iteration, so iteration
    k+1's pre-barrier code runs after iteration k's post-barrier code —
    no global pre/post ordering exists and crediting one would claim a
    happens-before OpenMP does not guarantee; a barrier inside a
    conditional may not execute at all (and is not even team-uniform),
    so it guarantees nothing either.  Worksharing loops /
    criticals / singles stay inside the current segment — their
    uniform-context protection classes are handled by the race oracle,
    not by graph edges.
    """
    b = GraphBuilder()
    drive_region_events(region.body, b)
    return b.finish()


def drive_region_events(block: Block, b: GraphBuilder, on_leaf=None, *,
                        _crit: bool = False, _single: bool = False,
                        _node: int | None = None,
                        _loop_depth: int = 0,
                        _cond_depth: int = 0) -> None:
    """The one walk that turns a region body into builder events.

    Both :func:`build_region_graph` and the race oracle's access
    collector drive the same traversal, so the public graph and the
    oracle's graph can never disagree on synchronization semantics.

    ``on_leaf(stmt, node_id, in_critical, in_single)`` is invoked for
    every access-bearing statement (assignments, declarations, atomics,
    plus if-conditions and loop bounds via their owning statement);
    ``node_id`` is the work node the statement's accesses belong to —
    the builder's moving current node, or the task node for task bodies.
    """
    for s in block.stmts:
        nid = _node if _node is not None else b.current
        if isinstance(s, (Assignment, DeclAssign, OmpAtomic)):
            if on_leaf is not None:
                on_leaf(s, nid, _crit, _single)
        elif isinstance(s, IfBlock):
            if on_leaf is not None:
                on_leaf(s, nid, _crit, _single)  # condition reads
            drive_region_events(s.body, b, on_leaf, _crit=_crit,
                                _single=_single, _node=_node,
                                _loop_depth=_loop_depth,
                                _cond_depth=_cond_depth + 1)
        elif isinstance(s, ForLoop):
            if on_leaf is not None:
                on_leaf(s, nid, _crit, _single)  # bound read, loop var
            drive_region_events(s.body, b, on_leaf, _crit=_crit,
                                _single=_single, _node=_node,
                                _loop_depth=_loop_depth + 1,
                                _cond_depth=_cond_depth)
        elif isinstance(s, OmpCritical):
            drive_region_events(s.body, b, on_leaf, _crit=True,
                                _single=_single, _node=_node,
                                _loop_depth=_loop_depth,
                                _cond_depth=_cond_depth)
        elif isinstance(s, OmpSingle):
            drive_region_events(s.body, b, on_leaf, _crit=_crit,
                                _single=True, _node=_node,
                                _loop_depth=_loop_depth,
                                _cond_depth=_cond_depth)
        elif isinstance(s, OmpBarrier):
            # only loop-free, unconditional, team-level barriers split
            # the timeline: a barrier in a loop re-executes per
            # iteration, and a conditionally-executed barrier is not a
            # team-wide guarantee (see build_region_graph's docstring)
            if _node is None and _loop_depth == 0 and _cond_depth == 0 \
                    and not b.in_section:
                b.barrier()
        elif isinstance(s, OmpSections):
            b.begin_sections()
            for i, sec in enumerate(s.sections):
                assert isinstance(sec, OmpSection)
                b.begin_section(i)
                # arm accesses follow b.current through spawns/taskwaits
                drive_region_events(sec.body, b, on_leaf, _crit=_crit,
                                    _single=_single, _node=None,
                                    _loop_depth=0)
                b.end_section()
            b.end_sections()
        elif isinstance(s, OmpTask):
            tnode = b.task()
            drive_region_events(s.body, b, on_leaf, _crit=_crit,
                                _single=_single, _node=tnode,
                                _loop_depth=0)
        elif isinstance(s, OmpTaskwait):
            b.taskwait()
        else:  # pragma: no cover - grammar forbids nested parallel
            raise TypeError(f"unexpected node {type(s).__name__}")
