"""Core of the paper's contribution: random OpenMP program generation.

Public surface:

* :class:`~repro.core.generator.ProgramGenerator` — reproducible stream of
  random OpenMP test programs (the Varity extension of Section III),
* :class:`~repro.core.inputs.InputGenerator` — the five-category
  floating-point input generator (Section III-D),
* :func:`~repro.core.grammar.check_conformance` — validates programs
  against the paper's grammar (Listing 2),
* :func:`~repro.core.races.find_races` — the static stand-in for the
  paper's manual data-race filtering,
* :func:`~repro.core.taskgraph.build_region_graph` — the worksharing
  graph (DAG of work nodes) underlying race verdicts for the
  ``sections``/``task`` families,
* :func:`~repro.core.features.extract_features` — structural features
  consumed by vendor models and campaign reports.
"""

from .features import ProgramFeatures, extract_features
from .generator import ProgramGenerator, generate_program
from .grammar import GRAMMAR, check_conformance, conforms
from .inputs import (
    CATEGORY_WEIGHTS,
    FPCategory,
    InputGenerator,
    LIMITS,
    TestInput,
    classify,
    sample_category,
)
from .nodes import Program, walk
from .races import RaceReport, find_races, is_race_free
from .taskgraph import RegionGraph, WorkNode, build_region_graph
from .types import FPType, ReductionOp, ScheduleKind, Sharing, Variable

__all__ = [
    "CATEGORY_WEIGHTS",
    "FPCategory",
    "FPType",
    "GRAMMAR",
    "InputGenerator",
    "LIMITS",
    "Program",
    "ScheduleKind",
    "ProgramFeatures",
    "ProgramGenerator",
    "RaceReport",
    "ReductionOp",
    "RegionGraph",
    "Sharing",
    "TestInput",
    "Variable",
    "WorkNode",
    "build_region_graph",
    "check_conformance",
    "classify",
    "conforms",
    "extract_features",
    "find_races",
    "generate_program",
    "is_race_free",
    "sample_category",
    "walk",
]
