"""AST surgery: clone and site-addressed mutation of generated programs.

The test-case reducer (:mod:`repro.reduce`) never edits raw C++ text —
every candidate is a *typed* AST produced by cloning the current best
program and applying one structural edit, then revalidated through the
same gates the generator output passes (grammar conformance, the race
oracle, the differential harness).  This module provides the low-level
machinery that makes those edits safe and deterministic:

* :func:`clone_program` / :func:`clone_node` — structural deep copies
  that *share* :class:`~repro.core.types.Variable` objects.  Variables
  compare by identity (the generator scopes same-named temporaries), so
  a naive ``copy.deepcopy`` would silently sever the clause lists from
  the references they describe; sharing keeps ``private(x)`` pointing at
  the same ``x`` the cloned body reads.
* :func:`index_blocks` — every :class:`~repro.core.nodes.Block` of a
  program in deterministic walk order.  Because clones preserve walk
  order, an index computed on the original addresses the corresponding
  block of any clone — which is how reduction passes name edit sites
  without holding object references across candidates.
* :func:`count_statements` — the size metric reduction minimizes.
"""

from __future__ import annotations

from .nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Block,
    BoolExpr,
    DeclAssign,
    Expr,
    ForLoop,
    FPNumeral,
    IfBlock,
    IntNumeral,
    MathCall,
    ModIdx,
    Node,
    OmpAtomic,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSection,
    OmpSections,
    OmpSingle,
    OmpTask,
    OmpTaskwait,
    Paren,
    Program,
    ThreadIdx,
    UnaryOp,
    VarRef,
    iter_statements,
    walk,
)
from .types import OmpClauses


# ----------------------------------------------------------------------
# cloning
# ----------------------------------------------------------------------

def clone_node(node: Node) -> Node:
    """Structurally clone one AST node (and its subtree).

    Variables are shared, not copied — identity is their equality.
    """
    if isinstance(node, FPNumeral):
        return FPNumeral(node.value)
    if isinstance(node, IntNumeral):
        return IntNumeral(node.value)
    if isinstance(node, VarRef):
        return VarRef(node.var)
    if isinstance(node, ThreadIdx):
        return ThreadIdx()
    if isinstance(node, ModIdx):
        return ModIdx(clone_node(node.base), node.modulus)  # type: ignore[arg-type]
    if isinstance(node, ArrayRef):
        return ArrayRef(node.var, clone_node(node.index))  # type: ignore[arg-type]
    if isinstance(node, UnaryOp):
        return UnaryOp(node.op, clone_node(node.operand))  # type: ignore[arg-type]
    if isinstance(node, BinOp):
        return BinOp(node.op, clone_node(node.lhs),  # type: ignore[arg-type]
                     clone_node(node.rhs))  # type: ignore[arg-type]
    if isinstance(node, Paren):
        return Paren(clone_node(node.inner))  # type: ignore[arg-type]
    if isinstance(node, MathCall):
        return MathCall(node.func, clone_node(node.arg))  # type: ignore[arg-type]
    if isinstance(node, BoolExpr):
        return BoolExpr(clone_node(node.lhs), node.op,  # type: ignore[arg-type]
                        clone_node(node.rhs))  # type: ignore[arg-type]
    if isinstance(node, Assignment):
        return Assignment(clone_node(node.target), node.op,  # type: ignore[arg-type]
                          clone_node(node.expr))  # type: ignore[arg-type]
    if isinstance(node, DeclAssign):
        return DeclAssign(node.var, clone_node(node.expr))  # type: ignore[arg-type]
    if isinstance(node, Block):
        return Block([clone_node(s) for s in node.stmts])  # type: ignore[misc]
    if isinstance(node, IfBlock):
        return IfBlock(clone_node(node.cond),  # type: ignore[arg-type]
                       clone_node(node.body))  # type: ignore[arg-type]
    if isinstance(node, ForLoop):
        return ForLoop(node.loop_var, clone_node(node.bound),  # type: ignore[arg-type]
                       clone_node(node.body),  # type: ignore[arg-type]
                       omp_for=node.omp_for, schedule=node.schedule,
                       schedule_chunk=node.schedule_chunk,
                       collapse=node.collapse)
    if isinstance(node, OmpCritical):
        return OmpCritical(clone_node(node.body))  # type: ignore[arg-type]
    if isinstance(node, OmpAtomic):
        return OmpAtomic(clone_node(node.update))  # type: ignore[arg-type]
    if isinstance(node, OmpSingle):
        return OmpSingle(clone_node(node.body))  # type: ignore[arg-type]
    if isinstance(node, OmpBarrier):
        return OmpBarrier()
    if isinstance(node, OmpSection):
        return OmpSection(clone_node(node.body))  # type: ignore[arg-type]
    if isinstance(node, OmpSections):
        return OmpSections([clone_node(s) for s in node.sections])  # type: ignore[misc]
    if isinstance(node, OmpTask):
        return OmpTask(clone_node(node.body))  # type: ignore[arg-type]
    if isinstance(node, OmpTaskwait):
        return OmpTaskwait()
    if isinstance(node, OmpParallel):
        clauses = OmpClauses(private=list(node.clauses.private),
                             firstprivate=list(node.clauses.firstprivate),
                             shared=list(node.clauses.shared),
                             reduction=node.clauses.reduction,
                             num_threads=node.clauses.num_threads)
        return OmpParallel(clauses, clone_node(node.body),  # type: ignore[arg-type]
                           combined_for=node.combined_for)
    raise TypeError(f"cannot clone {type(node).__name__}")


def clone_program(program: Program) -> Program:
    """Clone a whole program; parameters and metadata are shared."""
    return Program(
        name=program.name,
        seed=program.seed,
        fp_type=program.fp_type,
        comp=program.comp,
        params=list(program.params),
        body=clone_program_body(program),
        num_threads=program.num_threads,
    )


def clone_program_body(program: Program) -> Block:
    return clone_node(program.body)  # type: ignore[return-value]


# ----------------------------------------------------------------------
# site addressing
# ----------------------------------------------------------------------

def index_blocks(program: Program) -> list[Block]:
    """Every Block of ``program`` in deterministic walk order.

    ``index_blocks(clone_program(p))[k]`` is the clone of
    ``index_blocks(p)[k]`` — clones preserve structure, so block indices
    are stable addresses across candidate programs.
    """
    return [n for n in walk(program) if isinstance(n, Block)]


def index_statements(program: Program):
    """Every statement, deterministic walk order (see ``iter_statements``)."""
    return list(iter_statements(program))


def count_statements(program: Program) -> int:
    """The reducer's size metric: number of statement nodes."""
    return sum(1 for _ in iter_statements(program))


# ----------------------------------------------------------------------
# scope validity
# ----------------------------------------------------------------------

def reads_undeclared_locals(program: Program) -> bool:
    """True when the program uses a temporary or loop variable that no
    in-scope declaration precedes.

    The generator cannot produce such a program, so grammar conformance
    does not check for it — but statement *removal* can orphan a use by
    dropping the ``DeclAssign`` (or the loop) that introduced the
    variable, leaving a tree that no longer compiles as C++.  The
    reduction oracle rejects candidates that fail this check before
    spending a differential run on them.
    """
    from .types import VarKind

    locals_kinds = (VarKind.TEMP, VarKind.LOOP)

    def uses_ok(node: Node, scope: set[int]) -> bool:
        return all(id(n.var) in scope for n in walk(node)
                   if isinstance(n, VarRef) and n.var.kind in locals_kinds)

    def stmt_ok(stmt, scope: set[int]) -> bool:
        if isinstance(stmt, Assignment):
            return uses_ok(stmt, scope)
        if isinstance(stmt, DeclAssign):
            if not uses_ok(stmt.expr, scope):
                return False
            scope.add(id(stmt.var))
            return True
        if isinstance(stmt, IfBlock):
            return uses_ok(stmt.cond, scope) and block_ok(stmt.body, scope)
        if isinstance(stmt, ForLoop):
            if not uses_ok(stmt.bound, scope):
                return False
            return block_ok(stmt.body, scope | {id(stmt.loop_var)})
        if isinstance(stmt, OmpAtomic):
            return uses_ok(stmt.update, scope)
        if isinstance(stmt, (OmpCritical, OmpSingle, OmpTask)):
            return block_ok(stmt.body, scope)
        if isinstance(stmt, OmpSections):
            return all(block_ok(sec.body, scope) for sec in stmt.sections)
        if isinstance(stmt, OmpParallel):
            # data-sharing clauses name variables in the enclosing scope
            if any(v.kind in locals_kinds and id(v) not in scope
                   for v in stmt.clauses.all_listed()):
                return False
            return block_ok(stmt.body, scope)
        return True  # barrier / taskwait reference nothing

    def block_ok(block: Block, scope: set[int]) -> bool:
        inner = set(scope)  # declarations do not escape the block
        return all(stmt_ok(s, inner) for s in block.stmts)

    return not block_ok(program.body, set())


# ----------------------------------------------------------------------
# expression helpers
# ----------------------------------------------------------------------

def is_leaf_expr(e: Expr) -> bool:
    """Already as simple as the grammar allows — nothing to shrink."""
    return isinstance(e, (FPNumeral, IntNumeral, VarRef, ThreadIdx))


def simplest_expr() -> Expr:
    """The canonical minimal expression candidates shrink toward."""
    return FPNumeral(1.0)
