"""Static data-race detection over generated programs.

The paper (Section III-E, Limitations) admits the generator "in some cases
can generate data races, where the comp variable is written and read by
multiple threads without synchronization" and that the authors "mitigated
this by manually filtering out data race cases in the evaluation".

This module automates that manual filtering: it re-derives the
Section III-G safety argument for every parallel region and reports every
access pattern that violates it.  Programs generated with
``allow_data_races=False`` must produce an empty report (a property test
enforces this); programs generated with the limitation-reproducing
``allow_data_races=True`` flag are filtered by the campaign harness using
this checker, exactly where the paper filtered manually.

The rules, per parallel region (plain or combined ``parallel for``):

* private / firstprivate scalars and region-local temporaries are safe;
* ``comp`` under a ``reduction`` clause (``+ * min max``) is safe (each
  thread updates its private copy);
* a shared scalar (including non-reduction ``comp``) that is **written**
  anywhere in the region must have *every* access protected the **same
  way**: all inside critical sections, or all via ``#pragma omp atomic``
  updates, or all inside ``single`` blocks.  Mixing protections is a
  race — a critical section does not exclude an atomic RMW, and neither
  excludes a ``single`` executor;
* a shared array that is written must be accessed **only** at
  ``omp_get_thread_num()`` — a critical section does *not* widen array
  access, because unprotected sibling writes still race with it —
  and never from inside a ``single`` (the executing thread is
  unspecified, and sibling threads may still be before the single);
* explicit ``barrier``\\ s are *not* credited with ordering accesses:
  the oracle stays conservative and classifies against the
  whole-region access set.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nodes import (
    ArrayRef,
    Assignment,
    Block,
    BoolExpr,
    DeclAssign,
    Expr,
    ForLoop,
    IfBlock,
    OmpAtomic,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSingle,
    Program,
    ThreadIdx,
    VarRef,
    walk,
)
from .types import Sharing, Variable, VarKind


@dataclass(frozen=True)
class Access:
    """One scalar/array access inside a parallel region."""

    var: Variable
    is_write: bool
    in_critical: bool
    tid_index: bool  # for arrays: was the index omp_get_thread_num()?
    is_array: bool
    atomic: bool = False      # part of a `#pragma omp atomic` update
    in_single: bool = False   # inside a `single` block


@dataclass(frozen=True)
class RaceReport:
    """One detected (potential) data race."""

    region_index: int
    var_name: str
    reason: str

    def __str__(self) -> str:
        return f"region {self.region_index}: {self.var_name}: {self.reason}"


def _region_sharing(region: OmpParallel) -> dict[int, Sharing]:
    sharing: dict[int, Sharing] = {}
    for v in region.clauses.private:
        sharing[id(v)] = Sharing.PRIVATE
    for v in region.clauses.firstprivate:
        sharing[id(v)] = Sharing.FIRSTPRIVATE
    return sharing


def _collect_accesses(region: OmpParallel) -> tuple[list[Access], set[int]]:
    """Walk the region body recording accesses and region-local temps."""
    accesses: list[Access] = []
    local_vars: set[int] = set()

    def expr_reads(e: Expr | BoolExpr, in_critical: bool,
                   in_single: bool) -> None:
        for n in walk(e):  # walk yields the node itself plus descendants
            if isinstance(n, VarRef):
                accesses.append(Access(n.var, False, in_critical, False,
                                       False, in_single=in_single))
            elif isinstance(n, ArrayRef):
                tid = isinstance(n.index, ThreadIdx)
                accesses.append(Access(n.var, False, in_critical, tid, True,
                                       in_single=in_single))
                if isinstance(n.index, VarRef):
                    accesses.append(Access(n.index.var, False, in_critical,
                                           False, False, in_single=in_single))

    def record_assignment(s: Assignment, in_critical: bool, in_single: bool,
                          atomic: bool = False) -> None:
        expr_reads(s.expr, in_critical, in_single)
        if isinstance(s.target, VarRef):
            accesses.append(Access(s.target.var, True, in_critical, False,
                                   False, atomic=atomic, in_single=in_single))
            if s.op.binop is not None:  # compound ops also read
                accesses.append(Access(s.target.var, False, in_critical,
                                       False, False, atomic=atomic,
                                       in_single=in_single))
        else:
            tid = isinstance(s.target.index, ThreadIdx)
            accesses.append(Access(s.target.var, True, in_critical, tid,
                                   True, atomic=atomic, in_single=in_single))
            if s.op.binop is not None:
                accesses.append(Access(s.target.var, False, in_critical, tid,
                                       True, atomic=atomic,
                                       in_single=in_single))

    def visit(b: Block, in_critical: bool, in_single: bool) -> None:
        for s in b.stmts:
            if isinstance(s, Assignment):
                record_assignment(s, in_critical, in_single)
            elif isinstance(s, DeclAssign):
                local_vars.add(id(s.var))
                expr_reads(s.expr, in_critical, in_single)
            elif isinstance(s, OmpAtomic):
                record_assignment(s.update, in_critical, in_single,
                                  atomic=True)
            elif isinstance(s, IfBlock):
                expr_reads(s.cond, in_critical, in_single)
                visit(s.body, in_critical, in_single)
            elif isinstance(s, ForLoop):
                local_vars.add(id(s.loop_var))
                if isinstance(s.bound, VarRef):
                    accesses.append(Access(s.bound.var, False, in_critical,
                                           False, False, in_single=in_single))
                visit(s.body, in_critical, in_single)
            elif isinstance(s, OmpCritical):
                visit(s.body, True, in_single)
            elif isinstance(s, OmpSingle):
                visit(s.body, in_critical, True)
            elif isinstance(s, OmpBarrier):
                pass  # no data access; ordering is not credited
            else:  # pragma: no cover - grammar forbids nested parallel
                raise TypeError(f"unexpected node {type(s).__name__}")

    visit(region.body, False, False)
    return accesses, local_vars


def check_region(region: OmpParallel, region_index: int) -> list[RaceReport]:
    """Race reports for a single parallel region."""
    reports: list[RaceReport] = []
    sharing = _region_sharing(region)
    has_reduction = region.clauses.reduction is not None
    accesses, local_vars = _collect_accesses(region)

    by_var: dict[int, list[Access]] = {}
    for a in accesses:
        by_var.setdefault(id(a.var), []).append(a)

    for vid, accs in by_var.items():
        var = accs[0].var
        if vid in local_vars:
            continue  # region-local => thread-local
        if sharing.get(vid) in (Sharing.PRIVATE, Sharing.FIRSTPRIVATE):
            continue
        if var.kind is VarKind.COMP and has_reduction:
            continue  # private reduction copy
        writes = [a for a in accs if a.is_write]
        if not writes:
            continue  # read-only shared data is race-free
        if var.is_array:
            bad = [a for a in accs if not a.tid_index]
            if bad:
                reports.append(RaceReport(
                    region_index, var.name,
                    "shared array is written in the region but accessed at "
                    "an index other than omp_get_thread_num()"))
            elif any(a.in_single for a in accs):
                reports.append(RaceReport(
                    region_index, var.name,
                    "shared array accessed from inside a single block "
                    "(unspecified executing thread)"))
            continue
        # a written shared scalar needs one uniform protection class
        if all(a.in_critical for a in accs):
            continue
        if all(a.atomic for a in accs):
            continue
        if all(a.in_single for a in accs):
            continue
        unprotected = [a for a in accs
                       if not (a.in_critical or a.atomic or a.in_single)]
        if unprotected:
            kind = "written" if any(a.is_write for a in unprotected) else "read"
            reports.append(RaceReport(
                region_index, var.name,
                f"shared scalar is written in the region but {kind} without "
                f"protection (outside critical/atomic/single)"))
        else:
            reports.append(RaceReport(
                region_index, var.name,
                "shared scalar is protected inconsistently (critical, "
                "atomic, and single do not exclude one another)"))
    return reports


def find_races(program: Program) -> list[RaceReport]:
    """All race reports across every parallel region of ``program``."""
    reports: list[RaceReport] = []
    idx = 0
    for n in walk(program):
        if isinstance(n, OmpParallel):
            reports.extend(check_region(n, idx))
            idx += 1
    return reports


def is_race_free(program: Program) -> bool:
    """True when the static checker finds no potential data race."""
    return not find_races(program)
