"""Static data-race detection over generated programs.

The paper (Section III-E, Limitations) admits the generator "in some cases
can generate data races, where the comp variable is written and read by
multiple threads without synchronization" and that the authors "mitigated
this by manually filtering out data race cases in the evaluation".

This module automates that manual filtering: it re-derives the
Section III-G safety argument for every parallel region and reports every
access pattern that violates it.  Programs generated with
``allow_data_races=False`` must produce an empty report (a property test
enforces this); programs generated with the limitation-reproducing
``allow_data_races=True`` flag are filtered by the campaign harness using
this checker, exactly where the paper filtered manually.

The rules, per parallel region:

* private / firstprivate scalars and region-local temporaries are safe;
* ``comp`` under a ``reduction`` clause is safe (each thread updates its
  private copy);
* a shared scalar (including non-reduction ``comp``) that is **written**
  anywhere in the region must have *every* access (read or write) inside a
  critical section;
* a shared array that is written must be accessed **only** at
  ``omp_get_thread_num()`` — a critical section does *not* widen array
  access, because unprotected sibling writes still race with it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nodes import (
    ArrayRef,
    Assignment,
    Block,
    BoolExpr,
    DeclAssign,
    Expr,
    ForLoop,
    IfBlock,
    OmpCritical,
    OmpParallel,
    Program,
    ThreadIdx,
    VarRef,
    walk,
)
from .types import Sharing, Variable, VarKind


@dataclass(frozen=True)
class Access:
    """One scalar/array access inside a parallel region."""

    var: Variable
    is_write: bool
    in_critical: bool
    tid_index: bool  # for arrays: was the index omp_get_thread_num()?
    is_array: bool


@dataclass(frozen=True)
class RaceReport:
    """One detected (potential) data race."""

    region_index: int
    var_name: str
    reason: str

    def __str__(self) -> str:
        return f"region {self.region_index}: {self.var_name}: {self.reason}"


def _region_sharing(region: OmpParallel) -> dict[int, Sharing]:
    sharing: dict[int, Sharing] = {}
    for v in region.clauses.private:
        sharing[id(v)] = Sharing.PRIVATE
    for v in region.clauses.firstprivate:
        sharing[id(v)] = Sharing.FIRSTPRIVATE
    return sharing


def _collect_accesses(region: OmpParallel) -> tuple[list[Access], set[int]]:
    """Walk the region body recording accesses and region-local temps."""
    accesses: list[Access] = []
    local_vars: set[int] = set()

    def expr_reads(e: Expr | BoolExpr, in_critical: bool) -> None:
        for n in walk(e):  # walk yields the node itself plus descendants
            if isinstance(n, VarRef):
                accesses.append(Access(n.var, False, in_critical, False, False))
            elif isinstance(n, ArrayRef):
                tid = isinstance(n.index, ThreadIdx)
                accesses.append(Access(n.var, False, in_critical, tid, True))
                if isinstance(n.index, VarRef):
                    accesses.append(Access(n.index.var, False, in_critical,
                                           False, False))

    def visit(b: Block, in_critical: bool) -> None:
        for s in b.stmts:
            if isinstance(s, Assignment):
                expr_reads(s.expr, in_critical)
                if isinstance(s.target, VarRef):
                    accesses.append(Access(s.target.var, True, in_critical,
                                           False, False))
                    if s.op.binop is not None:  # compound ops also read
                        accesses.append(Access(s.target.var, False,
                                               in_critical, False, False))
                else:
                    tid = isinstance(s.target.index, ThreadIdx)
                    accesses.append(Access(s.target.var, True, in_critical,
                                           tid, True))
                    if s.op.binop is not None:
                        accesses.append(Access(s.target.var, False,
                                               in_critical, tid, True))
            elif isinstance(s, DeclAssign):
                local_vars.add(id(s.var))
                expr_reads(s.expr, in_critical)
            elif isinstance(s, IfBlock):
                expr_reads(s.cond, in_critical)
                visit(s.body, in_critical)
            elif isinstance(s, ForLoop):
                local_vars.add(id(s.loop_var))
                if isinstance(s.bound, VarRef):
                    accesses.append(Access(s.bound.var, False, in_critical,
                                           False, False))
                visit(s.body, in_critical)
            elif isinstance(s, OmpCritical):
                visit(s.body, True)
            else:  # pragma: no cover - grammar forbids nested parallel
                raise TypeError(f"unexpected node {type(s).__name__}")

    visit(region.body, False)
    return accesses, local_vars


def check_region(region: OmpParallel, region_index: int) -> list[RaceReport]:
    """Race reports for a single parallel region."""
    reports: list[RaceReport] = []
    sharing = _region_sharing(region)
    has_reduction = region.clauses.reduction is not None
    accesses, local_vars = _collect_accesses(region)

    by_var: dict[int, list[Access]] = {}
    names: dict[int, str] = {}
    for a in accesses:
        by_var.setdefault(id(a.var), []).append(a)
        names[id(a.var)] = a.var.name

    for vid, accs in by_var.items():
        var = accs[0].var
        if vid in local_vars:
            continue  # region-local => thread-local
        if sharing.get(vid) in (Sharing.PRIVATE, Sharing.FIRSTPRIVATE):
            continue
        if var.kind is VarKind.COMP and has_reduction:
            continue  # private reduction copy
        writes = [a for a in accs if a.is_write]
        if not writes:
            continue  # read-only shared data is race-free
        if var.is_array:
            bad = [a for a in accs if not a.tid_index]
            if bad:
                reports.append(RaceReport(
                    region_index, var.name,
                    "shared array is written in the region but accessed at "
                    "an index other than omp_get_thread_num()"))
            continue
        unprotected = [a for a in accs if not a.in_critical]
        if unprotected:
            kind = "written" if any(a.is_write for a in unprotected) else "read"
            reports.append(RaceReport(
                region_index, var.name,
                f"shared scalar is written in the region but {kind} outside "
                f"a critical section"))
    return reports


def find_races(program: Program) -> list[RaceReport]:
    """All race reports across every parallel region of ``program``."""
    reports: list[RaceReport] = []
    idx = 0
    for n in walk(program):
        if isinstance(n, OmpParallel):
            reports.extend(check_region(n, idx))
            idx += 1
    return reports


def is_race_free(program: Program) -> bool:
    """True when the static checker finds no potential data race."""
    return not find_races(program)
