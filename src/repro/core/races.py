"""Static data-race detection over generated programs.

The paper (Section III-E, Limitations) admits the generator "in some cases
can generate data races, where the comp variable is written and read by
multiple threads without synchronization" and that the authors "mitigated
this by manually filtering out data race cases in the evaluation".

This module automates that manual filtering: it re-derives the
Section III-G safety argument for every parallel region and reports every
access pattern that violates it.  Programs generated with
``allow_data_races=False`` must produce an empty report (a property test
enforces this); programs generated with the limitation-reproducing
``allow_data_races=True`` flag are filtered by the campaign harness using
this checker, exactly where the paper filtered manually.

The rules, per parallel region (plain or combined ``parallel for``):

* private / firstprivate scalars and region-local temporaries are safe;
* ``comp`` under a ``reduction`` clause (``+ * min max``) is safe (each
  thread updates its private copy);
* a shared scalar (including non-reduction ``comp``) that is **written**
  anywhere in the region must have *every* access protected the **same
  way**: all inside critical sections, or all via ``#pragma omp atomic``
  updates, or all inside ``single`` blocks.  Mixing protections is a
  race — a critical section does not exclude an atomic RMW, and neither
  excludes a ``single`` executor;
* a shared array that is written must be accessed **only** at
  ``omp_get_thread_num()`` — a critical section does *not* widen array
  access, because unprotected sibling writes still race with it —
  and never from inside a ``single`` (the executing thread is
  unspecified, and sibling threads may still be before the single);
* explicit ``barrier``\\ s are *not* credited with ordering accesses:
  the oracle stays conservative and classifies against the
  whole-region access set.

Worksharing-graph regions
-------------------------

Regions containing ``sections``/``task`` cannot be classified against one
uniform context: a section arm or an explicit task executes *once*, on
one thread, concurrently with its siblings — protection classes alone
cannot express "these two accesses are ordered by a ``taskwait``".  For
exactly (and only) those regions the oracle switches to the graph rule
over :mod:`repro.core.taskgraph`: every access is attributed to a work
node, and two conflicting accesses race **iff neither node reaches the
other in the region's worksharing graph and no mutual-exclusion class
(critical / atomic / single) protects both**.  Graph edges — barriers,
the implicit barrier ending a ``sections`` construct, task spawn, and
``taskwait`` — are real OpenMP happens-before guarantees, so this path
is *more precise* than the uniform-context one; regions without graph
constructs keep the seed-exact conservative classification above, so
every pinned loop-shaped verdict is byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nodes import (
    ArrayRef,
    Assignment,
    Block,
    BoolExpr,
    DeclAssign,
    Expr,
    ForLoop,
    IfBlock,
    IntNumeral,
    OmpAtomic,
    OmpBarrier,
    OmpCritical,
    OmpParallel,
    OmpSingle,
    Program,
    ThreadIdx,
    VarRef,
    walk,
)
from .taskgraph import (
    GraphBuilder,
    RegionGraph,
    drive_region_events,
    has_graph_constructs,
)
from .types import Sharing, Variable, VarKind


@dataclass(frozen=True)
class Access:
    """One scalar/array access inside a parallel region."""

    var: Variable
    is_write: bool
    in_critical: bool
    tid_index: bool  # for arrays: was the index omp_get_thread_num()?
    is_array: bool
    atomic: bool = False      # part of a `#pragma omp atomic` update
    in_single: bool = False   # inside a `single` block
    #: worksharing-graph node the access belongs to (graph regions only)
    node: int = 0
    #: for arrays: the literal index when it is a compile-time constant
    const_index: int | None = None


@dataclass(frozen=True)
class RaceReport:
    """One detected (potential) data race."""

    region_index: int
    var_name: str
    reason: str

    def __str__(self) -> str:
        return f"region {self.region_index}: {self.var_name}: {self.reason}"


def _region_sharing(region: OmpParallel) -> dict[int, Sharing]:
    sharing: dict[int, Sharing] = {}
    for v in region.clauses.private:
        sharing[id(v)] = Sharing.PRIVATE
    for v in region.clauses.firstprivate:
        sharing[id(v)] = Sharing.FIRSTPRIVATE
    return sharing


class _AccessRecorder:
    """The one definition of which reads/writes a leaf statement performs.

    Both collectors — the uniform-context walk below and the graph walk
    of :func:`_collect_graph_accesses` — record through this class, so
    the access set of a given statement shape can never depend on which
    classification path a region takes.  ``nid`` is the worksharing-graph
    node an access belongs to (the uniform path passes a constant).
    """

    def __init__(self) -> None:
        self.accesses: list[Access] = []
        self.local_vars: set[int] = set()

    @staticmethod
    def _const(idx) -> int | None:
        return idx.value if isinstance(idx, IntNumeral) else None

    def add(self, var: Variable, is_write: bool, crit: bool, single: bool,
            nid: int, *, tid: bool = False, is_array: bool = False,
            atomic: bool = False, const_index: int | None = None) -> None:
        self.accesses.append(Access(var, is_write, crit, tid, is_array,
                                    atomic=atomic, in_single=single,
                                    node=nid, const_index=const_index))

    def expr_reads(self, e: Expr | BoolExpr, crit: bool, single: bool,
                   nid: int) -> None:
        for n in walk(e):  # walk yields the node itself plus descendants
            if isinstance(n, VarRef):
                self.add(n.var, False, crit, single, nid)
            elif isinstance(n, ArrayRef):
                self.add(n.var, False, crit, single, nid,
                         tid=isinstance(n.index, ThreadIdx), is_array=True,
                         const_index=self._const(n.index))
                if isinstance(n.index, VarRef):
                    self.add(n.index.var, False, crit, single, nid)

    def record_assignment(self, s: Assignment, crit: bool, single: bool,
                          nid: int, atomic: bool = False) -> None:
        self.expr_reads(s.expr, crit, single, nid)
        if isinstance(s.target, VarRef):
            self.add(s.target.var, True, crit, single, nid, atomic=atomic)
            if s.op.binop is not None:  # compound ops also read
                self.add(s.target.var, False, crit, single, nid,
                         atomic=atomic)
        else:
            tid = isinstance(s.target.index, ThreadIdx)
            ci = self._const(s.target.index)
            self.add(s.target.var, True, crit, single, nid, tid=tid,
                     is_array=True, atomic=atomic, const_index=ci)
            if s.op.binop is not None:
                self.add(s.target.var, False, crit, single, nid, tid=tid,
                         is_array=True, atomic=atomic, const_index=ci)

    def leaf(self, s, nid: int, crit: bool, single: bool) -> None:
        """Record one access-bearing statement (bodies walked elsewhere)."""
        if isinstance(s, Assignment):
            self.record_assignment(s, crit, single, nid)
        elif isinstance(s, DeclAssign):
            self.local_vars.add(id(s.var))
            self.expr_reads(s.expr, crit, single, nid)
        elif isinstance(s, OmpAtomic):
            self.record_assignment(s.update, crit, single, nid, atomic=True)
        elif isinstance(s, IfBlock):
            self.expr_reads(s.cond, crit, single, nid)
        elif isinstance(s, ForLoop):
            self.local_vars.add(id(s.loop_var))
            if isinstance(s.bound, VarRef):
                self.add(s.bound.var, False, crit, single, nid)


def _conflict_candidates(accesses: list[Access], local_vars: set[int],
                         sharing: dict[int, Sharing], has_reduction: bool):
    """Yield ``(var, accesses, writes)`` for every variable that needs
    race classification.

    The exemption rules — region-local temporaries, private/firstprivate
    scalars, ``comp`` under a reduction clause, and variables never
    written — are shared by the uniform-context and worksharing-graph
    paths, so a future change to them cannot diverge the two verdicts.
    """
    by_var: dict[int, list[Access]] = {}
    for a in accesses:
        by_var.setdefault(id(a.var), []).append(a)
    for vid, accs in by_var.items():
        var = accs[0].var
        if vid in local_vars:
            continue  # region-local => thread-local
        if sharing.get(vid) in (Sharing.PRIVATE, Sharing.FIRSTPRIVATE):
            continue
        if var.kind is VarKind.COMP and has_reduction:
            continue  # private reduction copy
        writes = [a for a in accs if a.is_write]
        if not writes:
            continue  # read-only shared data is race-free
        yield var, accs, writes


def _collect_accesses(region: OmpParallel) -> tuple[list[Access], set[int]]:
    """Walk the region body recording accesses and region-local temps."""
    rec = _AccessRecorder()

    def visit(b: Block, in_critical: bool, in_single: bool) -> None:
        for s in b.stmts:
            if isinstance(s, (Assignment, DeclAssign, OmpAtomic)):
                rec.leaf(s, 0, in_critical, in_single)
            elif isinstance(s, (IfBlock, ForLoop)):
                rec.leaf(s, 0, in_critical, in_single)
                visit(s.body, in_critical, in_single)
            elif isinstance(s, OmpCritical):
                visit(s.body, True, in_single)
            elif isinstance(s, OmpSingle):
                visit(s.body, in_critical, True)
            elif isinstance(s, OmpBarrier):
                pass  # no data access; ordering is not credited
            else:  # pragma: no cover - grammar forbids nested parallel
                raise TypeError(f"unexpected node {type(s).__name__}")

    visit(region.body, False, False)
    return rec.accesses, rec.local_vars


# ----------------------------------------------------------------------
# worksharing-graph classification (regions containing sections/tasks)
# ----------------------------------------------------------------------


def _collect_graph_accesses(
        region: OmpParallel) -> tuple[list[Access], set[int], RegionGraph]:
    """Like :func:`_collect_accesses`, but attributes every access to a
    node of the region's worksharing graph.

    The traversal itself is :func:`~repro.core.taskgraph.
    drive_region_events` — the same walk :func:`build_region_graph`
    runs — and the recording goes through the same
    :class:`_AccessRecorder` as the uniform-context collector, so
    neither the synchronization semantics nor the per-statement access
    sets can diverge between the two classification paths.
    """
    rec = _AccessRecorder()
    b = GraphBuilder()
    drive_region_events(region.body, b, rec.leaf)
    return rec.accesses, rec.local_vars, b.finish()


def _locations_disjoint(a: Access, b: Access) -> bool:
    """Can the two (array) accesses never touch the same element?"""
    if not a.is_array:
        return False
    if a.tid_index and b.tid_index:
        # different threads use different slots; one thread's own two
        # accesses are ordered by program order
        return True
    if (a.const_index is not None and b.const_index is not None
            and a.const_index != b.const_index):
        return True
    return False


def _pair_races(a: Access, b: Access, graph: RegionGraph) -> bool:
    """The graph rule: a conflicting pair races iff the nodes are
    concurrent and no mutual-exclusion class protects both accesses."""
    if a.is_array and _locations_disjoint(a, b):
        return False
    if a.in_critical and b.in_critical:
        return False
    if a.atomic and b.atomic:
        return False
    if a.in_single and b.in_single:
        return False
    if a.node == b.node:
        # an execute-once node is internally sequential on one thread;
        # a team node is executed by every thread concurrently
        return not graph.node(a.node).once
    return not graph.ordered(a.node, b.node)


def _classify_graph_region(region: OmpParallel,
                           region_index: int) -> list[RaceReport]:
    """Graph-based classification for regions with sections/tasks."""
    reports: list[RaceReport] = []
    sharing = _region_sharing(region)
    has_reduction = region.clauses.reduction is not None
    accesses, local_vars, graph = _collect_graph_accesses(region)

    for var, accs, writes in _conflict_candidates(accesses, local_vars,
                                                  sharing, has_reduction):
        racy = next(((w, a) for w in writes for a in accs
                     if _pair_races(w, a, graph)), None)
        if racy is not None:
            w, a = racy
            la = graph.node(w.node).label or f"node {w.node}"
            lb = graph.node(a.node).label or f"node {a.node}"
            where = (f"work node '{la}' (team-concurrent)" if w.node == a.node
                     else f"concurrent work nodes '{la}' and '{lb}'")
            reports.append(RaceReport(
                region_index, var.name,
                f"conflicting accesses in {where} with no happens-before "
                f"path and no common exclusion class"))
    return reports


def check_region(region: OmpParallel, region_index: int) -> list[RaceReport]:
    """Race reports for a single parallel region.

    Regions containing worksharing-graph constructs (``sections``/
    ``task``) are classified with the graph rule; every other region
    keeps the seed-exact uniform-context classification below.
    """
    if has_graph_constructs(region):
        return _classify_graph_region(region, region_index)
    reports: list[RaceReport] = []
    sharing = _region_sharing(region)
    has_reduction = region.clauses.reduction is not None
    accesses, local_vars = _collect_accesses(region)

    for var, accs, _writes in _conflict_candidates(accesses, local_vars,
                                                   sharing, has_reduction):
        if var.is_array:
            bad = [a for a in accs if not a.tid_index]
            if bad:
                reports.append(RaceReport(
                    region_index, var.name,
                    "shared array is written in the region but accessed at "
                    "an index other than omp_get_thread_num()"))
            elif any(a.in_single for a in accs):
                reports.append(RaceReport(
                    region_index, var.name,
                    "shared array accessed from inside a single block "
                    "(unspecified executing thread)"))
            continue
        # a written shared scalar needs one uniform protection class
        if all(a.in_critical for a in accs):
            continue
        if all(a.atomic for a in accs):
            continue
        if all(a.in_single for a in accs):
            continue
        unprotected = [a for a in accs
                       if not (a.in_critical or a.atomic or a.in_single)]
        if unprotected:
            kind = "written" if any(a.is_write for a in unprotected) else "read"
            reports.append(RaceReport(
                region_index, var.name,
                f"shared scalar is written in the region but {kind} without "
                f"protection (outside critical/atomic/single)"))
        else:
            reports.append(RaceReport(
                region_index, var.name,
                "shared scalar is protected inconsistently (critical, "
                "atomic, and single do not exclude one another)"))
    return reports


def find_races(program: Program) -> list[RaceReport]:
    """All race reports across every parallel region of ``program``."""
    reports: list[RaceReport] = []
    idx = 0
    for n in walk(program):
        if isinstance(n, OmpParallel):
            reports.extend(check_region(n, idx))
            idx += 1
    return reports


def is_race_free(program: Program) -> bool:
    """True when the static checker finds no potential data race."""
    return not find_races(program)
