"""Generation context: scoping, budgets, and OpenMP data-sharing state.

The program generator is split across three modules (expressions, blocks,
OpenMP regions); this module holds the state they share while building one
program:

* lexical scopes (which temporaries / loop variables are visible),
* the iteration budget (product of enclosing loop trip counts, capped by
  ``GeneratorConfig.max_total_iterations`` so the simulated backend can
  execute every generated program),
* the *region state* while generating inside an ``omp parallel``: the
  data-sharing map and the race-avoidance access rules of Section III-G.

The access-legality predicates here are the single source of truth: the
generator only emits accesses these predicates allow, and the static race
checker (:mod:`repro.core.races`) re-validates finished programs against
the same rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import GeneratorConfig
from ..rng import Rng
from .types import FPType, OmpClauses, ReductionOp, Sharing, Variable, VarKind


@dataclass
class RegionState:
    """Data-sharing and race-avoidance state of one parallel region."""

    clauses: OmpClauses
    #: variable identity -> sharing attribute for this region
    sharing: dict[int, Sharing] = field(default_factory=dict)
    #: arrays that this region writes; writes (and reads, conservatively)
    #: must use the thread-id index (Section III-G)
    write_arrays: set[int] = field(default_factory=set)
    #: shared scalars written in this region; *every* access to them must
    #: sit inside a critical section
    critical_scalars: set[int] = field(default_factory=set)
    #: shared scalars updated only via ``#pragma omp atomic``; every
    #: access to them must be such an atomic update (an unprotected read
    #: would race with another thread's atomic RMW)
    atomic_scalars: set[int] = field(default_factory=set)
    #: shared scalars touched only inside ``single`` blocks; singles in
    #: one region are serialized by their implicit barriers, so
    #: confining every access to singles is race-free
    single_scalars: set[int] = field(default_factory=set)
    #: shared scalars owned by exactly one execute-once work node of the
    #: worksharing graph (a section arm, or an explicit task spawned by
    #: one): variable identity -> owner token (``"s<construct>.<arm>"``,
    #: tasks append ``"/t<k>"``).  The owner accesses its scalar freely —
    #: the node runs on one thread, sequentially — and *nothing else in
    #: the region* may touch it; the region-exit barrier publishes the
    #: final value to post-region code
    owned_scalars: dict[int, str] = field(default_factory=dict)
    #: sections constructs planned so far — the ``s<construct>`` part of
    #: owner tokens, so two constructs' arms can never share a token
    n_graph_constructs: int = 0
    #: reduction operator over comp, if any (Section III-F)
    reduction: ReductionOp | None = None
    #: temporaries declared inside the region body (thread-local)
    region_temps: set[int] = field(default_factory=set)

    def sharing_of(self, v: Variable) -> Sharing:
        if id(v) in self.region_temps:
            return Sharing.PRIVATE
        return self.sharing.get(id(v), Sharing.SHARED)


class Scope:
    """One lexical scope level (function body, block, loop body)."""

    __slots__ = ("parent", "temps", "loop_vars")

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self.temps: list[Variable] = []
        self.loop_vars: list[Variable] = []

    def visible_temps(self) -> list[Variable]:
        out: list[Variable] = []
        s: Scope | None = self
        while s is not None:
            out.extend(s.temps)
            s = s.parent
        return out

    def visible_loop_vars(self) -> list[Variable]:
        out: list[Variable] = []
        s: Scope | None = self
        while s is not None:
            out.extend(s.loop_vars)
            s = s.parent
        return out


class GenContext:
    """Mutable state threaded through one program generation."""

    def __init__(self, cfg: GeneratorConfig, rng: Rng, fp_type: FPType):
        self.cfg = cfg
        self.rng = rng
        self.fp_type = fp_type

        self.comp: Variable | None = None
        self.params: list[Variable] = []

        self.scope = Scope()
        self.region: RegionState | None = None
        self.in_critical = False
        self.in_single = False
        #: True while control flow inside the region is uniform across
        #: the team (not under an if / worksharing loop / critical /
        #: single) — the only positions where barrier/single are legal
        self.uniform = False
        #: induction variable of the innermost enclosing ``omp for``
        self.omp_for_var: Variable | None = None
        #: owner token of the enclosing execute-once work node (section
        #: arm or task body) while generating inside one, else None
        self.owner: str | None = None
        #: temporaries declared inside the current execute-once node —
        #: the only temps its body may touch (outer temps are per-thread
        #: copies whose values would depend on the executing thread)
        self.owner_temps: set[int] = set()

        #: product of trip counts of all enclosing loops
        self.iter_product = 1
        #: loop nesting depth (if/for/omp blocks all count — Fig. 2)
        self.depth = 0

        self._name_counter = 0
        self._tmp_counter = 0
        self._loop_counter = 0

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def fresh_param_name(self) -> str:
        self._name_counter += 1
        return f"var_{self._name_counter}"

    def fresh_tmp(self) -> Variable:
        self._tmp_counter += 1
        v = Variable(f"tmp_{self._tmp_counter}", self.fp_type, VarKind.TEMP)
        self.scope.temps.append(v)
        if self.region is not None:
            self.region.region_temps.add(id(v))
        if self.owner is not None:
            self.owner_temps.add(id(v))
        return v

    def fresh_loop_var(self) -> Variable:
        self._loop_counter += 1
        return Variable(f"i_{self._loop_counter}", None, VarKind.LOOP)

    # ------------------------------------------------------------------
    # scope / loop management
    # ------------------------------------------------------------------
    def push_scope(self) -> Scope:
        self.scope = Scope(self.scope)
        return self.scope

    def pop_scope(self) -> None:
        assert self.scope.parent is not None, "cannot pop the root scope"
        self.scope = self.scope.parent

    # ------------------------------------------------------------------
    # budget
    # ------------------------------------------------------------------
    def loop_bound_headroom(self) -> int:
        """Largest trip count a new nested loop may use without exceeding
        the whole-program iteration budget."""
        return max(0, self.cfg.max_total_iterations // max(1, self.iter_product))

    # ------------------------------------------------------------------
    # variable pools
    # ------------------------------------------------------------------
    @property
    def fp_scalar_params(self) -> list[Variable]:
        """Ordinary fp scalar parameters — excludes ``comp``, which has its
        own sharing rules (Section III-E: variables are assigned to
        data-sharing clauses randomly *except for the comp variable*)."""
        return [p for p in self.params
                if p.is_fp and not p.is_array and p.kind is not VarKind.COMP]

    @property
    def array_params(self) -> list[Variable]:
        return [p for p in self.params if p.is_array]

    @property
    def int_params(self) -> list[Variable]:
        return [p for p in self.params if p.is_int]

    # ------------------------------------------------------------------
    # race-avoidance access rules (Section III-G)
    # ------------------------------------------------------------------
    def _owner_can_read(self, v: Variable) -> bool:
        """Read legality inside an execute-once work node (section arm or
        task body): the node's own scalars, the parent arm's scalars from
        inside its task (ordered by the spawn edge — the arm never writes
        them between spawn and taskwait), node-local temporaries, and
        shared scalars the region treats as read-only (their value is the
        uniform kernel input, identical whichever thread runs the node)."""
        region = self.region
        assert region is not None and self.owner is not None
        ow = region.owned_scalars.get(id(v))
        if ow is not None:
            return self.owner == ow or self.owner.startswith(ow + "/")
        if v.kind is VarKind.TEMP:
            return id(v) in self.owner_temps
        if v.kind is VarKind.COMP:
            return False  # reduction partials / protected comp: not uniform
        if region.sharing_of(v) is not Sharing.SHARED:
            return False  # per-thread copies: executing thread unspecified
        return not (id(v) in region.critical_scalars
                    or id(v) in region.atomic_scalars
                    or id(v) in region.single_scalars)

    def can_read_scalar(self, v: Variable) -> bool:
        """May the current context *read* scalar ``v``?"""
        if self.region is None:
            return True
        if self.owner is not None:
            return self._owner_can_read(v)
        if id(v) in self.region.owned_scalars:
            # owned by a section arm/task: team-uniform code before the
            # construct is concurrent with the arm, and the simulator's
            # sequential-serialization argument does not cover reads
            # between the construct's end barrier and region exit
            return False
        sh = self.region.sharing_of(v)
        if self.in_single:
            # which thread executes a single is unspecified: only values
            # that are identical across the team may be read, i.e. shared
            # scalars the region never writes outside singles
            if sh in (Sharing.PRIVATE, Sharing.FIRSTPRIVATE):
                return False
            if v.kind is VarKind.COMP and self.region.reduction is not None:
                return False  # thread-private partial: thread-dependent
            if id(v) in self.region.critical_scalars \
                    or id(v) in self.region.atomic_scalars:
                return False
            return True  # read-only shared, or a single-only scalar
        if sh in (Sharing.PRIVATE, Sharing.FIRSTPRIVATE):
            return True
        if v.kind is VarKind.COMP and self.region.reduction is not None:
            return True  # reads the thread-private reduction copy
        if id(v) in self.region.atomic_scalars:
            # an unprotected read would race with another thread's atomic
            # RMW; the RMW's own read is implicit, never via an expression
            return False
        if id(v) in self.region.single_scalars:
            return self.in_single
        if id(v) in self.region.critical_scalars:
            return self.in_critical
        # shared scalar never written in the region: read-only is race-free
        return True

    def can_write_scalar(self, v: Variable) -> bool:
        """May the current context *write* scalar ``v`` with a plain
        (non-atomic) assignment?"""
        if v.kind is VarKind.LOOP:
            return False  # never reassign induction variables
        if self.region is None:
            return v.kind is not VarKind.LOOP
        if self.owner is not None:
            ow = self.region.owned_scalars.get(id(v))
            if ow is not None:
                return self.owner == ow
            return v.kind is VarKind.TEMP and id(v) in self.owner_temps
        if id(v) in self.region.owned_scalars:
            return False  # exclusive to its section arm / task
        if self.in_single:
            # one thread runs the block, serialized against other singles
            # by the implicit barrier: only single-only scalars are safe
            return id(v) in self.region.single_scalars
        sh = self.region.sharing_of(v)
        if sh in (Sharing.PRIVATE, Sharing.FIRSTPRIVATE):
            return True
        if id(v) in self.region.atomic_scalars:
            return False  # updated only via `#pragma omp atomic`
        if id(v) in self.region.single_scalars:
            return False  # updated only inside single blocks
        if v.kind is VarKind.COMP:
            if self.region.reduction is not None:
                return True  # reduction private copy
            # comp must be pre-registered as critical-only so that no
            # unprotected read elsewhere in the region can race with the
            # critical-section write
            return self.in_critical and id(v) in self.region.critical_scalars
        # shared scalar: only inside critical, and only if pre-registered
        # as critical-only so concurrent unprotected reads are impossible
        return self.in_critical and id(v) in self.region.critical_scalars

    def can_read_array_at(self, arr: Variable, *, thread_idx: bool) -> bool:
        """May the current context read ``arr`` (at a thread-id slot or any)?

        A critical section does **not** widen array access: critical only
        excludes other critical sections, so a critical-section read of an
        arbitrary slot would still race with another thread's unprotected
        write to its own slot.
        """
        if self.region is None:
            return True
        if self.owner is not None:
            # arm/task bodies touch scalars only: a[tid] is thread-
            # dependent and written arrays are concurrently written by
            # the team around the construct
            return False
        if self.in_single:
            # a[tid] is thread-dependent, and written arrays may be
            # concurrently touched by threads still before the single
            return id(arr) not in self.region.write_arrays and not thread_idx
        if id(arr) in self.region.write_arrays:
            # other threads write their own slots concurrently: only the
            # caller's own slot is guaranteed race-free
            return thread_idx
        return True  # read-only array in this region

    def can_write_array_at(self, arr: Variable, *, thread_idx: bool) -> bool:
        """May the current context write one element of ``arr``?"""
        if self.region is None:
            return True
        if self.owner is not None:
            return False  # arm/task bodies update owned scalars only
        if self.in_single:
            return False  # single bodies update scalars only
        return thread_idx and id(arr) in self.region.write_arrays
